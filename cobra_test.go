package cobra

import (
	"math"
	"testing"
)

// Facade-level tests: the public API wires the internal packages together
// correctly and behaves as documented end to end.

func TestFacadeCoverTime(t *testing.T) {
	g := Complete(128)
	rounds, err := CoverTime(g, DefaultConfig(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 4 || rounds > 80 {
		t.Fatalf("K128 cover %d implausible", rounds)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if Complete(5).M() != 10 {
		t.Fatal("Complete wrong")
	}
	if Cycle(6).N() != 6 || Path(6).M() != 5 || Star(6).MaxDegree() != 5 {
		t.Fatal("basic families wrong")
	}
	if Hypercube(4).N() != 16 || Grid(3, 3).N() != 9 || Torus(3, 3).M() != 18 {
		t.Fatal("lattice families wrong")
	}
	if BinaryTree(7).M() != 6 || Lollipop(3, 2).N() != 5 || Barbell(3, 1).N() != 7 {
		t.Fatal("compound families wrong")
	}
	if CompleteBipartite(2, 3).M() != 6 || Petersen().N() != 10 {
		t.Fatal("bipartite/petersen wrong")
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build("custom")
	if err != nil || g.M() != 2 {
		t.Fatal("builder wrong")
	}
}

func TestFacadeRandomGenerators(t *testing.T) {
	if _, err := ErdosRenyi(100, 0.1, 3); err != nil {
		t.Fatal(err)
	}
	rr, err := RandomRegular(60, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reg, r := rr.IsRegular(); !reg || r != 4 {
		t.Fatal("RandomRegular wrong")
	}
	tr, err := RandomTree(20, 7)
	if err != nil || tr.M() != 19 {
		t.Fatal("RandomTree wrong")
	}
	ba, err := BarabasiAlbert(200, 3, 9)
	if err != nil || ba.N() != 200 || ba.M() != (200-3)*3 || !ba.IsConnected() {
		t.Fatalf("BarabasiAlbert wrong: %v err %v", ba, err)
	}
	ws, err := WattsStrogatz(200, 4, 0.1, 11)
	if err != nil || ws.N() != 200 || !ws.IsConnected() {
		t.Fatalf("WattsStrogatz wrong: %v err %v", ws, err)
	}
}

func TestFacadeProcessStepwise(t *testing.T) {
	g := Cycle(12)
	p, err := NewProcess(g, DefaultConfig(), []int{0}, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	if p.Round() != 1 {
		t.Fatal("step did not advance")
	}
	e, err := NewEpidemic(g, DefaultConfig(), 0, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if !e.Infected().Contains(0) {
		t.Fatal("epidemic lost source")
	}
}

func TestFacadeInfectionTime(t *testing.T) {
	g := Complete(64)
	tm, err := InfectionTime(g, DefaultConfig(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 3 || tm > 60 {
		t.Fatalf("K64 infection %d implausible", tm)
	}
}

func TestFacadeDuality(t *testing.T) {
	g := Petersen()
	for seed := uint64(0); seed < 50; seed++ {
		hit, meet, err := CheckDuality(g, DefaultConfig(), []int{0}, 7, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if hit != meet {
			t.Fatalf("duality violated at seed %d", seed)
		}
	}
}

func TestFacadeSpectral(t *testing.T) {
	lam, err := SecondEigenvalue(Complete(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-0.125) > 1e-5 {
		t.Fatalf("K9 λ = %v", lam)
	}
	gap, err := SpectralGap(Complete(9))
	if err != nil || math.Abs(gap-0.875) > 1e-5 {
		t.Fatalf("K9 gap = %v err %v", gap, err)
	}
	lgap, err := LazySpectralGap(Hypercube(4))
	if err != nil || math.Abs(lgap-0.25) > 1e-4 {
		t.Fatalf("Q4 lazy gap = %v err %v", lgap, err)
	}
	phi, err := Conductance(Cycle(16))
	if err != nil {
		t.Fatal(err)
	}
	if phi < 0.12 || phi > 0.3 { // exact is 2/16 = 0.125
		t.Fatalf("C16 conductance estimate %v", phi)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := Complete(32)
	steps, err := RandomWalkCover(g, 0, 1)
	if err != nil || steps < 31 {
		t.Fatalf("walk cover %d err %v", steps, err)
	}
	rounds, err := MultiWalkCover(g, 4, 0, 2)
	if err != nil || rounds < 1 {
		t.Fatalf("multiwalk %d err %v", rounds, err)
	}
	res, err := PushBroadcast(g, 0, 3)
	if err != nil || res.Rounds < int(math.Log2(32)) {
		t.Fatalf("push %+v err %v", res, err)
	}
}

func TestFacadeTraces(t *testing.T) {
	g := Complete(32)
	ct, err := TraceCover(g, DefaultConfig(), 0, 4)
	if err != nil || ct.CoverRound < 0 {
		t.Fatalf("cover trace %v err %v", ct, err)
	}
	it, err := TraceInfection(g, DefaultConfig(), 0, 5)
	if err != nil || it.CompleteRound < 0 {
		t.Fatalf("infection trace %v err %v", it, err)
	}
}

func TestFacadeConfigVariants(t *testing.T) {
	g := Complete(64)
	if _, err := CoverTime(g, Config{Branch: 1, Rho: 0.5}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CoverTime(CompleteBipartite(5, 5), Config{Branch: 2, Lazy: true}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CoverTime(g, Config{Branch: 0}, 0, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
