package cobra_test

import (
	"fmt"

	cobra "github.com/repro/cobra"
)

// Deterministic, documentation-grade examples for godoc. Each runs as a
// test: the Output comments are asserted by `go test`.

func ExampleCoverTime() {
	g := cobra.Complete(64)
	rounds, err := cobra.CoverTime(g, cobra.DefaultConfig(), 0, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// K_n covers in Θ(log n) rounds; the exact value is seed-determined.
	fmt.Println(rounds >= 6 && rounds <= 40)
	// Output: true
}

func ExampleCheckDuality() {
	g := cobra.Petersen()
	hit, meet, err := cobra.CheckDuality(g, cobra.DefaultConfig(), []int{0}, 7, 5, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Theorem 1.3: the two replays agree on every sample.
	fmt.Println(hit == meet)
	// Output: true
}

func ExampleSpectralGap() {
	gap, err := cobra.SpectralGap(cobra.Complete(11))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// K_11: λ = 1/10, so the gap is 0.9.
	fmt.Printf("%.3f\n", gap)
	// Output: 0.900
}

func ExampleExactHitProbability() {
	// Path 0-1-2 with b=2: after two rounds the far end has been reached
	// unless vertex 1 picked vertex 0 twice: P(miss) = 1/4.
	g := cobra.Path(3)
	p, err := cobra.ExactHitProbability(g, cobra.DefaultConfig(), []int{0}, 2, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.4f\n", p)
	// Output: 0.2500
}

func ExampleNewEpidemic() {
	g := cobra.Cycle(9)
	e, err := cobra.NewEpidemic(g, cobra.DefaultConfig(), 4, cobra.NewRNG(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	e.Step()
	// The persistent source is always infected.
	fmt.Println(e.Infected().Contains(4))
	// Output: true
}

func ExampleConfig_fractional() {
	// Section 6 branching factor b = 1.5: one push always, a second with
	// probability 1/2.
	cfg := cobra.Config{Branch: 1, Rho: 0.5}
	g := cobra.Complete(32)
	rounds, err := cobra.CoverTime(g, cfg, 0, 11)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rounds > 0)
	// Output: true
}

func ExampleStationaryDistribution() {
	// On a star the hub holds half the stationary mass.
	pi := cobra.StationaryDistribution(cobra.Star(9))
	fmt.Printf("%.2f\n", pi[0])
	// Output: 0.50
}
