package cobra

import (
	"io"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/exact"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/spectral"
	"github.com/repro/cobra/internal/walk"
)

// This file extends the facade with the analysis layer: exact
// (non-Monte-Carlo) computations on small graphs, full spectra, walk
// mixing times, deterministic parallel engines and graph serialisation.

// --- Exact analysis (small graphs; see internal/exact) ---

// ExactMaxN is the largest vertex count the exact subset-chain analysis
// accepts (state spaces are 2^n).
const ExactMaxN = exact.MaxN

func (c Config) exact() exact.Config {
	return exact.Config{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy}
}

// ExactHitProbability computes P(Hit(target) > T | C₀ = starts) for
// COBRA exactly (no sampling error) by evolving the distribution of the
// active set over all 2^n subsets. Requires g.N() <= ExactMaxN and
// Branch ∈ {1, 2}.
func ExactHitProbability(g *Graph, cfg Config, starts []int, target, T int) (float64, error) {
	return exact.CobraHitProbability(g, cfg.exact(), starts, target, T)
}

// ExactMeetComplementProbability computes P(C ∩ A_T = ∅ | A₀ = {source})
// for BIPS exactly. Theorem 1.3 makes this equal to ExactHitProbability
// with the roles of C and the source swapped — an identity the test
// suite verifies to 1e-10.
func ExactMeetComplementProbability(g *Graph, cfg Config, source int, c []int, T int) (float64, error) {
	return exact.BipsMeetComplementProbability(g, cfg.exact(), source, c, T)
}

// ExactExpectedInfectionTime computes E[infec(source)] exactly.
func ExactExpectedInfectionTime(g *Graph, cfg Config, source int) (float64, error) {
	return exact.ExpectedInfectionTime(g, cfg.exact(), source, 0)
}

// ExactExpectedHitTime computes E[Hit(target)] for COBRA exactly.
func ExactExpectedHitTime(g *Graph, cfg Config, starts []int, target int) (float64, error) {
	return exact.ExpectedHitTime(g, cfg.exact(), starts, target, 0)
}

// --- Spectra and mixing ---

// FullSpectrum returns all eigenvalues of the walk matrix P = D⁻¹A in
// non-increasing order (dense Jacobi; n <= 1024).
func FullSpectrum(g *Graph) ([]float64, error) {
	return spectral.FullSpectrum(g)
}

// StationaryDistribution returns π(v) = deg(v)/2m of the simple walk.
func StationaryDistribution(g *Graph) []float64 {
	return walk.Stationary(g)
}

// WalkMixingTime returns the exact eps-total-variation mixing time of
// the lazy simple random walk from src (distribution evolution; n
// bounded internally).
func WalkMixingTime(g *Graph, src int, eps float64) (int, error) {
	return walk.MixingTime(g, src, eps, 0)
}

// --- Deterministic parallel engines ---

// ParallelCoverTime runs COBRA with the vertex-parallel round engine:
// same dynamics as CoverTime, trajectory deterministic in seed and
// independent of worker count. Prefer for very large graphs.
func ParallelCoverTime(g *Graph, cfg Config, start int, seed uint64, workers int) (int, error) {
	p, err := core.NewParallel(g, cfg.core(), []int{start}, seed, workers)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// ParallelInfectionTime runs BIPS with the vertex-parallel round engine.
func ParallelInfectionTime(g *Graph, cfg Config, source int, seed uint64, workers int) (int, error) {
	p, err := bips.NewParallel(g, cfg.bips(), source, seed, workers)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// --- Graph serialisation ---

// WriteEdgeList writes g in the library's plain edge-list format.
func WriteEdgeList(g *Graph, w io.Writer) error { return g.WriteEdgeList(w) }

// ReadEdgeList parses the edge-list format; name overrides the embedded
// comment name when non-empty.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) { return graph.ReadEdgeList(r, name) }

// WriteDOT writes g in Graphviz DOT format; highlight (optional) fills
// the marked vertices.
func WriteDOT(g *Graph, w io.Writer, highlight func(v int) bool) error {
	return g.WriteDOT(w, highlight)
}

// Spider returns the star-of-paths graph (legs paths of legLen vertices
// joined at a hub).
func Spider(legs, legLen int) *Graph { return graph.Spider(legs, legLen) }

// DoubleCycle returns the circulant C_n(1,2).
func DoubleCycle(n int) *Graph { return graph.DoubleCycle(n) }

// Chord returns the circulant C_n(1..k).
func Chord(n, k int) *Graph { return graph.Chord(n, k) }

// RingExpander returns a ring plus random-matching chords (seeded).
func RingExpander(n int, seed uint64) (*Graph, error) {
	return graph.RingExpander(n, NewRNG(seed))
}
