package experiments

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// AblationReplacement quantifies the design decision called out in
// DESIGN.md: the paper's process samples b neighbours WITH replacement
// (so a vertex may waste a branch on a duplicate), which is what the
// library implements. This ablation compares against a without-
// replacement variant (b distinct neighbours when degree permits). On
// low-degree graphs the distinction matters most (a degree-2 vertex
// always informs both neighbours without replacement); the table reports
// the mean cover times and their ratio.
func AblationReplacement(p Params) (*sim.Table, error) {
	trials := pick(p, 10, 60)
	tb := sim.NewTable("A1: sampling ablation — with vs without replacement (b=2)",
		"graph", "with-repl", "without-repl", "ratio")
	tb.Note = "paper semantics = with replacement; without replacement can only be faster"
	gen := xrand.New(p.Seed ^ 0xa1)

	rr, err := graph.RandomRegular(pick(p, 64, 512), 3, gen)
	if err != nil {
		return nil, err
	}
	graphs := []*graph.Graph{
		graph.Cycle(pick(p, 64, 512)),
		rr,
		graph.Complete(pick(p, 64, 512)),
	}
	for gi, g := range graphs {
		runner := sim.Runner{Seed: p.Seed ^ uint64(0xa100+gi), Workers: p.Workers}
		with, err := runner.RunMeans(trials, coverTrial(g, core.Config{Branch: 2}))
		if err != nil {
			return nil, err
		}
		without, err := runner.RunMeans(trials, func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := coverWithoutReplacement(g, 2, 0, rng)
			return float64(t), err
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(g.Name(), fmt.Sprintf("%.1f", with), fmt.Sprintf("%.1f", without),
			fmtRatio(with/without))
	}
	return tb, nil
}

// coverWithoutReplacement is the ablation-only variant: each active
// vertex informs min(b, deg) DISTINCT random neighbours per round.
func coverWithoutReplacement(g *graph.Graph, b, start int, rng *xrand.RNG) (int, error) {
	n := g.N()
	cur := bitset.New(n)
	next := bitset.New(n)
	covered := bitset.New(n)
	cur.Set(start)
	covered.Set(start)
	nCov := 1
	var active []int
	rounds := 0
	limit := 64 * n * 32
	for nCov < n {
		if rounds >= limit {
			return rounds, fmt.Errorf("ablation: round limit on %s", g.Name())
		}
		active = cur.Members(active[:0])
		next.Reset()
		for _, v := range active {
			deg := g.Degree(v)
			if deg <= b {
				for i := 0; i < deg; i++ {
					next.Set(g.Neighbor(v, i))
				}
				continue
			}
			// Floyd's algorithm for b distinct indices out of deg.
			first := rng.Intn(deg - 1)
			second := rng.Intn(deg)
			if second == first {
				second = deg - 1
			}
			next.Set(g.Neighbor(v, first))
			next.Set(g.Neighbor(v, second))
		}
		cur, next = next, cur
		rounds++
		cur.ForEach(func(w int) {
			if !covered.Contains(w) {
				covered.Set(w)
				nCov++
			}
		})
	}
	return rounds, nil
}

// AblationLazy quantifies the cost of laziness on graphs that do not need
// it: each selection stays put with probability 1/2, so the lazy process
// moves half as much and should cover roughly 2x slower — the price paid
// for bipartite safety when applied indiscriminately.
func AblationLazy(p Params) (*sim.Table, error) {
	trials := pick(p, 10, 60)
	tb := sim.NewTable("A2: lazy ablation — lazy vs plain b=2 on non-bipartite graphs",
		"graph", "plain", "lazy", "lazy/plain")
	tb.Note = "expected slowdown ~2x (half the selections stay put)"
	gen := xrand.New(p.Seed ^ 0xa2)

	rr, err := graph.RandomRegular(pick(p, 64, 512), 4, gen)
	if err != nil {
		return nil, err
	}
	graphs := []*graph.Graph{
		rr,
		graph.Complete(pick(p, 64, 512)),
		graph.DoubleCycle(pick(p, 32, 128)),
	}
	for gi, g := range graphs {
		runner := sim.Runner{Seed: p.Seed ^ uint64(0xa200+gi), Workers: p.Workers}
		plain, err := runner.RunMeans(trials, coverTrial(g, core.Config{Branch: 2}))
		if err != nil {
			return nil, err
		}
		lazy, err := runner.RunMeans(trials, coverTrial(g, core.Config{Branch: 2, Lazy: true}))
		if err != nil {
			return nil, err
		}
		tb.AddRow(g.Name(), fmt.Sprintf("%.1f", plain), fmt.Sprintf("%.1f", lazy),
			fmtRatio(lazy/plain))
	}
	return tb, nil
}

// AblationParallel compares the serial round engine against the
// deterministic hashed-randomness parallel engine: both simulate the same
// process, so mean cover times must agree within sampling error (they use
// different random streams, not different dynamics).
func AblationParallel(p Params) (*sim.Table, error) {
	trials := pick(p, 8, 40)
	tb := sim.NewTable("A3: engine ablation — serial vs deterministic-parallel rounds",
		"graph", "serial mean", "parallel mean", "rel diff", "sigma")
	tb.Note = "same dynamics, different streams: difference must be within a few standard errors"
	gen := xrand.New(p.Seed ^ 0xa3)

	rr, err := graph.RandomRegular(pick(p, 128, 1024), 3, gen)
	if err != nil {
		return nil, err
	}
	graphs := []*graph.Graph{rr, graph.Complete(pick(p, 128, 1024))}
	for gi, g := range graphs {
		runner := sim.Runner{Seed: p.Seed ^ uint64(0xa300+gi), Workers: p.Workers}
		serialXs, err := runner.Run(trials, coverTrial(g, core.Config{Branch: 2}))
		if err != nil {
			return nil, err
		}
		parXs, err := runner.Run(trials, func(trial int, rng *xrand.RNG) (float64, error) {
			proc, err := core.NewParallel(g, core.Config{Branch: 2}, []int{0}, rng.Uint64(), 0)
			if err != nil {
				return 0, err
			}
			t, err := proc.Run()
			return float64(t), err
		})
		if err != nil {
			return nil, err
		}
		ms, ss := meanStd(serialXs)
		mp, sp2 := meanStd(parXs)
		pooled := math.Sqrt(ss*ss/float64(len(serialXs)) + sp2*sp2/float64(len(parXs)))
		sigma := 0.0
		if pooled > 0 {
			sigma = math.Abs(ms-mp) / pooled
		}
		tb.AddRow(g.Name(), fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.1f", mp),
			fmt.Sprintf("%.3f", math.Abs(ms-mp)/ms), fmt.Sprintf("%.2f", sigma))
	}
	return tb, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		std = math.Sqrt(std / float64(len(xs)-1))
	}
	return mean, std
}
