package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// Scale-free and small-world scenarios (ROADMAP item): the Barabási–
// Albert family stresses the dmax² term of Theorem 1.1 — preferential
// attachment grows hubs of degree ~√n, so the m + dmax²·ln n bound is no
// longer dominated by the edge count — and the Watts–Strogatz family
// sweeps the rewiring probability β to trace how the eigenvalue gap, and
// with it the Theorem 1.2 bound shape, controls the measured cover time.

// E15ScaleFree measures COBRA (b=2) cover time on BA graphs against the
// Theorem 1.1 bound, reporting what fraction of the bound the heavy-tail
// dmax²·ln n term contributes.
func E15ScaleFree(p Params) (*sim.Table, error) {
	sizes := pick(p, []int{128, 256}, []int{512, 1024, 2048, 4096})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E15: Theorem 1.1 on scale-free BA graphs — heavy-tail dmax^2 stress (b=2)",
		"graph", "n", "m", "dmax", "dmax2-share", "mean-cover", "bound", "ratio")
	tb.Note = "dmax2-share = dmax^2 ln n / bound: the heavy tail makes the dmax^2 term a first-class contributor"
	gen := xrand.New(p.Seed ^ 0xe15)
	for _, attach := range []int{2, 8} {
		for _, n := range sizes {
			g, err := graph.BarabasiAlbert(n, attach, gen)
			if err != nil {
				return nil, fmt.Errorf("E15 ba n=%d m=%d: %w", n, attach, err)
			}
			cfg := cfgFor(g)
			mean, err := meanCover(p, g, cfg, trials)
			if err != nil {
				return nil, fmt.Errorf("E15 %s: %w", g.Name(), err)
			}
			bound := generalBound(g)
			dmax := g.MaxDegree()
			tail := float64(dmax) * float64(dmax) * math.Log(float64(g.N()))
			tb.AddRow(g.Name(), g.N(), g.M(), dmax,
				fmtRatio(tail/bound), fmt.Sprintf("%.1f", mean),
				fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
		}
	}
	return tb, nil
}

// E16SmallWorld sweeps the Watts–Strogatz rewiring probability β at fixed
// (n, k): β = 0 is a ring lattice with diameter ~n/k and a vanishing
// eigenvalue gap, and a few percent of rewiring already opens the gap and
// collapses the cover time — the small-world transition seen through the
// Theorem 1.2 bound shape (k/gap + k²)·ln n (WS is near-regular, so k
// stands in for r).
//
// The β axis is one batch.Sweep submission (one ws graphspec per β):
// each graph compiles once into the sweep's cache — at cell admission,
// in cell order — trials share pooled workspaces, cells execute in
// parallel (CellWorkers = GOMAXPROCS) behind the reorder buffer, and the
// same compiled graph then feeds the spectral gap column.
func E16SmallWorld(p Params) (*sim.Table, error) {
	n := pick(p, 256, 2048)
	k := pick(p, 6, 8)
	betas := pick(p, []float64{0.02, 0.3}, []float64{0, 0.01, 0.05, 0.1, 0.3, 1})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E16: Watts–Strogatz gap sweep — cover time across the small-world transition (b=2)",
		"graph", "n", "k", "beta", "gap", "mean-cover", "bound", "ratio")
	tb.Note = "bound = (k/gap + k^2) ln n (near-regular shape); the gap opens with beta and the cover time follows"

	specs := make([]string, len(betas))
	for i, beta := range betas {
		specs[i] = fmt.Sprintf("ws:%d:%d:%s", n, k, strconv.FormatFloat(beta, 'g', -1, 64))
	}
	sweep := batch.SweepSpec{
		Graphs:      specs,
		Processes:   []string{"cobra"},
		Branches:    []int{2},
		Trials:      trials,
		Seed:        p.Seed,
		Workers:     sweepTrialWorkers(p),
		CellWorkers: runtime.GOMAXPROCS(0),
	}
	sw, err := batch.CompileSweep(sweep, nil)
	if err != nil {
		return nil, fmt.Errorf("E16: %w", err)
	}
	cells, err := sw.Run(context.Background(), nil)
	if err != nil {
		return nil, fmt.Errorf("E16: %w", err)
	}
	for i, beta := range betas {
		g := sw.Cells()[i].Graph()
		// The sweep runs the plain (non-lazy) process on every cell — WS
		// graphs with k >= 4 have triangles, so they are never bipartite —
		// and the gap must describe the chain that was simulated.
		gap, err := plainGap(g)
		if err != nil {
			return nil, fmt.Errorf("E16 ws beta=%g gap: %w", beta, err)
		}
		mean := cells[i].Aggregate.Rounds.Mean
		bound := regularBound(k, gap, g.N())
		tb.AddRow(g.Name(), g.N(), k, fmt.Sprintf("%g", beta),
			fmt.Sprintf("%.4g", gap), fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
	}
	return tb, nil
}
