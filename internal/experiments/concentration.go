package experiments

import (
	"fmt"
	"sort"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// E14Concentration reproduces the "w.h.p." form of the paper's theorems.
// Theorems 1.1/1.2 hold with probability 1 − O(1/n³), and the paper
// converts them to expectation bounds by the restart argument (if the
// graph is not covered by the claimed bound, restart from the current
// state). That argument needs the cover-time distribution to have a thin
// upper tail: quantiles close to the mean and a max/mean ratio that does
// not grow with n.
//
// The experiment runs many independent trials per graph and reports
// q50/q90/q99 and max, all normalised by the mean. The w.h.p. claim
// predicts these ratios stay O(1) (and in fact close to 1) as n grows.
func E14Concentration(p Params) (*sim.Table, error) {
	trials := pick(p, 60, 400)
	tb := sim.NewTable("E14: w.h.p. concentration — cover-time quantiles / mean",
		"graph", "n", "trials", "mean", "q50/mean", "q90/mean", "q99/mean", "max/mean")
	tb.Note = "thin upper tails justify the paper's restart argument (w.h.p. -> expectation)"
	gen := xrand.New(p.Seed ^ 0x14)

	var jobs []*graph.Graph
	for _, n := range pick(p, []int{128}, []int{256, 1024}) {
		rr, err := graph.RandomRegular(n, 3, gen)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, rr, graph.Complete(n), graph.Cycle(n))
	}
	for gi, g := range jobs {
		cfg := cfgFor(g)
		runner := sim.Runner{Seed: p.Seed ^ uint64(0x14000+gi), Workers: p.Workers}
		xs, err := runner.Run(trials, coverTrial(g, cfg))
		if err != nil {
			return nil, fmt.Errorf("E14 %s: %w", g.Name(), err)
		}
		sort.Float64s(xs)
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		q := func(f float64) float64 {
			idx := int(f * float64(len(xs)-1))
			return xs[idx]
		}
		tb.AddRow(g.Name(), g.N(), trials, fmt.Sprintf("%.1f", mean),
			fmtRatio(q(0.50)/mean), fmtRatio(q(0.90)/mean),
			fmtRatio(q(0.99)/mean), fmtRatio(xs[len(xs)-1]/mean))
	}
	return tb, nil
}
