package experiments

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// E2RegularGraphs regenerates the Theorem 1.2 check: on r-regular graphs
// with eigenvalue gap 1−λ, the b=2 cover time is O((r/(1−λ) + r²) log n).
// Families: random r-regular for several r (expanders: gap Θ(1)), 2-D
// tori (gap Θ(1/n)), hypercubes (gap Θ(1/log n); bipartite, so lazy with
// the lazy gap). The ratio measured/bound must remain bounded across the
// sweep.
func E2RegularGraphs(p Params) (*sim.Table, error) {
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E2: Theorem 1.2 — cover(u) vs (r/(1-l)+r^2) ln n (b=2, regular)",
		"graph", "n", "r", "gap", "lazy", "mean-cover", "bound", "ratio")
	tb.Note = "gap = 1-lambda (lazy spectrum when the process is lazy); ratio must stay O(1)"
	gen := xrand.New(p.Seed ^ 0xe2)

	type job struct {
		g    *graph.Graph
		r    int
		lazy bool
	}
	var jobs []job

	for _, n := range pick(p, []int{64, 128}, []int{128, 256, 512, 1024}) {
		for _, r := range pick(p, []int{3, 4}, []int{3, 4, 8, 16}) {
			nn := n
			if nn*r%2 != 0 {
				nn++
			}
			g, err := graph.RandomRegular(nn, r, gen)
			if err != nil {
				return nil, fmt.Errorf("E2 rreg n=%d r=%d: %w", nn, r, err)
			}
			jobs = append(jobs, job{g, r, false})
		}
	}
	for _, s := range pick(p, []int{9, 15}, []int{9, 15, 21, 31}) {
		jobs = append(jobs, job{graph.Torus(s, s), 4, false}) // odd sides: non-bipartite
	}
	for _, d := range pick(p, []int{5, 7}, []int{6, 8, 10}) {
		jobs = append(jobs, job{graph.Hypercube(d), d, true})
	}

	for _, j := range jobs {
		var gap float64
		var err error
		if j.lazy {
			gap, err = lazyGap(j.g)
		} else {
			gap, err = plainGap(j.g)
		}
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", j.g.Name(), err)
		}
		cfg := core.Config{Branch: 2, Lazy: j.lazy}
		mean, err := meanCover(p, j.g, cfg, trials)
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", j.g.Name(), err)
		}
		bound := regularBound(j.r, gap, j.g.N())
		tb.AddRow(j.g.Name(), j.g.N(), j.r, fmt.Sprintf("%.4f", gap), j.lazy,
			fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
	}
	return tb, nil
}

// E3Hypercube regenerates the paper's in-text running example: on the
// hypercube Q_d (n = 2^d, r = log2 n, gap Θ(1/log n)) the successive
// cover-time bounds are O(log^8 n) [Mitzenmacher et al. '16],
// O(log^4 n) [Cooper et al. PODC'16] and O(log^3 n) (this paper), while
// the conjectured truth is Θ(log n). The measured cover time should grow
// like log n — far below all three bounds and orders apart from them.
func E3Hypercube(p Params) (*sim.Table, error) {
	dims := pick(p, []int{4, 6, 8}, []int{4, 6, 8, 10, 12, 14})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E3: hypercube Q_d — measured cover vs the three bound shapes",
		"d", "n", "measured", "ln n", "ln^3 n (this paper)", "ln^4 n [4]", "ln^8 n [8]", "measured/ln n")
	tb.Note = "paper's example: bounds O(log^8) -> O(log^4) -> O(log^3); truth conjectured Th(log n)"
	for _, d := range dims {
		g := graph.Hypercube(d)
		cfg := core.Config{Branch: 2, Lazy: true} // Q_d is bipartite
		mean, err := meanCover(p, g, cfg, trials)
		if err != nil {
			return nil, fmt.Errorf("E3 d=%d: %w", d, err)
		}
		ln := math.Log(float64(g.N()))
		tb.AddRow(d, g.N(), fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.1f", ln),
			fmt.Sprintf("%.0f", math.Pow(ln, 3)),
			fmt.Sprintf("%.0f", math.Pow(ln, 4)),
			fmt.Sprintf("%.3g", math.Pow(ln, 8)),
			fmt.Sprintf("%.2f", mean/ln))
	}
	return tb, nil
}

// E7Expanders regenerates the introduction's claims (i) and (ii): the
// complete graph covers in O(log n) rounds, and so do bounded-degree
// expanders (the O((1/(1-l))^3 log n) bound of [4] with constant gap, and
// this paper's Theorem 1.2 with constant r and gap). The table reports a
// semi-log fit cover = a·ln n + c — R^2 near 1 with stable `a` confirms
// logarithmic scaling.
func E7Expanders(p Params) (*sim.Table, error) {
	sizes := pick(p, []int{64, 128, 256}, []int{128, 256, 512, 1024, 2048, 4096})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E7: complete graphs and expanders — cover = Th(log n)",
		"family", "n-sweep", "fit a (rounds per ln n)", "fit intercept", "R^2")
	tb.Note = "cover(u) = a ln n + c fitted; logarithmic scaling <=> high R^2, a = O(1)"
	gen := xrand.New(p.Seed ^ 0xe7)

	families := []struct {
		name  string
		build func(n int) (*graph.Graph, error)
	}{
		{"complete", func(n int) (*graph.Graph, error) { return graph.Complete(n), nil }},
		{"rreg-3", func(n int) (*graph.Graph, error) { return graph.RandomRegular(n, 3, gen) }},
		{"rreg-8", func(n int) (*graph.Graph, error) { return graph.RandomRegular(n, 8, gen) }},
	}
	for _, fam := range families {
		var xs, ys []float64
		for _, n := range sizes {
			g, err := fam.build(n)
			if err != nil {
				return nil, fmt.Errorf("E7 %s n=%d: %w", fam.name, n, err)
			}
			mean, err := meanCover(p, g, core.Config{Branch: 2}, trials)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, mean)
		}
		fit, err := semiLogFit(xs, ys)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fam.name, fmt.Sprintf("%d..%d", sizes[0], sizes[len(sizes)-1]),
			fmt.Sprintf("%.2f", fit.Slope), fmt.Sprintf("%.2f", fit.Intercept),
			fmt.Sprintf("%.3f", fit.R2))
	}
	return tb, nil
}

// E8Grids regenerates the grid discussion: the D-dimensional grid/torus
// has cover time O(D² n^{1/D}) [8] and the universal lower bound
// max{log2 n, Diam(G)}. The log-log fitted exponent of cover vs n should
// approach 1/D, and the measured cover must always exceed the diameter.
func E8Grids(p Params) (*sim.Table, error) {
	trials := pick(p, 5, 20)
	tb := sim.NewTable("E8: D-dimensional tori — cover ~ n^(1/D); lower bound max{log2 n, Diam}",
		"D", "n-sweep", "fitted exponent", "target 1/D", "R^2", "min cover/diam")
	tb.Note = "tori with odd sides (regular, non-bipartite); exponent from log-log fit"

	type dimSpec struct {
		d     int
		sides []int
	}
	specs := []dimSpec{
		{1, pick(p, []int{33, 65, 129}, []int{65, 129, 257, 513, 1025})},
		{2, pick(p, []int{7, 11, 15}, []int{9, 15, 21, 31, 45})},
		{3, pick(p, []int{3, 5, 7}, []int{5, 7, 9, 11})},
	}
	for _, spec := range specs {
		var xs, ys []float64
		minRatio := math.Inf(1)
		for _, s := range spec.sides {
			dims := make([]int, spec.d)
			for i := range dims {
				dims[i] = s
			}
			g := graph.Torus(dims...)
			mean, err := meanCover(p, g, core.Config{Branch: 2}, trials)
			if err != nil {
				return nil, fmt.Errorf("E8 D=%d s=%d: %w", spec.d, s, err)
			}
			xs = append(xs, float64(g.N()))
			ys = append(ys, mean)
			diam := float64(g.DiameterApprox())
			if r := mean / diam; r < minRatio {
				minRatio = r
			}
		}
		fit, err := logLogFit(xs, ys)
		if err != nil {
			return nil, err
		}
		tb.AddRow(spec.d,
			fmt.Sprintf("%.0f..%.0f", xs[0], xs[len(xs)-1]),
			fmt.Sprintf("%.3f", fit.Slope), fmt.Sprintf("%.3f", 1/float64(spec.d)),
			fmt.Sprintf("%.3f", fit.R2), fmt.Sprintf("%.2f", minRatio))
	}
	return tb, nil
}
