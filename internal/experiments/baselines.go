package experiments

import (
	"context"
	"fmt"
	"runtime"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/gossip"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/walk"
	"github.com/repro/cobra/internal/xrand"
)

// E6Fractional regenerates Section 6: with fractional branching b = 1+ρ
// the bounds hold with round counts multiplied by 1/ρ². The experiment
// sweeps ρ on an expander and on the complete graph, reporting measured
// COBRA cover and BIPS infection times together with the normalisations
// rounds·ρ and rounds·ρ²: the paper's 1/ρ² factor is an upper-bound
// envelope, so rounds·ρ² must be bounded (non-increasing in 1/ρ), while
// the empirically dominant cost is closer to 1/ρ.
//
// The ρ sweep is one batch.Sweep submission (graphs × {cobra, bips} ×
// b=1 × rhos): each graph compiles once and is shared by its eight
// cells, and cells execute in parallel (CellWorkers = GOMAXPROCS) behind
// the sweep scheduler's reorder buffer — results are identical to the
// sequential path by the sweep determinism contract.
func E6Fractional(p Params) (*sim.Table, error) {
	trials := pick(p, 8, 40)
	tb := sim.NewTable("E6: Section 6 — fractional branching b = 1+rho",
		"graph", "rho", "cover", "cover*rho", "cover*rho^2", "infect", "infect*rho^2")
	tb.Note = "paper: rounds scale at most by 1/rho^2 vs b=2; rounds*rho^2 must stay bounded"

	n := pick(p, 64, 512)
	rhos := []float64{1, 0.5, 0.25, 0.125}
	sweep := batch.SweepSpec{
		Graphs:      []string{fmt.Sprintf("rreg:%d:4", n), fmt.Sprintf("complete:%d", n)},
		Processes:   []string{"cobra", "bips"},
		Branches:    []int{1},
		Rhos:        rhos,
		Trials:      trials,
		Seed:        p.Seed,
		Workers:     sweepTrialWorkers(p),
		CellWorkers: runtime.GOMAXPROCS(0),
	}
	sw, err := batch.CompileSweep(sweep, nil)
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	cells, err := sw.Run(context.Background(), nil)
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	// Cell order: graphs outermost, then process, then rho innermost.
	perGraph := len(sweep.Processes) * len(rhos)
	for gi := range sweep.Graphs {
		name := sw.Cells()[gi*perGraph].Graph().Name()
		for ri, rho := range rhos {
			cover := cells[gi*perGraph+ri].Aggregate.Rounds.Mean
			infect := cells[gi*perGraph+len(rhos)+ri].Aggregate.Rounds.Mean
			tb.AddRow(name, rho,
				fmt.Sprintf("%.1f", cover),
				fmt.Sprintf("%.1f", cover*rho),
				fmt.Sprintf("%.1f", cover*rho*rho),
				fmt.Sprintf("%.1f", infect),
				fmt.Sprintf("%.1f", infect*rho*rho))
		}
	}
	return tb, nil
}

// E12Baselines regenerates the paper's framing: COBRA (b=2) against the
// b=1 simple random walk (cover Ω(n log n) everywhere), k independent
// random walks, and the push gossip protocol (unbounded per-vertex
// lifetime). Reported per graph: rounds to cover and total messages —
// COBRA's selling point is walk-like total work with push-like rounds.
func E12Baselines(p Params) (*sim.Table, error) {
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E12: baselines — rounds (and messages) to inform all vertices",
		"graph", "cobra rounds", "cobra msgs", "rw steps", "multi-rw(16) rounds", "push rounds", "push msgs")
	tb.Note = "rw steps = single-token moves; COBRA/push rounds are synchronous; msgs = transmissions"
	gen := xrand.New(p.Seed ^ 0x12)

	rr, err := graph.RandomRegular(pick(p, 128, 1024), 3, gen)
	if err != nil {
		return nil, err
	}
	graphs := []*graph.Graph{
		graph.Complete(pick(p, 128, 1024)),
		graph.Cycle(pick(p, 128, 1024)),
		rr,
		graph.Lollipop(pick(p, 24, 96), pick(p, 24, 96)),
	}
	for gi, g := range graphs {
		runner := sim.Runner{Seed: p.Seed ^ uint64(0x12000+gi), Workers: p.Workers}
		type agg struct{ cobraR, cobraM, rw, multi, pushR, pushM float64 }
		results, err := runner.Run(trials, coverTrial(g, core.Config{Branch: 2}))
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", g.Name(), err)
		}
		var a agg
		for _, v := range results {
			a.cobraR += v
		}
		a.cobraR /= float64(len(results))
		// COBRA messages ≈ 2 msgs per active vertex per round; measure
		// exactly with one instrumented run.
		{
			proc, err := core.New(g, core.Config{Branch: 2}, []int{0}, xrand.NewStream(p.Seed, uint64(gi)))
			if err != nil {
				return nil, err
			}
			if _, err := proc.Run(); err != nil {
				return nil, err
			}
			a.cobraM = float64(proc.Transmissions())
		}
		rws, err := runner.Run(trials, func(trial int, rng *xrand.RNG) (float64, error) {
			s, err := walk.CoverTime(g, 0, false, rng)
			return float64(s), err
		})
		if err != nil {
			return nil, err
		}
		for _, v := range rws {
			a.rw += v
		}
		a.rw /= float64(len(rws))
		multis, err := runner.Run(trials, func(trial int, rng *xrand.RNG) (float64, error) {
			s, err := walk.MultiCoverTime(g, 16, 0, rng)
			return float64(s), err
		})
		if err != nil {
			return nil, err
		}
		for _, v := range multis {
			a.multi += v
		}
		a.multi /= float64(len(multis))
		var pr, pm float64
		for k := 0; k < trials; k++ {
			res, err := gossip.Push(g, 0, xrand.NewStream(p.Seed^0x12b, uint64(gi*1000+k)))
			if err != nil {
				return nil, err
			}
			pr += float64(res.Rounds)
			pm += float64(res.Messages)
		}
		a.pushR, a.pushM = pr/float64(trials), pm/float64(trials)

		tb.AddRow(g.Name(),
			fmt.Sprintf("%.1f", a.cobraR), fmt.Sprintf("%.0f", a.cobraM),
			fmt.Sprintf("%.0f", a.rw), fmt.Sprintf("%.1f", a.multi),
			fmt.Sprintf("%.1f", a.pushR), fmt.Sprintf("%.0f", a.pushM))
	}
	return tb, nil
}
