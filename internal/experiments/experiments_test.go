package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Quick-scale end-to-end runs of every experiment. Beyond "runs without
// error", these assert the headline claim of each table where the claim
// is exact (duality agreement, martingale floor, candidate-set bound).

func quickParams() Params { return Params{Seed: 2024, Scale: Quick} }

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 19 {
		t.Fatalf("registry has %d entries", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Fatalf("malformed registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"E1", "E4", "E10", "E12", "E15", "E16", "A3"} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestE1GeneralGraphs(t *testing.T) {
	tb, err := E1GeneralGraphs(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9*2 {
		t.Fatalf("E1 rows = %d", len(tb.Rows))
	}
	// Shape check: every ratio must be well below a generous constant.
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("unparseable ratio %q", row[len(row)-1])
		}
		if ratio > 3 {
			t.Fatalf("E1 %s: cover/bound ratio %.3f blows past O(1)", row[0], ratio)
		}
	}
}

func TestE2RegularGraphs(t *testing.T) {
	tb, err := E2RegularGraphs(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E2 empty")
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 3 {
			t.Fatalf("E2 %s: ratio %.3f not O(1)", row[0], ratio)
		}
	}
}

func TestE3Hypercube(t *testing.T) {
	tb, err := E3Hypercube(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("E3 rows = %d", len(tb.Rows))
	}
	// measured/ln n should be a modest constant (single digits).
	for _, row := range tb.Rows {
		r, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0.3 || r > 20 {
			t.Fatalf("E3 d=%s: measured/ln n = %.2f implausible", row[0], r)
		}
	}
}

func TestE4DualityExactAgreement(t *testing.T) {
	tb, err := E4Duality(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		agree := row[3]
		parts := strings.Split(agree, "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("E4 %s %s T=%s: pathwise agreement %s is not total", row[0], row[1], row[2], agree)
		}
		z, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if z > 5 {
			t.Fatalf("E4 %s: Monte-Carlo z = %.2f", row[0], z)
		}
	}
}

func TestE5BIPS(t *testing.T) {
	tb, err := E5BIPS(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 3 {
			t.Fatalf("E5 %s: ratio %.3f not O(1)", row[0], ratio)
		}
	}
}

func TestE6Fractional(t *testing.T) {
	tb, err := E6Fractional(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("E6 rows = %d", len(tb.Rows))
	}
	// Within each graph, cover must be non-decreasing as rho shrinks, and
	// cover*rho^2 must not explode (the 1/rho^2 envelope).
	for g := 0; g < 2; g++ {
		var prev float64
		for i := 0; i < 4; i++ {
			row := tb.Rows[g*4+i]
			cover, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && cover < prev*0.8 {
				t.Fatalf("E6 %s: cover decreased when rho shrank (%.1f -> %.1f)", row[0], prev, cover)
			}
			prev = cover
			env, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatal(err)
			}
			first, _ := strconv.ParseFloat(tb.Rows[g*4][4], 64)
			if env > 4*first+10 {
				t.Fatalf("E6 %s: rho^2-normalised cover %.1f escapes envelope (base %.1f)", row[0], env, first)
			}
		}
	}
}

func TestE7Expanders(t *testing.T) {
	tb, err := E7Expanders(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		r2, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if r2 < 0.5 {
			t.Fatalf("E7 %s: semi-log fit R^2 = %.3f (cover not logarithmic?)", row[0], r2)
		}
	}
}

func TestE8Grids(t *testing.T) {
	tb, err := E8Grids(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("E8 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		got, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		want, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got < want*0.55 || got > want*1.8 {
			t.Fatalf("E8 D=%s: exponent %.3f vs 1/D=%.3f", row[0], got, want)
		}
		covDiam, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if covDiam < 1 {
			t.Fatalf("E8 D=%s: cover below diameter lower bound", row[0])
		}
	}
}

func TestE9Growth(t *testing.T) {
	tb, err := E9Growth(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E9 produced no populated bins")
	}
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 4.1 lower-bounds an expectation; empirical bin means may
		// dip slightly below 1 from noise, not grossly.
		if ratio < 0.93 {
			t.Fatalf("E9 %s %s: growth ratio %.4f violates Lemma 4.1 beyond noise", row[0], row[2], ratio)
		}
	}
}

func TestE10MartingaleFloorHolds(t *testing.T) {
	tb, err := E10Martingale(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("E10 %s %s: %s floor violations (eq. 18 broken)", row[0], row[1], row[len(row)-1])
		}
	}
}

func TestE11CandidateBoundHolds(t *testing.T) {
	tb, err := E11Candidates(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		minRatio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if minRatio < 1 {
			t.Fatalf("E11 %s: min |C|/bound = %.3f < 1 (Corollary 5.2 broken)", row[0], minRatio)
		}
	}
}

func TestE12Baselines(t *testing.T) {
	tb, err := E12Baselines(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("E12 rows = %d", len(tb.Rows))
	}
	// COBRA rounds must beat the single random walk's steps everywhere.
	for _, row := range tb.Rows {
		cobraR, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if cobraR >= rw {
			t.Fatalf("E12 %s: COBRA %.1f rounds not faster than RW %.0f steps", row[0], cobraR, rw)
		}
	}
}

func TestAblations(t *testing.T) {
	p := quickParams()
	a1, err := AblationReplacement(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a1.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		// With-replacement wastes branches, so it is never much faster.
		if ratio < 0.85 {
			t.Fatalf("A1 %s: with-replacement unexpectedly faster (ratio %.3f)", row[0], ratio)
		}
	}
	a2, err := AblationLazy(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a2.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1.2 || ratio > 4 {
			t.Fatalf("A2 %s: lazy/plain = %.2f not ~2", row[0], ratio)
		}
	}
	a3, err := AblationParallel(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a3.Rows {
		sigma, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if sigma > 6 {
			t.Fatalf("A3 %s: engines differ by %.1f sigma", row[0], sigma)
		}
	}
}

func TestTablesRender(t *testing.T) {
	tb, err := E3Hypercube(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "ln^3") {
		t.Fatalf("rendered table missing content:\n%s", out)
	}
}

func TestE13Conjecture(t *testing.T) {
	tb, err := E13Conjecture(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11*2 {
		t.Fatalf("E13 rows = %d", len(tb.Rows))
	}
	// The conjecture scan: normalised cover must stay below a generous
	// constant for every family at every size.
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 2 {
			t.Fatalf("E13 %s n=%s: cover/(n ln n) = %.3f — conjecture counterexample?!", row[0], row[1], ratio)
		}
	}
}

func TestE15ScaleFree(t *testing.T) {
	tb, err := E15ScaleFree(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2*2 {
		t.Fatalf("E15 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		share, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if share <= 0 || share >= 1 {
			t.Fatalf("E15 %s: dmax2-share %v outside (0,1)", row[0], row[4])
		}
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 3 {
			t.Fatalf("E15 %s: cover/bound ratio %.3f blows past O(1)", row[0], ratio)
		}
	}
}

func TestE16SmallWorld(t *testing.T) {
	tb, err := E16SmallWorld(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("E16 rows = %d", len(tb.Rows))
	}
	covers := make([]float64, len(tb.Rows))
	gaps := make([]float64, len(tb.Rows))
	for i, row := range tb.Rows {
		var err error
		if gaps[i], err = strconv.ParseFloat(row[4], 64); err != nil {
			t.Fatal(err)
		}
		if covers[i], err = strconv.ParseFloat(row[5], 64); err != nil {
			t.Fatal(err)
		}
	}
	// The small-world effect: more rewiring opens the gap and the cover
	// time must not grow (generous slack for trial noise).
	last := len(tb.Rows) - 1
	if gaps[last] <= gaps[0] {
		t.Fatalf("E16: gap did not open with beta: %v vs %v", gaps[last], gaps[0])
	}
	if covers[last] > covers[0]*1.25 {
		t.Fatalf("E16: cover time grew across the transition: %v vs %v", covers[last], covers[0])
	}
}

func TestE14Concentration(t *testing.T) {
	tb, err := E14Concentration(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("E14 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		q99, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		max, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatal(err)
		}
		// W.h.p. theorems need thin tails: even the max over hundreds of
		// trials must stay within a small constant of the mean.
		if q99 > 3 || max > 5 {
			t.Fatalf("E14 %s: heavy tail q99/mean=%.2f max/mean=%.2f", row[0], q99, max)
		}
	}
}
