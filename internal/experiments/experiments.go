// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §4 (E1–E12 plus ablations), each
// regenerating a table that checks the *shape* of a theorem, lemma or
// worked example from the paper. The paper itself contains no empirical
// tables or figures — it is a theory paper — so these experiments are the
// executable counterparts of its stated bounds.
//
// Every experiment is a pure function of (code, Params.Seed): trials run
// through sim.Runner with per-trial deterministic streams.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/bounds"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/spectral"
	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/xrand"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick runs reduced sizes/trials, for tests and benchmarks.
	Quick Scale = iota
	// Full runs the sizes reported in EXPERIMENTS.md.
	Full
)

// Params configures an experiment run.
type Params struct {
	// Seed is the master seed; every randomised choice derives from it.
	Seed uint64
	// Scale selects Quick or Full sizing.
	Scale Scale
	// Workers caps trial parallelism (<= 0: GOMAXPROCS).
	Workers int
}

func (p Params) runner() sim.Runner {
	return sim.Runner{Seed: p.Seed, Workers: p.Workers}
}

// sweepTrialWorkers is the trial-level parallelism for sweep-backed
// experiments (E6, E16): those already fan cells out to GOMAXPROCS, so
// trials within a cell stay serial unless the caller explicitly asked
// for trial workers — CellWorkers x GOMAXPROCS CPU-bound goroutines
// would oversubscribe every core for zero result difference.
func sweepTrialWorkers(p Params) int {
	if p.Workers > 0 {
		return p.Workers
	}
	return 1
}

// pick returns q at Quick scale and f at Full scale.
func pick[T any](p Params, q, f T) T {
	if p.Scale == Full {
		return f
	}
	return q
}

// Experiment pairs an identifier with its generator for the registry.
type Experiment struct {
	ID   string
	Name string
	Run  func(Params) (*sim.Table, error)
}

// All returns the full experiment registry in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 1.1 — general graphs: cover = O(m + dmax^2 log n)", E1GeneralGraphs},
		{"E2", "Theorem 1.2 — regular graphs: cover = O((r/(1-l)+r^2) log n)", E2RegularGraphs},
		{"E3", "Hypercube example — log^8 vs log^4 vs log^3 bounds vs measured", E3Hypercube},
		{"E4", "Theorem 1.3 — COBRA/BIPS duality (pathwise + Monte Carlo)", E4Duality},
		{"E5", "Theorems 1.4/1.5 — BIPS infection time obeys the same bounds", E5BIPS},
		{"E6", "Section 6 — fractional branching b = 1+rho costs <= 1/rho^2", E6Fractional},
		{"E7", "Intro (i)/(ii) — complete graphs and expanders cover in O(log n)", E7Expanders},
		{"E8", "Grids — cover ~ n^(1/D), and the max{log2 n, Diam} lower bound", E8Grids},
		{"E9", "Lemma 4.1 — per-round BIPS growth >= |A|(1+(1-l^2)(1-|A|/n))", E9Growth},
		{"E10", "Eq. (18) — serialised step expectations E(Y_l|past) >= 1/2", E10Martingale},
		{"E11", "Corollary 5.2 — candidate sets |C_t| >= |A|(1-l)/2", E11Candidates},
		{"E12", "Baselines — COBRA vs random walk vs multi-walk vs push", E12Baselines},
		{"E13", "Conclusions — scan for cover/(n log n) growth (conjecture check)", E13Conjecture},
		{"E14", "W.h.p. concentration — cover-time tail quantiles vs mean", E14Concentration},
		{"E15", "Scale-free BA graphs — heavy-tail dmax^2 stress for Theorem 1.1", E15ScaleFree},
		{"E16", "Watts–Strogatz gap sweep — cover across the small-world transition", E16SmallWorld},
		{"A1", "Ablation — with vs without replacement neighbour sampling", AblationReplacement},
		{"A2", "Ablation — lazy overhead on non-bipartite graphs", AblationLazy},
		{"A3", "Ablation — serial vs deterministic-parallel round engine", AblationParallel},
	}
}

// wsPool shares engine workspaces across every experiment hot loop: one
// workspace per live worker goroutine, reused across trials, rows and
// experiments (buffers are re-sized when the graph changes). Routing the
// per-trial kernel construction through it removes the per-trial
// allocations and connectivity re-checks the naive CoverTime loop pays,
// without changing a single trajectory (the Workspace reuse contract).
var wsPool = sync.Pool{New: func() any { return engine.NewWorkspace() }}

// coverTrial returns a sim.TrialFunc measuring COBRA cover time from
// vertex 0 on g through a pooled workspace — result-identical to
// core.CoverTime with the same stream.
func coverTrial(g *graph.Graph, cfg core.Config) sim.TrialFunc {
	return func(trial int, rng *xrand.RNG) (float64, error) {
		ws := wsPool.Get().(*engine.Workspace)
		defer wsPool.Put(ws)
		t, err := core.CoverTimeWith(ws, g, cfg, 0, rng)
		return float64(t), err
	}
}

// infectTrial is coverTrial's BIPS counterpart (infection time from
// source 0).
func infectTrial(g *graph.Graph, cfg bips.Config) sim.TrialFunc {
	return func(trial int, rng *xrand.RNG) (float64, error) {
		ws := wsPool.Get().(*engine.Workspace)
		defer wsPool.Put(ws)
		t, err := bips.InfectionTimeWith(ws, g, cfg, 0, rng)
		return float64(t), err
	}
}

// meanCover returns the mean COBRA cover time over trials from vertex 0.
func meanCover(p Params, g *graph.Graph, cfg core.Config, trials int) (float64, error) {
	return p.runner().RunMeans(trials, coverTrial(g, cfg))
}

// generalBound evaluates the Theorem 1.1 shape m + dmax^2 ln n.
func generalBound(g *graph.Graph) float64 { return bounds.General(g) }

// regularBound evaluates the Theorem 1.2 shape (r/gap + r^2) ln n.
// Experiments always call it with gaps in (0, 1], so errors cannot occur;
// fall back to +Inf defensively.
func regularBound(r int, gap float64, n int) float64 {
	v, err := bounds.Regular(n, r, gap)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

// lazyGap returns the lazy-walk eigenvalue gap, the right parameter when
// the process itself is lazy (bipartite families).
func lazyGap(g *graph.Graph) (float64, error) {
	lam, err := spectral.SecondEigenvalueLazy(g, spectral.Options{Tol: 1e-9})
	if err != nil {
		return 0, err
	}
	return 1 - lam, nil
}

// plainGap returns the plain-walk eigenvalue gap 1 − λ.
func plainGap(g *graph.Graph) (float64, error) {
	return spectral.Gap(g, spectral.Options{Tol: 1e-9})
}

// cfgFor returns the b=2 configuration appropriate for g: lazy on
// bipartite graphs (per the remark under Theorem 1.2), plain otherwise.
func cfgFor(g *graph.Graph) core.Config {
	return core.Config{Branch: 2, Lazy: g.IsBipartite()}
}

// fmtRatio renders a ratio with sensible precision.
func fmtRatio(r float64) string { return fmt.Sprintf("%.4f", r) }

// semiLogFit and logLogFit re-export the stats fits with the package's
// short names.
func semiLogFit(xs, ys []float64) (stats.Fit, error) { return stats.SemiLogFit(xs, ys) }
func logLogFit(xs, ys []float64) (stats.Fit, error)  { return stats.LogLogFit(xs, ys) }
