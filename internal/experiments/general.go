package experiments

import (
	"fmt"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// familySpec names a graph family and builds an instance near size n.
type familySpec struct {
	name  string
	build func(n int, rng *xrand.RNG) (*graph.Graph, error)
}

// generalFamilies are the Theorem 1.1 workloads: arbitrary connected
// graphs spanning sparse/dense, low/high dmax, good/terrible expansion.
func generalFamilies() []familySpec {
	return []familySpec{
		{"path", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return graph.Path(n), nil }},
		{"cycle", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return graph.Cycle(n), nil }},
		{"star", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return graph.Star(n), nil }},
		{"bintree", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return graph.BinaryTree(n), nil }},
		{"lollipop", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			return graph.Lollipop(n/3, n-n/3), nil
		}},
		{"barbell", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			k := n * 2 / 5
			return graph.Barbell(k, n-2*k), nil
		}},
		{"rtree", func(n int, rng *xrand.RNG) (*graph.Graph, error) { return graph.RandomTree(n, rng) }},
		{"er", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			p := 2.5 * logf(n) / float64(n)
			return graph.ErdosRenyi(n, p, rng)
		}},
		{"complete", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return graph.Complete(n), nil }},
	}
}

func logf(n int) float64 {
	l := 0.0
	for m := 1; m < n; m *= 2 {
		l++
	}
	return l * 0.6931471805599453
}

// E1GeneralGraphs regenerates the Theorem 1.1 check: for each family and
// size, mean COBRA (b=2, lazy iff bipartite) cover time against the bound
// shape m + dmax^2 ln n. The reproduction claim is that the ratio
// cover/bound stays bounded (no blow-up as n grows), confirming the
// bound's shape; for most families it is far below 1, reflecting that the
// bound is worst-case.
func E1GeneralGraphs(p Params) (*sim.Table, error) {
	sizes := pick(p, []int{64, 128}, []int{128, 256, 512, 1024})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E1: Theorem 1.1 — cover(u) vs m + dmax^2 ln n (b=2)",
		"graph", "n", "m", "dmax", "lazy", "mean-cover", "bound", "ratio")
	tb.Note = "ratio = measured / bound must stay O(1) as n grows (shape check)"
	gen := xrand.New(p.Seed ^ 0xe1)
	for _, fam := range generalFamilies() {
		for _, n := range sizes {
			g, err := fam.build(n, gen)
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", fam.name, n, err)
			}
			cfg := cfgFor(g)
			mean, err := meanCover(p, g, cfg, trials)
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", fam.name, n, err)
			}
			bound := generalBound(g)
			tb.AddRow(fam.name, g.N(), g.M(), g.MaxDegree(), cfg.Lazy,
				fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
		}
	}
	return tb, nil
}

// E5BIPS regenerates the Theorems 1.4/1.5 check: BIPS infection time on
// the same general families (vs the Theorem 1.4 bound) and on regular
// families (vs the Theorem 1.5 bound). The duality predicts infection
// times of the same order as cover times.
func E5BIPS(p Params) (*sim.Table, error) {
	sizes := pick(p, []int{64}, []int{128, 256, 512})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E5: Theorems 1.4/1.5 — BIPS infection time vs bounds (b=2)",
		"graph", "n", "kind", "mean-infect", "bound", "ratio")
	tb.Note = "general families vs m + dmax^2 ln n; regular families vs (r/(1-l)+r^2) ln n"
	gen := xrand.New(p.Seed ^ 0xe5)

	// General families (Theorem 1.4).
	for _, fam := range generalFamilies() {
		for _, n := range sizes {
			g, err := fam.build(n, gen)
			if err != nil {
				return nil, fmt.Errorf("E5 %s: %w", fam.name, err)
			}
			cfg := bips.Config{Branch: 2, Lazy: g.IsBipartite()}
			mean, err := p.runner().RunMeans(trials, infectTrial(g, cfg))
			if err != nil {
				return nil, fmt.Errorf("E5 %s: %w", fam.name, err)
			}
			bound := generalBound(g)
			tb.AddRow(fam.name, g.N(), "general",
				fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
		}
	}

	// Regular families (Theorem 1.5).
	for _, n := range sizes {
		for _, r := range pick(p, []int{3}, []int{3, 4, 8}) {
			nn := n
			if nn*r%2 != 0 {
				nn++
			}
			g, err := graph.RandomRegular(nn, r, gen)
			if err != nil {
				return nil, fmt.Errorf("E5 rreg: %w", err)
			}
			gap, err := plainGap(g)
			if err != nil {
				return nil, err
			}
			mean, err := p.runner().RunMeans(trials, infectTrial(g, bips.Config{Branch: 2}))
			if err != nil {
				return nil, err
			}
			bound := regularBound(r, gap, g.N())
			tb.AddRow(g.Name(), g.N(), "regular",
				fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f", bound), fmtRatio(mean/bound))
		}
	}
	return tb, nil
}
