package experiments

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// E9Growth regenerates Lemma 4.1 (and its fractional analogue Lemma 4.2):
// on an r-regular graph with second eigenvalue λ, one BIPS round from an
// infected set A satisfies
//
//	E(|A_{t+1}| | A_t = A) >= |A| (1 + ρ_eff (1−λ²)(1−|A|/n)).
//
// The experiment runs many BIPS trials, bins round transitions by |A_t|,
// and reports, per size decile, the empirical mean growth divided by the
// bound — which must be >= 1 (up to sampling noise on thin bins).
func E9Growth(p Params) (*sim.Table, error) {
	trials := pick(p, 40, 400)
	tb := sim.NewTable("E9: Lemma 4.1/4.2 — BIPS one-round growth vs |A|(1+rho(1-l^2)(1-|A|/n))",
		"graph", "rho_eff", "decile", "transitions", "mean growth", "bound growth", "ratio")
	tb.Note = "ratio = empirical/bound must be >= 1 (Lemma is a lower bound on E growth)"
	gen := xrand.New(p.Seed ^ 0xe9)

	type spec struct {
		g   *graph.Graph
		cfg bips.Config
		rho float64 // effective branching minus 1
	}
	rr, err := graph.RandomRegular(pick(p, 60, 200), 4, gen)
	if err != nil {
		return nil, err
	}
	specs := []spec{
		{rr, bips.Config{Branch: 2}, 1},
		{graph.Torus(pick(p, 9, 15), pick(p, 9, 15)), bips.Config{Branch: 2}, 1},
		{rr, bips.Config{Branch: 1, Rho: 0.5}, 0.5},
	}

	for si, sp := range specs {
		lam, err := lambdaOf(sp.g)
		if err != nil {
			return nil, err
		}
		n := sp.g.N()
		// Decile bins over |A| in [1, n].
		const bins = 10
		sumGrowth := make([]float64, bins)
		sumBound := make([]float64, bins)
		count := make([]int, bins)
		rng := xrand.NewStream(p.Seed^0xe9a, uint64(si))
		for k := 0; k < trials; k++ {
			proc, err := bips.New(sp.g, sp.cfg, 0, rng)
			if err != nil {
				return nil, err
			}
			for !proc.Complete() && proc.Round() < 64*n {
				a := proc.InfectedCount()
				proc.Step()
				b := proc.InfectedCount()
				bin := (a - 1) * bins / n
				if bin >= bins {
					bin = bins - 1
				}
				sumGrowth[bin] += float64(b)
				sumBound[bin] += float64(a) * (1 + sp.rho*(1-lam*lam)*(1-float64(a)/float64(n)))
				count[bin]++
			}
		}
		for b := 0; b < bins; b++ {
			if count[b] < pick(p, 20, 100) {
				continue // too thin to be meaningful
			}
			growth := sumGrowth[b] / float64(count[b])
			bound := sumBound[b] / float64(count[b])
			tb.AddRow(sp.g.Name(), sp.rho,
				fmt.Sprintf("%d0%%", b+1), count[b],
				fmt.Sprintf("%.2f", growth), fmt.Sprintf("%.2f", bound),
				fmtRatio(growth/bound))
		}
	}
	return tb, nil
}

func lambdaOf(g *graph.Graph) (float64, error) {
	gap, err := plainGap(g)
	if err != nil {
		return 0, err
	}
	return 1 - gap, nil
}

// E10Martingale regenerates equation (18) and its Section 6 analogue: in
// the serialised BIPS process every step's conditional expectation
// E(Y_l | Y_1..Y_{l-1}) is at least 1/2 (b = 2), respectively ρ/2
// (b = 1+ρ). The experiment serialises full runs and reports the minimum
// ExpectedY over all non-source steps, the overall empirical mean of Y,
// and the number of steps checked.
func E10Martingale(p Params) (*sim.Table, error) {
	trials := pick(p, 10, 60)
	tb := sim.NewTable("E10: eq. (18) — serialised BIPS steps, E(Y_l|past) >= floor",
		"graph", "variant", "floor", "steps", "min E(Y)", "mean Y", "violations")
	tb.Note = "min E(Y) over every non-source step must be >= floor (1/2 for b=2, rho/2 for 1+rho)"
	gen := xrand.New(p.Seed ^ 0x10)

	rr, err := graph.RandomRegular(pick(p, 40, 120), 3, gen)
	if err != nil {
		return nil, err
	}
	er, err := graph.ErdosRenyi(pick(p, 40, 120), 0.12, gen)
	if err != nil {
		return nil, err
	}
	type spec struct {
		g       *graph.Graph
		cfg     bips.Config
		variant string
	}
	specs := []spec{
		{graph.Complete(pick(p, 24, 64)), bips.Config{Branch: 2}, "b=2"},
		{graph.Lollipop(pick(p, 8, 16), pick(p, 8, 16)), bips.Config{Branch: 2}, "b=2"},
		{rr, bips.Config{Branch: 2}, "b=2"},
		{er, bips.Config{Branch: 2}, "b=2"},
		{rr, bips.Config{Branch: 1, Rho: 0.5}, "b=1.5"},
		{rr, bips.Config{Branch: 1, Rho: 0.25}, "b=1.25"},
	}
	for si, sp := range specs {
		rng := xrand.NewStream(p.Seed^0x10a, uint64(si))
		floor := sp.cfg.MartingaleFloor()
		minE := math.Inf(1)
		var sumY float64
		steps, violations := 0, 0
		for k := 0; k < trials; k++ {
			proc, err := bips.New(sp.g, sp.cfg, 0, rng)
			if err != nil {
				return nil, err
			}
			for !proc.Complete() && proc.Round() < 64*sp.g.N() {
				recs, err := proc.SerialRound()
				if err != nil {
					return nil, err
				}
				for _, st := range recs {
					if st.IsSource {
						continue
					}
					steps++
					sumY += float64(st.Y)
					if st.ExpectedY < minE {
						minE = st.ExpectedY
					}
					if st.ExpectedY < floor-1e-12 {
						violations++
					}
				}
			}
		}
		tb.AddRow(sp.g.Name(), sp.variant, floor, steps,
			fmt.Sprintf("%.4f", minE), fmt.Sprintf("%.4f", sumY/float64(steps)), violations)
	}
	return tb, nil
}

// E11Candidates regenerates Corollary 5.2: on an n-vertex r-regular graph,
// whenever |A_{t−1}| <= n/2 the candidate set of the next round satisfies
// |C_t| >= |A_{t−1}|(1−λ)/2 — a deterministic consequence of Lemma 4.1.
// The experiment traces BIPS runs and reports the minimum observed ratio
// |C_t| / (|A_{t−1}|(1−λ)/2), which must be >= 1.
func E11Candidates(p Params) (*sim.Table, error) {
	trials := pick(p, 20, 150)
	tb := sim.NewTable("E11: Corollary 5.2 — |C_t| >= |A_{t-1}|(1-l)/2 while |A| <= n/2",
		"graph", "gap", "rounds checked", "min ratio", "mean ratio")
	tb.Note = "ratio = |C_t| / (|A|(1-l)/2); the corollary asserts min ratio >= 1"
	gen := xrand.New(p.Seed ^ 0x11)

	rr3, err := graph.RandomRegular(pick(p, 60, 250), 3, gen)
	if err != nil {
		return nil, err
	}
	rr8, err := graph.RandomRegular(pick(p, 64, 256), 8, gen)
	if err != nil {
		return nil, err
	}
	graphs := []*graph.Graph{
		rr3, rr8,
		graph.Torus(pick(p, 9, 15), pick(p, 9, 15)),
		graph.DoubleCycle(pick(p, 40, 120)),
	}
	for gi, g := range graphs {
		gap, err := plainGap(g)
		if err != nil {
			return nil, err
		}
		rng := xrand.NewStream(p.Seed^0x11a, uint64(gi))
		minRatio := math.Inf(1)
		var sumRatio float64
		checked := 0
		for k := 0; k < trials; k++ {
			proc, err := bips.New(g, bips.Config{Branch: 2}, 0, rng)
			if err != nil {
				return nil, err
			}
			for !proc.Complete() && proc.Round() < 64*g.N() {
				a := proc.InfectedCount()
				if a <= g.N()/2 {
					c := proc.CandidateCount()
					bound := float64(a) * gap / 2
					if bound > 0 {
						r := float64(c) / bound
						if r < minRatio {
							minRatio = r
						}
						sumRatio += r
						checked++
					}
				}
				proc.Step()
			}
		}
		tb.AddRow(g.Name(), fmt.Sprintf("%.4f", gap), checked,
			fmt.Sprintf("%.2f", minRatio), fmt.Sprintf("%.2f", sumRatio/float64(checked)))
	}
	return tb, nil
}
