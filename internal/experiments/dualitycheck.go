package experiments

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/duality"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// E4Duality regenerates Theorem 1.3. Two checks per (graph, variant, T):
//
//  1. Pathwise: sample N shared selection tables, replay COBRA forward
//     and BIPS backward on each, and count agreements of the exact
//     equivalence "target hit within T" ⇔ "C ∩ A_T ≠ ∅". Theorem 1.3's
//     proof predicts N/N agreement.
//  2. Monte-Carlo: estimate both sides of the probability identity with
//     independent samples and report the difference in units of the
//     pooled standard error (|z| should look like a standard normal).
func E4Duality(p Params) (*sim.Table, error) {
	pathTrials := pick(p, 200, 3000)
	mcTrials := pick(p, 1500, 20000)
	tb := sim.NewTable("E4: Theorem 1.3 — duality P(Hit(v)>T | C) = P(C cap A_T = 0 | v)",
		"graph", "variant", "T", "pathwise-agree", "P-cobra", "P-bips", "|z|")
	tb.Note = "pathwise-agree must be N/N (exact theorem); |z| ~ N(0,1) for independent estimates"

	type caseSpec struct {
		g       *graph.Graph
		cfg     duality.Config
		variant string
		T       int
		starts  []int
		target  int
	}
	var cases []caseSpec
	graphs := []*graph.Graph{
		graph.Cycle(10), graph.Complete(12), graph.Petersen(), graph.Grid(4, 4),
	}
	variants := []struct {
		name string
		cfg  duality.Config
	}{
		{"b=2", duality.Config{Branch: 2}},
		{"b=1.5", duality.Config{Branch: 1, Rho: 0.5}},
		{"b=2 lazy", duality.Config{Branch: 2, Lazy: true}},
	}
	for _, g := range graphs {
		for _, v := range variants {
			for _, T := range pick(p, []int{3}, []int{2, 4, 8}) {
				cases = append(cases, caseSpec{
					g: g, cfg: v.cfg, variant: v.name, T: T,
					starts: []int{0}, target: g.N() / 2,
				})
			}
		}
	}

	for i, cs := range cases {
		// Pathwise agreement.
		rng := xrand.NewStream(p.Seed^0xe4, uint64(i))
		agree := 0
		for k := 0; k < pathTrials; k++ {
			hit, meet, err := duality.CheckPathwise(cs.g, cs.cfg, cs.starts, cs.target, cs.T, rng)
			if err != nil {
				return nil, fmt.Errorf("E4 %s: %w", cs.g.Name(), err)
			}
			if hit == meet {
				agree++
			}
		}
		// Independent two-sided Monte Carlo.
		p1, err := duality.HitProbability(cs.g, cs.cfg, cs.starts, cs.target, cs.T, mcTrials,
			xrand.NewStream(p.Seed^0xe4a, uint64(i)))
		if err != nil {
			return nil, err
		}
		p2, err := duality.EscapeProbability(cs.g, cs.cfg, cs.target, cs.starts, cs.T, mcTrials,
			xrand.NewStream(p.Seed^0xe4b, uint64(i)))
		if err != nil {
			return nil, err
		}
		se := math.Sqrt((p1*(1-p1) + p2*(1-p2)) / float64(mcTrials))
		z := 0.0
		if se > 0 {
			z = math.Abs(p1-p2) / se
		}
		tb.AddRow(cs.g.Name(), cs.variant, cs.T,
			fmt.Sprintf("%d/%d", agree, pathTrials),
			fmt.Sprintf("%.4f", p1), fmt.Sprintf("%.4f", p2), fmt.Sprintf("%.2f", z))
	}
	return tb, nil
}
