package experiments

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/xrand"
)

// E13Conjecture probes the conclusions section's open problem: "there are
// no known examples of the cover time ω(n log n); it has actually been
// conjectured the worst-case cover time for any graph is O(n log n)."
//
// The experiment sweeps the E1 families plus adversarial shapes built to
// stress dead-end traversal (spiders = stars of paths, thin barbells),
// normalises each measured cover time by n·ln n, and reports the
// trend across the n-sweep. The conjecture predicts every family's
// normalised value stays bounded (no growth with n); the worst family
// identifies where the conjectured extremal graphs live (paths/cycles).
func E13Conjecture(p Params) (*sim.Table, error) {
	sizes := pick(p, []int{64, 128}, []int{128, 256, 512, 1024})
	trials := pick(p, 5, 25)
	tb := sim.NewTable("E13: conclusions — scan for cover/(n ln n) growth (conjecture: bounded)",
		"graph", "n", "mean-cover", "n ln n", "cover/(n ln n)")
	tb.Note = "conjecture (paper conclusions): worst-case cover is O(n log n); column 5 must not grow"
	gen := xrand.New(p.Seed ^ 0x13)

	families := append(generalFamilies(),
		familySpec{"spider", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			legs := int(math.Sqrt(float64(n)))
			legLen := (n - 1) / legs
			return graph.Spider(legs, legLen), nil
		}},
		familySpec{"thin-barbell", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			k := int(math.Sqrt(float64(n)))
			if k < 2 {
				k = 2
			}
			return graph.Barbell(k, n-2*k), nil
		}},
	)

	worst := 0.0
	worstAt := ""
	for _, fam := range families {
		for _, n := range sizes {
			g, err := fam.build(n, gen)
			if err != nil {
				return nil, fmt.Errorf("E13 %s n=%d: %w", fam.name, n, err)
			}
			cfg := cfgFor(g)
			mean, err := meanCover(p, g, cfg, trials)
			if err != nil {
				return nil, fmt.Errorf("E13 %s n=%d: %w", fam.name, n, err)
			}
			norm := float64(g.N()) * math.Log(float64(g.N()))
			ratio := mean / norm
			if ratio > worst {
				worst, worstAt = ratio, fmt.Sprintf("%s n=%d", fam.name, g.N())
			}
			tb.AddRow(fam.name, g.N(), fmt.Sprintf("%.1f", mean),
				fmt.Sprintf("%.0f", norm), fmtRatio(ratio))
		}
	}
	tb.Note += fmt.Sprintf("; worst observed: %.4f at %s", worst, worstAt)
	return tb, nil
}
