// Package fleet shards cobrad sweeps across a coordinator/worker fleet
// with zero change to results.
//
// Campaign determinism makes every sweep cell a pure, idempotent,
// resumable unit of work: cell c of a sweep is exactly the standalone
// campaign of its Spec, trial k of that campaign is a pure function of
// (spec, k), and the NDJSON encoding of each result is canonical
// json.Marshal output. The fleet layer exploits that — it changes WHERE
// cells compute, never WHAT they produce, so the coordinator's merged
// result stream, aggregates, journal, SSE events, and /metrics are
// byte-for-byte identical to a single-process run no matter how many
// workers participate, which of them die, or how many times a cell is
// re-leased (the fleet conformance suite pins this for 1 worker, 3
// workers, a worker killed mid-cell, and forced lease expiry).
//
// # Roles
//
// A Coordinator plugs into the cobrad server as its batch.CellRunner:
// when the cell scheduler admits a cell, RunCell registers it as open
// and blocks until workers finish it. Workers hold no server state —
// each is a pull loop (see Worker) that leases one cell at a time over
// HTTP, computes it through the ordinary batch.Campaign path, and
// streams result batches back piggybacked on heartbeat renewals.
//
// # Lease protocol
//
// Three POST endpoints, JSON bodies both ways (see docs/api.md for the
// full wire reference):
//
//	/v1/leases/acquire   {"worker":W} → 200 grant{lease,job,cell,spec,from,ttl_ms}
//	                     or 204 when no cell is open — workers poll.
//	/v1/leases/renew     {"lease","worker","results":[...]} → 200 {next,ttl_ms}
//	                     heartbeat + result upload in one call.
//	/v1/leases/complete  same body, final tail → 200 {next,done:true}.
//
// A grant leases the cell's uncomputed tail [from, trials): from > 0
// after a partial predecessor, so a migrated cell recomputes only what
// the coordinator has not yet accepted — the same RunFrom tail-replay
// contract the journal resume path uses. Batches are applied
// in-order-or-idempotently: results below the coordinator's next
// expected trial are duplicates and skipped, the result at next is
// accepted, and a gap is rejected with 409 {"next":n} telling the
// worker where to resend from. A worker therefore retains its cell's
// results until complete is acknowledged and can replay them after any
// lost response. 410 Gone means the lease no longer exists (expired or
// the cell was withdrawn); the worker abandons the cell and acquires a
// fresh lease — by determinism the retry's bytes are identical, so an
// expiry costs wall-clock time, never correctness.
//
// # Liveness and clocks
//
// Leases carry a TTL measured exclusively on the coordinator's clock:
// a renewal resets expiry to coordinator-now + TTL, and the expiry
// scanner retires leases whose holders missed it. Worker clocks are
// never consulted, so arbitrary clock skew on a worker cannot hold a
// lease hostage or corrupt the stream — a skew-stalled worker's lease
// simply expires and its in-flight results are rejected with 410 (the
// adversarial clock-skew test pins this). Because batches ride on
// renewals, any worker healthy enough to upload results is healthy
// enough to stay leased.
//
// # Durability
//
// With a store attached, every lease transition is journaled to the
// lease log (store.LeaseLog) — grants and retirements fsynced, renewals
// buffered — and replayed on coordinator restart: live leases survive,
// their workers keep renewing and reattach when the recovered sweep
// re-offers their cells, and the fold's one-lease-per-cell invariant
// (fuzzed in FuzzLeaseRecover) guarantees a restart can never
// double-grant a cell that a live worker still holds.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"github.com/repro/cobra/internal/batch"
)

// specHash is the canonical fingerprint of a cell's spec: sha256 over
// its json.Marshal encoding (deterministic for a struct — fixed field
// order, no maps). A grant carries it, the worker echoes it on every
// renew/complete, and the coordinator refuses reattaches and batch
// applies whose hash does not match the open cell's — so a lease
// restored from the log can never feed results computed from one spec
// into a same-keyed cell running another (e.g. after a job-id
// collision across store generations).
func specHash(spec batch.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// batch.Spec is plain data; Marshal cannot fail on it.
		panic("fleet: spec encode: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Protocol wire types. Field names are the wire contract documented in
// docs/api.md; both sides of the protocol live in this package, so the
// structs are shared rather than duplicated.

// acquireRequest is the body of POST /v1/leases/acquire and
// /v1/fleet/register.
type acquireRequest struct {
	Worker string `json:"worker"`
}

// leaseGrant is the 200 body of a successful acquire.
type leaseGrant struct {
	Lease string     `json:"lease"`
	Job   string     `json:"job"`
	Cell  int        `json:"cell"`
	Spec  batch.Spec `json:"spec"`
	// From is the first trial the lease must compute: the cell's trials
	// [From, Spec.Trials). Non-zero when a predecessor lease delivered a
	// partial prefix before dying.
	From int `json:"from"`
	// SpecHash is the canonical hash of Spec (see specHash). The worker
	// echoes it on every renew/complete so the coordinator can prove the
	// results it is accepting were computed from this cell's spec.
	SpecHash string `json:"spec_hash"`
	TTLMilli int64  `json:"ttl_ms"`
}

// batchRequest is the body of renew and complete: a heartbeat carrying
// zero or more results in trial order. Error (complete only) reports a
// worker-side cell failure, failing the cell — and thus the sweep — the
// way a local compute error would.
type batchRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	// SpecHash echoes the grant's spec hash. When present it must match
	// the open cell's hash or the batch is rejected with 410 — empty is
	// tolerated for wire compatibility with pre-hash workers.
	SpecHash string              `json:"spec_hash,omitempty"`
	Results  []batch.TrialResult `json:"results,omitempty"`
	Error    string              `json:"error,omitempty"`
}

// batchResponse answers renew (200), complete (200, Done true), and the
// out-of-order rejection (409). Next is the coordinator's next expected
// trial index — the worker's resend point; -1 means not yet known (the
// lease survived a coordinator restart and its cell has not been
// re-offered, so the worker should hold its results and retry).
type batchResponse struct {
	Next     int   `json:"next"`
	TTLMilli int64 `json:"ttl_ms"`
	Done     bool  `json:"done,omitempty"`
}

// registerResponse answers /v1/fleet/register with the protocol timing
// parameters the worker should run with.
type registerResponse struct {
	TTLMilli  int64 `json:"ttl_ms"`
	PollMilli int64 `json:"poll_ms"`
}

// errorResponse is the JSON error body, matching the cobrad server's
// {"error": ...} convention. The lease-specific state is "expired",
// carried with status 410 Gone.
type errorResponse struct {
	Error string `json:"error"`
}

// defaultTTL is the lease TTL when CoordinatorConfig leaves it unset.
const defaultTTL = 10 * time.Second

// defaultPoll is the acquire poll interval suggested to workers.
const defaultPoll = 250 * time.Millisecond
