package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/obs"
	"github.com/repro/cobra/internal/store"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// TTL is the lease heartbeat TTL: a lease not renewed within TTL (on
	// the coordinator's clock) is expired and its cell re-leased.
	// Default 10s.
	TTL time.Duration
	// Store, when non-nil, persists the lease table to the store's lease
	// log: every grant/retirement is journaled and replayed on restart,
	// so live leases survive a coordinator crash. nil keeps the lease
	// table in memory only.
	Store *store.Store
	// Logger receives lease lifecycle records. nil uses slog.Default().
	Logger *slog.Logger
	// Registry, when non-nil, registers the cobrad_fleet_* metric
	// families (per-worker counters plus coordinator roll-ups). Pass the
	// batch server's Registry() so they share its /metrics exposition.
	Registry *obs.Registry
}

// cellKey identifies one sweep cell across the fleet.
type cellKey struct {
	job  string
	cell int
}

func (k cellKey) String() string { return fmt.Sprintf("%s/%d", k.job, k.cell) }

// lease is one live lease. Fields are guarded by the coordinator mutex.
type lease struct {
	id       string
	key      cellKey
	worker   string
	from     int    // first trial this lease computes (for the log/status)
	specHash string // canonical hash of the leased cell's spec
	expires  time.Time
}

// openCell is a cell the scheduler has admitted and RunCell is blocked
// on. next is the only progress authority: results below it are
// duplicates, the result at it is accepted, above it is a gap.
type openCell struct {
	key      cellKey
	spec     batch.Spec
	specHash string // canonical hash of spec, computed once at RunCell
	next     int
	trials   int
	deliver  func(batch.TrialResult)
	done     chan error // buffered(1); receives the cell's fate exactly once
	lease    *lease     // nil while unleased (acquirable)
}

// Coordinator is the fleet's lease authority and the cobrad server's
// batch.CellRunner. It is an http.Handler serving the lease protocol
// plus the /v1/fleet status endpoint.
type Coordinator struct {
	ttl    time.Duration
	log    *store.LeaseLog
	logger *slog.Logger
	met    *fleetMetrics

	mu         sync.Mutex
	now        func() time.Time
	cells      map[cellKey]*openCell
	order      []cellKey // FIFO of admitted cells; lazily compacted
	leases     map[string]*lease
	leaseByKey map[cellKey]*lease
	workers    map[string]time.Time // worker id -> last contact
	nextLease  uint64
	closed     bool
	stopping   bool // BeginShutdown called: withdrawals preserve leases

	stop chan struct{}
	tick *time.Ticker
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator, replaying the store's lease log
// (when a store is attached) so leases granted before a restart and
// still within TTL stay live — their workers keep renewing and reattach
// when the recovered sweep re-offers their cells.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = defaultTTL
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	c := &Coordinator{
		ttl:        ttl,
		logger:     logger,
		now:        time.Now,
		cells:      make(map[cellKey]*openCell),
		leases:     make(map[string]*lease),
		leaseByKey: make(map[cellKey]*lease),
		workers:    make(map[string]time.Time),
		stop:       make(chan struct{}),
	}
	if cfg.Store != nil {
		llog, events, err := cfg.Store.OpenLeaseLog()
		if err != nil {
			return nil, err
		}
		c.log = llog
		for _, ev := range store.LiveLeases(events, c.now()) {
			l := &lease{id: ev.Lease, key: cellKey{ev.Job, ev.Cell}, worker: ev.Worker, from: ev.From, specHash: ev.SpecHash, expires: ev.Expires}
			if _, dup := c.leases[l.id]; dup {
				continue // corrupted log reused an id; keep the first fold
			}
			c.leases[l.id] = l
			c.leaseByKey[l.key] = l
			if n := leaseSeq(l.id); n >= c.nextLease {
				c.nextLease = n
			}
			logger.Info("fleet lease restored", "lease", l.id, "job", l.key.job, "cell", l.key.cell, "worker", l.worker)
		}
	}
	c.met = newFleetMetrics(cfg.Registry, c)
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	c.tick = time.NewTicker(interval)
	c.wg.Add(1)
	go c.expiryLoop()
	return c, nil
}

// leaseSeq recovers the numeric suffix of a lease id so restarted
// coordinators keep allocating fresh ids; 0 for foreign ids.
func leaseSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "l%d", &n); err != nil {
		return 0
	}
	return n
}

// RegisterMetrics registers the cobrad_fleet_* families into reg, for
// wirings where the registry only exists after the coordinator does
// (cmd/cobrad builds the coordinator first so a recovering server
// re-offers cells straight into the restored lease table, then attaches
// the server's registry). No-op when nil or already registered.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.met == nil && reg != nil {
		c.met = newFleetMetrics(reg, c)
	}
}

// setClock overrides the lease clock (tests only). The expiry ticker
// keeps its real-time cadence but evaluates the injected clock.
func (c *Coordinator) setClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// BeginShutdown marks the coordinator as shutting down: cells withdrawn
// from now on (the batch server's Close cancelling their run contexts)
// keep their leases instead of releasing them, so the journaled lease
// table still holds the live set and a restarted coordinator restores
// it — workers renew across the restart and reattach when the recovered
// sweep re-offers their cells. Call before the batch server's Close;
// Close the coordinator after.
func (c *Coordinator) BeginShutdown() {
	c.mu.Lock()
	c.stopping = true
	c.mu.Unlock()
}

// Close stops the expiry scanner and closes the lease log. Open cells
// are the batch server's to cancel (Server.Close cancels their run
// contexts, which releases them through RunCell).
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.tick.Stop()
	c.wg.Wait()
	if c.log != nil {
		if err := c.log.Close(); err != nil {
			c.logger.Error("fleet lease log close", "err", err)
		}
	}
}

// RunCell implements batch.CellRunner: it opens the cell for leasing
// and blocks until workers complete it (nil), a worker reports a cell
// failure (error), or ctx is cancelled (cell withdrawn, lease
// released). Trials are delivered to deliver in order as batches
// arrive, under the coordinator lock — one goroutine at a time, as the
// scheduler requires.
func (c *Coordinator) RunCell(ctx context.Context, jobID string, cell int, spec batch.Spec, from int, deliver func(batch.TrialResult)) error {
	key := cellKey{jobID, cell}
	oc := &openCell{
		key:      key,
		spec:     spec,
		specHash: specHash(spec),
		next:     from,
		trials:   spec.Trials,
		deliver:  deliver,
		done:     make(chan error, 1),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fleet: coordinator closed")
	}
	if _, dup := c.cells[key]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fleet: cell %s already open", key)
	}
	c.cells[key] = oc
	c.order = append(c.order, key)
	if l := c.leaseByKey[key]; l != nil {
		// A lease restored from the log: its worker kept renewing across
		// our restart and now reattaches to the re-offered cell — but only
		// if the re-offered spec is the one it was granted. A hash mismatch
		// means the cell key was reused for different work (a job-id
		// collision across store generations, or a tampered journal); the
		// stale lease is retired so its holder's next contact gets 410 and
		// the cell opens for a fresh grant of the real spec.
		if l.specHash != "" && l.specHash != oc.specHash {
			c.logger.Warn("fleet lease rejected on reattach: spec hash mismatch",
				"lease", l.id, "job", jobID, "cell", cell, "worker", l.worker)
			c.dropLeaseLocked(l, store.LeaseRelease)
		} else {
			oc.lease = l
			c.logger.Info("fleet lease reattached", "lease", l.id, "job", jobID, "cell", cell, "worker", l.worker)
		}
	}
	c.mu.Unlock()

	select {
	case err := <-oc.done:
		return err
	case <-ctx.Done():
		c.mu.Lock()
		c.withdrawLocked(oc)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// withdrawLocked removes a cell when its run context is cancelled. On a
// preempt or abort the lease is released — its worker's next contact
// gets 410 and stops wasting compute on a dead cell. During shutdown
// (BeginShutdown) the lease survives: the cell will be re-offered by
// the restarted, journal-recovered server, and the lease table must
// still name its live holder.
func (c *Coordinator) withdrawLocked(oc *openCell) {
	delete(c.cells, oc.key)
	l := oc.lease
	if l == nil {
		return
	}
	oc.lease = nil
	if c.stopping {
		return
	}
	c.dropLeaseLocked(l, store.LeaseRelease)
}

// dropLeaseLocked retires a lease from the table and journals why.
func (c *Coordinator) dropLeaseLocked(l *lease, event string) {
	delete(c.leases, l.id)
	if c.leaseByKey[l.key] == l {
		delete(c.leaseByKey, l.key)
	}
	c.appendLog(store.LeaseEvent{Event: event, Lease: l.id, Job: l.key.job, Cell: l.key.cell, Worker: l.worker, From: l.from}, true)
}

// appendLog journals one lease event (no-op without a store). Errors
// are logged, not fatal: the in-memory table stays authoritative for
// this process's lifetime, and a sticky log error only degrades what a
// *restart* can recover.
func (c *Coordinator) appendLog(ev store.LeaseEvent, commit bool) {
	if c.log == nil {
		return
	}
	if err := c.log.Append(ev, commit); err != nil {
		c.logger.Error("fleet lease log append", "event", ev.Event, "lease", ev.Lease, "err", err)
	}
}

// expiryLoop retires leases whose holders missed their TTL, re-opening
// their cells for acquisition at the already-accepted prefix boundary.
// Expiry is decided solely here, on the coordinator's clock: a renewal
// that arrives before the scan observes the deadline revives the lease
// (the worker proved liveness); one that arrives after gets 410.
func (c *Coordinator) expiryLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.tick.C:
		}
		c.mu.Lock()
		now := c.now()
		for _, l := range c.leases {
			if !now.After(l.expires) {
				continue
			}
			if oc := c.cells[l.key]; oc != nil && oc.lease == l {
				oc.lease = nil // cell re-opens at oc.next
				c.logger.Warn("fleet lease expired", "lease", l.id, "job", l.key.job, "cell", l.key.cell, "worker", l.worker, "next", oc.next)
			} else {
				c.logger.Warn("fleet lease expired", "lease", l.id, "job", l.key.job, "cell", l.key.cell, "worker", l.worker)
			}
			c.dropLeaseLocked(l, store.LeaseExpire)
			c.met.expired(l.worker)
		}
		c.mu.Unlock()
	}
}

// ServeHTTP routes the lease protocol and fleet status endpoints.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/leases/acquire":
		c.post(w, r, c.handleAcquire)
	case "/v1/leases/renew":
		c.post(w, r, func(w http.ResponseWriter, r *http.Request) { c.handleBatch(w, r, false) })
	case "/v1/leases/complete":
		c.post(w, r, func(w http.ResponseWriter, r *http.Request) { c.handleBatch(w, r, true) })
	case "/v1/fleet/register":
		c.post(w, r, c.handleRegister)
	case "/v1/fleet", "/v1/fleet/":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		c.handleStatus(w)
	default:
		httpError(w, http.StatusNotFound, "not found")
	}
}

func (c *Coordinator) post(w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	h(w, r)
}

// maxBody bounds lease request bodies; at ~100 bytes per encoded trial
// result this admits batches tens of thousands of trials deep.
const maxBody = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// validWorker bounds worker ids: they become metric label values and
// log fields, so keep them short and tame.
func validWorker(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !validWorker(req.Worker) {
		httpError(w, http.StatusBadRequest, "invalid worker id")
		return
	}
	c.mu.Lock()
	_, known := c.workers[req.Worker]
	c.workers[req.Worker] = c.now()
	c.mu.Unlock()
	if !known {
		c.logger.Info("fleet worker registered", "worker", req.Worker)
	}
	writeJSON(w, http.StatusOK, registerResponse{TTLMilli: c.ttl.Milliseconds(), PollMilli: defaultPoll.Milliseconds()})
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !validWorker(req.Worker) {
		httpError(w, http.StatusBadRequest, "invalid worker id")
		return
	}
	c.mu.Lock()
	now := c.now()
	c.workers[req.Worker] = now

	// First open, unleased cell in admission order; compact the FIFO of
	// keys whose cells have since closed.
	var grant *openCell
	kept := c.order[:0]
	for _, key := range c.order {
		oc := c.cells[key]
		if oc == nil {
			continue
		}
		kept = append(kept, key)
		if grant == nil && oc.lease == nil {
			grant = oc
		}
	}
	c.order = kept
	if grant == nil {
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.nextLease++
	l := &lease{
		id:       fmt.Sprintf("l%06d", c.nextLease),
		key:      grant.key,
		worker:   req.Worker,
		from:     grant.next,
		specHash: grant.specHash,
		expires:  now.Add(c.ttl),
	}
	grant.lease = l
	c.leases[l.id] = l
	c.leaseByKey[l.key] = l
	c.appendLog(store.LeaseEvent{Event: store.LeaseGrant, Lease: l.id, Job: l.key.job, Cell: l.key.cell, Worker: l.worker, From: l.from, SpecHash: l.specHash, Expires: l.expires}, true)
	c.met.granted(req.Worker)
	resp := leaseGrant{Lease: l.id, Job: grant.key.job, Cell: grant.key.cell, Spec: grant.spec, From: grant.next, SpecHash: grant.specHash, TTLMilli: c.ttl.Milliseconds()}
	c.mu.Unlock()
	c.logger.Info("fleet lease granted", "lease", resp.Lease, "job", resp.Job, "cell", resp.Cell, "worker", req.Worker, "from", resp.From)
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves renew (complete=false) and complete (complete=true):
// extend the lease, apply the carried results in order, and on complete
// settle the cell's fate.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request, completing bool) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	now := c.now()
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	l := c.leases[req.Lease]
	if l == nil {
		c.mu.Unlock()
		httpError(w, http.StatusGone, "expired")
		return
	}
	l.expires = now.Add(c.ttl)
	oc := c.cells[l.key]
	if oc == nil {
		// Restored lease whose cell the recovering server has not
		// re-offered yet: stay live, tell the worker to hold its results.
		c.appendLog(store.LeaseEvent{Event: store.LeaseRenew, Lease: l.id, Job: l.key.job, Cell: l.key.cell, Worker: l.worker, Expires: l.expires}, false)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, batchResponse{Next: -1, TTLMilli: c.ttl.Milliseconds()})
		return
	}
	if oc.lease != l {
		// Superseded: another lease owns the cell now; this holder is a
		// zombie and must abandon.
		c.dropLeaseLocked(l, store.LeaseRelease)
		c.mu.Unlock()
		httpError(w, http.StatusGone, "expired")
		return
	}
	if req.SpecHash != "" && req.SpecHash != oc.specHash {
		// The holder is computing a different spec than the open cell —
		// its results must never enter this stream. Retire the lease and
		// re-open the cell for a grant of the real spec.
		oc.lease = nil
		c.dropLeaseLocked(l, store.LeaseRelease)
		c.mu.Unlock()
		c.logger.Warn("fleet batch rejected: spec hash mismatch",
			"lease", req.Lease, "job", oc.key.job, "cell", oc.key.cell, "worker", req.Worker)
		httpError(w, http.StatusGone, "spec mismatch")
		return
	}
	if completing && req.Error != "" {
		err := fmt.Errorf("fleet: worker %s: %s", req.Worker, req.Error)
		oc.done <- err
		delete(c.cells, oc.key)
		oc.lease = nil
		c.dropLeaseLocked(l, store.LeaseComplete)
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, batchResponse{Next: -1, Done: true})
		return
	}
	// Apply the batch in order, idempotently: duplicates below next are
	// the worker replaying after a lost response; a gap means it resent
	// from too far ahead — 409 tells it where to restart.
	for _, res := range req.Results {
		switch {
		case res.Trial < oc.next:
			continue
		case res.Trial == oc.next:
			if res.Trial >= oc.trials {
				c.mu.Unlock()
				httpError(w, http.StatusBadRequest, fmt.Sprintf("trial %d outside cell of %d trials", res.Trial, oc.trials))
				return
			}
			oc.deliver(res)
			oc.next++
			c.met.received(l.worker)
		default:
			next := oc.next
			c.mu.Unlock()
			writeJSON(w, http.StatusConflict, batchResponse{Next: next, TTLMilli: c.ttl.Milliseconds()})
			return
		}
	}
	if completing {
		if oc.next != oc.trials {
			next := oc.next
			c.mu.Unlock()
			writeJSON(w, http.StatusConflict, batchResponse{Next: next, TTLMilli: c.ttl.Milliseconds()})
			return
		}
		oc.done <- nil
		delete(c.cells, oc.key)
		oc.lease = nil
		c.dropLeaseLocked(l, store.LeaseComplete)
		c.met.completed(req.Worker)
		c.mu.Unlock()
		c.logger.Info("fleet cell completed", "lease", req.Lease, "job", oc.key.job, "cell", oc.key.cell, "worker", req.Worker)
		writeJSON(w, http.StatusOK, batchResponse{Next: oc.trials, Done: true})
		return
	}
	c.appendLog(store.LeaseEvent{Event: store.LeaseRenew, Lease: l.id, Job: l.key.job, Cell: l.key.cell, Worker: l.worker, Expires: l.expires}, false)
	c.met.renewed(l.worker)
	next := oc.next
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, batchResponse{Next: next, TTLMilli: c.ttl.Milliseconds()})
}

// Fleet status (GET /v1/fleet) payloads.
type workerStatus struct {
	ID       string    `json:"id"`
	LastSeen time.Time `json:"last_seen"`
	Leases   int       `json:"leases"`
}

type leaseStatus struct {
	Lease   string    `json:"lease"`
	Job     string    `json:"job"`
	Cell    int       `json:"cell"`
	Worker  string    `json:"worker"`
	Next    int       `json:"next"`
	Expires time.Time `json:"expires"`
}

type fleetStatus struct {
	Workers   []workerStatus `json:"workers"`
	OpenCells int            `json:"open_cells"`
	Leases    []leaseStatus  `json:"leases"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter) {
	c.mu.Lock()
	st := fleetStatus{OpenCells: len(c.cells)}
	perWorker := make(map[string]int)
	for _, l := range c.leases {
		ls := leaseStatus{Lease: l.id, Job: l.key.job, Cell: l.key.cell, Worker: l.worker, Next: -1, Expires: l.expires}
		if oc := c.cells[l.key]; oc != nil {
			ls.Next = oc.next
		}
		st.Leases = append(st.Leases, ls)
		perWorker[l.worker]++
	}
	for id, seen := range c.workers {
		st.Workers = append(st.Workers, workerStatus{ID: id, LastSeen: seen, Leases: perWorker[id]})
	}
	c.mu.Unlock()
	sort.Slice(st.Leases, func(a, b int) bool { return st.Leases[a].Lease < st.Leases[b].Lease })
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	writeJSON(w, http.StatusOK, st)
}

// fleetMetrics is the coordinator's observe-only instrument set: one
// counter family per protocol transition labeled by worker, roll-up
// gauges read live from the lease table, and a fleet-wide received
// counter. A nil receiver (no registry) makes every method a no-op,
// matching the repo's nil-safe instrument convention.
type fleetMetrics struct {
	grants    *obs.CounterVec
	renews    *obs.CounterVec
	expires   *obs.CounterVec
	completes *obs.CounterVec
	results   *obs.CounterVec
	remote    *obs.Counter
}

func newFleetMetrics(reg *obs.Registry, c *Coordinator) *fleetMetrics {
	if reg == nil {
		return nil
	}
	m := &fleetMetrics{
		grants:    reg.CounterVec("cobrad_fleet_leases_granted_total", "Cell leases granted, by worker.", "worker"),
		renews:    reg.CounterVec("cobrad_fleet_lease_renewals_total", "Lease heartbeat renewals accepted, by worker.", "worker"),
		expires:   reg.CounterVec("cobrad_fleet_leases_expired_total", "Leases retired for missing their heartbeat TTL, by worker.", "worker"),
		completes: reg.CounterVec("cobrad_fleet_cells_completed_total", "Sweep cells completed by the fleet, by worker.", "worker"),
		results:   reg.CounterVec("cobrad_fleet_results_received_total", "Remotely computed trial results accepted into the reorder buffer, by worker.", "worker"),
		remote:    reg.Counter("cobrad_fleet_trials_remote_total", "Remotely computed trial results accepted, all workers (coordinator roll-up)."),
	}
	reg.GaugeFunc("cobrad_fleet_workers", "Fleet workers that have ever registered or leased.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.workers))
	})
	reg.GaugeFunc("cobrad_fleet_cells_open", "Sweep cells currently open for lease or under one.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.cells))
	})
	reg.GaugeFunc("cobrad_fleet_leases_active", "Live leases (granted, not yet retired).", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.leases))
	})
	return m
}

func (m *fleetMetrics) granted(worker string) {
	if m != nil {
		m.grants.With(worker).Inc()
	}
}

func (m *fleetMetrics) renewed(worker string) {
	if m != nil {
		m.renews.With(worker).Inc()
	}
}

func (m *fleetMetrics) expired(worker string) {
	if m != nil {
		m.expires.With(worker).Inc()
	}
}

func (m *fleetMetrics) completed(worker string) {
	if m != nil {
		m.completes.With(worker).Inc()
	}
}

func (m *fleetMetrics) received(worker string) {
	if m != nil {
		m.results.With(worker).Inc()
		m.remote.Inc()
	}
}
