package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/cobra/internal/batch"
)

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// ID names this worker in leases, logs, and metric labels.
	ID string
	// Poll is the idle acquire interval; 0 takes the coordinator's
	// suggestion from registration.
	Poll time.Duration
	// Heartbeat is the renew/upload interval; 0 derives TTL/4 from the
	// registered TTL. It must comfortably undercut the TTL: a worker that
	// renews slower than the coordinator's TTL loses its leases (the
	// lease-expiry-retry conformance case — safe, but all wasted work).
	Heartbeat time.Duration
	// CacheSize is the worker's private graph cache capacity (default 8).
	CacheSize int
	// Client is the HTTP client to reach the coordinator with; nil uses
	// a dedicated client with sane timeouts.
	Client *http.Client
	// Logger receives worker lifecycle records. nil uses slog.Default().
	Logger *slog.Logger
}

// Worker is a fleet compute loop: register, then acquire → compute →
// stream → complete, one cell at a time, until stopped. The compute
// path is the ordinary batch.Campaign machinery — a worker produces
// exactly the bytes a local run would, which is what makes the fleet
// transparent to results.
type Worker struct {
	cfg      WorkerConfig
	hc       *http.Client
	cache    *batch.Cache
	logger   *slog.Logger
	draining atomic.Bool
	// cells counts cells this worker completed (test/ops visibility).
	cells atomic.Int64
}

// NewWorker validates cfg and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if !validWorker(cfg.ID) {
		return nil, fmt.Errorf("fleet: invalid worker id %q", cfg.ID)
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = 8
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Worker{cfg: cfg, hc: hc, cache: batch.NewCache(size), logger: logger}, nil
}

// Drain asks the loop to stop acquiring new cells; the current cell (if
// any) is finished and completed first. This is cobrad's first-SIGTERM
// behavior — a drained worker exits without abandoning work.
func (w *Worker) Drain() { w.draining.Store(true) }

// CellsCompleted reports how many cells this worker has completed.
func (w *Worker) CellsCompleted() int64 { return w.cells.Load() }

// Run registers and pulls cells until ctx is cancelled or Drain is
// called. Cancelling ctx is a hard stop: the in-flight cell is
// abandoned mid-compute and its lease left to expire — the crash path
// the re-lease machinery exists for. Run returns nil on drain or
// cancellation; an error only when registration never succeeded.
func (w *Worker) Run(ctx context.Context) error {
	ttl, poll, err := w.register(ctx)
	if err != nil {
		return err
	}
	hb := w.cfg.Heartbeat
	if hb <= 0 {
		hb = ttl / 4
	}
	if hb < 10*time.Millisecond {
		hb = 10 * time.Millisecond
	}
	if w.cfg.Poll > 0 {
		poll = w.cfg.Poll
	}
	w.logger.Info("fleet worker running", "worker", w.cfg.ID, "coordinator", w.cfg.Coordinator, "heartbeat", hb, "poll", poll)
	for {
		if ctx.Err() != nil || w.draining.Load() {
			return nil
		}
		grant, ok, err := w.acquire(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.logger.Warn("fleet acquire failed", "worker", w.cfg.ID, "err", err)
			ok = false
		}
		if !ok {
			if !sleepCtx(ctx, poll) {
				return nil
			}
			continue
		}
		w.runLease(ctx, grant, hb)
	}
}

// register announces the worker and fetches protocol timing, retrying
// until the coordinator answers or ctx ends.
func (w *Worker) register(ctx context.Context) (ttl, poll time.Duration, err error) {
	for attempt := 0; ; attempt++ {
		var resp registerResponse
		status, err := w.post(ctx, "/v1/fleet/register", acquireRequest{Worker: w.cfg.ID}, &resp)
		if err == nil && status == http.StatusOK {
			return time.Duration(resp.TTLMilli) * time.Millisecond, time.Duration(resp.PollMilli) * time.Millisecond, nil
		}
		if err == nil {
			return 0, 0, fmt.Errorf("fleet: register: coordinator answered %d", status)
		}
		if attempt >= 50 {
			return 0, 0, fmt.Errorf("fleet: register: %w", err)
		}
		if !sleepCtx(ctx, 200*time.Millisecond) {
			return 0, 0, ctx.Err()
		}
	}
}

func (w *Worker) acquire(ctx context.Context) (leaseGrant, bool, error) {
	var grant leaseGrant
	status, err := w.post(ctx, "/v1/leases/acquire", acquireRequest{Worker: w.cfg.ID}, &grant)
	if err != nil {
		return grant, false, err
	}
	switch status {
	case http.StatusOK:
		return grant, true, nil
	case http.StatusNoContent:
		return grant, false, nil
	default:
		return grant, false, fmt.Errorf("fleet: acquire: coordinator answered %d", status)
	}
}

// runLease computes one leased cell tail and streams it back. Results
// accumulate in an in-order buffer; every heartbeat uploads the unsent
// suffix, and the coordinator's next-index replies move the sent marker
// (backwards after a 409, so lost responses just replay idempotently).
func (w *Worker) runLease(ctx context.Context, grant leaseGrant, hb time.Duration) {
	campaign, err := batch.Compile(grant.Spec, w.cache)
	if err != nil {
		// The cell itself is bad: report it so the sweep fails the way a
		// local compile error fails it, instead of cycling leases.
		w.finish(ctx, grant, nil, 0, err)
		return
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var buf []batch.TrialResult // cell results [From, …) in trial order
	computed := make(chan error, 1)
	go func() {
		// The returned aggregate is discarded: the coordinator folds its
		// own from the delivered stream, keeping aggregates bit-identical
		// without shipping estimator state over the wire.
		_, err := campaign.RunFrom(cctx, grant.From, nil, func(r batch.TrialResult) {
			mu.Lock()
			buf = append(buf, r)
			mu.Unlock()
		})
		computed <- err
	}()

	sent := 0 // index into buf of the first unsent result
	// clamp bounds a coordinator-reported position to [0, len(buf)] —
	// len(buf) must be read under mu while the compute goroutine runs.
	clamp := func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		if n < 0 {
			return 0
		}
		if n > len(buf) {
			return len(buf)
		}
		return n
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case err := <-computed:
			if cctx.Err() != nil {
				return // hard stop: abandon, let the lease expire
			}
			w.finish(ctx, grant, buf, sent, err)
			return
		case <-cctx.Done():
			return
		case <-ticker.C:
			mu.Lock()
			pending := buf[sent:len(buf):len(buf)]
			mu.Unlock()
			if len(pending) > maxBatch {
				pending = pending[:maxBatch]
			}
			var resp batchResponse
			status, err := w.post(ctx, "/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: w.cfg.ID, SpecHash: grant.SpecHash, Results: pending}, &resp)
			if err != nil {
				continue // transient: keep computing, retry next beat
			}
			switch status {
			case http.StatusOK:
				if resp.Next >= 0 {
					sent = clamp(resp.Next - grant.From)
				}
			case http.StatusConflict:
				sent = clamp(resp.Next - grant.From)
			case http.StatusGone:
				// Lease expired or superseded: abandon. Another lease —
				// maybe our own next one — recomputes the unaccepted tail
				// to identical bytes.
				w.logger.Warn("fleet lease lost", "worker", w.cfg.ID, "lease", grant.Lease, "job", grant.Job, "cell", grant.Cell)
				cancel()
				<-computed
				return
			}
		}
	}
}

// maxBatch bounds results per upload, keeping request bodies well under
// the coordinator's byte limit.
const maxBatch = 4096

// finish drives complete until the coordinator settles the cell:
// resending from wherever 409 points, waiting out -1 ("cell not
// re-offered yet" after a coordinator restart), and giving up on 410 or
// when retries run out (the lease then just expires).
func (w *Worker) finish(ctx context.Context, grant leaseGrant, buf []batch.TrialResult, sent int, computeErr error) {
	req := batchRequest{Lease: grant.Lease, Worker: w.cfg.ID, SpecHash: grant.SpecHash}
	if computeErr != nil {
		req.Error = computeErr.Error()
	}
	for attempt := 0; attempt < 200; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if computeErr == nil {
			end := len(buf)
			if end-sent > maxBatch {
				end = sent + maxBatch
			}
			req.Results = buf[sent:end:end]
		}
		var resp batchResponse
		status, err := w.post(ctx, "/v1/leases/complete", req, &resp)
		if err != nil {
			if !sleepCtx(ctx, 100*time.Millisecond) {
				return
			}
			continue
		}
		switch status {
		case http.StatusOK:
			if resp.Done {
				w.cells.Add(1)
				w.logger.Info("fleet cell completed", "worker", w.cfg.ID, "lease", grant.Lease, "job", grant.Job, "cell", grant.Cell)
				return
			}
			// Next == -1: lease live, cell not re-offered yet. Hold and retry.
			if !sleepCtx(ctx, 100*time.Millisecond) {
				return
			}
		case http.StatusConflict:
			if resp.Next >= 0 {
				sent = resp.Next - grant.From
				if sent < 0 {
					sent = 0
				}
				if sent > len(buf) {
					sent = len(buf)
				}
			}
		case http.StatusGone:
			w.logger.Warn("fleet lease lost at complete", "worker", w.cfg.ID, "lease", grant.Lease, "job", grant.Job, "cell", grant.Cell)
			return
		default:
			if !sleepCtx(ctx, 100*time.Millisecond) {
				return
			}
		}
	}
	w.logger.Error("fleet complete retries exhausted", "worker", w.cfg.ID, "lease", grant.Lease, "job", grant.Job, "cell", grant.Cell)
}

// post sends one JSON request and decodes the JSON answer (when into is
// non-nil and the body is JSON), returning the HTTP status.
func (w *Worker) post(ctx context.Context, path string, body, into any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return 0, err
	}
	if into != nil && len(raw) > 0 {
		// Error statuses carry {"error":...}; tolerate either shape.
		_ = json.Unmarshal(raw, into)
	}
	return resp.StatusCode, nil
}

// sleepCtx sleeps d or until ctx ends, reporting whether ctx survived.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
