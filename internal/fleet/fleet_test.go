package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testSweep() batch.SweepSpec {
	return batch.SweepSpec{
		Graphs:      []string{"rreg:192:3", "ws:192:6:0.1"},
		Processes:   []string{"cobra"},
		Branches:    []int{2, 3},
		Trials:      12,
		Seed:        7,
		Workers:     1,
		CellWorkers: 4,
	}
}

// fleetEnv is a coordinator-mode cobrad composed exactly like
// cmd/cobrad's coordinator role: lease endpoints and /v1/fleet routed to
// the coordinator, everything else to the batch server, one registry.
type fleetEnv struct {
	ts  *httptest.Server
	svc *batch.Server
	co  *Coordinator
}

func newFleetEnv(t *testing.T, cfg CoordinatorConfig) *fleetEnv {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := batch.NewServer(batch.ServerConfig{Remote: co, CellWorkers: 4, Logger: quietLogger()})
	co.RegisterMetrics(svc.Registry())
	root := http.NewServeMux()
	root.Handle("/v1/leases/", co)
	root.Handle("/v1/fleet", co)
	root.Handle("/v1/fleet/", co)
	root.Handle("/", svc)
	ts := httptest.NewServer(root)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		co.Close()
	})
	return &fleetEnv{ts: ts, svc: svc, co: co}
}

func postSweep(t *testing.T, url string, spec batch.SweepSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep submit: status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

type sweepState struct {
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Error     string `json:"error"`
}

func getSweepState(t *testing.T, url, id string) sweepState {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sweepState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitSweepDone(t *testing.T, url, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getSweepState(t, url, id)
		if st.State == "done" {
			return
		}
		if st.State == "failed" || st.State == "expired" {
			t.Fatalf("sweep %s reached %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s (completed %d)", id, st.State, st.Completed)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// resultBytes fetches the raw NDJSON result stream — the bytes under
// the byte-identity contract.
func resultBytes(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tr := resp.Trailer.Get(batch.StreamTrailer); tr != batch.StreamComplete {
		t.Fatalf("stream trailer %q, want %q", tr, batch.StreamComplete)
	}
	return raw
}

// standaloneGolden runs the sweep on an ordinary single-process server
// and returns its result bytes — the reference every fleet topology
// must reproduce exactly.
func standaloneGolden(t *testing.T, spec batch.SweepSpec) []byte {
	t.Helper()
	svc := batch.NewServer(batch.ServerConfig{CellWorkers: 4, Logger: quietLogger()})
	ts := httptest.NewServer(svc)
	defer func() {
		ts.Close()
		svc.Close()
	}()
	id := postSweep(t, ts.URL, spec)
	awaitSweepDone(t, ts.URL, id, 60*time.Second)
	return resultBytes(t, ts.URL, id)
}

func startWorker(t *testing.T, ctx context.Context, env *fleetEnv, id string, hb time.Duration) (*Worker, chan struct{}) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: env.ts.URL,
		ID:          id,
		Poll:        10 * time.Millisecond,
		Heartbeat:   hb,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: %v", id, err)
		}
	}()
	return w, done
}

func metricValue(t *testing.T, url, family string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			sum += v
		}
	}
	return sum
}

// TestFleetConformance: the merged fleet stream is byte-identical to
// the standalone run for 1 and for 3 workers, and the coordinator
// computed none of it locally.
func TestFleetConformance(t *testing.T) {
	spec := testSweep()
	golden := standaloneGolden(t, spec)
	if len(golden) == 0 {
		t.Fatal("empty golden")
	}
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			env := newFleetEnv(t, CoordinatorConfig{TTL: 5 * time.Second})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < workers; i++ {
				startWorker(t, ctx, env, fmt.Sprintf("w%d", i+1), 15*time.Millisecond)
			}
			id := postSweep(t, env.ts.URL, spec)
			awaitSweepDone(t, env.ts.URL, id, 60*time.Second)
			got := resultBytes(t, env.ts.URL, id)
			if !bytes.Equal(got, golden) {
				t.Fatalf("fleet stream diverged from standalone: %d vs %d bytes", len(got), len(golden))
			}
			if n := env.svc.TrialsExecuted(); n != 0 {
				t.Fatalf("coordinator computed %d trials locally", n)
			}
			if v := metricValue(t, env.ts.URL, "cobrad_fleet_trials_remote_total"); int(v) != len(spec.Graphs)*len(spec.Branches)*spec.Trials {
				t.Fatalf("remote trial roll-up %v", v)
			}
		})
	}
}

// TestFleetWorkerKilledMidCell: a worker hard-stopped mid-cell loses
// its lease to TTL expiry, the cell's tail is re-leased to a second
// worker, and the merged bytes still match the standalone golden.
func TestFleetWorkerKilledMidCell(t *testing.T) {
	spec := testSweep()
	spec.Graphs = []string{"grid:32:32"}
	spec.Branches = []int{2, 3}
	spec.Trials = 150
	golden := standaloneGolden(t, spec)

	env := newFleetEnv(t, CoordinatorConfig{TTL: 250 * time.Millisecond})
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	_, doneA := startWorker(t, ctxA, env, "victim", 20*time.Millisecond)

	id := postSweep(t, env.ts.URL, spec)
	deadline := time.Now().Add(30 * time.Second)
	for getSweepState(t, env.ts.URL, id).Completed < 10 {
		if time.Now().After(deadline) {
			t.Fatal("victim made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelA() // SIGKILL equivalent: abandon mid-cell, no complete, no drain
	<-doneA

	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	startWorker(t, ctxB, env, "successor", 20*time.Millisecond)

	awaitSweepDone(t, env.ts.URL, id, 60*time.Second)
	got := resultBytes(t, env.ts.URL, id)
	if !bytes.Equal(got, golden) {
		t.Fatalf("post-kill stream diverged from standalone: %d vs %d bytes", len(got), len(golden))
	}
	if v := metricValue(t, env.ts.URL, "cobrad_fleet_leases_expired_total"); v < 1 {
		t.Fatalf("expected at least one expired lease, metric reads %v", v)
	}
}

// TestFleetLeaseExpiryRetry: a slow worker delivers a partial prefix
// and goes silent; its lease expires and the replacement lease starts
// at exactly the accepted prefix boundary — the migrated cell recomputes
// only the tail, and the bytes still match.
func TestFleetLeaseExpiryRetry(t *testing.T) {
	spec := testSweep()
	spec.Graphs = []string{"rreg:256:3"}
	spec.Branches = []int{2}
	spec.Trials = 30
	spec.CellWorkers = 1
	golden := standaloneGolden(t, spec)

	env := newFleetEnv(t, CoordinatorConfig{TTL: 200 * time.Millisecond})
	id := postSweep(t, env.ts.URL, spec)

	// Manually play a worker that computes the cell, uploads 10 trials,
	// then vanishes without completing.
	var grant leaseGrant
	acquireDeadline := time.Now().Add(10 * time.Second)
	for {
		status, raw := postJSON(t, env.ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "slowpoke"})
		if status == http.StatusOK {
			if err := json.Unmarshal(raw, &grant); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(acquireDeadline) {
			t.Fatal("cell never offered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if grant.From != 0 {
		t.Fatalf("first lease from %d, want 0", grant.From)
	}
	campaign, err := batch.Compile(grant.Spec, batch.NewCache(2))
	if err != nil {
		t.Fatal(err)
	}
	var results []batch.TrialResult
	if _, err := campaign.RunFrom(context.Background(), 0, nil, func(r batch.TrialResult) {
		results = append(results, r)
	}); err != nil {
		t.Fatal(err)
	}
	status, raw := postJSON(t, env.ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "slowpoke", Results: results[:10]})
	if status != http.StatusOK {
		t.Fatalf("renew: status %d: %s", status, raw)
	}
	var resp batchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Next != 10 {
		t.Fatalf("coordinator accepted to %d, want 10", resp.Next)
	}
	// Vanish. The lease expires; a real worker picks up the tail.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, env, "steady", 20*time.Millisecond)

	awaitSweepDone(t, env.ts.URL, id, 60*time.Second)
	if !bytes.Equal(resultBytes(t, env.ts.URL, id), golden) {
		t.Fatal("expiry-retry stream diverged from standalone")
	}
	if v := metricValue(t, env.ts.URL, "cobrad_fleet_leases_expired_total"); v < 1 {
		t.Fatalf("expected an expired lease, metric reads %v", v)
	}
	// The zombie's late heartbeat is turned away with the expired state.
	status, _ = postJSON(t, env.ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "slowpoke"})
	if status != http.StatusGone {
		t.Fatalf("zombie renew: status %d, want 410", status)
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// openCellDirect drives RunCell on a bare coordinator (no batch server)
// and returns the delivered results plus the cell's settled error.
func openCellDirect(t *testing.T, co *Coordinator, ctx context.Context, job string, cell, trials int) (func() []batch.TrialResult, chan error) {
	t.Helper()
	return openCellSpec(t, co, ctx, job, cell, batch.Spec{Graph: "rreg:64:3", Process: "cobra", Branch: 2, Trials: trials, Seed: 1})
}

// openCellSpec is openCellDirect with a caller-chosen spec.
func openCellSpec(t *testing.T, co *Coordinator, ctx context.Context, job string, cell int, spec batch.Spec) (func() []batch.TrialResult, chan error) {
	t.Helper()
	var mu sync.Mutex
	var delivered []batch.TrialResult
	errCh := make(chan error, 1)
	go func() {
		errCh <- co.RunCell(ctx, job, cell, spec, 0, func(r batch.TrialResult) {
			mu.Lock()
			delivered = append(delivered, r)
			mu.Unlock()
		})
	}()
	snapshot := func() []batch.TrialResult {
		mu.Lock()
		defer mu.Unlock()
		return append([]batch.TrialResult(nil), delivered...)
	}
	return snapshot, errCh
}

func coordServer(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co)
	t.Cleanup(func() {
		ts.Close()
		co.Close()
	})
	return co, ts
}

func res(trial int) batch.TrialResult { return batch.TrialResult{Trial: trial, Rounds: 100 + trial} }

// TestLeaseBatchIdempotency: duplicates below the accepted prefix are
// skipped, gaps are rejected with the resend point, completion needs
// the full cell.
func TestLeaseBatchIdempotency(t *testing.T) {
	co, ts := coordServer(t, CoordinatorConfig{TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snapshot, errCh := openCellDirect(t, co, ctx, "s000001", 0, 4)

	var grant leaseGrant
	for {
		status, raw := postJSON(t, ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "w1"})
		if status == http.StatusOK {
			if err := json.Unmarshal(raw, &grant); err != nil {
				t.Fatal(err)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	renew := func(results ...batch.TrialResult) (int, batchResponse) {
		status, raw := postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", Results: results})
		var resp batchResponse
		json.Unmarshal(raw, &resp)
		return status, resp
	}

	if status, resp := renew(res(0)); status != 200 || resp.Next != 1 {
		t.Fatalf("first batch: %d next=%d", status, resp.Next)
	}
	// Resending an overlapping batch is idempotent.
	if status, resp := renew(res(0), res(1)); status != 200 || resp.Next != 2 {
		t.Fatalf("overlap batch: %d next=%d", status, resp.Next)
	}
	// A gap is rejected and points at the resend position.
	if status, resp := renew(res(3)); status != http.StatusConflict || resp.Next != 2 {
		t.Fatalf("gap batch: %d next=%d", status, resp.Next)
	}
	// Completing short of the full cell is rejected the same way.
	status, raw := postJSON(t, ts.URL+"/v1/leases/complete", batchRequest{Lease: grant.Lease, Worker: "w1"})
	var resp batchResponse
	json.Unmarshal(raw, &resp)
	if status != http.StatusConflict || resp.Next != 2 {
		t.Fatalf("short complete: %d next=%d", status, resp.Next)
	}
	status, raw = postJSON(t, ts.URL+"/v1/leases/complete", batchRequest{Lease: grant.Lease, Worker: "w1", Results: []batch.TrialResult{res(2), res(3)}})
	json.Unmarshal(raw, &resp)
	if status != 200 || !resp.Done {
		t.Fatalf("complete: %d done=%v", status, resp.Done)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	got := snapshot()
	if len(got) != 4 {
		t.Fatalf("delivered %d results", len(got))
	}
	for i, r := range got {
		if r.Trial != i {
			t.Fatalf("delivery order broken at %d: trial %d", i, r.Trial)
		}
	}
}

// TestCoordinatorClockSkew is the adversarial heartbeat case: a worker
// whose own clock says it is renewing on time is still expired by the
// coordinator's clock — the only one that counts — and its in-flight
// results are rejected rather than interleaved with the successor's.
func TestCoordinatorClockSkew(t *testing.T) {
	co, ts := coordServer(t, CoordinatorConfig{TTL: 200 * time.Millisecond})
	base := time.Now()
	var offset time.Duration
	var clockMu sync.Mutex
	co.setClock(func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return base.Add(offset)
	})
	advance := func(d time.Duration) {
		clockMu.Lock()
		offset += d
		clockMu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snapshot, errCh := openCellDirect(t, co, ctx, "s000001", 0, 4)

	var grant leaseGrant
	for {
		status, raw := postJSON(t, ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "skewed"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// On-time renew (coordinator clock) is accepted.
	status, raw := postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "skewed", Results: []batch.TrialResult{res(0), res(1)}})
	if status != http.StatusOK {
		t.Fatalf("renew: %d %s", status, raw)
	}

	// The worker's clock runs slow: it waits what it thinks is one
	// heartbeat while the coordinator's clock races past the TTL. It
	// sends nothing in that window — a renew arriving before the expiry
	// scan would rightly revive the lease (the progress guarantee) — so
	// expiry is observed through the successor's acquire succeeding.
	advance(10 * co.ttl)
	var grant2 leaseGrant
	expiryDeadline := time.Now().Add(10 * time.Second)
	for {
		status, raw = postJSON(t, ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "healthy"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant2)
			break
		}
		if time.Now().After(expiryDeadline) {
			t.Fatalf("skewed worker's lease never expired (acquire status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if grant2.Cell != grant.Cell || grant2.From != 2 {
		t.Fatalf("successor grant cell=%d from=%d, want cell=%d from=2", grant2.Cell, grant2.From, grant.Cell)
	}
	// The zombie's buffered upload cannot corrupt the successor's stream.
	status, _ = postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "skewed", Results: []batch.TrialResult{res(2), res(3)}})
	if status != http.StatusGone {
		t.Fatalf("zombie upload: status %d, want 410", status)
	}
	status, _ = postJSON(t, ts.URL+"/v1/leases/complete", batchRequest{Lease: grant2.Lease, Worker: "healthy", Results: []batch.TrialResult{res(2), res(3)}})
	if status != http.StatusOK {
		t.Fatalf("successor complete: %d", status)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if got := snapshot(); len(got) != 4 {
		t.Fatalf("delivered %d results", len(got))
	}
}

// TestCoordinatorRestartKeepsLiveLease: a journaled lease survives a
// coordinator restart — the restarted lease table refuses to re-grant
// the cell, and the original holder reattaches and completes.
func TestCoordinatorRestartKeepsLiveLease(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co1, err := NewCoordinator(CoordinatorConfig{TTL: time.Hour, Store: st, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	_, errCh1 := openCellDirect(t, co1, ctx1, "s000001", 0, 4)
	ts1 := httptest.NewServer(co1)

	var grant leaseGrant
	for {
		status, raw := postJSON(t, ts1.URL+"/v1/leases/acquire", acquireRequest{Worker: "w1"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	status, raw := postJSON(t, ts1.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", Results: []batch.TrialResult{res(0)}})
	if status != http.StatusOK {
		t.Fatalf("renew: %d %s", status, raw)
	}

	// Orderly shutdown: cells withdrawn, leases preserved.
	co1.BeginShutdown()
	cancel1()
	<-errCh1
	ts1.Close()
	co1.Close()

	co2, err := NewCoordinator(CoordinatorConfig{TTL: time.Hour, Store: st, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(co2)
	t.Cleanup(func() {
		ts2.Close()
		co2.Close()
	})

	// Before the cell is re-offered, the holder's renew is a live hold.
	status, raw = postJSON(t, ts2.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1"})
	var resp batchResponse
	json.Unmarshal(raw, &resp)
	if status != http.StatusOK || resp.Next != -1 {
		t.Fatalf("restored renew: %d next=%d, want 200 next=-1", status, resp.Next)
	}

	// Re-offer the cell (the recovered server resumes at the committed
	// prefix — trial 1 here was never journal-committed, so from=0 and
	// the worker's idempotent replay fills it back in).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	snapshot, errCh2 := openCellDirect(t, co2, ctx2, "s000001", 0, 4)

	// The restored lease holds the cell: nobody else can acquire it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, _ = postJSON(t, ts2.URL+"/v1/leases/acquire", acquireRequest{Worker: "thief"})
		if status == http.StatusNoContent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored lease did not hold the cell: acquire got %d", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, raw = postJSON(t, ts2.URL+"/v1/leases/complete", batchRequest{Lease: grant.Lease, Worker: "w1", Results: []batch.TrialResult{res(0), res(1), res(2), res(3)}})
	json.Unmarshal(raw, &resp)
	if status != http.StatusOK || !resp.Done {
		t.Fatalf("reattached complete: %d done=%v", status, resp.Done)
	}
	if err := <-errCh2; err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if got := snapshot(); len(got) != 4 {
		t.Fatalf("delivered %d results", len(got))
	}
}

// TestLeaseSpecHashMismatch: a grant carries the canonical spec hash;
// a batch echoing a different hash is turned away with 410 and the cell
// re-opens for a fresh grant, so results computed from the wrong spec
// can never enter the stream.
func TestLeaseSpecHashMismatch(t *testing.T) {
	co, ts := coordServer(t, CoordinatorConfig{TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := batch.Spec{Graph: "rreg:64:3", Process: "cobra", Branch: 2, Trials: 4, Seed: 1}
	snapshot, errCh := openCellSpec(t, co, ctx, "s000001", 0, spec)

	var grant leaseGrant
	for {
		status, raw := postJSON(t, ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "w1"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if grant.SpecHash != specHash(spec) {
		t.Fatalf("grant spec hash %q, want %q", grant.SpecHash, specHash(spec))
	}
	// A correct echo is accepted.
	status, raw := postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", SpecHash: grant.SpecHash, Results: []batch.TrialResult{res(0)}})
	if status != http.StatusOK {
		t.Fatalf("renew with matching hash: %d %s", status, raw)
	}
	// A mismatched echo is 410: the holder computed some other spec.
	status, raw = postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", SpecHash: "deadbeef", Results: []batch.TrialResult{res(1)}})
	if status != http.StatusGone {
		t.Fatalf("renew with wrong hash: %d %s, want 410", status, raw)
	}
	// The lease is retired with the rejection, so even a now-correct echo
	// is refused and the cell is acquirable again at the accepted prefix.
	status, _ = postJSON(t, ts.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", SpecHash: grant.SpecHash})
	if status != http.StatusGone {
		t.Fatalf("retired lease renew: %d, want 410", status)
	}
	var grant2 leaseGrant
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, raw = postJSON(t, ts.URL+"/v1/leases/acquire", acquireRequest{Worker: "w2"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant2)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cell not re-acquirable after hash rejection: %d", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if grant2.From != 1 {
		t.Fatalf("successor grant from %d, want 1", grant2.From)
	}
	status, _ = postJSON(t, ts.URL+"/v1/leases/complete", batchRequest{Lease: grant2.Lease, Worker: "w2", SpecHash: grant2.SpecHash, Results: []batch.TrialResult{res(1), res(2), res(3)}})
	if status != http.StatusOK {
		t.Fatalf("successor complete: %d", status)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if got := snapshot(); len(got) != 4 {
		t.Fatalf("delivered %d results", len(got))
	}
}

// TestLeaseSpecHashReattach: a restored lease only reattaches to a
// re-offered cell whose spec hashes the same. When the same (job, cell)
// key comes back carrying different work, the stale holder is rejected
// with 410 and the cell is granted fresh.
func TestLeaseSpecHashReattach(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co1, err := NewCoordinator(CoordinatorConfig{TTL: time.Hour, Store: st, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	specA := batch.Spec{Graph: "rreg:64:3", Process: "cobra", Branch: 2, Trials: 4, Seed: 1}
	ctx1, cancel1 := context.WithCancel(context.Background())
	_, errCh1 := openCellSpec(t, co1, ctx1, "s000001", 0, specA)
	ts1 := httptest.NewServer(co1)

	var grant leaseGrant
	for {
		status, raw := postJSON(t, ts1.URL+"/v1/leases/acquire", acquireRequest{Worker: "w1"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	co1.BeginShutdown()
	cancel1()
	<-errCh1
	ts1.Close()
	co1.Close()

	co2, err := NewCoordinator(CoordinatorConfig{TTL: time.Hour, Store: st, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(co2)
	t.Cleanup(func() {
		ts2.Close()
		co2.Close()
	})

	// The same cell key reappears carrying a different spec (a job-id
	// collision across store generations). The restored lease must not
	// inherit it.
	specB := specA
	specB.Seed = 999
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	snapshot, errCh2 := openCellSpec(t, co2, ctx2, "s000001", 0, specB)

	// The stale holder is told its lease is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := postJSON(t, ts2.URL+"/v1/leases/renew", batchRequest{Lease: grant.Lease, Worker: "w1", SpecHash: grant.SpecHash})
		if status == http.StatusGone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale holder still accepted: %d", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The cell is granted fresh, with specB and its hash.
	var grant2 leaseGrant
	for {
		status, raw := postJSON(t, ts2.URL+"/v1/leases/acquire", acquireRequest{Worker: "w2"})
		if status == http.StatusOK {
			json.Unmarshal(raw, &grant2)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cell not re-grantable after reattach rejection: %d", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if grant2.SpecHash != specHash(specB) || grant2.SpecHash == grant.SpecHash {
		t.Fatalf("successor hash %q, want %q != %q", grant2.SpecHash, specHash(specB), grant.SpecHash)
	}
	status, _ := postJSON(t, ts2.URL+"/v1/leases/complete", batchRequest{Lease: grant2.Lease, Worker: "w2", SpecHash: grant2.SpecHash, Results: []batch.TrialResult{res(0), res(1), res(2), res(3)}})
	if status != http.StatusOK {
		t.Fatalf("successor complete: %d", status)
	}
	if err := <-errCh2; err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if got := snapshot(); len(got) != 4 {
		t.Fatalf("delivered %d results", len(got))
	}
}

// TestWorkerDrainFinishesCell: Drain lets the current cell complete and
// stops the loop — no abandoned lease, no expiry.
func TestWorkerDrainFinishesCell(t *testing.T) {
	spec := testSweep()
	spec.Graphs = []string{"rreg:192:3"}
	spec.Branches = []int{2}
	spec.Trials = 40
	spec.CellWorkers = 1
	env := newFleetEnv(t, CoordinatorConfig{TTL: 2 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, done := startWorker(t, ctx, env, "drainer", 15*time.Millisecond)
	id := postSweep(t, env.ts.URL, spec)
	deadline := time.Now().Add(30 * time.Second)
	for getSweepState(t, env.ts.URL, id).Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.Drain()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("drained worker did not exit")
	}
	if w.CellsCompleted() == 0 {
		t.Fatal("drained worker abandoned its cell")
	}
	if v := metricValue(t, env.ts.URL, "cobrad_fleet_leases_expired_total"); v != 0 {
		t.Fatalf("drain leaked an expired lease: %v", v)
	}
	awaitDrainedSweep(t, env, id)
}

// awaitDrainedSweep finishes the drained test's sweep with a fresh
// worker so the env teardown does not abort a half-done job.
func awaitDrainedSweep(t *testing.T, env *fleetEnv, id string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, env, "finisher", 15*time.Millisecond)
	awaitSweepDone(t, env.ts.URL, id, 60*time.Second)
}
