// Package bounds evaluates the cover-time bound *shapes* stated in the
// paper and its predecessors, so that experiments, CLIs and examples all
// normalise measurements against the same formulas:
//
//   - Theorem 1.1 (this paper):   m + dmax² ln n          (general graphs)
//   - Theorem 1.2 (this paper):   (r/(1−λ) + r²) ln n     (regular graphs)
//   - Cooper et al. PODC'16 [4]:  (1/(1−λ))³ ln n         (regular graphs)
//   - Mitzenmacher et al. '16 [8]: (r⁴/ϕ²) ln² n          (regular, conductance)
//   - Universal lower bound:       max{log₂ n, Diam(G)}
//
// All formulas are constant-free: the paper states asymptotic orders, so
// experiments check ratios against these shapes, not absolute values.
package bounds

import (
	"errors"
	"math"

	"github.com/repro/cobra/internal/graph"
)

// ErrInput flags invalid bound arguments.
var ErrInput = errors.New("bounds: invalid input")

// General evaluates Theorem 1.1's shape m + dmax²·ln n.
func General(g *graph.Graph) float64 {
	d := float64(g.MaxDegree())
	return float64(g.M()) + d*d*math.Log(float64(g.N()))
}

// Regular evaluates Theorem 1.2's shape (r/gap + r²)·ln n for an
// r-regular graph with eigenvalue gap 1−λ.
func Regular(n, r int, gap float64) (float64, error) {
	if gap <= 0 || gap > 1 {
		return 0, ErrInput
	}
	rf := float64(r)
	return (rf/gap + rf*rf) * math.Log(float64(n)), nil
}

// PODC16 evaluates the prior (1/(1−λ))³·ln n bound of [4] that
// Theorem 1.2 improves when 1−λ = o(1/√r).
func PODC16(n int, gap float64) (float64, error) {
	if gap <= 0 || gap > 1 {
		return 0, ErrInput
	}
	return math.Pow(1/gap, 3) * math.Log(float64(n)), nil
}

// SPAA16 evaluates the prior (r⁴/ϕ²)·ln² n bound of [8] in terms of the
// conductance ϕ.
func SPAA16(n, r int, phi float64) (float64, error) {
	if phi <= 0 || phi > 1 {
		return 0, ErrInput
	}
	rf := float64(r)
	ln := math.Log(float64(n))
	return rf * rf * rf * rf / (phi * phi) * ln * ln, nil
}

// Lower returns the universal deterministic lower bound
// max{log₂ n, Diam(G)} on b = 2 cover time.
func Lower(g *graph.Graph) int {
	return g.CoverTimeLowerBound()
}

// GapPremise reports whether the graph's gap satisfies Theorem 1.2's
// premise 1−λ > C√(ln n / n) for the given constant C.
func GapPremise(n int, gap, c float64) bool {
	return gap > c*math.Sqrt(math.Log(float64(n))/float64(n))
}

// HypercubeTriple returns the three successive hypercube bound shapes
// from the paper's running example — ln³ n (this paper), ln⁴ n [4],
// ln⁸ n [8] — for n = 2^d.
func HypercubeTriple(d int) (lnCubed, lnFourth, lnEighth float64) {
	ln := float64(d) * math.Ln2
	return math.Pow(ln, 3), math.Pow(ln, 4), math.Pow(ln, 8)
}

// FractionalScale returns the Section 6 round-count multiplier 1/ρ² for
// branching factor 1+ρ.
func FractionalScale(rho float64) (float64, error) {
	if rho <= 0 || rho > 1 {
		return 0, ErrInput
	}
	return 1 / (rho * rho), nil
}
