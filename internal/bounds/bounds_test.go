package bounds

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
)

func TestGeneral(t *testing.T) {
	g := graph.Cycle(10)
	want := 10 + 4*math.Log(10)
	if got := General(g); math.Abs(got-want) > 1e-12 {
		t.Fatalf("General = %v want %v", got, want)
	}
}

func TestRegular(t *testing.T) {
	got, err := Regular(100, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := (3/0.5 + 9) * math.Log(100)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Regular = %v want %v", got, want)
	}
	if _, err := Regular(100, 3, 0); !errors.Is(err, ErrInput) {
		t.Fatal("gap=0 accepted")
	}
	if _, err := Regular(100, 3, 1.5); !errors.Is(err, ErrInput) {
		t.Fatal("gap>1 accepted")
	}
}

func TestPriorBoundsOrderingOnHypercube(t *testing.T) {
	// The paper's running example: on Q_d the three bounds are ordered
	// this paper < [4] < [8]. Check with the exact Q_d parameters
	// (r = d, lazy gap = 1/d, ϕ = Θ(1/d) — use 1/d).
	for d := 4; d <= 12; d += 2 {
		n := 1 << uint(d)
		gap := 1 / float64(d)
		ours, err := Regular(n, d, gap)
		if err != nil {
			t.Fatal(err)
		}
		podc, err := PODC16(n, gap)
		if err != nil {
			t.Fatal(err)
		}
		spaa, err := SPAA16(n, d, 1/float64(d))
		if err != nil {
			t.Fatal(err)
		}
		if !(ours < podc && podc < spaa) {
			t.Fatalf("d=%d: bounds not ordered: ours %.3g, [4] %.3g, [8] %.3g", d, ours, podc, spaa)
		}
	}
}

func TestHypercubeTriple(t *testing.T) {
	c3, c4, c8 := HypercubeTriple(10)
	ln := 10 * math.Ln2
	if math.Abs(c3-math.Pow(ln, 3)) > 1e-9 || math.Abs(c4-math.Pow(ln, 4)) > 1e-9 || math.Abs(c8-math.Pow(ln, 8)) > 1e-6 {
		t.Fatalf("triple = %v %v %v", c3, c4, c8)
	}
	if !(c3 < c4 && c4 < c8) {
		t.Fatal("triple not increasing")
	}
}

func TestLowerMatchesGraphMethod(t *testing.T) {
	g := graph.Path(50)
	if Lower(g) != g.CoverTimeLowerBound() {
		t.Fatal("Lower disagrees with graph method")
	}
}

func TestGapPremise(t *testing.T) {
	// Random cubic graphs (gap ≈ 0.06) satisfy the premise at n = 1024
	// for moderate C; the double cycle (gap Θ(1/n²)) does not.
	if !GapPremise(1024, 0.06, 0.5) {
		t.Fatal("expander premise rejected")
	}
	if GapPremise(1024, 1.0/(1024.0*1024.0), 0.5) {
		t.Fatal("double-cycle-like gap accepted")
	}
}

func TestFractionalScale(t *testing.T) {
	s, err := FractionalScale(0.5)
	if err != nil || s != 4 {
		t.Fatalf("FractionalScale(0.5) = %v, %v", s, err)
	}
	if _, err := FractionalScale(0); !errors.Is(err, ErrInput) {
		t.Fatal("rho=0 accepted")
	}
	if _, err := FractionalScale(2); !errors.Is(err, ErrInput) {
		t.Fatal("rho=2 accepted")
	}
}

func TestSPAA16Validation(t *testing.T) {
	if _, err := SPAA16(100, 3, 0); !errors.Is(err, ErrInput) {
		t.Fatal("phi=0 accepted")
	}
	v, err := SPAA16(100, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 16.0 / 0.25 * math.Log(100) * math.Log(100)
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("SPAA16 = %v want %v", v, want)
	}
}
