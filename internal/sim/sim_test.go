package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/xrand"
)

func TestRunBasic(t *testing.T) {
	r := Runner{Seed: 1}
	xs, err := r.Run(10, func(trial int, rng *xrand.RNG) (float64, error) {
		return float64(trial), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if x != float64(i) {
			t.Fatalf("trial %d result %v out of order", i, x)
		}
	}
}

func TestRunValidation(t *testing.T) {
	r := Runner{Seed: 1}
	if _, err := r.Run(0, func(int, *xrand.RNG) (float64, error) { return 0, nil }); !errors.Is(err, ErrInput) {
		t.Fatal("trials=0 accepted")
	}
	if _, err := r.Run(1, nil); !errors.Is(err, ErrInput) {
		t.Fatal("nil fn accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	r := Runner{Seed: 1}
	boom := errors.New("boom")
	_, err := r.Run(8, func(trial int, rng *xrand.RNG) (float64, error) {
		if trial == 5 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunJoinsAllErrors(t *testing.T) {
	// Concurrent failures must all surface (errors.Join), each tagged
	// with its trial index, not just the lowest-index one.
	boomA := errors.New("boomA")
	boomB := errors.New("boomB")
	var barrier sync.WaitGroup
	barrier.Add(2)
	_, err := Runner{Seed: 1, Workers: 2}.Run(2, func(trial int, rng *xrand.RNG) (float64, error) {
		// Rendezvous so both trials are in flight before either fails:
		// the fail-fast flag cannot suppress the second error.
		barrier.Done()
		barrier.Wait()
		if trial == 0 {
			return 0, boomA
		}
		return 0, boomB
	})
	if !errors.Is(err, boomA) || !errors.Is(err, boomB) {
		t.Fatalf("lost an error: %v", err)
	}
	if !strings.Contains(err.Error(), "trial 0:") || !strings.Contains(err.Error(), "trial 1:") {
		t.Fatalf("missing trial tags: %v", err)
	}
}

func TestRunStopsClaimingAfterFailure(t *testing.T) {
	// With one worker, a failure at trial 0 must prevent trials 1.. from
	// running at all.
	ran := 0
	boom := errors.New("boom")
	_, err := Runner{Seed: 1, Workers: 1}.Run(64, func(trial int, rng *xrand.RNG) (float64, error) {
		ran++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d trials after failure, want 1", ran)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// Results must not depend on parallelism: trial k's stream is fixed.
	fn := func(trial int, rng *xrand.RNG) (float64, error) {
		return float64(rng.Uint64() % 1000), nil
	}
	seq, err := Runner{Seed: 42, Workers: 1}.Run(64, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Seed: 42, Workers: 8}.Run(64, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: serial %v vs parallel %v", i, seq[i], par[i])
		}
	}
}

func TestRunMeans(t *testing.T) {
	m, err := Runner{Seed: 1}.RunMeans(5, func(trial int, rng *xrand.RNG) (float64, error) {
		return 2, nil
	})
	if err != nil || m != 2 {
		t.Fatalf("mean %v err %v", m, err)
	}
}

// Property: different master seeds give different trial streams (almost
// surely), same master seed gives identical results.
func TestRunSeedProperty(t *testing.T) {
	fn := func(trial int, rng *xrand.RNG) (float64, error) {
		return float64(rng.Uint64()), nil
	}
	f := func(seed uint64) bool {
		a, err1 := Runner{Seed: seed}.Run(4, fn)
		b, err2 := Runner{Seed: seed}.Run(4, fn)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "graph", "n", "cover")
	tb.Note = "a note"
	tb.AddRow("cycle", 100, 52.345678)
	tb.AddRow("complete-graph-long-name", 7, "x")
	out := tb.String()
	for _, want := range []string{"== demo ==", "a note", "graph", "cover", "cycle", "52.3", "complete-graph-long-name"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Header and rows align: every line after the rule has the same
	// column starts; cheap check: rule is at least as long as header.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("t", "v")
	tb.AddRow(3.14159265)
	if !strings.Contains(tb.String(), "3.14") {
		t.Fatalf("float not formatted: %s", tb.String())
	}
	tb2 := NewTable("t", "v")
	tb2.AddRow(fmt.Sprintf("%.5f", 3.14159265))
	if !strings.Contains(tb2.String(), "3.14159") {
		t.Fatal("string cell mangled")
	}
}
