package sim

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// CSV export for downstream plotting of experiment tables and per-round
// traces.

// ErrCSV flags invalid CSV-export arguments.
var ErrCSV = errors.New("sim: invalid csv input")

// WriteCSV writes the table (header + rows) as RFC-4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV writes parallel numeric columns as CSV with the given
// header names: one row per index. All series must share a length.
func WriteSeriesCSV(w io.Writer, names []string, series ...[]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("%w: %d names for %d series", ErrCSV, len(names), len(series))
	}
	if len(series) == 0 {
		return fmt.Errorf("%w: no series", ErrCSV)
	}
	length := len(series[0])
	for _, s := range series {
		if len(s) != length {
			return fmt.Errorf("%w: ragged series lengths", ErrCSV)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(names); err != nil {
		return err
	}
	row := make([]string, len(series))
	for i := 0; i < length; i++ {
		for j, s := range series {
			row[j] = strconv.FormatFloat(s[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// IntSeries converts an int slice to float64 for WriteSeriesCSV.
func IntSeries(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
