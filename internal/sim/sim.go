// Package sim is the experiment harness: a parallel trial runner that
// fans independent simulation trials across worker goroutines with one
// deterministic RNG stream per trial, plus plain-text table rendering for
// the experiment outputs.
//
// The design follows the repository-wide reproducibility rule: an
// experiment is a pure function of (code, master seed). Trial k always
// receives stream NewStream(seed, k) regardless of worker count or
// scheduling, so results are identical for -cpu=1 and -cpu=64.
package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/xrand"
)

// ErrInput flags invalid runner arguments.
var ErrInput = errors.New("sim: invalid input")

// TrialFunc runs one independent trial and returns its measurement. The
// rng is the trial's private stream; trial is the trial index.
type TrialFunc func(trial int, rng *xrand.RNG) (float64, error)

// Runner executes batches of trials in parallel.
type Runner struct {
	// Seed is the master seed; trial k uses stream (Seed, k).
	Seed uint64
	// Workers caps parallelism; <= 0 selects GOMAXPROCS.
	Workers int
}

// Run executes `trials` independent trials and returns their measurements
// in trial order, delegating the fan-out to the shared batch scheduler
// (internal/batch.ForEach). A failure stops workers from claiming further
// trials, and every trial error that occurred is returned, combined with
// errors.Join in trial-index order and tagged with its trial index.
func (r Runner) Run(trials int, fn TrialFunc) ([]float64, error) {
	if trials < 1 {
		return nil, fmt.Errorf("%w: trials < 1", ErrInput)
	}
	if fn == nil {
		return nil, fmt.Errorf("%w: nil trial function", ErrInput)
	}
	out := make([]float64, trials)
	err := batch.ForEach(context.Background(), r.Seed, r.Workers, trials,
		func(trial int, rng *xrand.RNG) error {
			v, err := fn(trial, rng)
			if err != nil {
				return err
			}
			out[trial] = v
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunMeans is a convenience wrapper returning the mean measurement.
func (r Runner) RunMeans(trials int, fn TrialFunc) (float64, error) {
	xs, err := r.Run(trials, fn)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}
