package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 1)
	tb.AddRow("y, with comma", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], `"y, with comma"`) {
		t.Fatalf("comma not quoted: %q", lines[2])
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteSeriesCSV(&sb, []string{"round", "size"},
		[]float64{0, 1, 2}, []float64{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 || lines[0] != "round,size" || lines[2] != "1,3" {
		t.Fatalf("series csv:\n%s", sb.String())
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, []string{"a"}, []float64{1}, []float64{2}); !errors.Is(err, ErrCSV) {
		t.Fatal("name/series mismatch accepted")
	}
	if err := WriteSeriesCSV(&sb, []string{}); !errors.Is(err, ErrCSV) {
		t.Fatal("no series accepted")
	}
	if err := WriteSeriesCSV(&sb, []string{"a", "b"}, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrCSV) {
		t.Fatal("ragged series accepted")
	}
}

func TestIntSeries(t *testing.T) {
	out := IntSeries([]int{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("IntSeries %v", out)
	}
}
