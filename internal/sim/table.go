package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text experiment table. Rows are added as formatted
// cells; Render aligns columns for terminal output. This is deliberately
// minimal — the experiment outputs are meant to be read next to the
// paper, not machine-consumed.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is rendered with %v, floats with %g
// via Cell helpers when precision matters.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return sb.String()
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	header := line(t.Columns)
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
