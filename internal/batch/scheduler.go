package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/repro/cobra/internal/xrand"
)

// The trial scheduler: the one fan-out loop shared by campaigns and by
// sim.Runner. Trial k always receives the RNG stream NewStream(seed, k),
// so which worker runs a trial — and how many workers exist — can never
// change its result.

// ErrInput flags invalid scheduler or campaign arguments.
var ErrInput = errors.New("batch: invalid input")

// ForEach runs fn for every trial index 0..trials-1 across `workers`
// goroutines (<= 0 selects GOMAXPROCS); fn for trial k receives the
// private stream NewStream(seed, k).
//
// Error handling: the first failure (or context cancellation) stops
// workers from claiming further trials — already-running trials finish —
// and ForEach returns every trial error that occurred, combined with
// errors.Join in trial-index order. No error is silently discarded.
func ForEach(ctx context.Context, seed uint64, workers, trials int, fn func(trial int, rng *xrand.RNG) error) error {
	return ForEachFrom(ctx, seed, workers, 0, trials, fn)
}

// ForEachFrom is ForEach starting at trial index `from`: fn runs for
// every k in [from, trials), each with the stream NewStream(seed, k) —
// the same per-trial stream the full run would use, so a resumed tail is
// trial-for-trial identical to the tail of an uninterrupted run (the
// resume-from-committed-prefix contract). from == trials is a no-op.
func ForEachFrom(ctx context.Context, seed uint64, workers, from, trials int, fn func(trial int, rng *xrand.RNG) error) error {
	if trials < 1 {
		return fmt.Errorf("%w: trials < 1", ErrInput)
	}
	if from < 0 || from > trials {
		return fmt.Errorf("%w: resume point %d outside [0, %d]", ErrInput, from, trials)
	}
	if fn == nil {
		return fmt.Errorf("%w: nil trial function", ErrInput)
	}
	if from == trials {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials-from {
		workers = trials - from
	}

	errs := make([]error, trials)
	var next atomic.Int64
	next.Store(int64(from))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				k := int(next.Add(1) - 1)
				if k >= trials {
					return
				}
				rng := xrand.NewStream(seed, uint64(k))
				if err := fn(k, rng); err != nil {
					errs[k] = fmt.Errorf("trial %d: %w", k, err)
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return errors.Join(append(compact(errs), err)...)
	}
	return errors.Join(compact(errs)...)
}

// compact drops nil entries, preserving trial order.
func compact(errs []error) []error {
	out := errs[:0:0]
	for _, err := range errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}
