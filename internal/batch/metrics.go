package batch

import (
	"strconv"
	"sync"

	"github.com/repro/cobra/internal/obs"
)

// serverMetrics is the cobrad process's instrument set: one obs.Registry
// per Server, exposed at GET /metrics in Prometheus text exposition and
// mirrored (as plain integers) by GET /v1/stats. Instrumentation is
// observe-only by construction — every instrument is an atomic counter,
// gauge, or fixed-bucket histogram updated beside the hot path, and
// nothing ever reads one to make a scheduling or result decision — so
// the determinism contracts (campaign, sweep conformance, resume
// byte-identity) hold with scrapes running or not. The library entry
// points (Campaign.Run, Sweep.Run outside a Server) carry nil
// instruments, which no-op; conformance suites compare those paths
// against the instrumented HTTP path byte for byte.
type serverMetrics struct {
	reg *obs.Registry

	// Engine result path.
	trials       *obs.Counter // trials executed by this process (replay excluded)
	roundsDense  *obs.Counter // cobrad_rounds_total{repr="dense"} (legacy flat scan)
	roundsSparse *obs.Counter // cobrad_rounds_total{repr="sparse"}
	roundsTiled  *obs.Counter // cobrad_rounds_total{repr="tiled"} (default dense path)

	// Scheduler.
	jobs      *obs.CounterVec // terminal transitions by kind and state
	admission *obs.Histogram  // queued → running wait
	preempts  *obs.Counter
	queueBand *obs.GaugeVec // depth by priority band, refreshed per scrape

	// Cell scheduler (shared by every sweep the server runs).
	cellWall *obs.Histogram
	reorder  *obs.Gauge
	stalls   *obs.Counter

	// Store.
	journalAppends *obs.Counter
	fsync          *obs.Histogram
	quarantines    *obs.Counter
	resumeTail     *obs.Histogram // trials recomputed when a job resumes

	// Streams.
	eventStreams *obs.Gauge

	mu        sync.Mutex
	seenBands map[int]bool // bands ever exposed, so emptied bands read 0
}

// newServerMetrics registers the full cobrad metric set against s. The
// graph cache, queue depth, and running-job gauges read live state at
// scrape time (Func instruments and the OnGather hook); everything else
// ticks at the event.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg, seenBands: make(map[int]bool)}

	m.trials = reg.Counter("cobrad_trials_executed_total",
		"Trials computed by this process; journal replay is excluded, so after a restart it counts exactly the resumed tail.")
	rounds := reg.CounterVec("cobrad_rounds_total",
		"Engine rounds executed, by the representation the adaptive kernel chose.", "repr")
	m.roundsDense = rounds.With("dense")
	m.roundsSparse = rounds.With("sparse")
	m.roundsTiled = rounds.With("tiled")

	m.jobs = reg.CounterVec("cobrad_jobs_total",
		"Terminal job transitions by kind and final state.", "kind", "state")
	reg.GaugeFunc("cobrad_jobs_running", "Jobs currently on a campaign worker.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.running))
	})
	reg.GaugeFunc("cobrad_queue_depth", "Jobs waiting in the priority queue.", func() int64 {
		return int64(s.queue.size())
	})
	m.queueBand = reg.GaugeVec("cobrad_queue_depth_band",
		"Jobs waiting in the priority queue, by priority band.", "band")
	reg.OnGather(func() {
		depths := s.queue.depths()
		m.mu.Lock()
		defer m.mu.Unlock()
		for band := range m.seenBands {
			if _, live := depths[band]; !live {
				m.queueBand.With(strconv.Itoa(band)).Set(0)
			}
		}
		for band, n := range depths {
			m.seenBands[band] = true
			m.queueBand.With(strconv.Itoa(band)).Set(int64(n))
		}
	})
	m.admission = reg.Histogram("cobrad_admission_wait_seconds",
		"Wait between a job entering the queue (submission, requeue, or recovery) and starting on a worker.",
		obs.ExpBuckets(0.001, 2, 16))
	m.preempts = reg.Counter("cobrad_preemptions_total",
		"Trial-boundary checkpoint-and-requeue events (scheduling only; results are unaffected).")

	m.cellWall = reg.Histogram("cobrad_cell_wall_seconds",
		"Per-cell wall time on a sweep cell worker, run start to completion.",
		obs.ExpBuckets(0.001, 2, 16))
	m.reorder = reg.Gauge("cobrad_reorder_buffer_cells",
		"Sweep cells holding buffered out-of-order results or completions awaiting commit.")
	m.stalls = reg.Counter("cobrad_backpressure_stalls_total",
		"Times the sweep admitter blocked on a full admission window (all slots held by uncommitted cells).")

	reg.CounterFunc("cobrad_graph_cache_hits_total", "Graph cache hits.", func() int64 {
		hits, _, _ := s.cache.Stats()
		return hits
	})
	reg.CounterFunc("cobrad_graph_cache_misses_total", "Graph cache misses (compiles).", func() int64 {
		_, misses, _ := s.cache.Stats()
		return misses
	})
	reg.CounterFunc("cobrad_graph_cache_evictions_total", "Graphs evicted from the LRU cache.", func() int64 {
		return s.cache.Evictions()
	})
	reg.GaugeFunc("cobrad_graph_cache_entries", "Graphs currently cached.", func() int64 {
		_, _, size := s.cache.Stats()
		return int64(size)
	})

	m.journalAppends = reg.Counter("cobrad_journal_appends_total",
		"Lines appended to job journals (headers, results, terminals).")
	m.fsync = reg.Histogram("cobrad_journal_fsync_seconds",
		"Journal fsync latency at commit boundaries.", obs.ExpBuckets(0.0001, 4, 10))
	m.quarantines = reg.Counter("cobrad_journal_quarantines_total",
		"Journals recovery could not use, renamed to <id>.ndjson.corrupt.")
	m.resumeTail = reg.Histogram("cobrad_resume_tail_trials",
		"Trials left to recompute when a job resumed from its committed journal prefix.",
		obs.ExpBuckets(1, 4, 10))

	m.eventStreams = reg.Gauge("cobrad_event_streams",
		"Live SSE followers on /v1/campaigns/{id}/events and /v1/sweeps/{id}/events.")

	return m
}

// countTerminal ticks the per-kind terminal-transition counter; callers
// invoke it wherever a job reaches a terminal state (done, failed,
// expired, shutdown aborts, queue drains).
func (s *Server) countTerminal(job *Job, st JobState) {
	kind := "campaign"
	if job.sweep != nil {
		kind = "sweep"
	}
	s.met.jobs.With(kind, string(st)).Inc()
}
