package batch

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/xrand"
)

func testSpec() Spec {
	return Spec{
		Graph:   "ba:600:3",
		Process: "cobra",
		Branch:  2,
		Trials:  40,
		Seed:    11,
	}
}

func runCampaign(t *testing.T, spec Spec, cache *Cache) ([]TrialResult, *Aggregate) {
	t.Helper()
	c, err := Compile(spec, cache)
	if err != nil {
		t.Fatal(err)
	}
	var results []TrialResult
	agg, err := c.Run(context.Background(), func(r TrialResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	return results, agg
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Graph = "nope:4" },
		func(s *Spec) { s.Process = "walk" },
		func(s *Spec) { s.Branch = 0 },
		func(s *Spec) { s.Rho = 2 },
		func(s *Spec) { s.Rho = math.NaN() }, // NaN evades range comparisons
		func(s *Spec) { s.Rho = math.Inf(-1) },
		func(s *Spec) { s.Start = -1 },
		func(s *Spec) { s.Trials = 0 },
		func(s *Spec) { s.MaxRounds = -5 },
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); !errors.Is(err, ErrInput) {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	// Start range is only checkable after compilation.
	s := testSpec()
	s.Start = 600
	if _, err := Compile(s, nil); !errors.Is(err, ErrInput) {
		t.Fatal("out-of-range start accepted")
	}
}

// The determinism contract, clause by clause: identical per-trial results
// and identical aggregates across worker counts {1, 2, GOMAXPROCS}, and
// across cold vs warm graph cache.
func TestCampaignDeterminismAcrossWorkersAndCache(t *testing.T) {
	for _, process := range []string{"cobra", "bips"} {
		spec := testSpec()
		spec.Process = process

		spec.Workers = 1
		baseline, baseAgg := runCampaign(t, spec, nil)
		if len(baseline) != spec.Trials {
			t.Fatalf("%s: %d results for %d trials", process, len(baseline), spec.Trials)
		}
		for i, r := range baseline {
			if r.Trial != i {
				t.Fatalf("%s: results out of trial order at %d: %+v", process, i, r)
			}
		}

		cache := NewCache(4)
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			for pass, label := range []string{"cold", "warm"} {
				_ = pass
				spec.Workers = workers
				results, agg := runCampaign(t, spec, cache)
				if len(results) != len(baseline) {
					t.Fatalf("%s workers=%d %s: result count", process, workers, label)
				}
				for i := range results {
					if results[i] != baseline[i] {
						t.Fatalf("%s workers=%d %s cache: trial %d differs: %+v vs %+v",
							process, workers, label, i, results[i], baseline[i])
					}
				}
				if *agg != *baseAgg {
					t.Fatalf("%s workers=%d %s cache: aggregate differs: %+v vs %+v",
						process, workers, label, *agg, *baseAgg)
				}
			}
		}
		hits, misses, _ := cache.Stats()
		if misses != 1 || hits < 5 {
			t.Fatalf("%s: cache hits=%d misses=%d, want 1 miss and >=5 hits", process, hits, misses)
		}
	}
}

// The batch path must reproduce the naive library loop (sim.Runner +
// core.CoverTime / bips.InfectionTime derivations) bit for bit.
func TestCampaignMatchesNaiveLibraryLoop(t *testing.T) {
	spec := testSpec()
	g, err := graphspec.Parse(spec.Graph, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}

	results, _ := runCampaign(t, spec, nil)
	cfg := core.Config{Branch: spec.Branch, Rho: spec.Rho, Lazy: spec.Lazy}
	for k := 0; k < spec.Trials; k++ {
		want, err := core.CoverTime(g, cfg, spec.Start, xrand.NewStream(spec.Seed, uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if results[k].Rounds != want {
			t.Fatalf("cobra trial %d: batch %d vs library %d", k, results[k].Rounds, want)
		}
	}

	spec.Process = "bips"
	results, _ = runCampaign(t, spec, nil)
	bcfg := bips.Config{Branch: spec.Branch, Rho: spec.Rho, Lazy: spec.Lazy}
	for k := 0; k < spec.Trials; k++ {
		want, err := bips.InfectionTime(g, bcfg, spec.Start, xrand.NewStream(spec.Seed, uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if results[k].Rounds != want {
			t.Fatalf("bips trial %d: batch %d vs library %d", k, results[k].Rounds, want)
		}
	}
}

func TestCampaignStream(t *testing.T) {
	spec := testSpec()
	spec.Workers = 4
	c, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, wait := c.Stream(context.Background())
	var got []TrialResult
	for r := range results {
		got = append(got, r)
	}
	agg, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != spec.Trials || agg.Completed != spec.Trials {
		t.Fatalf("streamed %d results, aggregate %d", len(got), agg.Completed)
	}
	for i, r := range got {
		if r.Trial != i {
			t.Fatalf("stream out of order at %d: %+v", i, r)
		}
	}
}

// Round-limit failures surface as errors and stop the campaign early.
func TestCampaignRoundLimitError(t *testing.T) {
	spec := testSpec()
	spec.Graph = "path:400"
	spec.MaxRounds = 2 // a 400-path cannot cover in 2 rounds
	spec.Workers = 4
	c, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), nil)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "trial ") {
		t.Fatalf("error lost its trial index: %v", err)
	}
}

func TestCampaignContextCancel(t *testing.T) {
	spec := testSpec()
	spec.Trials = 100000
	c, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err = c.Run(ctx, func(TrialResult) {
		n++
		if n == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCacheEviction(t *testing.T) {
	cache := NewCache(2)
	for _, spec := range []string{"cycle:64", "cycle:65", "cycle:66"} {
		if _, err := cache.GetOrBuild(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := cache.Stats(); size != 2 {
		t.Fatalf("cache size %d, want 2", size)
	}
	// cycle:64 was evicted (LRU), cycle:66 is resident.
	if _, err := cache.GetOrBuild("cycle:66", 1); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := cache.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	// Same spec, different seed: distinct key (random families differ).
	if _, err := cache.GetOrBuild("cycle:66", 2); err != nil {
		t.Fatal(err)
	}
	if _, misses2, _ := cache.Stats(); misses2 != 4 {
		t.Fatalf("seed not part of key: misses=%d", misses2)
	}
	// Bad specs never enter the cache.
	if _, err := cache.GetOrBuild("bogus:1", 1); !errors.Is(err, graphspec.ErrSpec) {
		t.Fatal("bogus spec accepted")
	}
}

func TestCacheConcurrentSingleBuild(t *testing.T) {
	cache := NewCache(4)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := cache.GetOrBuild("ws:2000:6:0.1", 3)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := cache.Stats()
	if misses != 1 || hits != 7 || size != 1 {
		t.Fatalf("hits=%d misses=%d size=%d, want 7/1/1", hits, misses, size)
	}
}

// ForEach must join every concurrent failure, not just the first.
func TestForEachJoinsErrors(t *testing.T) {
	errA := errors.New("a")
	err := ForEach(context.Background(), 1, 4, 4, func(k int, _ *xrand.RNG) error {
		return errA
	})
	if !errors.Is(err, errA) {
		t.Fatalf("lost error identity: %v", err)
	}
	// All four trials started before any failure could propagate is not
	// guaranteed; what is guaranteed is that every error that did occur is
	// present, tagged with its trial index.
	if !strings.Contains(err.Error(), "trial 0: a") {
		t.Fatalf("missing trial tag: %v", err)
	}
}
