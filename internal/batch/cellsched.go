package batch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/repro/cobra/internal/obs"
)

// The sweep cell scheduler: a two-level scheduler that runs a sweep's
// cells concurrently while preserving, bit for bit, the observable
// behavior of the sequential cell loop it replaced.
//
// # Architecture
//
// Three roles cooperate over channels:
//
//   - The *admitter* (one goroutine) walks cells in cell-index order —
//     graphs outermost, the sweep's admission order. For each cell it
//     first acquires a window slot (backpressure, see below), then calls
//     admit(cell) — for sweeps, compiling the cell's campaign through the
//     shared graph cache — and hands the cell to the run queue. Admission
//     is strictly sequential, so cell c is admitted only after every cell
//     < c: all cells of graph g touch the cache before any cell of graph
//     g+1, and even a capacity-1 cache compiles each distinct graph
//     exactly once.
//   - The *cell workers* (up to CellWorkers goroutines) pull admitted
//     cells off the run queue and execute them, forwarding each cell's
//     trial results (already in trial order) and one final done event
//     into the shared event stream.
//   - The *committer* (the caller's goroutine) owns delivery: it commits
//     cells strictly in cell-index order. The head cell — the lowest
//     uncommitted index — streams its trials live; trials of cells that
//     completed out of order wait in the reorder buffer and are flushed,
//     in (cell, trial) order, the moment their cell becomes the head. A
//     cell's window slot is released only when the cell commits.
//
// # Backpressure window
//
// The semaphore bounds the window of admitted-but-uncommitted cells to
// the worker count K: at most K cells are compiled, running, or buffered
// at any moment, so at most K cells hold engine workspaces and the
// reorder buffer never holds more than K-1 completed cells. Because
// commits are in admission order, the head cell always owns a slot and a
// worker, so the window always drains — no schedule can deadlock it.
//
// # Determinism
//
// Per-cell event order is the cell's own trial order (one worker runs one
// cell, campaign.Run delivers in trial order); the committer serializes
// across cells by buffering. The delivered stream — and therefore every
// aggregate folded from it — is identical for every worker count and
// completion order, including K=1, which reproduces the old sequential
// loop exactly. sweep_conform_test.go and cellsched_test.go pin this.

// CellPhase is the lifecycle of one sweep cell under the scheduler.
type CellPhase string

const (
	// CellQueued means the cell has not been admitted yet.
	CellQueued CellPhase = "queued"
	// CellRunning means the cell has been admitted (its campaign is
	// compiled) and is executing or awaiting a cell worker.
	CellRunning CellPhase = "running"
	// CellDone means the cell committed: all its results are delivered.
	CellDone CellPhase = "done"
	// CellFailed marks a cell that will never commit: the scheduler emits
	// it for the failing cell itself (whether admission or execution
	// failed), and the job layer extends it to cells cancelled in flight,
	// so a failed sweep's status cannot report phantom running cells.
	CellFailed CellPhase = "failed"
)

// cellScheduler runs n cells with at most `workers` in flight. The zero
// value is not usable; fill every field but first and onPhase (optional).
type cellScheduler struct {
	n       int
	workers int
	// first is the resume point: cells [0, first) are treated as already
	// committed (a replayed journal prefix) — they are never admitted, run,
	// or phase-notified, and their slots in the returned aggregate slice
	// stay nil for the caller to fill from the replayed prefix. Admission
	// and commit both start at first, so the delivered stream is exactly
	// the tail an uninterrupted run would have produced from cell `first`
	// onward. Zero resumes nothing (the full schedule).
	first int
	// admit is called in cell-index order from the admission goroutine,
	// before the cell reaches a worker. Sweeps compile the cell's campaign
	// here; an error marks the cell failed and stops further admissions.
	admit func(cell int) error
	// run executes an admitted cell on a worker goroutine, delivering its
	// trial results in trial order through deliver.
	run func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error)
	// wrap decorates a failed cell's error with its identity.
	wrap func(cell int, err error) error
	// onPhase, when non-nil, observes lifecycle transitions: CellRunning
	// from the admission goroutine, CellDone from the committer. Calls for
	// one cell are ordered; calls for different cells may be concurrent.
	onPhase func(cell int, phase CellPhase)
	// Observe-only instruments (nil = no-op; the obs instruments are
	// nil-receiver safe). None of them feeds back into scheduling: the
	// schedule, admission order, and delivered stream are identical with
	// and without them.
	stalls   *obs.Counter   // admitter blocked on a full admission window
	reorder  *obs.Gauge     // cells holding buffered out-of-order events
	cellWall *obs.Histogram // per-cell wall seconds on a worker
}

// cellEvent is one message from a worker to the committer: a trial result
// (done=false) or the cell's completion notice (done=true).
type cellEvent struct {
	cell int
	res  TrialResult
	done bool
	agg  *Aggregate
	err  error
}

// cellTask is one admitted cell on the run queue; err carries a failed
// admission to the committer through the same ordered machinery.
type cellTask struct {
	cell int
	err  error
}

// pendingCell is the reorder buffer's record of a cell that has produced
// events while not at the head of the commit order.
type pendingCell struct {
	buf  []TrialResult
	done bool
	agg  *Aggregate
	err  error
}

// execute runs the schedule, invoking onResult (may be nil) for every
// trial result in strict (cell, trial) order, and returns the per-cell
// aggregates in cell order. The first failing cell (in commit order)
// aborts the schedule and is returned wrapped; cells before it commit
// normally, cells after it are cancelled and their results discarded.
func (cs *cellScheduler) execute(ctx context.Context, onResult func(CellResult)) ([]*Aggregate, error) {
	if cs.n == 0 {
		return nil, nil
	}
	if cs.first < 0 || cs.first > cs.n {
		return nil, fmt.Errorf("%w: resume cell %d outside [0, %d]", ErrInput, cs.first, cs.n)
	}
	if cs.first == cs.n {
		return make([]*Aggregate, cs.n), nil
	}
	workers := cs.workers
	if workers < 1 {
		workers = 1
	}
	if workers > cs.n-cs.first {
		workers = cs.n - cs.first
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, workers) // admission→commit window slots
	runq := make(chan cellTask)         // admitted cells, in cell order
	events := make(chan cellEvent)      // merged worker → committer stream

	// Admitter: strict cell-index order, one slot per uncommitted cell.
	go func() {
		defer close(runq)
		for c := cs.first; c < cs.n; c++ {
			select {
			case sem <- struct{}{}:
			default:
				// The window is full: every slot is held by an uncommitted
				// cell, so admission (and graph compilation) waits on a
				// commit. Counted, then the blocking wait proceeds as before.
				cs.stalls.Inc()
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
			}
			err := cs.admit(c)
			if err == nil {
				cs.phase(c, CellRunning)
			}
			select {
			case runq <- cellTask{cell: c, err: err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return // sequential semantics: nothing past a failed admission
			}
		}
	}()

	// Cell workers: execute admitted cells, forward events. Every send is
	// unconditional: the committer always drains events until close, and a
	// conditional send racing ctx.Done could silently drop a trial from a
	// cell that still completes successfully — breaking the every-result-
	// delivered-before-folded contract on a cancelled-at-the-finish-line
	// schedule.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range runq {
				if task.err != nil {
					events <- cellEvent{cell: task.cell, done: true, err: task.err}
					continue
				}
				start := time.Now()
				agg, err := cs.run(ctx, task.cell, func(r TrialResult) {
					events <- cellEvent{cell: task.cell, res: r}
				})
				cs.cellWall.Observe(time.Since(start).Seconds())
				events <- cellEvent{cell: task.cell, done: true, agg: agg, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(events)
	}()

	// Committer: deliver in (cell, trial) order, commit in cell order.
	aggs := make([]*Aggregate, cs.n)
	pend := make(map[int]*pendingCell, workers)
	next := cs.first // head: the lowest uncommitted cell index
	var firstErr error
	for ev := range events {
		if firstErr != nil {
			continue // draining a cancelled schedule
		}
		if !ev.done && ev.cell == next {
			// Head cell trials stream live; its buffered prefix (if any)
			// was flushed when it became the head, before this receive.
			if onResult != nil {
				onResult(CellResult{Cell: ev.cell, TrialResult: ev.res})
			}
			continue
		}
		p := pend[ev.cell]
		if p == nil {
			p = &pendingCell{}
			pend[ev.cell] = p
			cs.reorder.Add(1)
		}
		if ev.done {
			p.done, p.agg, p.err = true, ev.agg, ev.err
		} else {
			p.buf = append(p.buf, ev.res)
		}
		// Commit every consecutive completed cell starting at the head.
		for {
			p := pend[next]
			if p == nil || !p.done {
				break
			}
			delete(pend, next)
			cs.reorder.Add(-1)
			if p.err != nil {
				firstErr = cs.wrap(next, p.err)
				cs.phase(next, CellFailed)
				cancel()
				break
			}
			aggs[next] = p.agg
			cs.phase(next, CellDone)
			<-sem
			next++
			// The new head may have buffered results from before its
			// promotion; flush them now so later live trials follow them.
			if q := pend[next]; q != nil && len(q.buf) > 0 {
				if onResult != nil {
					for _, r := range q.buf {
						onResult(CellResult{Cell: next, TrialResult: r})
					}
				}
				q.buf = nil
			}
		}
	}
	// A cancelled or failed schedule leaves undrained reorder entries;
	// release their gauge contribution so it tracks live buffers only.
	cs.reorder.Add(int64(-len(pend)))
	if firstErr != nil {
		return nil, firstErr
	}
	if next < cs.n {
		// Cancelled (or the parent ctx expired) with no cell error
		// committed: surface the cause rather than partial results.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: cell scheduler stopped after %d of %d cells", ErrInput, next, cs.n)
	}
	return aggs, nil
}

func (cs *cellScheduler) phase(cell int, ph CellPhase) {
	if cs.onPhase != nil {
		cs.onPhase(cell, ph)
	}
}
