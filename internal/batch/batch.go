// Package batch is the amortized multi-trial simulation subsystem: it
// runs large campaigns of independent COBRA/BIPS trials against a shared
// graph, pooling per-worker engine workspaces so trials after the first
// pay no graph compilation, no connectivity re-check, and no kernel
// allocations — only the simulation itself. It is the library layer under
// the cobrad job service (internal/batch.Server, cmd/cobrad).
//
// # Campaign determinism invariant
//
// The result of trial k of a campaign is a pure function of
// (graph spec, process config, master seed, k):
//
//   - trial k's kernel seed comes from the stream NewStream(Seed, k),
//     exactly the derivation of the naive sim.Runner + core.CoverTime /
//     bips.InfectionTime loop, so the batch path reproduces the library
//     path bit for bit;
//   - worker count, workspace reuse, graph-cache hits vs misses, and the
//     HTTP vs library entry point are all invisible to trial results;
//   - per-trial results are delivered, and aggregated, in trial-index
//     order, so the campaign's aggregate statistics are bit-identical
//     across worker counts too.
//
// Tests in batch_test.go and service_test.go enforce every clause under
// the race detector.
//
// # Parameter sweeps
//
// Sweep (sweep.go) lifts campaigns to grids: one SweepSpec carries axes
// (graph specs × processes × branch factors × rho values) that expand
// row-major into an ordered list of campaign cells, all sharing the
// sweep's scalar fields and master seed. Up to SweepSpec.CellWorkers
// cells execute concurrently through the cell scheduler (cellsched.go)
// against one shared graph cache — cells are admitted (compiled)
// strictly in cell-index order, so each distinct graph spec compiles
// exactly once per cache even at capacity 1 — and one shared workspace
// pool; a reorder buffer commits results and folds aggregates strictly
// in (cell, trial) order no matter which order cells finish in. Because
// every cell carries the sweep seed, each cell is byte-identical to
// submitting its Spec as a standalone campaign, for every cell-worker
// count; see sweep.go and cellsched.go for the full admission-order and
// reorder-buffer contract.
//
// # Durability and the shutdown contract
//
// The cobrad service (service.go) optionally persists jobs through a
// Store (persist.go, backed by internal/store): accepted submissions are
// journaled before the 202, results are appended as they commit, and a
// terminal record seals finished jobs. Recovery restores finished jobs
// (results served from the journal — the same bytes the live stream
// wrote) and *resumes* interrupted ones: the committed journal prefix is
// replayed into RAM (Campaign.RunFrom / Sweep.RunFrom pick up at the
// first uncommitted trial), so only the tail is recomputed, and the
// campaign determinism invariant makes replay + tail byte-identical to
// the lost run. Journals recovery cannot use are quarantined to
// <id>.ndjson.corrupt. The queue is a priority heap (Spec.Priority, FIFO
// per band) and Spec.Deadline expires jobs that never started in time
// (terminal state "expired"); with ServerConfig.Preempt, a submission
// that outranks every running job checkpoints the lowest-priority one at
// its next trial boundary and requeues it to resume later — the same
// replay path, so preemption too is invisible in the result bytes.
// Close leaves no job in a non-terminal state — running jobs abort,
// queued jobs are drained and failed — and a results stream truncated by
// shutdown is distinguishable from a complete one by the X-Cobrad-Stream
// trailer. service_shutdown_test.go and service_persist_test.go enforce
// every clause under the race detector.
//
// # Observability (observe-only)
//
// The service instruments every layer through internal/obs (metrics.go):
// scheduler queue depth by priority band, admission-wait and per-cell
// wall-time histograms, reorder-buffer occupancy, backpressure stalls,
// graph-cache hit rates, trials and rounds by frontier representation,
// and the store's append/fsync/quarantine/resume-tail counters — served
// at GET /metrics (Prometheus text exposition) and, as one flat JSON
// object, at GET /v1/stats. Per-job server-sent event streams
// (events.go) follow a job's lifecycle live. The invariant: instruments
// are atomic updates beside the hot path and event streams are read-side
// followers of the per-job notify channel; nothing observable ever feeds
// back into scheduling or results. Library users of Campaign.Run /
// Sweep.Run carry nil instruments (every obs method is nil-receiver
// safe) and take the exact same schedule and bytes — the conformance
// suites compare the two paths directly, and service_obs_test.go hammers
// scrapers and followers against running sweeps under the race detector.
package batch

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/xrand"
)

// ErrRoundLimit flags a trial that hit its round cap before completing;
// it mirrors core.ErrRoundLimit / bips.ErrRoundLimit for the batch path.
var ErrRoundLimit = fmt.Errorf("batch: round limit exceeded")

// Spec describes a campaign: which process to run, on which graph, how
// many trials, and the master seed the whole campaign is a pure function
// of. The JSON field names are the cobrad wire format.
type Spec struct {
	// Graph is a graphspec string ("family:args", see internal/graphspec).
	Graph string `json:"graph"`
	// Process is "cobra" or "bips".
	Process string `json:"process"`
	// Branch is the integer branching factor b >= 1.
	Branch int `json:"branch"`
	// Rho adds a fractional extra branch with probability Rho in [0, 1].
	Rho float64 `json:"rho,omitempty"`
	// Lazy selects the lazy variant (needed on bipartite graphs).
	Lazy bool `json:"lazy,omitempty"`
	// Start is the COBRA start vertex respectively the BIPS source.
	Start int `json:"start"`
	// Trials is the number of independent trials.
	Trials int `json:"trials"`
	// Seed is the master seed; it also seeds random graph families.
	Seed uint64 `json:"seed"`
	// Workers bounds trial-level parallelism (<= 0: GOMAXPROCS). It never
	// affects results, only wall-clock time.
	Workers int `json:"workers,omitempty"`
	// MaxRounds caps a single trial; 0 means the library default of
	// 64·n·log2(n)+64 rounds (matching core.Config / bips.Config).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Priority orders the cobrad job queue: higher-priority jobs start
	// first; ties run in submission order. Like Workers it never affects
	// results — only when the job runs. The library Run path ignores it.
	Priority int `json:"priority,omitempty"`
	// Deadline, when non-empty, is an RFC3339 timestamp by which the job
	// must have *started*: a job still queued past its deadline is failed
	// with the distinct terminal state "expired" instead of running. A
	// running job is never killed by its deadline. The library Run path
	// ignores it.
	Deadline string `json:"deadline,omitempty"`
}

// DeadlineTime parses the spec deadline; the zero time means none.
func (s Spec) DeadlineTime() (time.Time, error) {
	return parseDeadline(s.Deadline)
}

func parseDeadline(deadline string) (time.Time, error) {
	if deadline == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, deadline)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: deadline must be RFC3339 (like 2026-01-02T15:04:05Z), got %q", ErrInput, deadline)
	}
	return t, nil
}

// Validate checks everything that can be checked without building the
// graph (the spec syntax included).
func (s Spec) Validate() error {
	if _, err := graphspec.Canonical(s.Graph); err != nil {
		return fmt.Errorf("%w: %v", ErrInput, err)
	}
	switch strings.ToLower(s.Process) {
	case "cobra", "bips":
	default:
		return fmt.Errorf("%w: process must be cobra or bips, got %q", ErrInput, s.Process)
	}
	if s.Branch < 1 {
		return fmt.Errorf("%w: branch must be >= 1, got %d", ErrInput, s.Branch)
	}
	if math.IsNaN(s.Rho) || s.Rho < 0 || s.Rho > 1 {
		return fmt.Errorf("%w: rho must be in [0,1], got %v", ErrInput, s.Rho)
	}
	if s.Start < 0 {
		return fmt.Errorf("%w: start must be >= 0, got %d", ErrInput, s.Start)
	}
	if s.Trials < 1 {
		return fmt.Errorf("%w: trials must be >= 1, got %d", ErrInput, s.Trials)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("%w: max_rounds must be >= 0, got %d", ErrInput, s.MaxRounds)
	}
	if _, err := s.DeadlineTime(); err != nil {
		return err
	}
	return nil
}

// TrialResult is the measurement of one completed trial.
type TrialResult struct {
	// Trial is the trial index in [0, Spec.Trials).
	Trial int `json:"trial"`
	// Rounds is the cover time (COBRA) or infection time (BIPS).
	Rounds int `json:"rounds"`
	// Sent and Coalesced are the COBRA transmission counters (0 for BIPS).
	Sent      int64 `json:"sent,omitempty"`
	Coalesced int64 `json:"coalesced,omitempty"`
	// DenseRounds/SparseRounds/TiledRounds report which representation the
	// adaptive kernel picked, for capacity diagnostics. Tiled is the default
	// dense path; DenseRounds counts only the legacy flat scan
	// (Params.TileWords = -1).
	DenseRounds  int `json:"dense_rounds"`
	SparseRounds int `json:"sparse_rounds"`
	TiledRounds  int `json:"tiled_rounds"`
}

// Aggregate is the online summary of a campaign's per-trial round counts.
type Aggregate struct {
	// Completed is how many trials have been folded in so far.
	Completed int `json:"completed"`
	// Rounds summarises the per-trial round counts (quartiles are P²
	// streaming estimates; see stats.Online).
	Rounds stats.Summary `json:"rounds"`
}

// Campaign is a compiled campaign: spec plus the shared graph, ready to
// run any number of times.
type Campaign struct {
	spec Spec
	g    *graph.Graph
	pool *sync.Pool // *engine.Workspace, one live per worker
}

// Compile validates spec and builds (or fetches from cache, when cache is
// non-nil) its graph. The returned campaign is safe for concurrent Runs.
func Compile(spec Spec, cache *Cache) (*Campaign, error) {
	return compile(spec, cache, nil)
}

// compile is Compile with an optional shared workspace pool: sweeps pass
// one pool for all their cells so workspaces are reused across cells (a
// nil pool gives the campaign a private one). Workspace sharing, like
// worker count, never affects trial results.
func compile(spec Spec, cache *Cache, pool *sync.Pool) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Process = strings.ToLower(spec.Process)
	var g *graph.Graph
	var err error
	if cache != nil {
		g, err = cache.GetOrBuild(spec.Graph, spec.Seed)
	} else {
		g, err = graphspec.Parse(spec.Graph, spec.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInput, err)
	}
	if spec.Start >= g.N() {
		return nil, fmt.Errorf("%w: start %d out of range for n=%d", ErrInput, spec.Start, g.N())
	}
	if pool == nil {
		pool = &sync.Pool{New: func() any { return engine.NewWorkspace() }}
	}
	return &Campaign{spec: spec, g: g, pool: pool}, nil
}

// Spec returns the compiled (normalized) spec.
func (c *Campaign) Spec() Spec { return c.spec }

// Graph returns the shared compiled graph.
func (c *Campaign) Graph() *graph.Graph { return c.g }

// maxRounds applies the library-wide default cap (engine.DefaultMaxRounds,
// shared with core.Config and bips.Config) unless the spec overrides it.
func (c *Campaign) maxRounds() int {
	if c.spec.MaxRounds > 0 {
		return c.spec.MaxRounds
	}
	return engine.DefaultMaxRounds(c.g.N())
}

// Run executes the campaign. Completed trials are delivered to onResult
// (which may be nil) in trial-index order, each before it is folded into
// the returned aggregate. Cancel ctx to abort early; on any trial error
// the campaign stops claiming new trials and returns every error that
// occurred (errors.Join).
func (c *Campaign) Run(ctx context.Context, onResult func(TrialResult)) (*Aggregate, error) {
	return c.RunFrom(ctx, 0, nil, onResult)
}

// RunFrom executes the campaign's tail, trials [from, Trials), assuming
// trials [0, from) were already delivered — a resumed job's committed
// journal prefix, or the prefix a preemption checkpointed. Because trial
// k depends only on (spec, config, seed, k), the skipped prefix is
// byte-identical to what a full run would have produced, so
// prefix-replay + RunFrom reproduces the uninterrupted stream exactly.
// online, when non-nil, must hold the fold of exactly that prefix in
// trial order; RunFrom continues folding the tail into it, making the
// returned aggregate bit-identical to the uninterrupted run's (nil
// starts an empty fold — correct only when from is 0). Run is
// RunFrom(ctx, 0, nil, onResult).
func (c *Campaign) RunFrom(ctx context.Context, from int, online *stats.Online, onResult func(TrialResult)) (*Aggregate, error) {
	if from < 0 || from > c.spec.Trials {
		return nil, fmt.Errorf("%w: resume point %d outside [0, %d]", ErrInput, from, c.spec.Trials)
	}
	if online == nil {
		online = stats.NewOnline()
	}
	workers := c.spec.Workers
	resCh := make(chan TrialResult, 64)
	errCh := make(chan error, 1)
	go func() {
		errCh <- ForEachFrom(ctx, c.spec.Seed, workers, from, c.spec.Trials, func(k int, rng *xrand.RNG) error {
			ws := c.pool.Get().(*engine.Workspace)
			defer c.pool.Put(ws)
			res, err := c.runTrial(ws, k, rng)
			if err != nil {
				return err
			}
			select {
			case resCh <- res:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		close(resCh)
	}()

	// Reorder completions into trial order so both the result stream and
	// the online aggregation are independent of worker scheduling.
	pending := make(map[int]TrialResult)
	next := from
	for res := range resCh {
		pending[res.Trial] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if onResult != nil {
				onResult(r)
			}
			online.Add(float64(r.Rounds))
		}
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	summary, err := online.Summary()
	if err != nil {
		return nil, err
	}
	return &Aggregate{Completed: online.N(), Rounds: summary}, nil
}

// Stream launches the campaign and returns a channel of per-trial results
// in trial order plus a wait function returning the final aggregate. The
// channel is unbuffered (consumer-paced) and closed when the campaign
// finishes; cancel ctx to abandon it without draining.
func (c *Campaign) Stream(ctx context.Context) (<-chan TrialResult, func() (*Aggregate, error)) {
	out := make(chan TrialResult)
	type outcome struct {
		agg *Aggregate
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		agg, err := c.Run(ctx, func(r TrialResult) {
			select {
			case out <- r:
			case <-ctx.Done():
			}
		})
		close(out)
		done <- outcome{agg, err}
	}()
	return out, func() (*Aggregate, error) {
		o := <-done
		return o.agg, o.err
	}
}

// runTrial runs trial k in ws. The kernel seed is one Uint64 drawn from
// the trial's stream — the same derivation as core.New / bips.New — so
// the trajectory matches the non-batch library path exactly.
func (c *Campaign) runTrial(ws *engine.Workspace, k int, rng *xrand.RNG) (TrialResult, error) {
	par := engine.Params{Branch: c.spec.Branch, Rho: c.spec.Rho, Lazy: c.spec.Lazy, Workers: 1}
	seed := rng.Uint64()
	var kern *engine.Kernel
	var err error
	if c.spec.Process == "cobra" {
		kern, err = engine.NewCobraWith(ws, c.g, par, []int{c.spec.Start}, seed)
	} else {
		kern, err = engine.NewBipsWith(ws, c.g, par, c.spec.Start, seed)
	}
	if err != nil {
		return TrialResult{}, err
	}
	limit := c.maxRounds()
	for !kern.Complete() {
		if kern.Round() >= limit {
			return TrialResult{}, fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, kern.Round(), c.g.Name())
		}
		kern.Step()
	}
	return TrialResult{
		Trial:        k,
		Rounds:       kern.Round(),
		Sent:         kern.Sent(),
		Coalesced:    kern.Coalesced(),
		DenseRounds:  kern.DenseRounds(),
		SparseRounds: kern.SparseRounds(),
		TiledRounds:  kern.TiledRounds(),
	}, nil
}
