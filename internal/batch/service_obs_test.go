package batch

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/cobra/internal/obs"
)

// The metrics-surface suite: /metrics must be valid Prometheus text
// exposition covering every instrumented layer, must agree with
// /v1/stats (the two endpoints read the same instruments), and both must
// survive being hammered concurrently with a running sweep under -race —
// without perturbing the sweep's results (observe-only).

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	return string(body)
}

func fetchStats(t *testing.T, ts *httptest.Server) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	var stats map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func statInt(t *testing.T, stats map[string]json.RawMessage, key string) int64 {
	t.Helper()
	raw, ok := stats[key]
	if !ok {
		t.Fatalf("/v1/stats missing %q", key)
	}
	n, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatalf("/v1/stats %q = %s: %v", key, raw, err)
	}
	return n
}

// metricValue extracts an unlabeled sample's value from an exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// After a campaign and a sweep run on a durable server, the exposition
// lints, names every layer's instruments, and agrees with /v1/stats.
func TestMetricsExpositionCoversAllLayers(t *testing.T) {
	_, ts := newPersistentServer(t, t.TempDir(), ServerConfig{CellWorkers: 2})
	cid := postCampaign(t, ts, testSpec())
	awaitState(t, ts, cid, StateDone)
	sid := postSweep(t, ts, testSweepSpec())
	awaitSweepState(t, ts, sid, StateDone)

	exposition := scrapeMetrics(t, ts)
	layers := map[string][]string{
		"scheduler": {
			"cobrad_queue_depth", "cobrad_jobs_running", "cobrad_jobs_total",
			"cobrad_admission_wait_seconds", "cobrad_preemptions_total",
		},
		"cell scheduler": {
			"cobrad_cell_wall_seconds", "cobrad_reorder_buffer_cells",
			"cobrad_backpressure_stalls_total",
		},
		"graph cache": {
			"cobrad_graph_cache_hits_total", "cobrad_graph_cache_misses_total",
			"cobrad_graph_cache_evictions_total", "cobrad_graph_cache_entries",
		},
		"engine": {
			"cobrad_trials_executed_total", "cobrad_rounds_total",
		},
		"store": {
			"cobrad_journal_appends_total", "cobrad_journal_fsync_seconds",
			"cobrad_journal_quarantines_total", "cobrad_resume_tail_trials",
		},
	}
	for layer, names := range layers {
		for _, name := range names {
			if !strings.Contains(exposition, "# TYPE "+name+" ") {
				t.Errorf("%s layer: metric %s missing from exposition", layer, name)
			}
		}
	}

	stats := fetchStats(t, ts)
	wantTrials := int64(testSpec().Trials + len(testSweepSpec().Cells())*testSweepSpec().Trials)
	if got := statInt(t, stats, "trials_executed"); got != wantTrials {
		t.Fatalf("trials_executed %d, want %d", got, wantTrials)
	}
	if got := metricValue(t, exposition, "cobrad_trials_executed_total"); int64(got) != wantTrials {
		t.Fatalf("cobrad_trials_executed_total %v, want %d", got, wantTrials)
	}
	// Cross-endpoint parity on the shared instruments.
	for key, metric := range map[string]string{
		"cache_hits":      "cobrad_graph_cache_hits_total",
		"cache_misses":    "cobrad_graph_cache_misses_total",
		"journal_appends": "cobrad_journal_appends_total",
	} {
		if s, m := statInt(t, stats, key), int64(metricValue(t, exposition, metric)); s != m {
			t.Fatalf("%s=%d but %s=%d", key, s, metric, m)
		}
	}
	// The cell scheduler ran every sweep cell on a worker.
	if got := metricValue(t, exposition, "cobrad_cell_wall_seconds_count"); int(got) != len(testSweepSpec().Cells()) {
		t.Fatalf("cell_wall count %v, want %d cells", got, len(testSweepSpec().Cells()))
	}
}

// Every documented /v1/stats key is present (the full counter set).
func TestStatsFullCounterSet(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	id := postCampaign(t, ts, testSpec())
	awaitState(t, ts, id, StateDone)
	stats := fetchStats(t, ts)
	for _, key := range []string{
		"trials_executed", "preemptions", "queue_depth", "jobs_running",
		"cache_hits", "cache_misses", "cache_evictions", "cache_size",
		"journal_appends", "journal_fsyncs", "journal_quarantines",
		"backpressure_stalls", "event_streams", "admission_waits",
		"rounds_dense", "rounds_sparse", "rounds_tiled",
	} {
		statInt(t, stats, key)
	}
	if _, ok := stats["queue_depth_by_band"]; !ok {
		t.Fatal("/v1/stats missing queue_depth_by_band")
	}
	// Every trial's rounds split into sparse, tiled-dense and legacy
	// flat-dense phases; the three counters summed must cover at least one
	// round per trial.
	d, sp, td := statInt(t, stats, "rounds_dense"), statInt(t, stats, "rounds_sparse"), statInt(t, stats, "rounds_tiled")
	if d+sp+td < int64(testSpec().Trials) {
		t.Fatalf("rounds_dense %d + rounds_sparse %d + rounds_tiled %d < %d trials", d, sp, td, testSpec().Trials)
	}
}

// Concurrency hammer: scrape /metrics, /v1/stats, and job statuses from
// many goroutines while a sweep runs (meant for -race). The sweep's
// results must be identical to the unwatched library path — observation
// cannot perturb execution.
func TestStatsHammerDuringSweep(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{CellWorkers: 2})
	spec := testSweepSpec()
	spec.Trials = 60
	id := postSweep(t, ts, spec)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/metrics", "/v1/stats", "/v1/sweeps/" + id, "/v1/sweeps"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(g+i)%len(paths)])
				if err != nil {
					return // server shut down under us; the main goroutine decides
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Millisecond)
			}
		}(g)
	}
	awaitSweepState(t, ts, id, StateDone)
	close(stop)
	wg.Wait()

	got := fetchSweepResults(t, ts, id)
	want, _ := runSweep(t, spec, NewCache(8))
	if len(got) != len(want) {
		t.Fatalf("hammered sweep returned %d results, library path %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged under observation: %+v vs %+v", i, got[i], want[i])
		}
	}
	scrapeMetrics(t, ts) // final exposition still lints
}
