package batch

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/graphspec"
)

// Cache is a thread-safe LRU of compiled graphs keyed by canonical
// graphspec string plus generation seed. Graphs are immutable after
// construction, so one cached instance is safely shared by every
// campaign (and every worker) that references it.
//
// Concurrent requests for the same missing key build the graph once: the
// first requester inserts a pending entry and builds outside the lock;
// later requesters block on the entry's ready channel.
type Cache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	m            map[string]*list.Element
	hits, misses int64
	evictions    int64
}

type cacheEntry struct {
	key   string
	g     *graph.Graph
	err   error
	ready chan struct{}
}

// NewCache returns an LRU cache holding up to capacity graphs
// (capacity < 1 is treated as 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Key returns the cache key for (spec, seed): the canonical spec string
// tagged with the generation seed. Errors mirror graphspec.Canonical.
func Key(spec string, seed uint64) (string, error) {
	canon, err := graphspec.Canonical(spec)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s#%d", canon, seed), nil
}

// GetOrBuild returns the graph for (spec, seed), building and caching it
// on a miss. Build failures are returned and never cached.
func (c *Cache) GetOrBuild(spec string, seed uint64) (*graph.Graph, error) {
	canon, err := graphspec.Canonical(spec)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s#%d", canon, seed)

	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.g, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.m[key] = el
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	e.g, e.err = graphspec.Parse(canon, seed)
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.m[key]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.g, e.err
}

// evictLocked trims the cache to capacity, oldest first, skipping entries
// whose build is still in flight (they are evicted once superseded).
func (c *Cache) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			c.ll.Remove(el)
			delete(c.m, e.key)
			c.evictions++
		default: // still building; leave it
		}
		el = prev
	}
}

// Stats returns cumulative hit/miss counts and the current entry count.
func (c *Cache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Evictions returns how many completed entries capacity pressure has
// removed (failed builds cleaned out of the cache do not count).
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
