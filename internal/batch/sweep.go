package batch

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graphspec"
)

// Parameter-sweep campaigns: one submission carrying axes whose cross
// product expands to a deterministic ordered grid of campaign cells, all
// run through the existing campaign scheduler so distinct graphs compile
// exactly once (LRU cache) and engine workspaces are shared across cells.
//
// # Cell ordering
//
// Cells() expands the axes row-major in declaration order — graphs
// outermost, then processes, then branches, then rhos innermost:
//
//	cell index c = ((gi·|P| + pi)·|B| + bi)·|R| + ri
//
// Graphs vary slowest by design: consecutive cells share a graph, so even
// a capacity-1 cache and a cold workspace pool stay warm through a whole
// graph's block of cells.
//
// # Sweep determinism contract
//
// Every cell carries the sweep's master seed, so trial k of cell c is a
// pure function of (cell spec, sweep seed, k) — and is *byte-identical*
// to trial k of the standalone campaign obtained by submitting cell c's
// Spec on its own (same graph spec, config, and seed). Cells execute and
// deliver in cell-index order, trials in trial-index order within each
// cell, so the flattened result stream and all aggregates are independent
// of worker count, cache temperature, workspace sharing, and the HTTP vs
// library entry point. sweep_test.go and service_test.go enforce every
// clause under the race detector.

// SweepSpec describes a parameter-sweep campaign: the cross product of
// the axes (Graphs × Processes × Branches × Rhos) expands to a grid of
// campaign cells sharing the scalar fields below. The JSON field names
// are the cobrad wire format (POST /v1/sweeps).
type SweepSpec struct {
	// Graphs is the graph-spec axis; distinct entries (one or more).
	Graphs []string `json:"graphs"`
	// Processes is the process axis: entries from {"cobra", "bips"}.
	Processes []string `json:"processes"`
	// Branches is the integer branching-factor axis (each >= 1).
	Branches []int `json:"branches"`
	// Rhos is the fractional-branch axis (each in [0,1]); empty means the
	// single value 0.
	Rhos []float64 `json:"rhos,omitempty"`
	// Lazy selects the lazy variant for every cell.
	Lazy bool `json:"lazy,omitempty"`
	// Start is the start vertex / BIPS source for every cell.
	Start int `json:"start"`
	// Trials is the number of independent trials per cell.
	Trials int `json:"trials"`
	// Seed is the sweep master seed; every cell campaign carries it, and
	// it also seeds random graph families.
	Seed uint64 `json:"seed"`
	// Workers bounds trial-level parallelism within a cell (<= 0:
	// GOMAXPROCS). It never affects results, only wall-clock time.
	Workers int `json:"workers,omitempty"`
	// MaxRounds caps a single trial (0: library default).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// rhos returns the rho axis with the empty default applied.
func (s SweepSpec) rhos() []float64 {
	if len(s.Rhos) == 0 {
		return []float64{0}
	}
	return s.Rhos
}

// CellCount returns the number of cells the sweep expands to.
func (s SweepSpec) CellCount() int {
	return len(s.Graphs) * len(s.Processes) * len(s.Branches) * len(s.rhos())
}

// Validate checks every axis and scalar without building any graph.
// Axis entries must be valid and pairwise distinct (graphs by canonical
// form), so each cell is a distinct (spec, config) point of the grid.
func (s SweepSpec) Validate() error {
	if len(s.Graphs) == 0 || len(s.Processes) == 0 || len(s.Branches) == 0 {
		return fmt.Errorf("%w: sweep needs at least one graph, process and branch", ErrInput)
	}
	seenGraph := make(map[string]string, len(s.Graphs))
	for _, spec := range s.Graphs {
		canon, err := graphspec.Canonical(spec)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInput, err)
		}
		if prev, dup := seenGraph[canon]; dup {
			return fmt.Errorf("%w: duplicate graph axis entries %q and %q", ErrInput, prev, spec)
		}
		seenGraph[canon] = spec
	}
	seenProc := make(map[string]bool, len(s.Processes))
	for _, proc := range s.Processes {
		p := strings.ToLower(proc)
		switch p {
		case "cobra", "bips":
		default:
			return fmt.Errorf("%w: process must be cobra or bips, got %q", ErrInput, proc)
		}
		if seenProc[p] {
			return fmt.Errorf("%w: duplicate process axis entry %q", ErrInput, proc)
		}
		seenProc[p] = true
	}
	seenBranch := make(map[int]bool, len(s.Branches))
	for _, b := range s.Branches {
		if b < 1 {
			return fmt.Errorf("%w: branch must be >= 1, got %d", ErrInput, b)
		}
		if seenBranch[b] {
			return fmt.Errorf("%w: duplicate branch axis entry %d", ErrInput, b)
		}
		seenBranch[b] = true
	}
	seenRho := make(map[float64]bool, len(s.rhos()))
	for _, rho := range s.rhos() {
		if rho < 0 || rho > 1 {
			return fmt.Errorf("%w: rho must be in [0,1], got %v", ErrInput, rho)
		}
		if seenRho[rho] {
			return fmt.Errorf("%w: duplicate rho axis entry %v", ErrInput, rho)
		}
		seenRho[rho] = true
	}
	if s.Start < 0 {
		return fmt.Errorf("%w: start must be >= 0, got %d", ErrInput, s.Start)
	}
	if s.Trials < 1 {
		return fmt.Errorf("%w: trials must be >= 1, got %d", ErrInput, s.Trials)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("%w: max_rounds must be >= 0, got %d", ErrInput, s.MaxRounds)
	}
	return nil
}

// Cells expands the sweep into its ordered grid of campaign specs (see
// the cell-ordering contract above). Cell c of a valid sweep satisfies
// Cells()[c].Validate() == nil, and running it as a standalone campaign
// reproduces the sweep cell byte for byte.
func (s SweepSpec) Cells() []Spec {
	cells := make([]Spec, 0, s.CellCount())
	for _, g := range s.Graphs {
		for _, proc := range s.Processes {
			for _, b := range s.Branches {
				for _, rho := range s.rhos() {
					cells = append(cells, Spec{
						Graph:     g,
						Process:   strings.ToLower(proc),
						Branch:    b,
						Rho:       rho,
						Lazy:      s.Lazy,
						Start:     s.Start,
						Trials:    s.Trials,
						Seed:      s.Seed,
						Workers:   s.Workers,
						MaxRounds: s.MaxRounds,
					})
				}
			}
		}
	}
	return cells
}

// CellResult is one trial measurement tagged with its cell index; the
// embedded TrialResult fields are flattened on the wire (the NDJSON line
// format of GET /v1/sweeps/{id}/results).
type CellResult struct {
	Cell int `json:"cell"`
	TrialResult
}

// CellSummary is the per-cell aggregate row of a sweep: the cell's grid
// coordinates plus its online rounds summary.
type CellSummary struct {
	Cell      int        `json:"cell"`
	Graph     string     `json:"graph"`
	Process   string     `json:"process"`
	Branch    int        `json:"branch"`
	Rho       float64    `json:"rho"`
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Sweep is a compiled sweep: every cell campaign compiled against one
// shared graph cache and one shared workspace pool.
type Sweep struct {
	spec  SweepSpec
	cells []*Campaign
	cache *Cache
}

// CompileSweep validates spec and compiles every cell. Cells sharing a
// graph spec share one compiled graph: with a caller-provided cache each
// distinct graph is built at most once across the sweep *and* every other
// campaign using that cache; with a nil cache the sweep creates a private
// cache sized to its own graph axis, preserving the single-compile
// guarantee sweep-locally.
func CompileSweep(spec SweepSpec, cache *Cache) (*Sweep, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = NewCache(len(spec.Graphs))
	}
	pool := &sync.Pool{New: func() any { return engine.NewWorkspace() }}
	cellSpecs := spec.Cells()
	cells := make([]*Campaign, len(cellSpecs))
	for i, cs := range cellSpecs {
		c, err := compile(cs, cache, pool)
		if err != nil {
			return nil, fmt.Errorf("cell %d (%s): %w", i, cellName(cs), err)
		}
		cells[i] = c
	}
	return &Sweep{spec: spec, cells: cells, cache: cache}, nil
}

// Spec returns the sweep specification.
func (sw *Sweep) Spec() SweepSpec { return sw.spec }

// Cells returns the compiled cell campaigns in cell-index order.
func (sw *Sweep) Cells() []*Campaign { return sw.cells }

// CacheStats exposes the sweep's graph-cache counters (the caller's cache
// when one was provided).
func (sw *Sweep) CacheStats() (hits, misses int64, size int) { return sw.cache.Stats() }

// Run executes every cell in cell-index order and returns the per-cell
// summaries. Completed trials are delivered to onResult (may be nil) in
// (cell, trial) order, each before it is folded into its cell's
// aggregate. Trial-level parallelism within a cell follows the spec's
// Workers; cells themselves run sequentially, which keeps the flattened
// result stream deterministic and the shared cache/workspace pool warm.
// Cancel ctx to abort; the first failing cell stops the sweep.
func (sw *Sweep) Run(ctx context.Context, onResult func(CellResult)) ([]CellSummary, error) {
	summaries := make([]CellSummary, len(sw.cells))
	for i, c := range sw.cells {
		var cb func(TrialResult)
		if onResult != nil {
			cell := i
			cb = func(r TrialResult) { onResult(CellResult{Cell: cell, TrialResult: r}) }
		}
		agg, err := c.Run(ctx, cb)
		if err != nil {
			return nil, fmt.Errorf("cell %d (%s): %w", i, cellName(c.spec), err)
		}
		summaries[i] = cellSummary(i, c.spec, agg)
	}
	return summaries, nil
}

func cellSummary(i int, spec Spec, agg *Aggregate) CellSummary {
	return CellSummary{
		Cell:      i,
		Graph:     spec.Graph,
		Process:   spec.Process,
		Branch:    spec.Branch,
		Rho:       spec.Rho,
		Aggregate: agg,
	}
}

// cellName renders a cell's grid coordinates for error messages and logs.
func cellName(s Spec) string {
	name := fmt.Sprintf("%s %s b=%d", s.Graph, s.Process, s.Branch)
	if s.Rho > 0 {
		name += fmt.Sprintf("+%g", s.Rho)
	}
	return name
}

// SummaryTable renders per-cell summaries as a cross-cell grid: a header
// plus one row of formatted cells per sweep cell, ready for CSV or
// aligned-table output (and the JSON body of GET /v1/sweeps/{id}/table).
func SummaryTable(cells []CellSummary) (header []string, rows [][]string) {
	header = []string{"cell", "graph", "process", "branch", "rho",
		"trials", "mean", "median", "q25", "q75", "min", "max", "std"}
	rows = make([][]string, 0, len(cells))
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, c := range cells {
		row := []string{
			strconv.Itoa(c.Cell), c.Graph, c.Process,
			strconv.Itoa(c.Branch), strconv.FormatFloat(c.Rho, 'g', -1, 64),
		}
		if c.Aggregate != nil {
			r := c.Aggregate.Rounds
			row = append(row, strconv.Itoa(c.Aggregate.Completed),
				f(r.Mean), f(r.Median), f(r.Q25), f(r.Q75), f(r.Min), f(r.Max), f(r.Std))
		} else {
			row = append(row, "0", "", "", "", "", "", "", "")
		}
		rows = append(rows, row)
	}
	return header, rows
}
