package batch

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/obs"
	"github.com/repro/cobra/internal/stats"
)

// Parameter-sweep campaigns: one submission carrying axes whose cross
// product expands to a deterministic ordered grid of campaign cells, all
// run through the existing campaign scheduler so distinct graphs compile
// exactly once (LRU cache) and engine workspaces are shared across cells.
//
// # Cell ordering
//
// Cells() expands the axes row-major in declaration order — graphs
// outermost, then processes, then branches, then rhos innermost:
//
//	cell index c = ((gi·|P| + pi)·|B| + bi)·|R| + ri
//
// CellIndex and CellCoords expose the bijection both ways. Graphs vary
// slowest by design: each graph's cells form one contiguous block, so
// admitting cells in cell-index order means all cells of graph g touch
// the cache before any cell of graph g+1 — even a capacity-1 cache and a
// cold workspace pool stay warm through a whole graph's block of cells.
//
// # Sweep determinism contract
//
// Every cell carries the sweep's master seed, so trial k of cell c is a
// pure function of (cell spec, sweep seed, k) — and is *byte-identical*
// to trial k of the standalone campaign obtained by submitting cell c's
// Spec on its own (same graph spec, config, and seed). Cells are
// *admitted* (compiled) strictly in cell-index order and their results
// are *committed* strictly in (cell, trial) order, so the flattened
// result stream and all aggregates are independent of trial worker
// count, cell worker count, completion order, cache temperature,
// workspace sharing, and the HTTP vs library entry point. Between
// admission and commit, up to CellWorkers cells execute concurrently; a
// reorder buffer in the cell scheduler (cellsched.go) holds results that
// complete out of order until their cell reaches the head of the commit
// order. sweep_test.go, sweep_conform_test.go, cellsched_test.go and
// service_test.go enforce every clause under the race detector.

// SweepSpec describes a parameter-sweep campaign: the cross product of
// the axes (Graphs × Processes × Branches × Rhos) expands to a grid of
// campaign cells sharing the scalar fields below. The JSON field names
// are the cobrad wire format (POST /v1/sweeps).
type SweepSpec struct {
	// Graphs is the graph-spec axis; distinct entries (one or more).
	Graphs []string `json:"graphs"`
	// Processes is the process axis: entries from {"cobra", "bips"}.
	Processes []string `json:"processes"`
	// Branches is the integer branching-factor axis (each >= 1).
	Branches []int `json:"branches"`
	// Rhos is the fractional-branch axis (each in [0,1]); empty means the
	// single value 0.
	Rhos []float64 `json:"rhos,omitempty"`
	// Lazy selects the lazy variant for every cell.
	Lazy bool `json:"lazy,omitempty"`
	// Start is the start vertex / BIPS source for every cell.
	Start int `json:"start"`
	// Trials is the number of independent trials per cell.
	Trials int `json:"trials"`
	// Seed is the sweep master seed; every cell campaign carries it, and
	// it also seeds random graph families.
	Seed uint64 `json:"seed"`
	// Workers bounds trial-level parallelism within a cell (<= 0:
	// GOMAXPROCS). It never affects results, only wall-clock time.
	Workers int `json:"workers,omitempty"`
	// CellWorkers bounds how many cells execute concurrently (<= 0: 1,
	// i.e. sequential cells; cobrad substitutes its -cell-workers default
	// for 0). Like Workers it never affects results, only wall-clock time.
	CellWorkers int `json:"cell_workers,omitempty"`
	// MaxRounds caps a single trial (0: library default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Priority orders the cobrad job queue (higher first; ties in
	// submission order). Every cell inherits the sweep's priority, so a
	// cell resubmitted as a standalone campaign queues like its sweep
	// did. Never affects results; the library Run path ignores it.
	Priority int `json:"priority,omitempty"`
	// Deadline, when non-empty, is an RFC3339 timestamp by which the
	// sweep job must have started; a sweep still queued past it is failed
	// with the terminal state "expired". The deadline is a job-level
	// property: it is not copied into cell specs. The library Run path
	// ignores it.
	Deadline string `json:"deadline,omitempty"`
}

// DeadlineTime parses the sweep deadline; the zero time means none.
func (s SweepSpec) DeadlineTime() (time.Time, error) {
	return parseDeadline(s.Deadline)
}

// rhos returns the rho axis with the empty default applied.
func (s SweepSpec) rhos() []float64 {
	if len(s.Rhos) == 0 {
		return []float64{0}
	}
	return s.Rhos
}

// CellCount returns the number of cells the sweep expands to.
func (s SweepSpec) CellCount() int {
	return len(s.Graphs) * len(s.Processes) * len(s.Branches) * len(s.rhos())
}

// CellIndex returns the cell index of the grid point (gi, pi, bi, ri):
// row-major with graphs outermost, rhos innermost. Coordinates are not
// range-checked; combine with CellCoords for the round-trip property
// (sweep_index_test.go).
func (s SweepSpec) CellIndex(gi, pi, bi, ri int) int {
	return ((gi*len(s.Processes)+pi)*len(s.Branches)+bi)*len(s.rhos()) + ri
}

// CellCoords inverts CellIndex: the grid coordinates of cell c. The
// graph coordinate gi = c / (cells per graph) is non-decreasing in c, so
// iterating cells in index order visits each graph's cells as one
// contiguous block — the admission-order guarantee the cell scheduler
// relies on for single compilation per graph.
func (s SweepSpec) CellCoords(c int) (gi, pi, bi, ri int) {
	nr := len(s.rhos())
	ri = c % nr
	c /= nr
	bi = c % len(s.Branches)
	c /= len(s.Branches)
	pi = c % len(s.Processes)
	gi = c / len(s.Processes)
	return gi, pi, bi, ri
}

// Validate checks every axis and scalar without building any graph.
// Axis entries must be valid and pairwise distinct (graphs by canonical
// form), so each cell is a distinct (spec, config) point of the grid.
func (s SweepSpec) Validate() error {
	if len(s.Graphs) == 0 || len(s.Processes) == 0 || len(s.Branches) == 0 {
		return fmt.Errorf("%w: sweep needs at least one graph, process and branch", ErrInput)
	}
	seenGraph := make(map[string]string, len(s.Graphs))
	for _, spec := range s.Graphs {
		canon, err := graphspec.Canonical(spec)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInput, err)
		}
		if prev, dup := seenGraph[canon]; dup {
			return fmt.Errorf("%w: duplicate graph axis entries %q and %q", ErrInput, prev, spec)
		}
		seenGraph[canon] = spec
	}
	seenProc := make(map[string]bool, len(s.Processes))
	for _, proc := range s.Processes {
		p := strings.ToLower(proc)
		switch p {
		case "cobra", "bips":
		default:
			return fmt.Errorf("%w: process must be cobra or bips, got %q", ErrInput, proc)
		}
		if seenProc[p] {
			return fmt.Errorf("%w: duplicate process axis entry %q", ErrInput, proc)
		}
		seenProc[p] = true
	}
	seenBranch := make(map[int]bool, len(s.Branches))
	for _, b := range s.Branches {
		if b < 1 {
			return fmt.Errorf("%w: branch must be >= 1, got %d", ErrInput, b)
		}
		if seenBranch[b] {
			return fmt.Errorf("%w: duplicate branch axis entry %d", ErrInput, b)
		}
		seenBranch[b] = true
	}
	seenRho := make(map[float64]bool, len(s.rhos()))
	for _, rho := range s.rhos() {
		if math.IsNaN(rho) || rho < 0 || rho > 1 {
			return fmt.Errorf("%w: rho must be in [0,1], got %v", ErrInput, rho)
		}
		if seenRho[rho] {
			return fmt.Errorf("%w: duplicate rho axis entry %v", ErrInput, rho)
		}
		seenRho[rho] = true
	}
	if s.Start < 0 {
		return fmt.Errorf("%w: start must be >= 0, got %d", ErrInput, s.Start)
	}
	if s.Trials < 1 {
		return fmt.Errorf("%w: trials must be >= 1, got %d", ErrInput, s.Trials)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("%w: max_rounds must be >= 0, got %d", ErrInput, s.MaxRounds)
	}
	if _, err := s.DeadlineTime(); err != nil {
		return err
	}
	return nil
}

// Cells expands the sweep into its ordered grid of campaign specs (see
// the cell-ordering contract above). Cell c of a valid sweep satisfies
// Cells()[c].Validate() == nil, and running it as a standalone campaign
// reproduces the sweep cell byte for byte.
func (s SweepSpec) Cells() []Spec {
	n := s.CellCount()
	rhos := s.rhos()
	cells := make([]Spec, n)
	for c := 0; c < n; c++ {
		gi, pi, bi, ri := s.CellCoords(c)
		cells[c] = Spec{
			Graph:     s.Graphs[gi],
			Process:   strings.ToLower(s.Processes[pi]),
			Branch:    s.Branches[bi],
			Rho:       rhos[ri],
			Lazy:      s.Lazy,
			Start:     s.Start,
			Trials:    s.Trials,
			Seed:      s.Seed,
			Workers:   s.Workers,
			MaxRounds: s.MaxRounds,
			Priority:  s.Priority, // cells inherit the sweep's priority
		}
	}
	return cells
}

// CellResult is one trial measurement tagged with its cell index; the
// embedded TrialResult fields are flattened on the wire (the NDJSON line
// format of GET /v1/sweeps/{id}/results).
type CellResult struct {
	Cell int `json:"cell"`
	TrialResult
}

// CellSummary is the per-cell aggregate row of a sweep: the cell's grid
// coordinates plus its online rounds summary. Phase is filled only by
// the cobrad status endpoint (see CellPhase, while the sweep is in
// flight); library Run results leave it empty.
type CellSummary struct {
	Cell      int        `json:"cell"`
	Graph     string     `json:"graph"`
	Process   string     `json:"process"`
	Branch    int        `json:"branch"`
	Rho       float64    `json:"rho"`
	Phase     CellPhase  `json:"phase,omitempty"`
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Sweep is a prepared sweep: the expanded cell grid plus the shared graph
// cache and workspace pool every cell compiles against. Cell campaigns
// are compiled lazily, at admission time during Run, in cell-index order
// — overlapping graph construction with earlier cells' trials and
// keeping the single-compile-per-graph guarantee even at cache
// capacity 1 (each graph's cells are admitted as one contiguous block).
type Sweep struct {
	spec      SweepSpec
	cellSpecs []Spec
	cells     []*Campaign // compiled at admission; cells[c] set once c ran
	cache     *Cache
	pool      *sync.Pool

	// OnCellPhase, when set before Run, observes each cell's lifecycle
	// (queued → running at admission → done at commit). It may be invoked
	// concurrently for different cells; calls for one cell are ordered.
	OnCellPhase func(cell int, phase CellPhase)

	// Remote, when set before Run, executes cells somewhere other than
	// this process: instead of compiling and running cell campaigns
	// locally, the scheduler calls Remote(ctx, cell, spec, from, deliver)
	// for each admitted cell and expects the cell's trials [from, Trials)
	// delivered in trial order. The sweep still folds each delivered
	// result into its own per-cell aggregate in the exact order the local
	// path would (deliver, then fold), so summaries — and, through the
	// reorder buffer, the merged result stream — are bit-identical to a
	// local run. Remote must not return until the cell is complete (nil)
	// or abandoned (error / ctx cancelled). This is the seam the fleet
	// coordinator plugs into (see internal/fleet).
	Remote func(ctx context.Context, cell int, spec Spec, from int, deliver func(TrialResult)) error

	// Observe-only cell-scheduler instruments, set by the cobrad server
	// before Run (nil for library use = no-op). They never influence the
	// schedule or the delivered stream.
	stalls   *obs.Counter
	reorder  *obs.Gauge
	cellWall *obs.Histogram
}

// CompileSweep validates spec and prepares its cell grid. Cell campaigns
// compile during Run, at admission: cells sharing a graph spec share one
// compiled graph — with a caller-provided cache each distinct graph is
// built at most once across the sweep *and* every other campaign using
// that cache; with a nil cache the sweep creates a private cache sized to
// its own graph axis, preserving the single-compile guarantee
// sweep-locally.
func CompileSweep(spec SweepSpec, cache *Cache) (*Sweep, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = NewCache(len(spec.Graphs))
	}
	pool := &sync.Pool{New: func() any { return engine.NewWorkspace() }}
	cellSpecs := spec.Cells()
	return &Sweep{
		spec:      spec,
		cellSpecs: cellSpecs,
		cells:     make([]*Campaign, len(cellSpecs)),
		cache:     cache,
		pool:      pool,
	}, nil
}

// Spec returns the sweep specification.
func (sw *Sweep) Spec() SweepSpec { return sw.spec }

// Cells returns the cell campaigns in cell-index order. Campaigns are
// compiled at admission during Run: after a successful Run every entry is
// non-nil; before one, entries are nil.
func (sw *Sweep) Cells() []*Campaign { return sw.cells }

// CacheStats exposes the sweep's graph-cache counters (the caller's cache
// when one was provided).
func (sw *Sweep) CacheStats() (hits, misses int64, size int) { return sw.cache.Stats() }

// Run executes the sweep and returns the per-cell summaries. Completed
// trials are delivered to onResult (may be nil) in strict (cell, trial)
// order, each before it is folded into its cell's aggregate, regardless
// of the order cells finish in. Up to Spec.CellWorkers cells execute
// concurrently (<= 0: one at a time), each parallelizing its trials per
// Spec.Workers; neither knob affects results, only wall-clock time. Cells
// are admitted — compiled through the shared cache — strictly in
// cell-index order, and at most CellWorkers cells hold workspaces or
// buffered results at once (see cellsched.go). Cancel ctx to abort; the
// first failing cell in commit order stops the sweep. A Sweep must not
// be run concurrently with itself.
func (sw *Sweep) Run(ctx context.Context, onResult func(CellResult)) ([]CellSummary, error) {
	return sw.RunFrom(ctx, 0, nil, onResult)
}

// RunFrom executes the sweep's tail, flat results [from, CellCount ×
// Trials), assuming the first `from` results of the flattened (cell,
// trial) stream were already delivered — a resumed job's committed
// journal prefix. Result m of the flat stream is trial m%Trials of cell
// m/Trials, so the resume point splits into a head cell (resumed
// mid-campaign via Campaign.RunFrom) and fully-replayed cells before it,
// whose summaries are rebuilt from prefix rather than recomputed.
// prefix[c], for each replayed cell c (< from/Trials, plus the head cell
// when it resumes mid-cell), must hold the fold of exactly that cell's
// replayed trials in trial order; entries past the head cell are
// ignored. Determinism makes the tail — and therefore replay + RunFrom —
// byte-identical to the uninterrupted stream. Run is
// RunFrom(ctx, 0, nil, onResult).
func (sw *Sweep) RunFrom(ctx context.Context, from int, prefix []*stats.Online, onResult func(CellResult)) ([]CellSummary, error) {
	n := len(sw.cellSpecs)
	total := n * sw.spec.Trials
	if from < 0 || from > total {
		return nil, fmt.Errorf("%w: resume point %d outside [0, %d]", ErrInput, from, total)
	}
	fromCell, fromTrial := from/sw.spec.Trials, from%sw.spec.Trials
	replayed := fromCell
	if fromTrial > 0 {
		replayed++ // the head cell resumes from a partial prefix
	}
	for c := 0; c < replayed; c++ {
		if c >= len(prefix) || prefix[c] == nil {
			return nil, fmt.Errorf("%w: resume point %d needs prefix aggregates for %d cells, got %d", ErrInput, from, replayed, len(prefix))
		}
	}
	sched := &cellScheduler{
		n:       n,
		workers: sw.spec.CellWorkers,
		first:   fromCell,
		admit:   sw.compileCell,
		run: func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error) {
			if cell == fromCell && fromTrial > 0 {
				// Clone so a preempt-resume cycle can replay the same
				// prefix fold again without the first attempt's tail in it.
				return sw.cells[cell].RunFrom(ctx, fromTrial, prefix[cell].Clone(), deliver)
			}
			return sw.cells[cell].Run(ctx, deliver)
		},
		wrap: func(cell int, err error) error {
			return fmt.Errorf("cell %d (%s): %w", cell, cellName(sw.cellSpecs[cell]), err)
		},
		onPhase:  sw.OnCellPhase,
		stalls:   sw.stalls,
		reorder:  sw.reorder,
		cellWall: sw.cellWall,
	}
	if sw.Remote != nil {
		// Remote cells need no local graph: admission just claims the
		// reorder-buffer slot, and the run folds the remotely computed
		// trials into a locally held aggregate in delivery order — the
		// same deliver-then-fold sequence Campaign.RunFrom performs, so
		// the Aggregate is bit-identical to local execution.
		sched.admit = func(int) error { return nil }
		sched.run = func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error) {
			online := stats.NewOnline()
			start := 0
			if cell == fromCell && fromTrial > 0 {
				online = prefix[cell].Clone()
				start = fromTrial
			}
			err := sw.Remote(ctx, cell, sw.cellSpecs[cell], start, func(r TrialResult) {
				deliver(r)
				online.Add(float64(r.Rounds))
			})
			if err != nil {
				return nil, err
			}
			summary, err := online.Summary()
			if err != nil {
				return nil, err
			}
			return &Aggregate{Completed: online.N(), Rounds: summary}, nil
		}
	}
	aggs, err := sched.execute(ctx, onResult)
	if err != nil {
		return nil, err
	}
	summaries := make([]CellSummary, len(aggs))
	for i, agg := range aggs {
		if agg == nil {
			// Cell fully replayed from the journal: its aggregate is the
			// prefix fold, identical to what the live run produced.
			summary, err := prefix[i].Summary()
			if err != nil {
				return nil, fmt.Errorf("cell %d (%s): replayed aggregate: %w", i, cellName(sw.cellSpecs[i]), err)
			}
			agg = &Aggregate{Completed: prefix[i].N(), Rounds: summary}
		}
		summaries[i] = cellSummary(i, sw.cellSpecs[i], agg)
	}
	return summaries, nil
}

// compileCell compiles cell c against the shared cache and pool; it runs
// on the scheduler's admission goroutine, in cell-index order.
func (sw *Sweep) compileCell(c int) error {
	campaign, err := compile(sw.cellSpecs[c], sw.cache, sw.pool)
	if err != nil {
		return err
	}
	sw.cells[c] = campaign
	return nil
}

func cellSummary(i int, spec Spec, agg *Aggregate) CellSummary {
	return CellSummary{
		Cell:      i,
		Graph:     spec.Graph,
		Process:   spec.Process,
		Branch:    spec.Branch,
		Rho:       spec.Rho,
		Aggregate: agg,
	}
}

// cellName renders a cell's grid coordinates for error messages and logs.
func cellName(s Spec) string {
	name := fmt.Sprintf("%s %s b=%d", s.Graph, s.Process, s.Branch)
	if s.Rho > 0 {
		name += fmt.Sprintf("+%g", s.Rho)
	}
	return name
}

// SummaryTable renders per-cell summaries as a cross-cell grid: a header
// plus one row of formatted cells per sweep cell, ready for CSV or
// aligned-table output (and the JSON body of GET /v1/sweeps/{id}/table).
func SummaryTable(cells []CellSummary) (header []string, rows [][]string) {
	header = []string{"cell", "graph", "process", "branch", "rho",
		"trials", "mean", "median", "q25", "q75", "min", "max", "std"}
	rows = make([][]string, 0, len(cells))
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, c := range cells {
		row := []string{
			strconv.Itoa(c.Cell), c.Graph, c.Process,
			strconv.Itoa(c.Branch), strconv.FormatFloat(c.Rho, 'g', -1, 64),
		}
		if c.Aggregate != nil {
			r := c.Aggregate.Rounds
			row = append(row, strconv.Itoa(c.Aggregate.Completed),
				f(r.Mean), f(r.Median), f(r.Q25), f(r.Q75), f(r.Min), f(r.Max), f(r.Std))
		} else {
			row = append(row, "0", "", "", "", "", "", "", "")
		}
		rows = append(rows, row)
	}
	return header, rows
}
