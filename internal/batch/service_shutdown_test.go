package batch

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The shutdown-semantics suite: Close must leave every job in a terminal
// state (running jobs aborted, queued jobs drained — never orphaned in
// StateQueued), must not leak goroutines, and must seal truncated result
// streams with the "aborted" trailer.

// longSpec is a campaign that effectively never finishes on its own —
// the blocker for shutdown and queue-order tests.
func longSpec() Spec {
	s := testSpec()
	s.Graph = "grid:128:128"
	s.Trials = 100000
	return s
}

func TestJobQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(3)
	mk := func(priority, seq int) *Job {
		return &Job{id: "x", priority: priority, seq: seq, notify: make(chan struct{})}
	}
	low, high, mid := mk(0, 1), mk(9, 2), mk(4, 3)
	for _, j := range []*Job{low, high, mid} {
		if !q.push(j, false) {
			t.Fatal("push rejected below depth")
		}
	}
	// Full: plain push rejected, force push (recovery) accepted.
	if q.push(mk(0, 4), false) {
		t.Fatal("push accepted past depth")
	}
	forced := mk(9, 5)
	if !q.push(forced, true) {
		t.Fatal("forced push rejected")
	}
	// Pop order: priority desc, submission order within a band.
	for i, want := range []*Job{high, forced, mid, low} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d: priority %d seq %d", i, got.priority, got.seq)
		}
	}
	rest := mk(1, 6)
	q.push(rest, false)
	q.close()
	if got := q.pop(); got != nil {
		t.Fatalf("pop after close returned a job (priority %d)", got.priority)
	}
	if q.push(mk(0, 7), true) {
		t.Fatal("push accepted after close")
	}
	drained := q.drain()
	if len(drained) != 1 || drained[0] != rest {
		t.Fatalf("drain returned %d jobs", len(drained))
	}
}

// Close with a full queue: the running job aborts, every queued job is
// drained to a terminal state (the shutdown-orphan bugfix — previously
// they hung in StateQueued forever), and status watchers observe it.
func TestServiceCloseDrainsQueue(t *testing.T) {
	svc := NewServer(ServerConfig{CampaignWorkers: 1, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	blocker := postCampaign(t, ts, longSpec())
	awaitStateRaw(t, ts, blocker, StateRunning)
	queued := []string{
		postCampaign(t, ts, testSpec()),
		postCampaign(t, ts, testSpec()),
	}
	sweepID := postSweep(t, ts, testSweepSpec())

	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung")
	}

	st := awaitStateRaw(t, ts, blocker, StateFailed)
	if !strings.Contains(st.Error, "context canceled") {
		t.Fatalf("aborted running job error %q", st.Error)
	}
	for _, id := range queued {
		st := awaitStateRaw(t, ts, id, StateFailed)
		if !strings.Contains(st.Error, "before the job started") {
			t.Fatalf("drained job %s error %q", id, st.Error)
		}
	}
	sst := awaitSweepState(t, ts, sweepID, StateFailed)
	if !strings.Contains(sst.Error, "before the job started") {
		t.Fatalf("drained sweep error %q", sst.Error)
	}
	for _, cell := range sst.CellAggs {
		if cell.Phase != CellFailed {
			t.Fatalf("drained sweep cell %d phase %q", cell.Cell, cell.Phase)
		}
	}
}

// A results stream truncated by shutdown must end with the "aborted"
// trailer — the streamNDJSON silent-return bugfix: clients can now tell
// a complete stream from a truncated one.
func TestServiceStreamAbortSentinel(t *testing.T) {
	svc := NewServer(ServerConfig{CampaignWorkers: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	id := postCampaign(t, ts, longSpec())
	awaitStateRaw(t, ts, id, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type read struct {
		n   int
		err error
	}
	bodyDone := make(chan read, 1)
	go func() {
		b, err := io.ReadAll(resp.Body)
		bodyDone <- read{len(b), err}
	}()
	// Let the stream attach, then shut the server down under it.
	time.Sleep(50 * time.Millisecond)
	svc.Close()
	select {
	case r := <-bodyDone:
		if r.err != nil {
			t.Fatalf("stream read: %v", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not end after Close")
	}
	if tr := resp.Trailer.Get(StreamTrailer); tr != StreamAborted {
		t.Fatalf("trailer after shutdown %q, want %q", tr, StreamAborted)
	}
	// A complete stream of the same (now failed) job is sealed "complete":
	// the trailer marks truncation, not job failure.
	resp2, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if _, err := io.ReadAll(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if tr := resp2.Trailer.Get(StreamTrailer); tr != StreamComplete {
		t.Fatalf("trailer on terminal job %q, want %q", tr, StreamComplete)
	}
}

// The whole lifecycle — submit, run, stream, shutdown with a drained
// queue — must return the process to its pre-server goroutine count.
func TestServiceCloseNoGoroutineLeak(t *testing.T) {
	// Earlier tests leave keep-alive client connections (and their
	// readLoop goroutines) in the shared transport pool; flush them so
	// the baseline is the test's own.
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	before := runtime.NumGoroutine()

	svc := NewServer(ServerConfig{CampaignWorkers: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	small := testSpec()
	small.Trials = 5
	done := postCampaign(t, ts, small)
	awaitStateRaw(t, ts, done, StateDone)
	postCampaign(t, ts, longSpec()) // aborted by Close
	postCampaign(t, ts, longSpec()) // aborted by Close
	postCampaign(t, ts, longSpec()) // drained by Close
	svc.Close()
	ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return // workers, streams, and HTTP goroutines all gone
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > %d after Close:\n%s",
				runtime.NumGoroutine(), before+2, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Priority scheduling end to end: with one busy worker, a high-priority
// submission (via the ?priority= query parameter) leaves the queue
// before an earlier low-priority one. Both contenders take ~seconds to
// run, so the first left-the-queue transition cannot be missed.
func TestServicePriorityOrder(t *testing.T) {
	svc := NewServer(ServerConfig{CampaignWorkers: 1, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() { ts.Close(); svc.Close() })

	// The blocker occupies the sole worker long enough (hundreds of
	// trials) for the two instant HTTP submissions below to queue up
	// behind it, then finishes on its own.
	blocker := testSpec()
	blocker.Graph = "grid:64:64"
	blocker.Trials = 500
	blockerID := postCampaign(t, ts, blocker)
	awaitStateRaw(t, ts, blockerID, StateRunning)

	slow := testSpec()
	slow.Graph = "grid:64:64"
	slow.Trials = 200
	low := postCampaign(t, ts, slow) // submitted first, priority 0
	body, _ := json.Marshal(slow)
	resp, err := http.Post(ts.URL+"/v1/campaigns?priority=9", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	high := out["id"]
	if high == "" {
		t.Fatal("no id for priority submission")
	}
	svc.mu.Lock()
	gotPriority := svc.jobs[high].priority
	svc.mu.Unlock()
	if gotPriority != 9 {
		t.Fatalf("query-parameter priority not applied: %d", gotPriority)
	}

	// The worker frees when the blocker finishes; the first job to leave
	// StateQueued must be the high-priority one.
	deadline := time.Now().Add(60 * time.Second)
	for {
		hs, ls := stateOf(svc, high), stateOf(svc, low)
		if hs != StateQueued && ls == StateQueued {
			return // correct order
		}
		if ls != StateQueued {
			t.Fatalf("low-priority job left the queue first (low %s, high %s)", ls, hs)
		}
		if time.Now().After(deadline) {
			t.Fatalf("neither job started (low %s, high %s)", ls, hs)
		}
		time.Sleep(time.Millisecond)
	}
}

func stateOf(s *Server, id string) JobState {
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	job.mu.Lock()
	defer job.mu.Unlock()
	return job.state
}
