package batch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// Adversarial completion-order tests: a stub cell runner whose cells
// finish in exactly the order the test dictates — reverse, random, or
// worst-case-for-the-window — must still produce the strict (cell,
// trial)-ordered stream and in-order per-cell aggregates. This pins the
// reorder buffer itself, independent of real campaign timing: the happy
// path where cells happen to finish in order proves nothing about it.

// stubResult is the synthetic measurement for (cell, trial): unique per
// pair so any reordering or loss is visible in the committed stream.
func stubResult(cell, trial int) TrialResult {
	return TrialResult{Trial: trial, Rounds: 1000*cell + trial}
}

// stubSchedule runs n stub cells (trials results each) under the cell
// scheduler with the given worker count. Every cell delivers its trials
// immediately, then blocks until the controller releases it; the
// controller waits for the window to fill and then releases the running
// cell chosen by pick — so the *completion* order is exactly the pick
// order, regardless of Go scheduling. failCell >= 0 makes that cell
// return an error instead of an aggregate.
func stubSchedule(t *testing.T, n, trials, workers, failCell int, pick func(running []int) int) ([]CellResult, []*Aggregate, []CellPhase, error) {
	t.Helper()
	started := make(chan int)
	release := make([]chan struct{}, n)
	for i := range release {
		release[i] = make(chan struct{})
	}

	var phaseMu sync.Mutex
	phases := make([]CellPhase, n)
	for i := range phases {
		phases[i] = CellQueued
	}

	cs := &cellScheduler{
		n:       n,
		workers: workers,
		admit:   func(cell int) error { return nil },
		run: func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error) {
			for k := 0; k < trials; k++ {
				deliver(stubResult(cell, k))
			}
			started <- cell
			select {
			case <-release[cell]:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if cell == failCell {
				return nil, fmt.Errorf("stub cell %d exploded", cell)
			}
			return &Aggregate{Completed: trials}, nil
		},
		wrap: func(cell int, err error) error { return fmt.Errorf("cell %d (stub): %w", cell, err) },
		onPhase: func(cell int, ph CellPhase) {
			phaseMu.Lock()
			phases[cell] = ph
			phaseMu.Unlock()
		},
	}

	// Controller: fill the window, then release the adversary's choice.
	// The window model mirrors the scheduler's: a slot frees at *commit*,
	// and commits follow the consecutive released prefix from cell 0, so
	// the scheduler will eventually have min(n, prefix+workers) cells
	// started. Waiting for exactly that many before picking keeps the
	// completion order fully under the adversary's control without
	// deadlocking against the backpressure window.
	ctrlDone := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		running := []int{}
		released := make([]bool, n)
		releasedCount := 0
		prefix := 0 // consecutive released cells starting at 0
		for releasedCount < n {
			for prefix < n && released[prefix] {
				prefix++
			}
			want := prefix + workers
			if want > n {
				want = n
			}
			for releasedCount+len(running) < want {
				c, ok := <-started
				if !ok {
					return
				}
				running = append(running, c)
			}
			choice := pick(append([]int(nil), running...))
			idx := -1
			for i, c := range running {
				if c == choice {
					idx = i
					break
				}
			}
			if idx < 0 {
				panic("pick returned a cell that is not running")
			}
			running = append(running[:idx], running[idx+1:]...)
			close(release[choice])
			released[choice] = true
			releasedCount++
		}
	}()

	var results []CellResult
	aggs, err := cs.execute(context.Background(), func(r CellResult) { results = append(results, r) })
	// On failure the scheduler cancels in-flight cells: their run funcs
	// return via ctx.Done without hitting the controller, so unblock it.
	close(started)
	<-ctrlDone

	phaseMu.Lock()
	phasesCopy := append([]CellPhase(nil), phases...)
	phaseMu.Unlock()
	if err == nil {
		for i, ph := range phasesCopy {
			if ph != CellDone {
				t.Fatalf("cell %d phase %q after success, want done", i, ph)
			}
		}
	}
	return results, aggs, phasesCopy, err
}

// checkOrdered asserts the committed stream is exactly cells 0..n-1,
// each with trials 0..trials-1, in lexicographic order.
func checkOrdered(t *testing.T, results []CellResult, n, trials int) {
	t.Helper()
	if len(results) != n*trials {
		t.Fatalf("%d results, want %d", len(results), n*trials)
	}
	for i, r := range results {
		cell, trial := i/trials, i%trials
		if r.Cell != cell || r.TrialResult != stubResult(cell, trial) {
			t.Fatalf("result %d = %+v, want cell %d trial %d", i, r, cell, trial)
		}
	}
}

// TestCellSchedulerReverseCompletion completes every window in reverse:
// the head cell of each window always finishes last, so every cell's
// results pass through the reorder buffer before committing.
func TestCellSchedulerReverseCompletion(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		const n, trials = 8, 5
		results, aggs, _, err := stubSchedule(t, n, trials, workers, -1, func(running []int) int {
			max := running[0]
			for _, c := range running {
				if c > max {
					max = c
				}
			}
			return max
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkOrdered(t, results, n, trials)
		for i, agg := range aggs {
			if agg == nil || agg.Completed != trials {
				t.Fatalf("workers=%d: cell %d aggregate %+v", workers, i, agg)
			}
		}
	}
}

// TestCellSchedulerRandomCompletion completes cells in seeded random
// order across several seeds and window sizes.
func TestCellSchedulerRandomCompletion(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		workers := 2 + rng.Intn(7)
		const n, trials = 12, 3
		results, _, _, err := stubSchedule(t, n, trials, workers, -1, func(running []int) int {
			return running[rng.Intn(len(running))]
		})
		if err != nil {
			t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
		}
		checkOrdered(t, results, n, trials)
	}
}

// TestCellSchedulerFailureCommitOrder: with reverse completion and cell
// 2 failing at its end, cells 0 and 1 commit their full streams first,
// cell 2's already-delivered trials precede its error (matching the
// sequential path, where a cell streams trials live until it fails), the
// returned error names cell 2, and nothing from any later cell leaks
// into the committed stream.
func TestCellSchedulerFailureCommitOrder(t *testing.T) {
	const n, trials, workers, failCell = 8, 4, 4, 2
	results, aggs, phases, err := stubSchedule(t, n, trials, workers, failCell, func(running []int) int {
		max := running[0]
		for _, c := range running {
			if c > max {
				max = c
			}
		}
		return max
	})
	if err == nil {
		t.Fatal("failing cell did not fail the schedule")
	}
	if !strings.Contains(err.Error(), "cell 2 (stub)") {
		t.Fatalf("error lost the failing cell's identity: %v", err)
	}
	if aggs != nil {
		t.Fatalf("aggregates returned despite failure: %v", aggs)
	}
	checkOrdered(t, results, failCell+1, trials)
	// The scheduler marks the failing cell itself; committed cells stay
	// done, and nothing reads running once execute returned.
	if phases[failCell] != CellFailed {
		t.Fatalf("failing cell phase %q, want failed", phases[failCell])
	}
	for i := 0; i < failCell; i++ {
		if phases[i] != CellDone {
			t.Fatalf("committed cell %d phase %q, want done", i, phases[i])
		}
	}
}

// TestCellSchedulerWindowBound: the admission window never exceeds the
// worker count — at most K cells are admitted but uncommitted, which is
// what bounds concurrently-held workspaces and the reorder buffer.
func TestCellSchedulerWindowBound(t *testing.T) {
	const n, workers = 16, 3
	var mu sync.Mutex
	admitted, committed, maxWindow := 0, 0, 0
	cs := &cellScheduler{
		n:       n,
		workers: workers,
		admit: func(cell int) error {
			mu.Lock()
			admitted++
			if w := admitted - committed; w > maxWindow {
				maxWindow = w
			}
			mu.Unlock()
			return nil
		},
		run: func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error) {
			deliver(stubResult(cell, 0))
			return &Aggregate{Completed: 1}, nil
		},
		wrap: func(cell int, err error) error { return err },
		onPhase: func(cell int, ph CellPhase) {
			if ph == CellDone {
				mu.Lock()
				committed++
				mu.Unlock()
			}
		},
	}
	var results []CellResult
	if _, err := cs.execute(context.Background(), func(r CellResult) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	checkOrdered(t, results, n, 1)
	if maxWindow > workers {
		t.Fatalf("admission window reached %d with %d workers", maxWindow, workers)
	}
}

// TestCellSchedulerContextCancel: cancelling mid-schedule surfaces
// context.Canceled (possibly wrapped by a cell error) and never a
// partial success.
func TestCellSchedulerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cs := &cellScheduler{
		n:       6,
		workers: 2,
		admit:   func(cell int) error { return nil },
		run: func(ctx context.Context, cell int, deliver func(TrialResult)) (*Aggregate, error) {
			if cell == 1 {
				cancel()
			}
			<-ctx.Done()
			return nil, ctx.Err()
		},
		wrap: func(cell int, err error) error { return fmt.Errorf("cell %d: %w", cell, err) },
	}
	aggs, err := cs.execute(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if aggs != nil {
		t.Fatalf("partial aggregates after cancel: %v", aggs)
	}
}
