package batch

import (
	"container/heap"
	"sync"
)

// jobQueue is the bounded priority queue feeding the campaign workers:
// highest Spec priority first, submission order within a priority band
// (so priority-0 jobs preserve the old FIFO behavior exactly). Closing
// the queue wakes every blocked pop with nil — a closing server never
// starts queued work; Close drains what remains and marks it aborted,
// so no job is left in a non-terminal state.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	depth  int
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	q := &jobQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j, reporting false when the queue is full or closed.
// force bypasses the depth bound: recovery requeues accepted-and-durable
// jobs, which must never be rejected for backlog reasons.
func (q *jobQueue) push(j *Job, force bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || (!force && q.items.Len() >= q.depth) {
		return false
	}
	heap.Push(&q.items, j)
	q.cond.Signal()
	return true
}

// full reports whether a plain push would be rejected right now — a
// cheap precheck so overloaded submissions can 503 before paying for a
// journal header write; push remains the authoritative gate.
func (q *jobQueue) full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed || q.items.Len() >= q.depth
}

// pop blocks until a job is available, returning the highest-priority
// one; nil means the queue closed (even if jobs remain — they are handed
// out by drain, not pop).
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	return heap.Pop(&q.items).(*Job)
}

// close marks the queue closed and wakes every blocked pop. Idempotent.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// size reports the current backlog (scrape-time gauge source).
func (q *jobQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// depths reports the queued-job count per priority band — the source for
// the per-band queue-depth gauges and /v1/stats. Priority is immutable
// after submission, so walking the heap slice under the lock is exact.
func (q *jobQueue) depths() map[int]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := make(map[int]int, 4)
	for _, j := range q.items {
		m[j.priority]++
	}
	return m
}

// drain removes and returns every queued job in pop (priority) order;
// the shutdown path marks them aborted so watchers observe a terminal
// state.
func (q *jobQueue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, q.items.Len())
	for q.items.Len() > 0 {
		out = append(out, heap.Pop(&q.items).(*Job))
	}
	return out
}

// jobHeap orders jobs by (priority desc, seq asc): seq is the global
// submission sequence, so equal priorities run first-come-first-served.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
