package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// The sweep conformance suite: the parallel-cell scheduler must be
// *observably absent* from sweep output. The NDJSON result stream — the
// wire format of GET /v1/sweeps/{id}/results, byte for byte — of a sweep
// run with any CellWorkers count must equal the sequential
// (CellWorkers=1) run, must equal the concatenation of its cells
// submitted as standalone PR 2 campaigns, across trial worker counts,
// cache temperatures, and the HTTP vs library entry point. Run under
// -race in CI; any scheduler change that reorders delivery or perturbs a
// trial fails byte equality here before it can ship.

// ndjsonCells encodes cell results exactly like the cobrad results
// endpoint: one json.Encoder line per result.
func ndjsonCells(t *testing.T, results []CellResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// conformSpec is the conformance workload: 2 graphs x 2 processes x 2
// branches = 8 cells, small enough for the full matrix under -race.
func conformSpec() SweepSpec {
	spec := testSweepSpec()
	spec.Trials = 8
	return spec
}

// sequentialBaseline runs the PR 3-equivalent schedule: one cell at a
// time, one trial worker, private cache.
func sequentialBaseline(t *testing.T, spec SweepSpec) ([]CellResult, []CellSummary, []byte) {
	t.Helper()
	spec.CellWorkers = 1
	spec.Workers = 1
	results, cells := runSweep(t, spec, nil)
	return results, cells, ndjsonCells(t, results)
}

// TestSweepConformanceLibrary sweeps the (CellWorkers, Workers, cache)
// matrix through the library path and demands byte-identical NDJSON and
// identical per-cell aggregates everywhere — including a capacity-1
// cache, where admission-order contiguity is the only thing standing
// between the scheduler and a recompile.
func TestSweepConformanceLibrary(t *testing.T) {
	spec := conformSpec()
	_, baseCells, baseline := sequentialBaseline(t, spec)

	// warm is shared by every matrix point: after the first run it always
	// holds both graphs, so runs against it are true warm-cache runs.
	warm := NewCache(len(spec.Graphs))
	runs := 0

	for _, cellWorkers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, workers := range []int{1, 2} {
			spec.CellWorkers = cellWorkers
			spec.Workers = workers
			label := fmt.Sprintf("cellworkers=%d workers=%d", cellWorkers, workers)

			// Cold: a fresh capacity-1 cache. Admission-order contiguity
			// must keep it at one compile per distinct graph even with
			// every cell worker hitting it.
			cold := NewCache(1)
			results, cells := runSweep(t, spec, cold)
			if got := ndjsonCells(t, results); !bytes.Equal(got, baseline) {
				t.Fatalf("%s cold: NDJSON differs from sequential baseline", label)
			}
			if hits, misses, _ := cold.Stats(); misses != int64(len(spec.Graphs)) {
				t.Fatalf("%s cold: %d compiles (hits=%d) for %d distinct graphs at cache capacity 1",
					label, misses, hits, len(spec.Graphs))
			}
			for i := range cells {
				if *cells[i].Aggregate != *baseCells[i].Aggregate {
					t.Fatalf("%s cold: cell %d aggregate differs", label, i)
				}
			}

			// Warm: the shared roomy cache — identical bytes again.
			results, cells = runSweep(t, spec, warm)
			runs++
			if got := ndjsonCells(t, results); !bytes.Equal(got, baseline) {
				t.Fatalf("%s warm: NDJSON differs from sequential baseline", label)
			}
			for i := range cells {
				if *cells[i].Aggregate != *baseCells[i].Aggregate {
					t.Fatalf("%s warm: cell %d aggregate differs", label, i)
				}
			}
		}
	}
	// Across every warm run, each distinct graph compiled exactly once.
	hits, misses, _ := warm.Stats()
	if want := int64(len(spec.Graphs)); misses != want {
		t.Fatalf("warm cache compiled %d times across %d runs, want %d", misses, runs, want)
	}
	if want := int64(runs*spec.CellCount()) - int64(len(spec.Graphs)); hits != want {
		t.Fatalf("warm cache hits=%d, want %d", hits, want)
	}
}

// TestSweepConformanceStandaloneCells re-derives the sweep stream from
// scratch: every cell submitted as its own standalone campaign, results
// tagged with the cell index and concatenated in cell order, must
// reproduce the parallel sweep's NDJSON byte for byte.
func TestSweepConformanceStandaloneCells(t *testing.T) {
	spec := conformSpec()
	_, _, baseline := sequentialBaseline(t, spec)

	var rebuilt []CellResult
	for c, cellSpec := range spec.Cells() {
		cellSpec.Workers = 2 // trial workers are invisible to results
		results, _ := runCampaign(t, cellSpec, nil)
		for _, r := range results {
			rebuilt = append(rebuilt, CellResult{Cell: c, TrialResult: r})
		}
	}
	if got := ndjsonCells(t, rebuilt); !bytes.Equal(got, baseline) {
		t.Fatal("standalone-campaign reconstruction differs from sweep NDJSON")
	}
}

// fetchSweepNDJSON reads the raw results body — the actual wire bytes,
// not a decoded re-encoding.
func fetchSweepNDJSON(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep results: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSweepConformanceHTTP extends byte equality over the wire: the live
// NDJSON stream of a parallel-cell sweep job equals the sequential
// library baseline for every (CellWorkers, Workers) combination, cold
// and warm server cache.
func TestSweepConformanceHTTP(t *testing.T) {
	spec := conformSpec()
	_, _, baseline := sequentialBaseline(t, spec)

	for _, cellWorkers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, workers := range []int{1, 2} {
			spec.CellWorkers = cellWorkers
			spec.Workers = workers
			label := fmt.Sprintf("cellworkers=%d workers=%d", cellWorkers, workers)

			// Fresh server per combination: cold cache, then warm.
			_, ts := newTestServer(t, ServerConfig{CampaignWorkers: 2})
			for _, temp := range []string{"cold", "warm"} {
				id := postSweep(t, ts, spec)
				if got := fetchSweepNDJSON(t, ts, id); !bytes.Equal(got, baseline) {
					t.Fatalf("%s %s: HTTP NDJSON differs from sequential library baseline", label, temp)
				}
				awaitSweepState(t, ts, id, StateDone)
			}
		}
	}
}

// TestSweepConformanceServerDefaultCellWorkers: a submission that leaves
// cell_workers unset inherits the server default (echoed in status) and
// still reproduces the sequential bytes.
func TestSweepConformanceServerDefaultCellWorkers(t *testing.T) {
	spec := conformSpec()
	_, _, baseline := sequentialBaseline(t, spec)

	spec.CellWorkers = 0
	_, ts := newTestServer(t, ServerConfig{CellWorkers: 4})
	id := postSweep(t, ts, spec)
	if got := fetchSweepNDJSON(t, ts, id); !bytes.Equal(got, baseline) {
		t.Fatal("server-default cell workers: NDJSON differs from sequential baseline")
	}
	st := awaitSweepState(t, ts, id, StateDone)
	if st.Spec.CellWorkers != 4 {
		t.Fatalf("status echoes cell_workers=%d, want the server default 4", st.Spec.CellWorkers)
	}
}

// TestSweepPhasesReachDone: after a sweep finishes, every cell's status
// phase reads done (the queued/running intermediates are timing-
// dependent; the terminal phase is not).
func TestSweepPhasesReachDone(t *testing.T) {
	spec := conformSpec()
	spec.CellWorkers = 2
	spec.Trials = 2
	_, ts := newTestServer(t, ServerConfig{})
	id := postSweep(t, ts, spec)
	st := awaitSweepState(t, ts, id, StateDone)
	if len(st.CellAggs) != spec.CellCount() {
		t.Fatalf("%d cell aggregates for %d cells", len(st.CellAggs), spec.CellCount())
	}
	for i, cs := range st.CellAggs {
		if cs.Phase != CellDone {
			t.Fatalf("cell %d phase %q after completion, want %q", i, cs.Phase, CellDone)
		}
	}
}

// TestSweepPhasesOnFailure: a failed sweep must leave no phantom
// "running" phases — the failing cell and any cancelled in-flight cells
// read failed, never-admitted cells stay queued.
func TestSweepPhasesOnFailure(t *testing.T) {
	spec := SweepSpec{
		Graphs:      []string{"path:400", "path:401"},
		Processes:   []string{"cobra"},
		Branches:    []int{2, 3},
		Trials:      4,
		Seed:        1,
		MaxRounds:   2, // a 400-path cannot cover in 2 rounds: every cell fails
		CellWorkers: 2,
	}
	_, ts := newTestServer(t, ServerConfig{})
	id := postSweep(t, ts, spec)
	st := awaitSweepState(t, ts, id, StateFailed)
	if len(st.CellAggs) != spec.CellCount() {
		t.Fatalf("%d cell aggregates for %d cells", len(st.CellAggs), spec.CellCount())
	}
	sawFailed := false
	for i, cs := range st.CellAggs {
		switch cs.Phase {
		case CellFailed:
			sawFailed = true
		case CellQueued, CellDone:
		default:
			t.Fatalf("cell %d phase %q on a failed sweep", i, cs.Phase)
		}
	}
	if !sawFailed {
		t.Fatal("no cell marked failed on a failed sweep")
	}
}

// TestSweepPhasesOnCompileFailure: an admission (compile-time) failure —
// here a start vertex out of range for the cell's graph, checkable only
// against the built graph — must also mark the failing cell failed, not
// leave it queued forever on a failed job.
func TestSweepPhasesOnCompileFailure(t *testing.T) {
	spec := SweepSpec{
		Graphs:      []string{"rreg:256:3"},
		Processes:   []string{"cobra"},
		Branches:    []int{2, 3},
		Start:       300, // out of range for n=256, undetectable pre-compile
		Trials:      2,
		Seed:        1,
		CellWorkers: 2,
	}
	_, ts := newTestServer(t, ServerConfig{})
	id := postSweep(t, ts, spec)
	st := awaitSweepState(t, ts, id, StateFailed)
	if !strings.Contains(st.Error, "out of range") {
		t.Fatalf("unexpected failure %q", st.Error)
	}
	if len(st.CellAggs) == 0 || st.CellAggs[0].Phase != CellFailed {
		t.Fatalf("admission-failed cell phase %+v, want failed", st.CellAggs)
	}
}

// TestSweepCellOrderUnderParallelRun pins the committed stream shape
// directly: strictly increasing (cell, trial) lexicographic order, every
// trial present, even at maximum cell parallelism.
func TestSweepCellOrderUnderParallelRun(t *testing.T) {
	spec := conformSpec()
	spec.CellWorkers = spec.CellCount() // every cell in flight at once
	sw, err := CompileSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var results []CellResult
	if _, err := sw.Run(context.Background(), func(r CellResult) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.CellCount()*spec.Trials {
		t.Fatalf("%d results, want %d", len(results), spec.CellCount()*spec.Trials)
	}
	for i, r := range results {
		if want, got := i/spec.Trials, r.Cell; got != want {
			t.Fatalf("result %d: cell %d, want %d", i, got, want)
		}
		if want := i % spec.Trials; r.Trial != want {
			t.Fatalf("result %d: trial %d, want %d", i, r.Trial, want)
		}
	}
}
