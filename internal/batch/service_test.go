package batch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, spec Spec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["id"] == "" {
		t.Fatalf("no id in %v", out)
	}
	return out["id"]
}

func awaitState(t *testing.T, ts *httptest.Server, id string, want JobState) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s awaiting %s", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchResults(t *testing.T, ts *httptest.Server, id string) []TrialResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	var out []TrialResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r TrialResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every fully-read stream must be sealed as complete (the shutdown
	// sentinel contract: truncation would say "aborted" here instead).
	if tr := resp.Trailer.Get(StreamTrailer); tr != StreamComplete {
		t.Fatalf("stream trailer %q, want %q", tr, StreamComplete)
	}
	return out
}

// The final clause of the determinism contract: the HTTP path reproduces
// the library path bit for bit — per-trial results and aggregates — and
// repeated submissions hit the warm graph cache without changing results.
func TestServiceMatchesLibraryPath(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2
	libResults, libAgg := runCampaign(t, spec, nil)

	svc, ts := newTestServer(t, ServerConfig{})
	for round, label := range []string{"cold", "warm"} {
		id := postCampaign(t, ts, spec)
		st := awaitState(t, ts, id, StateDone)
		if st.Completed != spec.Trials {
			t.Fatalf("%s: completed %d of %d", label, st.Completed, spec.Trials)
		}
		if st.Aggregate == nil {
			t.Fatalf("%s: no aggregate", label)
		}
		if *st.Aggregate != *libAgg {
			t.Fatalf("%s cache: HTTP aggregate %+v != library %+v", label, *st.Aggregate, *libAgg)
		}
		got := fetchResults(t, ts, id)
		if len(got) != len(libResults) {
			t.Fatalf("%s: %d results, want %d", label, len(got), len(libResults))
		}
		for i := range got {
			if got[i] != libResults[i] {
				t.Fatalf("%s cache: trial %d over HTTP %+v != library %+v", label, i, got[i], libResults[i])
			}
		}
		if round == 1 {
			hits, misses, _ := svc.CacheStats()
			if misses != 1 || hits != 1 {
				t.Fatalf("graph cache hits=%d misses=%d, want 1/1", hits, misses)
			}
		}
	}
}

// A results request opened while the campaign runs must stream every
// trial and terminate when the campaign does.
func TestServiceStreamsLiveResults(t *testing.T) {
	spec := testSpec()
	spec.Graph = "grid:64:64" // slow enough to still be running at GET time
	spec.Trials = 30
	_, ts := newTestServer(t, ServerConfig{})
	id := postCampaign(t, ts, spec)
	got := fetchResults(t, ts, id) // follows until done
	if len(got) != spec.Trials {
		t.Fatalf("streamed %d results, want %d", len(got), spec.Trials)
	}
	for i, r := range got {
		if r.Trial != i {
			t.Fatalf("stream out of order at %d: %+v", i, r)
		}
	}
	awaitState(t, ts, id, StateDone)
}

func TestServiceValidation(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})

	for name, body := range map[string]string{
		"bad json":      "{",
		"unknown field": `{"graph":"cycle:8","process":"cobra","branch":2,"trials":1,"seed":1,"bogus":3}`,
		"bad spec":      `{"graph":"cycle:8","process":"warp","branch":2,"trials":1,"seed":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Oversized campaigns are rejected at submission (results live in
	// memory; the cap bounds per-job memory).
	huge := testSpec()
	huge.Trials = 2_000_000_000
	body, _ := json.Marshal(huge)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized campaign: status %d, want 400", resp.StatusCode)
	}

	// A spec that validates but fails at compile time fails the job, not
	// the submission (the graph is only built on a campaign worker).
	id := postCampaign(t, ts, Spec{Graph: "cycle:8", Process: "cobra", Branch: 2, Start: 100, Trials: 1, Seed: 1})
	st := awaitState(t, ts, id, StateFailed)
	if !strings.Contains(st.Error, "out of range") {
		t.Fatalf("unexpected failure message %q", st.Error)
	}

	for _, path := range []string{"/v1/campaigns/c999999", "/v1/campaigns/c999999/results", "/v1/campaigns/" + id + "/bogus"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServiceQueueBounded(t *testing.T) {
	// One campaign worker, queue depth 1: a long-running campaign plus a
	// queued one fill the service; the third submission must get 503.
	_, ts := newTestServer(t, ServerConfig{CampaignWorkers: 1, QueueDepth: 1})
	long := testSpec()
	long.Graph = "grid:128:128"
	long.Trials = 100000
	postCampaign(t, ts, long) // occupies the worker (aborted at Close)

	// Wait until the first job left the queue for the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Campaigns []jobStatus `json:"campaigns"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Campaigns) == 1 && list.Campaigns[0].State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first campaign never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	postCampaign(t, ts, long) // sits in the queue
	body, _ := json.Marshal(long)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, want 503", resp.StatusCode)
	}
}

func TestServiceHealthz(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// Guard against accidental wire-format drift: the status payload must
// carry the documented field names.
func TestServiceWireFormat(t *testing.T) {
	spec := testSpec()
	spec.Trials = 3
	_, ts := newTestServer(t, ServerConfig{})
	id := postCampaign(t, ts, spec)
	awaitState(t, ts, id, StateDone)
	resp, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%s", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "state", "spec", "trials", "completed", "aggregate"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("status payload missing %q: %v", key, raw)
		}
	}
	agg := raw["aggregate"].(map[string]any)
	rounds, ok := agg["rounds"].(map[string]any)
	if !ok {
		t.Fatalf("aggregate missing rounds: %v", agg)
	}
	for _, key := range []string{"N", "Mean", "Median", "CI95Lo", "CI95Hi"} {
		if _, ok := rounds[key]; !ok {
			t.Fatalf("rounds summary missing %q: %v", key, rounds)
		}
	}
}

// Run must stay deterministic under the race detector with a ctx that is
// cancelled mid-flight (regression guard for the shutdown path).
func TestServiceShutdownAbortsRunning(t *testing.T) {
	svc := NewServer(ServerConfig{CampaignWorkers: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	long := testSpec()
	long.Graph = "grid:128:128"
	long.Trials = 100000
	id := postCampaign(t, ts, long)
	awaitStateRaw(t, ts, id, StateRunning)
	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not abort the running campaign")
	}
	// The aborted job ends failed with the cancellation recorded.
	st := awaitStateRaw(t, ts, id, StateFailed)
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Fatalf("aborted job error %q", st.Error)
	}
}

func postSweep(t *testing.T, ts *httptest.Server, spec SweepSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["id"] == "" || out["table_url"] == "" {
		t.Fatalf("sweep submit payload %v", out)
	}
	return out["id"]
}

func awaitSweepState(t *testing.T, ts *httptest.Server, id string, want JobState) sweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s awaiting %s", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchSweepResults(t *testing.T, ts *httptest.Server, id string) []CellResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep results content type %q", ct)
	}
	var out []CellResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if tr := resp.Trailer.Get(StreamTrailer); tr != StreamComplete {
		t.Fatalf("sweep stream trailer %q, want %q", tr, StreamComplete)
	}
	return out
}

// The sweep determinism contract over the wire: a sweep submitted over
// HTTP yields exactly the flattened results and per-cell aggregates of
// CompileSweep + Run, cold and warm, and the streamed NDJSON opened while
// the sweep runs follows it live in (cell, trial) order.
func TestServiceSweepMatchesLibraryPath(t *testing.T) {
	spec := testSweepSpec()
	spec.Workers = 2
	libResults, libCells := runSweep(t, spec, nil)

	svc, ts := newTestServer(t, ServerConfig{})
	for _, label := range []string{"cold", "warm"} {
		id := postSweep(t, ts, spec)
		got := fetchSweepResults(t, ts, id) // follows the live sweep until done
		if len(got) != len(libResults) {
			t.Fatalf("%s: %d results, want %d", label, len(got), len(libResults))
		}
		for i := range got {
			if got[i] != libResults[i] {
				t.Fatalf("%s cache: result %d over HTTP %+v != library %+v", label, i, got[i], libResults[i])
			}
		}
		st := awaitSweepState(t, ts, id, StateDone)
		if st.Cells != spec.CellCount() || st.Completed != spec.CellCount()*spec.Trials {
			t.Fatalf("%s: status cells=%d completed=%d", label, st.Cells, st.Completed)
		}
		if len(st.CellAggs) != len(libCells) {
			t.Fatalf("%s: %d cell aggregates, want %d", label, len(st.CellAggs), len(libCells))
		}
		for i := range st.CellAggs {
			if st.CellAggs[i].Aggregate == nil || *st.CellAggs[i].Aggregate != *libCells[i].Aggregate {
				t.Fatalf("%s cache: cell %d aggregate over HTTP differs from library", label, i)
			}
		}
	}
	// Two sweep submissions x 8 cells: each distinct graph compiled once.
	hits, misses, _ := svc.CacheStats()
	if misses != 2 || hits != 14 {
		t.Fatalf("graph cache hits=%d misses=%d, want 14/2", hits, misses)
	}
}

// The aggregate-table endpoint serves the cross-cell grid.
func TestServiceSweepTable(t *testing.T) {
	spec := testSweepSpec()
	spec.Graphs = spec.Graphs[:1]
	spec.Trials = 3
	_, ts := newTestServer(t, ServerConfig{})
	id := postSweep(t, ts, spec)
	awaitSweepState(t, ts, id, StateDone)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var table struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != spec.CellCount() {
		t.Fatalf("table has %d rows for %d cells", len(table.Rows), spec.CellCount())
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Header) {
			t.Fatalf("ragged table row %v", row)
		}
	}
}

func TestServiceSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	for name, body := range map[string]string{
		"bad json":      "{",
		"unknown field": `{"graphs":["cycle:8"],"processes":["cobra"],"branches":[2],"trials":1,"seed":1,"bogus":3}`,
		"bad axis":      `{"graphs":["cycle:8"],"processes":["warp"],"branches":[2],"trials":1,"seed":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// The MaxTrials cap applies to the sweep total (cells x trials), and a
	// trial count huge enough to overflow the product must not slip past it.
	for _, trials := range []int{200_000 /* 8 cells x 200k = 1.6M > 1M */, 1 << 61 /* 8 x 2^61 wraps to 0 */} {
		huge := testSweepSpec()
		huge.Trials = trials
		body, _ := json.Marshal(huge)
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized sweep (trials=%d): status %d, want 400", trials, resp.StatusCode)
		}
	}

	for _, path := range []string{"/v1/sweeps/s999999", "/v1/sweeps/s999999/results", "/v1/sweeps/s999999/table"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Campaign ids and sweep ids live in separate namespaces.
	cid := postCampaign(t, ts, Spec{Graph: "cycle:8", Process: "cobra", Branch: 2, Trials: 1, Seed: 1})
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + cid)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("campaign id served as sweep: status %d", resp.StatusCode)
	}
}

func TestServiceSweepList(t *testing.T) {
	spec := testSweepSpec()
	spec.Graphs = spec.Graphs[:1]
	spec.Processes = spec.Processes[:1]
	spec.Trials = 2
	_, ts := newTestServer(t, ServerConfig{})
	id := postSweep(t, ts, spec)
	awaitSweepState(t, ts, id, StateDone)
	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []sweepStatus `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != id {
		t.Fatalf("sweep list %+v", list.Sweeps)
	}
}

// awaitStateRaw is awaitState without the fail-on-StateFailed shortcut.
func awaitStateRaw(t *testing.T, ts *httptest.Server, id string, want JobState) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s awaiting %s", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
