package batch

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/repro/cobra/internal/store"
)

// The durability suite: kill/restart recovery must be byte-identical,
// finished jobs must be restorable (and servable) from disk alone, the
// retention policy must bound RAM, and priorities/deadlines must survive
// the journal round-trip.

func newPersistentServer(t *testing.T, dir string, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewServerWith(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	return svc, ts
}

// fetchRaw returns a results endpoint's exact NDJSON bytes plus the
// stream trailer.
func fetchRaw(t *testing.T, ts *httptest.Server, path string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Trailer.Get(StreamTrailer)
}

// The tentpole acceptance test: a job interrupted mid-run by shutdown
// and recovered from its journal produces NDJSON byte-identical to an
// uninterrupted run — and the prefix streamed before the kill is a
// byte-prefix of the recovered stream. Exercised for both job kinds.
func TestServiceRecoveryByteIdentical(t *testing.T) {
	campaign := testSpec()
	campaign.Graph = "grid:64:64"
	campaign.Trials = 200
	sweep := SweepSpec{
		Graphs:    []string{"grid:64:64"},
		Processes: []string{"cobra"},
		Branches:  []int{2, 3},
		Trials:    60,
		Seed:      7,
	}

	kinds := []struct {
		name    string
		submit  func(t *testing.T, ts *httptest.Server) string
		results func(id string) string
		status  func(id string) string
	}{
		{
			name:    "campaign",
			submit:  func(t *testing.T, ts *httptest.Server) string { return postCampaign(t, ts, campaign) },
			results: func(id string) string { return "/v1/campaigns/" + id + "/results" },
			status:  func(id string) string { return "/v1/campaigns/" + id },
		},
		{
			name:    "sweep",
			submit:  func(t *testing.T, ts *httptest.Server) string { return postSweep(t, ts, sweep) },
			results: func(id string) string { return "/v1/sweeps/" + id + "/results" },
			status:  func(id string) string { return "/v1/sweeps/" + id },
		},
	}

	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			// Golden: the uninterrupted run on a plain in-memory server.
			goldenSvc := NewServer(ServerConfig{})
			goldenTS := httptest.NewServer(goldenSvc)
			goldenID := kind.submit(t, goldenTS)
			awaitTerminal(t, goldenTS, kind.status(goldenID), StateDone)
			golden, trailer := fetchRaw(t, goldenTS, kind.results(goldenID))
			if trailer != StreamComplete {
				t.Fatalf("golden trailer %q", trailer)
			}
			goldenTS.Close()
			goldenSvc.Close()

			// Interrupted leg: submit against a durable server, capture the
			// live stream, and kill the server mid-run.
			dir := t.TempDir()
			svcA, tsA := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1})
			id := kind.submit(t, tsA)
			prefixCh := make(chan []byte, 1)
			go func() {
				resp, err := http.Get(tsA.URL + kind.results(id))
				if err != nil {
					prefixCh <- nil
					return
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body) // truncated when the server dies
				prefixCh <- b
			}()
			waitCompleted(t, tsA, kind.status(id), 10)
			svcA.Close()
			prefix := <-prefixCh
			tsA.Close()
			// Only whole delivered lines count as the pre-kill prefix.
			if i := bytes.LastIndexByte(prefix, '\n'); i >= 0 {
				prefix = prefix[:i+1]
			} else {
				prefix = nil
			}

			// Restart on the same directory: the interrupted job is requeued
			// and re-run; the recovered stream must equal the golden bytes,
			// with the pre-kill prefix as a byte-prefix.
			svcB, tsB := newPersistentServer(t, dir, ServerConfig{})
			awaitTerminal(t, tsB, kind.status(id), StateDone)
			recovered, trailer := fetchRaw(t, tsB, kind.results(id))
			if trailer != StreamComplete {
				t.Fatalf("recovered trailer %q", trailer)
			}
			if !bytes.Equal(recovered, golden) {
				t.Fatalf("recovered NDJSON differs from uninterrupted run: %d vs %d bytes",
					len(recovered), len(golden))
			}
			if !bytes.HasPrefix(recovered, prefix) {
				t.Fatalf("pre-kill stream (%d bytes) is not a prefix of the recovered stream", len(prefix))
			}
			tsB.Close()
			svcB.Close()

			// Third generation: the finished job restores from its sealed
			// journal without re-running, results served from disk.
			svcC, tsC := newPersistentServer(t, dir, ServerConfig{})
			st := awaitTerminal(t, tsC, kind.status(id), StateDone)
			if st.Completed == 0 {
				t.Fatal("restored job lost its completed count")
			}
			restored, trailer := fetchRaw(t, tsC, kind.results(id))
			if trailer != StreamComplete {
				t.Fatalf("restored trailer %q", trailer)
			}
			if !bytes.Equal(restored, golden) {
				t.Fatal("journal-served NDJSON differs from uninterrupted run")
			}
			svcC.mu.Lock()
			job := svcC.jobs[id]
			if job == nil {
				job = svcC.sweeps[id]
			}
			svcC.mu.Unlock()
			job.mu.Lock()
			evicted := job.evicted
			job.mu.Unlock()
			if !evicted {
				t.Fatal("restored job holds results in RAM; they must stay on disk")
			}
			tsC.Close()
			svcC.Close()
		})
	}
}

// genericStatus is the subset of the campaign and sweep status payloads
// the recovery tests need.
type genericStatus struct {
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Error     string   `json:"error"`
}

func getStatus(t *testing.T, ts *httptest.Server, path string) genericStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var st genericStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitTerminal(t *testing.T, ts *httptest.Server, path string, want JobState) genericStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, path)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("%s reached %s (%s) awaiting %s", path, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck in %s awaiting %s", path, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitCompleted(t *testing.T, ts *httptest.Server, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, path)
		if st.Completed >= n {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("%s finished (%s) before reaching %d results", path, st.State, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %d results awaiting %d", path, st.Completed, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Bounded retention: beyond RetainResults finished jobs, the oldest
// jobs' result slices leave RAM — status and aggregates stay, results
// re-serve byte-identically from the journal (the memory-retention
// bugfix: a long-lived server no longer accretes every trial ever run).
func TestServiceRetentionEviction(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{RetainResults: 1})
	t.Cleanup(func() { ts.Close(); svc.Close() })

	spec := testSpec()
	spec.Trials = 5
	var ids []string
	var bodies [][]byte
	for i := 0; i < 3; i++ {
		id := postCampaign(t, ts, spec)
		awaitTerminal(t, ts, "/v1/campaigns/"+id, StateDone)
		body, _ := fetchRaw(t, ts, "/v1/campaigns/"+id+"/results")
		ids = append(ids, id)
		bodies = append(bodies, body)
	}

	// Watchers wake on the terminal state before the journal seals and
	// the retention pass runs (sealing fsyncs outside job.mu), so observe
	// eviction with a deadline, not instantaneously.
	awaitEvicted(t, svc, ids[0])
	awaitEvicted(t, svc, ids[1])
	if jobEvicted(svc, ids[2]) {
		t.Fatal("newest finished job evicted despite RetainResults=1")
	}

	for i, id := range ids {
		st := getStatus(t, ts, "/v1/campaigns/"+id)
		if st.State != StateDone || st.Completed != spec.Trials {
			t.Fatalf("job %s status after eviction: %+v", id, st)
		}
		body, trailer := fetchRaw(t, ts, "/v1/campaigns/"+id+"/results")
		if trailer != StreamComplete {
			t.Fatalf("job %s trailer %q after eviction", id, trailer)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("job %s results changed after eviction", id)
		}
	}

	// The aggregate must survive eviction (only result slices leave RAM).
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	var full jobStatus
	err = json.NewDecoder(resp.Body).Decode(&full)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if full.Aggregate == nil || full.Aggregate.Completed != spec.Trials {
		t.Fatalf("evicted job lost its aggregate: %+v", full.Aggregate)
	}
}

// TTL-based retention: jobs finished longer than RetainTTL ago are
// evicted at the next terminal transition even when the count bound is
// off.
func TestServiceRetentionTTL(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{RetainResults: -1, RetainTTL: 200 * time.Millisecond})
	t.Cleanup(func() { ts.Close(); svc.Close() })

	spec := testSpec()
	spec.Trials = 3
	old := postCampaign(t, ts, spec)
	awaitTerminal(t, ts, "/v1/campaigns/"+old, StateDone)
	time.Sleep(500 * time.Millisecond) // let the first job age well past the TTL
	fresh := postCampaign(t, ts, spec)
	awaitTerminal(t, ts, "/v1/campaigns/"+fresh, StateDone)

	awaitEvicted(t, svc, old)
	if jobEvicted(svc, fresh) {
		t.Fatal("fresh job evicted despite being inside the TTL")
	}
}

func jobEvicted(svc *Server, id string) bool {
	svc.mu.Lock()
	job := svc.jobs[id]
	svc.mu.Unlock()
	job.mu.Lock()
	defer job.mu.Unlock()
	return job.evicted
}

// awaitEvicted waits for the retention pass, which runs after the
// terminal-state bump (journal sealing happens outside job.mu).
func awaitEvicted(t *testing.T, svc *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !jobEvicted(svc, id) {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never evicted", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Deadline-expired jobs reach the distinct "expired" terminal state
// without running, and the verdict survives a restart.
func TestServiceDeadlineExpired(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{})

	past := time.Now().Add(-time.Hour).Format(time.RFC3339)
	spec := testSpec()
	spec.Deadline = past
	id := postCampaign(t, ts, spec)
	st := awaitTerminal(t, ts, "/v1/campaigns/"+id, StateExpired)
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("expired job error %q", st.Error)
	}
	if st.Completed != 0 {
		t.Fatalf("expired job ran %d trials", st.Completed)
	}

	// Sweep twin, deadline via query parameter.
	sspec := testSweepSpec()
	body, _ := json.Marshal(sspec)
	resp, err := http.Post(ts.URL+"/v1/sweeps?deadline="+past, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sid := out["id"]
	awaitTerminal(t, ts, "/v1/sweeps/"+sid, StateExpired)

	ts.Close()
	svc.Close()

	// The expired verdicts are durable: a restart restores them as-is.
	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{})
	t.Cleanup(func() { ts2.Close(); svc2.Close() })
	if st := getStatus(t, ts2, "/v1/campaigns/"+id); st.State != StateExpired {
		t.Fatalf("restored campaign state %s, want expired", st.State)
	}
	if st := getStatus(t, ts2, "/v1/sweeps/"+sid); st.State != StateExpired {
		t.Fatalf("restored sweep state %s, want expired", st.State)
	}

	// Malformed queue parameters and deadlines are rejected up front.
	for _, bad := range []string{"?priority=abc", "?deadline=tomorrow"} {
		body, _ := json.Marshal(testSpec())
		resp, err := http.Post(ts2.URL+"/v1/campaigns"+bad, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// A restart must also restore failed jobs (sealed journals) rather than
// re-running them, and list them in submission order alongside restored
// done jobs.
func TestServiceRestoresFailedJobs(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{})

	bad := Spec{Graph: "cycle:8", Process: "cobra", Branch: 2, Start: 100, Trials: 1, Seed: 1}
	badID := postCampaign(t, ts, bad) // compiles on the worker, fails there
	awaitTerminal(t, ts, "/v1/campaigns/"+badID, StateFailed)
	good := testSpec()
	good.Trials = 3
	goodID := postCampaign(t, ts, good)
	awaitTerminal(t, ts, "/v1/campaigns/"+goodID, StateDone)
	ts.Close()
	svc.Close()

	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{})
	t.Cleanup(func() { ts2.Close(); svc2.Close() })
	if st := getStatus(t, ts2, "/v1/campaigns/"+badID); st.State != StateFailed || !strings.Contains(st.Error, "out of range") {
		t.Fatalf("restored failed job: %+v", st)
	}
	if st := getStatus(t, ts2, "/v1/campaigns/"+goodID); st.State != StateDone || st.Completed != good.Trials {
		t.Fatalf("restored done job: %+v", st)
	}
	// Fresh submissions must not collide with recovered ids.
	freshID := postCampaign(t, ts2, good)
	if freshID == badID || freshID == goodID {
		t.Fatalf("id collision after recovery: %s", freshID)
	}
	awaitTerminal(t, ts2, "/v1/campaigns/"+freshID, StateDone)

	resp, err := http.Get(ts2.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Campaigns []jobStatus `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 3 {
		t.Fatalf("listed %d campaigns, want 3", len(list.Campaigns))
	}
	for i, want := range []string{badID, goodID, freshID} {
		if list.Campaigns[i].ID != want {
			t.Fatalf("listing order: got %s at %d, want %s", list.Campaigns[i].ID, i, want)
		}
	}
}

// A restored sweep serves its summary table from the journal's terminal
// record.
func TestServiceRestoredSweepTable(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{})
	spec := testSweepSpec()
	spec.Graphs = spec.Graphs[:1]
	spec.Trials = 3
	id := postSweep(t, ts, spec)
	awaitTerminal(t, ts, "/v1/sweeps/"+id, StateDone)
	tableBefore := fetchTable(t, ts, id)
	ts.Close()
	svc.Close()

	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{})
	t.Cleanup(func() { ts2.Close(); svc2.Close() })
	tableAfter := fetchTable(t, ts2, id)
	if tableBefore != tableAfter {
		t.Fatalf("restored table differs:\n%s\nvs\n%s", tableAfter, tableBefore)
	}
}

func fetchTable(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Queue-full rollback with a store: the 503'd submission must leave no
// journal behind (otherwise a restart would resurrect a job the client
// was told to retry).
func TestServiceQueueFullRollsBackJournal(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1, QueueDepth: 1})

	long := longSpec()
	first := postCampaign(t, ts, long)
	awaitStateRaw(t, ts, first, StateRunning)
	postCampaign(t, ts, long) // fills the queue
	body, _ := json.Marshal(long)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, want 503", resp.StatusCode)
	}
	ts.Close()
	svc.Close()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d journals on disk after a 503'd submission, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Err != nil {
			t.Fatalf("journal %s: %v", rec.Header.ID, rec.Err)
		}
		if rec.Terminal != nil {
			t.Fatalf("journal %s sealed despite shutdown", rec.Header.ID)
		}
	}
}

// One unusable journal (valid header, undecodable spec) must not take
// the store down: recovery quarantines it (renamed <id>.ndjson.corrupt,
// never silently rescanned), restores the healthy jobs, and still
// advances the id counter past the bad file.
func TestServiceRecoverySkipsBadJournals(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{})
	spec := testSpec()
	spec.Trials = 3
	goodID := postCampaign(t, ts, spec)
	awaitTerminal(t, ts, "/v1/campaigns/"+goodID, StateDone)
	ts.Close()
	svc.Close()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.Create(store.Header{
		Kind: store.KindCampaign, ID: "c000009", Created: time.Now(),
		Spec: json.RawMessage(`{"graph":42}`), // type mismatch: undecodable
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{})
	t.Cleanup(func() { ts2.Close(); svc2.Close() })
	if st := getStatus(t, ts2, "/v1/campaigns/"+goodID); st.State != StateDone {
		t.Fatalf("healthy job not restored alongside a bad journal: %+v", st)
	}
	resp, err := http.Get(ts2.URL + "/v1/campaigns/c000009")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad journal served as a job: status %d", resp.StatusCode)
	}
	freshID := postCampaign(t, ts2, spec)
	if idNumber(freshID) <= 9 {
		t.Fatalf("id counter did not advance past the bad journal: %s", freshID)
	}
	// The bad journal was quarantined, not left to be rescanned (and
	// re-logged) on every subsequent boot.
	if _, err := os.Stat(filepath.Join(dir, "c000009.ndjson.corrupt")); err != nil {
		t.Fatalf("bad journal not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "c000009.ndjson")); !os.IsNotExist(err) {
		t.Fatalf("bad journal still in place (err %v)", err)
	}
}

// Recovery must reproduce cross-kind submission order: campaign and
// sweep ids share one counter, and requeue sequence follows numeric id
// order, not directory order (where every c* file sorts before any s*).
func TestServiceRecoveryCrossKindOrder(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1})
	blocker := postCampaign(t, ts, longSpec())
	awaitStateRaw(t, ts, blocker, StateRunning)
	sweepID := postSweep(t, ts, testSweepSpec()) // s000002, queued
	campID := postCampaign(t, ts, testSpec())    // c000003, queued
	ts.Close()
	svc.Close()

	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1})
	defer func() { ts2.Close(); svc2.Close() }()
	svc2.mu.Lock()
	sweepSeq := svc2.sweeps[sweepID].seq
	campSeq := svc2.jobs[campID].seq
	svc2.mu.Unlock()
	if sweepSeq >= campSeq {
		t.Fatalf("recovered FIFO order lost: sweep %s seq %d !< campaign %s seq %d",
			sweepID, sweepSeq, campID, campSeq)
	}
}

// The recovered queue preserves priorities: an interrupted high-priority
// job requeues ahead of an earlier-submitted low-priority one.
func TestServiceRecoveryKeepsPriority(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1})

	long := longSpec()
	blocker := postCampaign(t, ts, long)
	awaitStateRaw(t, ts, blocker, StateRunning)
	slow := testSpec()
	slow.Graph = "grid:64:64"
	slow.Trials = 200
	low := postCampaign(t, ts, slow)
	high := slow
	high.Priority = 9
	highID := postCampaign(t, ts, high)
	ts.Close()
	svc.Close() // blocker aborted, low/high drained — all unterminated

	// On restart all three requeue. Pop order is priority-first: the
	// recovered high-priority job starts before both priority-0 jobs —
	// including the blocker, despite its earlier submission sequence — so
	// `low` must still be queued when `high` leaves the queue.
	_ = blocker
	svc2, ts2 := newPersistentServer(t, dir, ServerConfig{CampaignWorkers: 1})
	t.Cleanup(func() { ts2.Close(); svc2.Close() })

	deadline := time.Now().Add(60 * time.Second)
	for {
		hs, ls := stateOf(svc2, highID), stateOf(svc2, low)
		if hs != StateQueued && ls == StateQueued {
			return
		}
		if ls != StateQueued {
			t.Fatalf("low-priority job left the recovered queue first (low %s, high %s)", ls, hs)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered jobs never started (low %s, high %s)", ls, hs)
		}
		time.Sleep(time.Millisecond)
	}
}
