package batch

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/store"
)

// Durability layer of the cobrad service. A Server built with
// NewServerWith journals every accepted job to a Store: the header
// (kind + spec) is durable before the submission is acknowledged, result
// records are appended as trials commit (the same bytes the results
// endpoint streams), and a terminal record seals the journal when the
// job finishes. On startup the server replays the store: finished jobs
// are restored with their aggregates in RAM and their results served
// from disk; interrupted or still-queued jobs are reset to their header
// and requeued — by the campaign determinism contract the re-run is
// byte-identical to the run the crash destroyed, so recovery is exact.

// Store is the pluggable durability layer behind a persistent Server,
// implemented by *store.Store. nil means in-memory only (jobs do not
// survive a restart, and finished results are never evicted from RAM).
type Store interface {
	Create(h store.Header) (*store.Journal, error)
	Reset(id string) (*store.Journal, error)
	Remove(id string) error
	Results(id string) (*store.Results, error)
	Recover() ([]store.Recovered, error)
}

// campaignCommitEvery is the campaign journal's commit boundary: results
// are fsynced every this many records (sweeps additionally commit at
// every cell boundary). Recovery never depends on mid-run commits — an
// unterminated journal is re-run from its spec — so the boundary only
// bounds how much a results reader of a *finished* journal could have
// lost to an ill-timed crash, not correctness.
const campaignCommitEvery = 256

// journalSink serializes one job's results into its journal. It is used
// only from the single goroutine running the job (plus Close on the
// submit path for drained jobs), so it needs no locking. Errors are
// sticky and silent: a broken journal stops persisting but never fails
// the in-RAM job; the unterminated journal simply means the job is re-run
// on the next recovery.
type journalSink struct {
	j           *store.Journal
	uncommitted int
	broken      bool
}

func newJournalSink(j *store.Journal) *journalSink {
	return &journalSink{j: j}
}

// record appends one result record (json.Marshal of v — byte-identical
// to the json.Encoder lines the results endpoint streams).
func (js *journalSink) record(v any) {
	if js == nil || js.broken {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		js.broken = true
		return
	}
	if js.j.Append(line) != nil {
		js.broken = true
		return
	}
	js.uncommitted++
	if js.uncommitted >= campaignCommitEvery {
		js.commitNow()
	}
}

// boundary marks an explicit commit boundary (sweeps call it when the
// committed cell changes).
func (js *journalSink) boundary() {
	if js == nil || js.broken || js.uncommitted == 0 {
		return
	}
	js.commitNow()
}

func (js *journalSink) commitNow() {
	if js.j.Commit() != nil {
		js.broken = true
	}
	js.uncommitted = 0
}

// finish seals the journal with the job's terminal record, reporting
// whether the journal is durably terminal (the job's results may then be
// evicted from RAM and served from disk).
func (js *journalSink) finish(state JobState, completed int, finished time.Time, final any, errMsg string) bool {
	if js == nil {
		return false
	}
	if js.broken {
		js.j.Close()
		return false
	}
	var raw json.RawMessage
	if final != nil {
		var err error
		if raw, err = json.Marshal(final); err != nil {
			js.broken = true
			js.j.Close()
			return false
		}
	}
	err := js.j.Finish(store.Terminal{
		State:     string(state),
		Completed: completed,
		Finished:  finished,
		Final:     raw,
		Error:     errMsg,
	})
	if err != nil {
		js.broken = true
		js.j.Close() // a failed Finish must still release the descriptor
		return false
	}
	return true
}

// interrupt flushes and closes the journal without a terminal record:
// the shutdown path for queued and aborted-mid-run jobs, which recovery
// requeues for a byte-identical re-run.
func (js *journalSink) interrupt() {
	if js == nil {
		return
	}
	js.j.Close()
}

// createJournal opens a journal for a freshly accepted job.
func (s *Server) createJournal(kind store.Kind, id string, spec any, created time.Time) (*journalSink, error) {
	if s.store == nil {
		return nil, nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	j, err := s.store.Create(store.Header{Kind: kind, ID: id, Created: created, Spec: raw})
	if err != nil {
		return nil, err
	}
	return newJournalSink(j), nil
}

// recoverJobs replays every journal in the store into the server's job
// tables. It runs from NewServerWith before the campaign workers start
// and before the handler is reachable, so no locks are needed. Journals
// arrive in id order (ids are zero-padded), which reproduces the
// original submission order in listings and gives requeued equal-priority
// jobs their original FIFO order.
func (s *Server) recoverJobs() error {
	recs, err := s.store.Recover()
	if err != nil {
		return err
	}
	// Campaign and sweep ids share one counter, so numeric id order is the
	// true cross-kind submission order — directory order is not (every c*
	// file sorts before any s* file). Requeued equal-priority jobs get
	// their original FIFO sequence from this.
	sort.Slice(recs, func(i, j int) bool {
		return idNumber(recs[i].Header.ID) < idNumber(recs[j].Header.ID)
	})
	maxID := 0
	for _, rec := range recs {
		// Even an unusable journal's id must advance the id counter, or a
		// fresh submission could collide with the file on disk.
		if n := idNumber(rec.Header.ID); n > maxID {
			maxID = n
		}
		if rec.Err != nil {
			continue // unusable journal: skip it rather than refuse to start
		}
		switch rec.Header.Kind {
		case store.KindCampaign:
			err = s.recoverCampaign(rec)
		case store.KindSweep:
			err = s.recoverSweep(rec)
		default:
			continue
		}
		if err != nil {
			// One undecodable spec or terminal record must not take the
			// whole store down with it: skip the journal, keep serving the
			// healthy jobs (same policy as rec.Err above).
			continue
		}
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	return nil
}

// idNumber extracts the numeric part of a job id ("c000042" → 42);
// 0 for anything unparsable.
func idNumber(id string) int {
	if len(id) < 2 {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) recoverCampaign(rec store.Recovered) error {
	var spec Spec
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return fmt.Errorf("%w: journal %s: bad campaign spec: %v", ErrInput, rec.Header.ID, err)
	}
	job, err := s.recoveredJob(rec, spec.Priority, spec.Deadline)
	if err != nil {
		return err
	}
	job.spec = spec
	if rec.Terminal != nil {
		if err := applyTerminal(job, rec.Terminal); err != nil {
			return err
		}
		if len(rec.Terminal.Final) > 0 {
			var agg Aggregate
			if err := json.Unmarshal(rec.Terminal.Final, &agg); err == nil {
				job.final = &agg
			}
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	if rec.Terminal == nil {
		s.queue.push(job, true)
	}
	return nil
}

func (s *Server) recoverSweep(rec store.Recovered) error {
	var spec SweepSpec
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return fmt.Errorf("%w: journal %s: bad sweep spec: %v", ErrInput, rec.Header.ID, err)
	}
	job, err := s.recoveredJob(rec, spec.Priority, spec.Deadline)
	if err != nil {
		return err
	}
	job.sweep = &spec
	job.cellSpecs = spec.Cells()
	job.cellOnline = make([]*stats.Online, len(job.cellSpecs))
	job.cellPhases = make([]CellPhase, len(job.cellSpecs))
	for i := range job.cellOnline {
		job.cellOnline[i] = stats.NewOnline()
		job.cellPhases[i] = CellQueued
	}
	if rec.Terminal != nil {
		if err := applyTerminal(job, rec.Terminal); err != nil {
			return err
		}
		if job.state == StateDone && len(rec.Terminal.Final) > 0 {
			var cells []CellSummary
			if err := json.Unmarshal(rec.Terminal.Final, &cells); err == nil {
				job.cellFinal = cells
			}
		} else {
			// A restored failed/expired sweep never committed its tail; no
			// per-cell phase survives the restart, so mark every cell as one
			// that will never commit.
			for i := range job.cellPhases {
				job.cellPhases[i] = CellFailed
			}
		}
	}
	s.sweeps[job.id] = job
	s.sweepOrder = append(s.sweepOrder, job.id)
	if rec.Terminal == nil {
		s.queue.push(job, true)
	}
	return nil
}

// recoveredJob builds the common Job shell for a recovered journal; for
// unterminated journals it also resets the journal for the re-run.
func (s *Server) recoveredJob(rec store.Recovered, priority int, deadline string) (*Job, error) {
	dl, err := parseDeadline(deadline)
	if err != nil {
		return nil, fmt.Errorf("%w: journal %s: %v", ErrInput, rec.Header.ID, err)
	}
	s.seq++
	job := &Job{
		id:       rec.Header.ID,
		state:    StateQueued,
		online:   stats.NewOnline(),
		notify:   make(chan struct{}),
		created:  rec.Header.Created,
		priority: priority,
		deadline: dl,
		seq:      s.seq,
	}
	if rec.Terminal == nil {
		j, err := s.store.Reset(job.id)
		if err != nil {
			return nil, err
		}
		job.sink = newJournalSink(j)
	}
	return job, nil
}

// applyTerminal restores a job's terminal state from its journal. The
// job's results stay on disk: evicted is set from the start, so the
// results endpoint streams the journal's result section verbatim.
func applyTerminal(job *Job, t *store.Terminal) error {
	st := JobState(t.State)
	if !st.Terminal() {
		return fmt.Errorf("%w: journal %s: bad terminal state %q", ErrInput, job.id, t.State)
	}
	job.state = st
	job.completed = t.Completed
	job.errMsg = t.Error
	job.finished = t.Finished
	job.evicted = true
	job.persisted = true
	return nil
}

// finishJob records a terminal transition for the retention policy and
// applies it: beyond RetainResults finished jobs (or past RetainTTL),
// the oldest finished jobs' result slices are dropped from RAM — their
// status and aggregates stay, and their results are served from the
// journal. Only durably persisted jobs are evicted, and never while a
// results stream is following them; without a Store nothing is ever
// evicted.
func (s *Server) finishJob(job *Job) {
	if s.store == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job.mu.Lock()
	persisted := job.persisted
	job.mu.Unlock()
	if persisted {
		s.finishedJobs = append(s.finishedJobs, job)
	}
	s.evictLocked(time.Now())
}

// evictLocked enforces the retention bounds. Callers hold s.mu.
func (s *Server) evictLocked(now time.Time) {
	keep := s.cfg.RetainResults
	if keep < 0 {
		keep = len(s.finishedJobs) // count bound disabled; TTL may still evict
	}
	kept := s.finishedJobs[:0]
	for i, job := range s.finishedJobs {
		overCount := len(s.finishedJobs)-i > keep
		expired := s.cfg.RetainTTL > 0 && now.Sub(job.finishedAt()) > s.cfg.RetainTTL
		if (overCount || expired) && tryEvict(job) {
			continue
		}
		kept = append(kept, job)
	}
	s.finishedJobs = kept
}

func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// tryEvict drops a finished job's per-trial result slices from RAM,
// reporting false while a live results stream still reads them.
func tryEvict(job *Job) bool {
	job.mu.Lock()
	defer job.mu.Unlock()
	if !job.persisted || job.streams > 0 {
		return false
	}
	job.results = nil
	job.cellResults = nil
	job.evicted = true
	return true
}
