package batch

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/store"
)

// Durability layer of the cobrad service. A Server built with
// NewServerWith journals every accepted job to a Store: the header
// (kind + spec) is durable before the submission is acknowledged, result
// records are appended as trials commit (the same bytes the results
// endpoint streams), and a terminal record seals the journal when the
// job finishes. On startup the server replays the store: finished jobs
// are restored with their aggregates in RAM and their results served
// from disk; interrupted or still-queued jobs are *resumed* — the
// committed journal prefix is replayed into RAM (results, aggregates,
// cell phases) and the job is requeued to execute only the uncommitted
// tail, which the campaign determinism contract makes byte-identical to
// the tail the crash destroyed. Unusable journals are quarantined to
// <id>.ndjson.corrupt rather than silently rescanned forever.

// Store is the pluggable durability layer behind a persistent Server,
// implemented by *store.Store. nil means in-memory only (jobs do not
// survive a restart, and finished results are never evicted from RAM).
type Store interface {
	Create(h store.Header) (*store.Journal, error)
	Reset(id string) (*store.Journal, error)
	ResumeAt(id string) (*store.Journal, int, error)
	Quarantine(id string) error
	Remove(id string) error
	Results(id string) (*store.Results, error)
	Recover() ([]store.Recovered, error)
}

// campaignCommitEvery is the campaign journal's commit boundary: results
// are fsynced every this many records (sweeps additionally commit at
// every cell boundary). Commits define the resume point: recovery keeps
// the fsynced prefix, replays it from disk, and re-executes only the
// trials past it, so the boundary bounds how much work an ill-timed
// crash can force a recovered job to recompute — never correctness,
// because the committed prefix is byte-identical to what the re-run
// would produce (the campaign determinism contract).
const campaignCommitEvery = 256

// journalSink serializes one job's results into its journal. It is used
// only from the single goroutine running the job (plus Close on the
// submit path for drained jobs), so it needs no locking. Errors are
// sticky and silent: a broken journal stops persisting but never fails
// the in-RAM job; the unterminated journal simply means the job is re-run
// on the next recovery.
type journalSink struct {
	j           *store.Journal
	uncommitted int
	broken      bool
}

func newJournalSink(j *store.Journal) *journalSink {
	return &journalSink{j: j}
}

// record appends one result record (json.Marshal of v — byte-identical
// to the json.Encoder lines the results endpoint streams).
func (js *journalSink) record(v any) {
	if js == nil || js.broken {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		js.broken = true
		return
	}
	if js.j.Append(line) != nil {
		js.broken = true
		return
	}
	js.uncommitted++
	if js.uncommitted >= campaignCommitEvery {
		js.commitNow()
	}
}

// boundary marks an explicit commit boundary (sweeps call it when the
// committed cell changes).
func (js *journalSink) boundary() {
	if js == nil || js.broken || js.uncommitted == 0 {
		return
	}
	js.commitNow()
}

func (js *journalSink) commitNow() {
	if js.j.Commit() != nil {
		js.broken = true
	}
	js.uncommitted = 0
}

// finish seals the journal with the job's terminal record, reporting
// whether the journal is durably terminal (the job's results may then be
// evicted from RAM and served from disk).
func (js *journalSink) finish(state JobState, completed int, finished time.Time, final any, errMsg string) bool {
	if js == nil {
		return false
	}
	if js.broken {
		js.j.Close()
		return false
	}
	var raw json.RawMessage
	if final != nil {
		var err error
		if raw, err = json.Marshal(final); err != nil {
			js.broken = true
			js.j.Close()
			return false
		}
	}
	err := js.j.Finish(store.Terminal{
		State:     string(state),
		Completed: completed,
		Finished:  finished,
		Final:     raw,
		Error:     errMsg,
	})
	if err != nil {
		js.broken = true
		js.j.Close() // a failed Finish must still release the descriptor
		return false
	}
	return true
}

// interrupt flushes and closes the journal without a terminal record:
// the shutdown path for queued and aborted-mid-run jobs, which recovery
// requeues for a byte-identical re-run.
func (js *journalSink) interrupt() {
	if js == nil {
		return
	}
	js.j.Close()
}

// createJournal opens a journal for a freshly accepted job.
func (s *Server) createJournal(kind store.Kind, id string, spec any, created time.Time) (*journalSink, error) {
	if s.store == nil {
		return nil, nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	j, err := s.store.Create(store.Header{Kind: kind, ID: id, Created: created, Spec: raw})
	if err != nil {
		return nil, err
	}
	return newJournalSink(j), nil
}

// recoverJobs replays every journal in the store into the server's job
// tables. It runs from NewServerWith before the campaign workers start
// and before the handler is reachable, so no locks are needed. Journals
// arrive in id order (ids are zero-padded), which reproduces the
// original submission order in listings and gives requeued equal-priority
// jobs their original FIFO order.
func (s *Server) recoverJobs() error {
	recs, err := s.store.Recover()
	if err != nil {
		return err
	}
	// Campaign and sweep ids share one counter, so numeric id order is the
	// true cross-kind submission order — directory order is not (every c*
	// file sorts before any s* file). Requeued equal-priority jobs get
	// their original FIFO sequence from this.
	sort.Slice(recs, func(i, j int) bool {
		return idNumber(recs[i].Header.ID) < idNumber(recs[j].Header.ID)
	})
	maxID := 0
	for _, rec := range recs {
		// Even an unusable journal's id must advance the id counter, or a
		// fresh submission could collide with the file on disk.
		if n := idNumber(rec.Header.ID); n > maxID {
			maxID = n
		}
		if rec.Err != nil {
			// Unusable journal: quarantine it rather than refuse to start —
			// and rather than silently rescanning it on every boot.
			s.quarantine(rec.Header.ID, rec.Err)
			continue
		}
		switch rec.Header.Kind {
		case store.KindCampaign:
			err = s.recoverCampaign(rec)
		case store.KindSweep:
			err = s.recoverSweep(rec)
		default:
			s.quarantine(rec.Header.ID, fmt.Errorf("unknown journal kind %q", rec.Header.Kind))
			continue
		}
		if err != nil {
			// One undecodable spec or terminal record must not take the
			// whole store down with it: quarantine the journal, keep
			// serving the healthy jobs (same policy as rec.Err above).
			s.quarantine(rec.Header.ID, err)
			continue
		}
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	return nil
}

// idNumber extracts the numeric part of a job id ("c000042" → 42);
// 0 for anything unparsable.
func idNumber(id string) int {
	if len(id) < 2 {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) recoverCampaign(rec store.Recovered) error {
	var spec Spec
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return fmt.Errorf("%w: journal %s: bad campaign spec: %v", ErrInput, rec.Header.ID, err)
	}
	job, n, err := s.recoveredJob(rec, spec.Priority, spec.Deadline)
	if err != nil {
		return err
	}
	job.spec = spec
	if rec.Terminal != nil {
		if err := applyTerminal(job, rec.Terminal); err != nil {
			return err
		}
		if len(rec.Terminal.Final) > 0 {
			var agg Aggregate
			if err := json.Unmarshal(rec.Terminal.Final, &agg); err == nil {
				job.final = &agg
			}
		}
	} else if n > 0 {
		if err := s.replayCampaign(job, n); err != nil {
			if err := s.resetForRerun(job, err); err != nil {
				return err
			}
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	if rec.Terminal == nil {
		s.queue.push(job, true)
	}
	return nil
}

func (s *Server) recoverSweep(rec store.Recovered) error {
	var spec SweepSpec
	if err := json.Unmarshal(rec.Header.Spec, &spec); err != nil {
		return fmt.Errorf("%w: journal %s: bad sweep spec: %v", ErrInput, rec.Header.ID, err)
	}
	job, n, err := s.recoveredJob(rec, spec.Priority, spec.Deadline)
	if err != nil {
		return err
	}
	job.sweep = &spec
	job.cellSpecs = spec.Cells()
	job.cellOnline = make([]*stats.Online, len(job.cellSpecs))
	job.cellPhases = make([]CellPhase, len(job.cellSpecs))
	for i := range job.cellOnline {
		job.cellOnline[i] = stats.NewOnline()
		job.cellPhases[i] = CellQueued
	}
	if rec.Terminal == nil && n > 0 {
		if err := s.replaySweep(job, n); err != nil {
			if err := s.resetForRerun(job, err); err != nil {
				return err
			}
		}
	}
	if rec.Terminal != nil {
		if err := applyTerminal(job, rec.Terminal); err != nil {
			return err
		}
		if job.state == StateDone && len(rec.Terminal.Final) > 0 {
			var cells []CellSummary
			if err := json.Unmarshal(rec.Terminal.Final, &cells); err == nil {
				job.cellFinal = cells
			}
		} else {
			// A restored failed/expired sweep never committed its tail; no
			// per-cell phase survives the restart, so mark every cell as one
			// that will never commit.
			for i := range job.cellPhases {
				job.cellPhases[i] = CellFailed
			}
		}
	}
	s.sweeps[job.id] = job
	s.sweepOrder = append(s.sweepOrder, job.id)
	if rec.Terminal == nil {
		s.queue.push(job, true)
	}
	return nil
}

// recoveredJob builds the common Job shell for a recovered journal. For
// unterminated journals it reopens the journal for resumption: the
// committed prefix is kept (any torn tail truncated) and the returned
// count tells the caller how many result records to replay into RAM; a
// prefix that will not scan falls back to Reset and a from-scratch
// re-run rather than losing the job.
func (s *Server) recoveredJob(rec store.Recovered, priority int, deadline string) (*Job, int, error) {
	dl, err := parseDeadline(deadline)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: journal %s: %v", ErrInput, rec.Header.ID, err)
	}
	s.seq++
	job := &Job{
		id:       rec.Header.ID,
		state:    StateQueued,
		online:   stats.NewOnline(),
		notify:   make(chan struct{}),
		created:  rec.Header.Created,
		priority: priority,
		deadline: dl,
		seq:      s.seq,
	}
	job.queuedAt = time.Now() // admission wait restarts at recovery
	n := 0
	if rec.Terminal == nil {
		j, cnt, err := s.store.ResumeAt(job.id)
		if err != nil {
			s.log().Warn("resume scan failed; re-running from scratch",
				"job", job.id, "err", err)
			if j, err = s.store.Reset(job.id); err != nil {
				return nil, 0, err
			}
			cnt = 0
		}
		job.sink = newJournalSink(j)
		n = cnt
	}
	return job, n, nil
}

// replayCampaign loads an interrupted campaign's committed prefix — n
// result records — from its journal into RAM (results, count, online
// fold), so the requeued job resumes at trial n instead of recomputing
// the prefix. Replayed records never touch the trials-executed counter:
// only genuinely computed trials count there.
func (s *Server) replayCampaign(job *Job, n int) error {
	if n > job.spec.Trials {
		return fmt.Errorf("journal holds %d results for a %d-trial campaign", n, job.spec.Trials)
	}
	it, err := s.store.Results(job.id)
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Next() {
		var r TrialResult
		if err := json.Unmarshal(it.Line(), &r); err != nil {
			return fmt.Errorf("undecodable result record %d: %v", len(job.results), err)
		}
		if r.Trial != len(job.results) {
			return fmt.Errorf("result record %d carries trial %d", len(job.results), r.Trial)
		}
		job.results = append(job.results, r)
		job.online.Add(float64(r.Rounds))
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(job.results) != n {
		return fmt.Errorf("journal replay read %d results, resume scan counted %d", len(job.results), n)
	}
	job.completed = n
	job.started = true
	return nil
}

// replaySweep is replayCampaign for sweep journals: records are
// validated against the flattened (cell, trial) order — record i must
// carry cell i/Trials, trial i%Trials — and folded into the per-cell
// aggregates; fully-replayed cells are marked done so status reflects
// the committed prefix.
func (s *Server) replaySweep(job *Job, n int) error {
	trials := job.sweep.Trials
	if n > len(job.cellSpecs)*trials {
		return fmt.Errorf("journal holds %d results for a %d-trial sweep", n, len(job.cellSpecs)*trials)
	}
	it, err := s.store.Results(job.id)
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Next() {
		i := len(job.cellResults)
		var r CellResult
		if err := json.Unmarshal(it.Line(), &r); err != nil {
			return fmt.Errorf("undecodable result record %d: %v", i, err)
		}
		if r.Cell != i/trials || r.Trial != i%trials {
			return fmt.Errorf("result record %d carries (cell %d, trial %d), want (%d, %d)",
				i, r.Cell, r.Trial, i/trials, i%trials)
		}
		job.cellResults = append(job.cellResults, r)
		job.cellOnline[r.Cell].Add(float64(r.Rounds))
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(job.cellResults) != n {
		return fmt.Errorf("journal replay read %d results, resume scan counted %d", len(job.cellResults), n)
	}
	for i := 0; i < n/trials; i++ {
		job.cellPhases[i] = CellDone
	}
	job.completed = n
	job.started = true
	return nil
}

// resetForRerun abandons an unusable committed prefix: the journal is
// truncated back to its header, RAM state cleared, and the job re-runs
// from trial 0 — the pre-resume recovery behavior, kept as the fallback.
func (s *Server) resetForRerun(job *Job, cause error) error {
	s.log().Warn("cannot resume from committed prefix; re-running from scratch",
		"job", job.id, "err", cause)
	job.sink.interrupt()
	job.sink = nil
	j, err := s.store.Reset(job.id)
	if err != nil {
		return err
	}
	job.sink = newJournalSink(j)
	job.results = nil
	job.cellResults = nil
	job.completed = 0
	job.started = false
	job.online = stats.NewOnline()
	for i := range job.cellOnline {
		job.cellOnline[i] = stats.NewOnline()
		job.cellPhases[i] = CellQueued
	}
	return nil
}

// quarantine sidelines a journal recovery cannot use, logging the cause
// once; the renamed <id>.ndjson.corrupt file stays on disk for the
// operator, and later startup scans no longer pay to parse it.
func (s *Server) quarantine(id string, cause error) {
	s.log().Warn("journal unusable; quarantining",
		"job", id, "err", cause, "corrupt", id+".ndjson.corrupt")
	if err := s.store.Quarantine(id); err != nil {
		s.log().Error("quarantine journal failed", "job", id, "err", err)
	}
}

// reopenSink reopens a resumed job's journal before a run attempt (the
// previous attempt closed it at a committed boundary when the job was
// preempted, or recovery's reopen was lost). The scan's committed count
// is reconciled with RAM: normally they already agree — every record is
// written to the journal before RAM, and preemption closes with a flush
// — but if the previous attempt's sink had broken mid-run, disk is
// behind RAM, and disk wins: the resumed attempt appends after the
// committed prefix, so RAM rolls back to it and the tail past it is
// recomputed (byte-identically).
func (s *Server) reopenSink(job *Job) {
	if job.sink != nil {
		return
	}
	j, n, err := s.store.ResumeAt(job.id)
	if err != nil {
		s.log().Warn("reopen journal for resume failed; continuing without persistence",
			"job", job.id, "err", err)
		return
	}
	job.sink = newJournalSink(j)
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.completed == n {
		return
	}
	if job.sweep != nil {
		if n > len(job.cellResults) {
			n = len(job.cellResults) // unreachable: disk never leads RAM
		}
		job.cellResults = job.cellResults[:n]
		for i := range job.cellOnline {
			job.cellOnline[i] = stats.NewOnline()
		}
		for _, r := range job.cellResults {
			job.cellOnline[r.Cell].Add(float64(r.Rounds))
		}
		done := n / job.sweep.Trials
		for i := range job.cellPhases {
			if i < done {
				job.cellPhases[i] = CellDone
			} else {
				job.cellPhases[i] = CellQueued
			}
		}
	} else {
		if n > len(job.results) {
			n = len(job.results) // unreachable: disk never leads RAM
		}
		job.results = job.results[:n]
		job.online = stats.NewOnline()
		for _, r := range job.results {
			job.online.Add(float64(r.Rounds))
		}
	}
	job.completed = n
}

// applyTerminal restores a job's terminal state from its journal. The
// job's results stay on disk: evicted is set from the start, so the
// results endpoint streams the journal's result section verbatim.
func applyTerminal(job *Job, t *store.Terminal) error {
	st := JobState(t.State)
	if !st.Terminal() {
		return fmt.Errorf("%w: journal %s: bad terminal state %q", ErrInput, job.id, t.State)
	}
	job.state = st
	job.completed = t.Completed
	job.errMsg = t.Error
	job.finished = t.Finished
	job.evicted = true
	job.persisted = true
	return nil
}

// finishJob records a terminal transition for the retention policy and
// applies it: beyond RetainResults finished jobs (or past RetainTTL),
// the oldest finished jobs' result slices are dropped from RAM — their
// status and aggregates stay, and their results are served from the
// journal. Only durably persisted jobs are evicted, and never while a
// results stream is following them; without a Store nothing is ever
// evicted. TTL expiry is additionally enforced by the retention ticker
// and on status/results reads, so it does not wait for the next job to
// finish.
func (s *Server) finishJob(job *Job) {
	if s.store == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job.mu.Lock()
	persisted := job.persisted
	job.mu.Unlock()
	if persisted {
		s.finishedJobs = append(s.finishedJobs, job)
	}
	s.evictLocked()
}

// evictLocked enforces the retention bounds against the server clock.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	now := s.clock()
	keep := s.cfg.RetainResults
	if keep < 0 {
		keep = len(s.finishedJobs) // count bound disabled; TTL may still evict
	}
	kept := s.finishedJobs[:0]
	for i, job := range s.finishedJobs {
		overCount := len(s.finishedJobs)-i > keep
		expired := s.cfg.RetainTTL > 0 && now.Sub(job.finishedAt()) > s.cfg.RetainTTL
		if (overCount || expired) && tryEvict(job) {
			continue
		}
		kept = append(kept, job)
	}
	s.finishedJobs = kept
}

func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// tryEvict drops a finished job's per-trial result slices from RAM,
// reporting false while a live results stream still reads them.
func tryEvict(job *Job) bool {
	job.mu.Lock()
	defer job.mu.Unlock()
	if !job.persisted || job.streams > 0 {
		return false
	}
	job.results = nil
	job.cellResults = nil
	job.evicted = true
	return true
}
