package batch

import (
	"context"
	"errors"
	"testing"

	"github.com/repro/cobra/internal/stats"
)

// The resume contract at the library layer: RunFrom(from, prefix-fold)
// must reproduce the uninterrupted run's tail stream and final aggregate
// bit for bit, at every resume offset. The service's journal replay is
// exactly this call with the prefix folded from disk.

// prefixFold folds the first `from` round counts of a full run's result
// stream, in order — the Online state a resumed job reconstructs by
// replaying its committed journal prefix.
func prefixFold(results []TrialResult, from int) *stats.Online {
	online := stats.NewOnline()
	for _, r := range results[:from] {
		online.Add(float64(r.Rounds))
	}
	return online
}

func TestCampaignRunFromMatchesFullRun(t *testing.T) {
	spec := testSpec()
	spec.Workers = 4
	full, fullAgg := runCampaign(t, spec, nil)

	c, err := Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every boundary class: fresh start, after one commit, mid-run, one
	// trial left, and nothing left to compute.
	for _, from := range []int{0, 1, 17, spec.Trials - 1, spec.Trials} {
		var tail []TrialResult
		agg, err := c.RunFrom(context.Background(), from, prefixFold(full, from),
			func(r TrialResult) { tail = append(tail, r) })
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if len(tail) != spec.Trials-from {
			t.Fatalf("from=%d: tail has %d results, want %d", from, len(tail), spec.Trials-from)
		}
		for i, r := range tail {
			if r != full[from+i] {
				t.Fatalf("from=%d: tail trial %d differs: %+v vs %+v", from, from+i, r, full[from+i])
			}
		}
		if *agg != *fullAgg {
			t.Fatalf("from=%d: aggregate differs: %+v vs %+v", from, *agg, *fullAgg)
		}
	}

	// Out-of-range resume points are input errors, not silent clamps.
	for _, from := range []int{-1, spec.Trials + 1} {
		if _, err := c.RunFrom(context.Background(), from, nil, nil); !errors.Is(err, ErrInput) {
			t.Fatalf("from=%d accepted: %v", from, err)
		}
	}
}

func TestSweepRunFromMatchesFullRun(t *testing.T) {
	spec := testSweepSpec()
	spec.CellWorkers = 3
	full, fullCells := runSweep(t, spec, nil)
	trials := spec.Trials

	// sweepPrefix rebuilds the per-cell folds a resumed sweep derives from
	// its journal: one Online per cell touched by the first `from` flat
	// results.
	sweepPrefix := func(from int) []*stats.Online {
		prefix := make([]*stats.Online, spec.CellCount())
		for i := range prefix {
			prefix[i] = stats.NewOnline()
		}
		for _, r := range full[:from] {
			prefix[r.Cell].Add(float64(r.Rounds))
		}
		return prefix
	}

	// Offsets cover a cell-boundary resume, a mid-cell resume (head cell
	// continues via Campaign.RunFrom), a fresh start, and a fully-replayed
	// sweep where no trial runs at all.
	total := spec.CellCount() * trials
	for _, from := range []int{0, 2 * trials, 2*trials + 3, total - 1, total} {
		sw, err := CompileSweep(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		var tail []CellResult
		cells, err := sw.RunFrom(context.Background(), from, sweepPrefix(from),
			func(r CellResult) { tail = append(tail, r) })
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if len(tail) != total-from {
			t.Fatalf("from=%d: tail has %d results, want %d", from, len(tail), total-from)
		}
		for i, r := range tail {
			if r != full[from+i] {
				t.Fatalf("from=%d: tail result %d differs: %+v vs %+v", from, from+i, r, full[from+i])
			}
		}
		if len(cells) != len(fullCells) {
			t.Fatalf("from=%d: %d summaries, want %d", from, len(cells), len(fullCells))
		}
		for i := range cells {
			got, want := cells[i], fullCells[i]
			if got.Cell != want.Cell || got.Graph != want.Graph || got.Process != want.Process ||
				got.Branch != want.Branch || got.Rho != want.Rho {
				t.Fatalf("from=%d: cell %d coordinates differ: %+v vs %+v", from, i, got, want)
			}
			if *got.Aggregate != *want.Aggregate {
				t.Fatalf("from=%d: cell %d aggregate differs: %+v vs %+v", from, i, *got.Aggregate, *want.Aggregate)
			}
		}
	}

	// A resume past cell 0 without the replayed cells' folds is an input
	// error — the summaries could not be rebuilt.
	sw, err := CompileSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RunFrom(context.Background(), trials, nil, nil); !errors.Is(err, ErrInput) {
		t.Fatalf("missing prefix accepted: %v", err)
	}
	if _, err := sw.RunFrom(context.Background(), total+1, sweepPrefix(0), nil); !errors.Is(err, ErrInput) {
		t.Fatalf("out-of-range resume point accepted: %v", err)
	}
}
