package batch

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The resume acceptance suite: a killed server restarted on its data
// directory must replay the committed journal prefix from disk and
// execute only the tail — byte-identical full stream, no recomputed
// prefix — at every crash-boundary class. Preemption is the same
// contract triggered from the scheduler instead of a crash.

// truncatedJournal rebuilds a journal as a crash would have left it:
// the header, the first m result lines, and an optional torn tail.
func truncatedJournal(t *testing.T, journal []byte, m int, tail string) []byte {
	t.Helper()
	lines := bytes.SplitAfter(journal, []byte("\n"))
	if len(lines) < m+2 {
		t.Fatalf("journal has %d lines, need header + %d results", len(lines), m)
	}
	var buf bytes.Buffer
	for i := 0; i <= m; i++ {
		buf.Write(lines[i])
	}
	buf.WriteString(tail)
	return buf.Bytes()
}

// TestServiceResumeCrashShapes doctors a finished job's journal into
// every crash shape — header only, clean commit boundary, torn final
// line, sweep cell boundary, sweep mid-cell — and asserts that recovery
// (a) serves the uninterrupted run's exact bytes and (b) recomputes
// exactly the uncommitted tail: TrialsExecuted counts live trials only,
// so it must equal total − m.
func TestServiceResumeCrashShapes(t *testing.T) {
	campaign := testSpec()
	sweep := testSweepSpec()

	kinds := []struct {
		name    string
		id      string
		total   int
		submit  func(t *testing.T, ts *httptest.Server) string
		results string
		status  string
		shapes  []struct {
			name string
			m    int
			tail string
		}
	}{
		{
			name:  "campaign",
			id:    "c000001",
			total: campaign.Trials,
			submit: func(t *testing.T, ts *httptest.Server) string {
				return postCampaign(t, ts, campaign)
			},
			results: "/v1/campaigns/c000001/results",
			status:  "/v1/campaigns/c000001",
			shapes: []struct {
				name string
				m    int
				tail string
			}{
				{"header-only", 0, ""},
				{"clean-boundary", 17, ""},
				{"torn-tail", 17, `{"trial":17,"rou`},
				{"one-uncommitted", campaign.Trials - 1, ""},
			},
		},
		{
			name:  "sweep",
			id:    "s000001",
			total: sweep.CellCount() * sweep.Trials,
			submit: func(t *testing.T, ts *httptest.Server) string {
				return postSweep(t, ts, sweep)
			},
			results: "/v1/sweeps/s000001/results",
			status:  "/v1/sweeps/s000001",
			shapes: []struct {
				name string
				m    int
				tail string
			}{
				{"cell-boundary", 3 * sweep.Trials, ""},
				{"mid-cell", 3*sweep.Trials + 4, ""},
				{"mid-cell-torn", 3*sweep.Trials + 4, `{"cell":3,"trial`},
			},
		},
	}

	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			// One uninterrupted durable run provides both the golden bytes
			// and the journal every crash shape is carved from.
			srcDir := t.TempDir()
			svc, ts := newPersistentServer(t, srcDir, ServerConfig{})
			if got := kind.submit(t, ts); got != kind.id {
				t.Fatalf("job id %s, want %s", got, kind.id)
			}
			awaitTerminal(t, ts, kind.status, StateDone)
			golden, trailer := fetchRaw(t, ts, kind.results)
			if trailer != StreamComplete {
				t.Fatalf("golden trailer %q", trailer)
			}
			ts.Close()
			svc.Close()
			journal, err := os.ReadFile(filepath.Join(srcDir, kind.id+".ndjson"))
			if err != nil {
				t.Fatal(err)
			}

			for _, shape := range kind.shapes {
				t.Run(shape.name, func(t *testing.T) {
					dir := t.TempDir()
					doctored := truncatedJournal(t, journal, shape.m, shape.tail)
					if err := os.WriteFile(filepath.Join(dir, kind.id+".ndjson"), doctored, 0o644); err != nil {
						t.Fatal(err)
					}
					svc, ts := newPersistentServer(t, dir, ServerConfig{})
					t.Cleanup(func() { ts.Close(); svc.Close() })
					awaitTerminal(t, ts, kind.status, StateDone)
					recovered, trailer := fetchRaw(t, ts, kind.results)
					if trailer != StreamComplete {
						t.Fatalf("recovered trailer %q", trailer)
					}
					if !bytes.Equal(recovered, golden) {
						t.Fatalf("recovered stream differs from golden: %d vs %d bytes",
							len(recovered), len(golden))
					}
					// The committed prefix came from disk, not recomputation.
					if exec := svc.TrialsExecuted(); exec != int64(kind.total-shape.m) {
						t.Fatalf("executed %d trials, want %d (total %d, committed %d)",
							exec, kind.total-shape.m, kind.total, shape.m)
					}
				})
			}

			// A journal torn inside its header line cannot be resumed or
			// reset: recovery quarantines it and keeps serving.
			t.Run("mid-header", func(t *testing.T) {
				dir := t.TempDir()
				header := journal[:bytes.IndexByte(journal, '\n')]
				if err := os.WriteFile(filepath.Join(dir, kind.id+".ndjson"), header[:len(header)/2], 0o644); err != nil {
					t.Fatal(err)
				}
				svc, ts := newPersistentServer(t, dir, ServerConfig{})
				t.Cleanup(func() { ts.Close(); svc.Close() })
				resp, err := http.Get(ts.URL + kind.status)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNotFound {
					t.Fatalf("torn-header journal served as a job: status %d", resp.StatusCode)
				}
				if _, err := os.Stat(filepath.Join(dir, kind.id+".ndjson.corrupt")); err != nil {
					t.Fatalf("torn-header journal not quarantined: %v", err)
				}
				if _, err := os.Stat(filepath.Join(dir, kind.id+".ndjson")); !os.IsNotExist(err) {
					t.Fatalf("torn-header journal still in place (err %v)", err)
				}
			})
		})
	}
}

// preemptionsOf reads the preemption counter off a status payload.
func preemptionsOf(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Preemptions int `json:"preemptions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Preemptions
}

// TestServicePreemptResume: with Preempt on, a higher-priority
// submission checkpoints the running low-priority job at a trial
// boundary and requeues it; the resumed job must still produce the
// uninterrupted run's exact bytes — including for a follower that was
// streaming across the preemption — and its status must report the
// checkpoint. Covered for a durable campaign, a durable sweep, and an
// in-memory campaign (no store: the checkpoint is RAM state alone).
func TestServicePreemptResume(t *testing.T) {
	victim := testSpec()
	victim.Graph = "grid:64:64"
	victim.Trials = 200
	sweepVictim := SweepSpec{
		Graphs:    []string{"grid:64:64"},
		Processes: []string{"cobra"},
		Branches:  []int{2, 3},
		Trials:    60,
		Seed:      7,
	}
	interloper := testSpec()
	interloper.Priority = 9

	golden := func(t *testing.T, submit func(*testing.T, *httptest.Server) string, results func(string) string, status func(string) string) []byte {
		svc := NewServer(ServerConfig{})
		ts := httptest.NewServer(svc)
		defer func() { ts.Close(); svc.Close() }()
		id := submit(t, ts)
		awaitTerminal(t, ts, status(id), StateDone)
		body, trailer := fetchRaw(t, ts, results(id))
		if trailer != StreamComplete {
			t.Fatalf("golden trailer %q", trailer)
		}
		return body
	}
	campaignSubmit := func(t *testing.T, ts *httptest.Server) string { return postCampaign(t, ts, victim) }
	campaignResults := func(id string) string { return "/v1/campaigns/" + id + "/results" }
	campaignStatus := func(id string) string { return "/v1/campaigns/" + id }
	sweepSubmit := func(t *testing.T, ts *httptest.Server) string { return postSweep(t, ts, sweepVictim) }
	sweepResults := func(id string) string { return "/v1/sweeps/" + id + "/results" }
	sweepStatus := func(id string) string { return "/v1/sweeps/" + id }

	cases := []struct {
		name    string
		durable bool
		submit  func(*testing.T, *httptest.Server) string
		results func(string) string
		status  func(string) string
	}{
		{"durable-campaign", true, campaignSubmit, campaignResults, campaignStatus},
		{"durable-sweep", true, sweepSubmit, sweepResults, sweepStatus},
		{"in-memory-campaign", false, campaignSubmit, campaignResults, campaignStatus},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := golden(t, tc.submit, tc.results, tc.status)

			cfg := ServerConfig{CampaignWorkers: 1, Preempt: true}
			var svc *Server
			var ts *httptest.Server
			if tc.durable {
				svc, ts = newPersistentServer(t, t.TempDir(), cfg)
			} else {
				svc = NewServer(cfg)
				ts = httptest.NewServer(svc)
			}
			t.Cleanup(func() { ts.Close(); svc.Close() })

			id := tc.submit(t, ts)
			waitCompleted(t, ts, tc.status(id), 10)
			// A follower attached before the preemption must see the whole
			// stream: preempt + resume is invisible to live clients.
			followerCh := make(chan []byte, 1)
			go func() {
				resp, err := http.Get(ts.URL + tc.results(id))
				if err != nil {
					followerCh <- nil
					return
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				followerCh <- b
			}()

			high := postCampaign(t, ts, interloper)
			awaitTerminal(t, ts, "/v1/campaigns/"+high, StateDone)
			awaitTerminal(t, ts, tc.status(id), StateDone)

			if n := preemptionsOf(t, ts, tc.status(id)); n < 1 {
				t.Fatalf("victim reports %d preemptions, want >= 1", n)
			}
			if svc.Preemptions() < 1 {
				t.Fatal("server preemption counter never moved")
			}
			got, trailer := fetchRaw(t, ts, tc.results(id))
			if trailer != StreamComplete {
				t.Fatalf("victim trailer %q", trailer)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("preempted-then-resumed stream differs from uninterrupted run: %d vs %d bytes",
					len(got), len(want))
			}
			if follower := <-followerCh; !bytes.Equal(follower, want) {
				t.Fatalf("live follower lost bytes across the preemption: %d vs %d",
					len(follower), len(want))
			}
		})
	}
}

// TestServiceRetentionTTLTicker proves TTL eviction no longer waits for
// the next terminal transition: after the last job finishes, nothing
// touches the server — only the background ticker can evict it.
func TestServiceRetentionTTLTicker(t *testing.T) {
	svc, ts := newPersistentServer(t, t.TempDir(), ServerConfig{RetainResults: -1, RetainTTL: 40 * time.Millisecond})
	t.Cleanup(func() { ts.Close(); svc.Close() })
	spec := testSpec()
	spec.Trials = 3
	id := postCampaign(t, ts, spec)
	awaitTerminal(t, ts, "/v1/campaigns/"+id, StateDone)
	// No further submissions or HTTP reads: finishJob has already run, so
	// from here only the retention ticker observes the TTL.
	awaitEvicted(t, svc, id)
}

// TestServiceRetentionFakeClock pins the read-path half of the fix with
// a fake clock: a status read on a server whose clock jumped past the
// TTL evicts synchronously, without waiting for the ticker.
func TestServiceRetentionFakeClock(t *testing.T) {
	svc, ts := newPersistentServer(t, t.TempDir(), ServerConfig{RetainResults: -1, RetainTTL: time.Hour})
	t.Cleanup(func() { ts.Close(); svc.Close() })
	spec := testSpec()
	spec.Trials = 3
	id := postCampaign(t, ts, spec)
	awaitTerminal(t, ts, "/v1/campaigns/"+id, StateDone)
	if jobEvicted(svc, id) {
		t.Fatal("job evicted inside its one-hour TTL")
	}
	svc.setClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	getStatus(t, ts, "/v1/campaigns/"+id) // the read itself enforces the TTL
	if !jobEvicted(svc, id) {
		t.Fatal("status read did not evict a job past its TTL")
	}
	// Evicted results still serve byte-for-byte from the journal.
	if _, trailer := fetchRaw(t, ts, "/v1/campaigns/"+id+"/results"); trailer != StreamComplete {
		t.Fatalf("evicted job trailer %q", trailer)
	}
}
