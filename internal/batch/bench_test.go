package batch

import (
	"context"
	"fmt"
	"testing"

	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/xrand"
)

// The acceptance benchmark pair: amortized per-trial cost of a campaign
// versus the naive loop-over-CoverTime baseline on a 2·10^5-vertex
// scale-free workload. One benchmark iteration is one trial in both, so
// ns/op and allocs/op are directly comparable; the campaign path should
// show near-zero allocs/op (workspace reuse) and no per-trial
// connectivity scan or graph rebuild.

const benchGraph = "ba:200000:3"

func BenchmarkBatchCampaign(b *testing.B) {
	cache := NewCache(2)
	if _, err := cache.GetOrBuild(benchGraph, 1); err != nil { // compile outside the timer
		b.Fatal(err)
	}
	spec := Spec{Graph: benchGraph, Process: "cobra", Branch: 2, Trials: b.N, Seed: 1, Workers: 1}
	c, err := Compile(spec, cache)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := c.Run(context.Background(), nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepParallelCells measures cell-level speedup on a
// multi-graph grid: 4 distinct graphs x 1 process x 1 branch, trials
// serialized within each cell (Workers=1) so the cell scheduler is the
// only source of parallelism. One benchmark iteration is one full sweep;
// compare the cellworkers=1 and cellworkers=4 variants for the speedup
// (the acceptance target is >= 1.5x on this grid). Graphs are
// pre-compiled into the shared cache outside the timer, matching the
// warm-cache steady state of a campaign server.
func BenchmarkSweepParallelCells(b *testing.B) {
	// Four distinct graphs of comparable per-cell cost (all expander-like,
	// similar cover times): cell-level speedup is bounded by total/max
	// cell time, so a grid with one dominant cell could not show it.
	sweepSpec := SweepSpec{
		Graphs:    []string{"ba:20000:3", "ba:20000:4", "rreg:20000:3", "ws:20000:6:0.1"},
		Processes: []string{"cobra"},
		Branches:  []int{2},
		Trials:    4,
		Seed:      1,
		Workers:   1,
	}
	cache := NewCache(len(sweepSpec.Graphs))
	for _, g := range sweepSpec.Graphs {
		if _, err := cache.GetOrBuild(g, sweepSpec.Seed); err != nil {
			b.Fatal(err)
		}
	}
	for _, cellWorkers := range []int{1, 4} {
		spec := sweepSpec
		spec.CellWorkers = cellWorkers
		b.Run(fmt.Sprintf("cellworkers=%d", cellWorkers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sw, err := CompileSweep(spec, cache)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sw.Run(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNaiveCoverLoop(b *testing.B) {
	g, err := graphspec.Parse(benchGraph, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Branch: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, err := core.CoverTime(g, cfg, 0, xrand.NewStream(1, uint64(k))); err != nil {
			b.Fatal(err)
		}
	}
}
