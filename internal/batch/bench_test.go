package batch

import (
	"context"
	"testing"

	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/xrand"
)

// The acceptance benchmark pair: amortized per-trial cost of a campaign
// versus the naive loop-over-CoverTime baseline on a 2·10^5-vertex
// scale-free workload. One benchmark iteration is one trial in both, so
// ns/op and allocs/op are directly comparable; the campaign path should
// show near-zero allocs/op (workspace reuse) and no per-trial
// connectivity scan or graph rebuild.

const benchGraph = "ba:200000:3"

func BenchmarkBatchCampaign(b *testing.B) {
	cache := NewCache(2)
	if _, err := cache.GetOrBuild(benchGraph, 1); err != nil { // compile outside the timer
		b.Fatal(err)
	}
	spec := Spec{Graph: benchGraph, Process: "cobra", Branch: 2, Trials: b.N, Seed: 1, Workers: 1}
	c, err := Compile(spec, cache)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := c.Run(context.Background(), nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkNaiveCoverLoop(b *testing.B) {
	g, err := graphspec.Parse(benchGraph, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Branch: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, err := core.CoverTime(g, cfg, 0, xrand.NewStream(1, uint64(k))); err != nil {
			b.Fatal(err)
		}
	}
}
