package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/repro/cobra/internal/obs"
	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/store"
)

// The cobrad job service: an http.Handler exposing campaigns and
// parameter sweeps as asynchronous jobs over HTTP/JSON, backed by a
// bounded priority queue with a campaign-worker pool, the shared LRU
// graph cache, and (optionally) a durable job store. cmd/cobrad wraps it
// in a process; tests drive it through httptest.
//
// Endpoints:
//
//	POST /v1/campaigns            submit a Spec; 202 + {id, ...} or 400/503.
//	                              ?priority=N and ?deadline=RFC3339
//	                              override the spec's queue fields
//	GET  /v1/campaigns            list job summaries
//	GET  /v1/campaigns/{id}       status + online aggregates
//	GET  /v1/campaigns/{id}/results  per-trial results as NDJSON, streamed
//	                              live (the response follows a running
//	                              campaign until it finishes); the
//	                              X-Cobrad-Stream trailer says whether the
//	                              stream is complete or was aborted
//	GET  /v1/campaigns/{id}/events  live job lifecycle as server-sent
//	                              events: state transitions, progress with
//	                              rolling aggregates, and a final "end"
//	                              event (complete|aborted, mirroring the
//	                              results trailer contract) — see events.go
//	POST /v1/sweeps               submit a SweepSpec; 202 + {id, ...};
//	                              same ?priority=/?deadline= parameters
//	GET  /v1/sweeps               list sweep summaries
//	GET  /v1/sweeps/{id}          status + per-cell online aggregates and
//	                              scheduler phases (queued/running/done/failed)
//	GET  /v1/sweeps/{id}/results  per-cell trial results as NDJSON in
//	                              (cell, trial) order, streamed live
//	GET  /v1/sweeps/{id}/events   the sweep twin of campaign /events, plus
//	                              per-cell phase-change events
//	GET  /v1/sweeps/{id}/table    cross-cell summary grid (header + rows)
//	GET  /v1/stats                process counters as one JSON object:
//	                              trials_executed (this process only —
//	                              journal replay excluded), preemptions,
//	                              queue depth (total and by band), cache
//	                              hits/misses/evictions/size, journal
//	                              appends/fsyncs/quarantines, running jobs,
//	                              backpressure stalls — scrapeless parity
//	                              with /metrics
//	GET  /metrics                 the same counters (plus latency
//	                              histograms) in Prometheus text exposition
//	                              format (internal/obs)
//	GET  /healthz                 liveness
//
// Observability is observe-only: every metric is an atomic instrument
// updated beside the hot path, event streams are read-side followers of
// the same per-job notify channel the results streams use, and nothing
// ever feeds back into scheduling or results — the determinism and
// byte-identity contracts hold with and without scrapers and followers
// attached (the conformance suites compare the un-instrumented library
// path against the instrumented HTTP path byte for byte).
//
// The determinism contract extends over the wire: a campaign submitted
// over HTTP yields exactly the per-trial results and aggregates of
// Compile + Run with the same Spec, and a sweep yields exactly those of
// CompileSweep + Run — cell by cell, byte for byte (service_test.go
// enforces both), for every cell-worker count: sweep cells execute in
// parallel (the spec's cell_workers, defaulting to ServerConfig.
// CellWorkers) behind a reorder buffer that keeps delivery in (cell,
// trial) order. Campaign and sweep jobs share one graph cache, so a
// sweep cell re-using an earlier campaign's graph is a cache hit.
//
// Queueing: jobs wait in a bounded priority queue — higher Spec.Priority
// first, submission order within a band — and a job whose Deadline
// passes while it is still queued is failed with the distinct terminal
// state "expired" instead of running. Neither field affects results,
// only when (or whether) a job runs.
//
// Durability: a Server built with NewServerWith journals every accepted
// job to a Store (see internal/store and persist.go). On startup the
// journals are replayed: finished jobs are restored with results served
// from disk, and interrupted or queued jobs are requeued to *resume* —
// the committed journal prefix is loaded back into RAM and streamed to
// results clients, and only the uncommitted tail is recomputed, which
// the campaign determinism contract makes byte-identical to the tail
// that was lost. With ServerConfig.Preempt, a higher-priority submission
// can checkpoint a running job at its next trial boundary; the
// preempted job requeues and later resumes from its committed prefix
// the same way. The shutdown contract holds with or without a store:
// Close leaves no job non-terminal (running jobs abort, queued jobs are
// drained and marked failed), and truncated result streams are flagged
// by the X-Cobrad-Stream trailer.

// JobState is the lifecycle of a submitted campaign.
type JobState string

const (
	// StateQueued means the job waits for a campaign worker.
	StateQueued JobState = "queued"
	// StateRunning means trials are executing.
	StateRunning JobState = "running"
	// StateDone means every trial completed.
	StateDone JobState = "done"
	// StateFailed means compilation or a trial failed, or the server shut
	// down before the job could finish (Close aborts running jobs and
	// drains queued ones — no job is ever left non-terminal); Error holds
	// the cause. With a Store attached, shutdown-aborted jobs are requeued
	// on the next start and resume from their committed journal prefix.
	StateFailed JobState = "failed"
	// StateExpired means the job's deadline passed while it was still
	// queued; it never ran. A distinct terminal state so clients can tell
	// "missed its deadline" from "ran and failed".
	StateExpired JobState = "expired"
)

// Terminal reports whether the state is final (no further transitions).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// ServerConfig sizes the service.
type ServerConfig struct {
	// CampaignWorkers is how many campaigns run concurrently (default 2).
	CampaignWorkers int
	// CellWorkers is the cell-level parallelism substituted into sweep
	// submissions that leave cell_workers unset or <= 0 (default 2). It
	// never affects results, only wall-clock time.
	CellWorkers int
	// QueueDepth bounds the backlog of queued campaigns; submissions
	// beyond it are rejected with 503 (default 64).
	QueueDepth int
	// CacheSize is the LRU graph cache capacity (default 32).
	CacheSize int
	// MaxTrials bounds a single campaign's trial count — per-trial
	// results are retained in memory for the results endpoint, so this
	// caps per-job memory (default 1e6; ~56 bytes per trial).
	MaxTrials int
	// RetainResults bounds how many finished jobs keep their per-trial
	// result slices in RAM when a Store is attached: beyond it the oldest
	// finished jobs' slices are evicted — status and aggregates stay in
	// RAM, results are served from the journal byte-for-byte. 0 means the
	// default 256; negative disables the count bound. Without a Store
	// nothing is evicted (the pre-persistence behavior: unbounded RAM).
	RetainResults int
	// RetainTTL additionally evicts a finished job's in-RAM results once
	// the job has been finished this long (0 = no TTL). Enforced by a
	// background retention ticker and opportunistically on terminal
	// transitions, status reads and stream closes, so an idle server
	// releases expired slices without waiting for new work. Requires a
	// Store, like RetainResults.
	RetainTTL time.Duration
	// Preempt enables trial-boundary preemption: when every campaign
	// worker is busy and a submission outranks a running job, the
	// lowest-priority running job is asked to yield at its next result.
	// The victim checkpoints (journal fsync at a trial boundary), requeues
	// at its own priority, and later resumes from its committed prefix —
	// replaying the prefix from disk and executing only the remaining
	// trials, with the full result stream byte-identical to an
	// uninterrupted run (the campaign determinism contract). Off by
	// default; never affects results, only when trials execute.
	Preempt bool
	// Logger receives the server's structured log records (recovery
	// fallbacks, quarantines, resume reconciliation), each carrying the
	// job id and context fields. nil uses slog.Default(), which cmd/cobrad
	// configures from -log-format.
	Logger *slog.Logger
	// Remote, when non-nil, turns the server into a fleet coordinator
	// for sweeps: admitted cells are handed to Remote.RunCell instead of
	// being compiled and computed locally, and the remotely computed
	// trials flow through the exact same reorder buffer, journal sink,
	// aggregates, and streams — byte-identical to local execution by the
	// campaign determinism contract. Campaign (non-sweep) jobs still run
	// locally. See internal/fleet for the coordinator implementation.
	Remote CellRunner
}

// CellRunner executes one admitted sweep cell outside this process. The
// cell's trials [from, spec.Trials) must be delivered in trial order;
// RunCell returns nil only once the cell is complete, an error when it
// failed or was abandoned, and promptly when ctx is cancelled. deliver
// must be called from one goroutine at a time.
type CellRunner interface {
	RunCell(ctx context.Context, jobID string, cell int, spec Spec, from int, deliver func(TrialResult)) error
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CampaignWorkers < 1 {
		c.CampaignWorkers = 2
	}
	if c.CellWorkers < 1 {
		c.CellWorkers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheSize < 1 {
		c.CacheSize = 32
	}
	if c.MaxTrials < 1 {
		c.MaxTrials = 1_000_000
	}
	if c.RetainResults == 0 {
		c.RetainResults = 256
	}
	return c
}

// Job is one submitted campaign or sweep and its accumulated results.
// Campaign jobs use spec/results/online/final; sweep jobs (sweep != nil)
// use sweep/cellSpecs/cellResults/cellOnline/cellFinal.
type Job struct {
	id        string
	spec      Spec
	sweep     *SweepSpec
	cellSpecs []Spec // expanded grid, fixed at submission

	priority int       // queue ordering: higher first, ties by seq
	deadline time.Time // zero = none; expired-in-queue jobs never run
	seq      int       // global submission sequence (FIFO tie-break)
	queuedAt time.Time // last time the job entered the queue (admission-wait metric)
	sink     *journalSink

	mu          sync.Mutex
	state       JobState
	results     []TrialResult
	completed   int             // trials delivered (survives result eviction)
	online      *stats.Online   // live partial aggregate while running
	final       *Aggregate      // Run's own aggregate, once done
	cellResults []CellResult    // sweep results in (cell, trial) order
	cellOnline  []*stats.Online // live per-cell aggregates
	cellPhases  []CellPhase     // per-cell scheduler phase (see CellPhase)
	cellFinal   []CellSummary   // Sweep.Run's own summaries, once done
	errMsg      string
	notify      chan struct{} // closed and replaced on every state change
	created     time.Time
	finished    time.Time
	persisted   bool // journal sealed with a terminal record
	evicted     bool // result slices dropped; results served from the journal
	streams     int  // live results streams reading the in-RAM slices
	started     bool // the job has executed trials (this process or a prior one)
	preempt     bool // a higher-priority job asked this one to yield
	preemptions int  // times the job was checkpointed and requeued
}

// jobStatus is the wire form of a job's status.
type jobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Spec      Spec     `json:"spec"`
	Trials    int      `json:"trials"`
	Completed int      `json:"completed"`
	// Preemptions counts how often the job was checkpointed at a trial
	// boundary and requeued for a higher-priority submission; its results
	// are unaffected (resume is byte-identical).
	Preemptions int        `json:"preemptions,omitempty"`
	Aggregate   *Aggregate `json:"aggregate,omitempty"`
	Error       string     `json:"error,omitempty"`
}

func (j *Job) statusLocked() jobStatus {
	st := jobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Trials:      j.spec.Trials,
		Completed:   j.completed,
		Preemptions: j.preemptions,
		Error:       j.errMsg,
	}
	if j.final != nil {
		st.Aggregate = j.final
	} else if j.online.N() > 0 {
		if summary, err := j.online.Summary(); err == nil {
			st.Aggregate = &Aggregate{Completed: j.online.N(), Rounds: summary}
		}
	}
	return st
}

// sweepStatus is the wire form of a sweep job's status.
type sweepStatus struct {
	ID        string    `json:"id"`
	State     JobState  `json:"state"`
	Spec      SweepSpec `json:"spec"`
	Cells     int       `json:"cells"`
	Trials    int       `json:"trials"`    // total across cells
	Completed int       `json:"completed"` // trials completed across cells
	// Preemptions counts trial-boundary checkpoints (see jobStatus).
	Preemptions int           `json:"preemptions,omitempty"`
	CellAggs    []CellSummary `json:"cell_aggregates,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// sweepStatusLocked renders the job's wire status; withCells selects
// whether the per-cell aggregates are included (the list endpoint skips
// them to keep listings compact and each job's lock hold short).
func (j *Job) sweepStatusLocked(withCells bool) sweepStatus {
	st := sweepStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        *j.sweep,
		Cells:       len(j.cellSpecs),
		Trials:      len(j.cellSpecs) * j.sweep.Trials,
		Completed:   j.completed,
		Preemptions: j.preemptions,
		Error:       j.errMsg,
	}
	if !withCells {
		return st
	}
	if j.cellFinal != nil {
		st.CellAggs = j.cellFinal
		return st
	}
	for i, spec := range j.cellSpecs {
		cs := cellSummary(i, spec, nil)
		cs.Phase = j.cellPhases[i]
		if o := j.cellOnline[i]; o.N() > 0 {
			if summary, err := o.Summary(); err == nil {
				cs.Aggregate = &Aggregate{Completed: o.N(), Rounds: summary}
			}
		}
		st.CellAggs = append(st.CellAggs, cs)
	}
	return st
}

// bump wakes every watcher of j. Callers hold j.mu.
func (j *Job) bumpLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// Server is the cobrad service. Create with NewServer (in-memory) or
// NewServerWith (durable), serve it as an http.Handler, and Close it to
// stop the campaign workers.
type Server struct {
	cfg    ServerConfig
	cache  *Cache
	mux    *http.ServeMux
	queue  *jobQueue
	store  Store // nil = in-memory only
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// met is the server's observe-only instrument set (metrics.go),
	// serving /metrics and /v1/stats. met.trials counts trials executed by
	// this process — replayed journal records never increment it, so tests
	// and the CI smoke can assert that a resumed job recomputed only its
	// tail.
	met *serverMetrics

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string // submission order, for the list endpoint
	sweeps       map[string]*Job
	sweepOrder   []string
	nextID       int
	seq          int               // queue tie-break sequence (includes recovered jobs)
	finishedJobs []*Job            // terminal persisted jobs in finish order (retention)
	running      map[*Job]struct{} // jobs currently on a campaign worker (preemption)
	clock        func() time.Time  // time source for retention; tests may override
}

// NewServer builds an in-memory service and starts its campaign workers.
// Jobs and results do not survive the process; see NewServerWith.
func NewServer(cfg ServerConfig) *Server {
	s, err := NewServerWith(cfg, nil)
	if err != nil {
		// Unreachable: only store recovery can fail, and there is no store.
		panic(err)
	}
	return s
}

// NewServerWith builds the service over a durable job store (nil st
// behaves exactly like NewServer). Before accepting traffic it replays
// the store: finished jobs are restored — status and aggregates in RAM,
// results served from their journals — and interrupted or queued jobs
// are requeued for a re-run that the campaign determinism contract makes
// byte-identical to the run a crash or shutdown destroyed.
func NewServerWith(cfg ServerConfig, st Store) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheSize),
		mux:     http.NewServeMux(),
		queue:   newJobQueue(cfg.QueueDepth),
		store:   st,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
		sweeps:  make(map[string]*Job),
		running: make(map[*Job]struct{}),
		clock:   time.Now,
	}
	s.met = newServerMetrics(s)
	s.mux.HandleFunc("/v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/v1/campaigns/", s.handleCampaign)
	s.mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("/v1/sweeps/", s.handleSweep)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", s.met.reg.Handler())
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.store != nil {
		// Attach the journal instruments before recovery so replay and
		// resume I/O (fsyncs, appends, quarantines) are observed too.
		if sm, ok := st.(interface{ SetMetrics(store.Metrics) }); ok {
			sm.SetMetrics(store.Metrics{
				Appends:      s.met.journalAppends,
				FsyncSeconds: s.met.fsync,
				Quarantines:  s.met.quarantines,
			})
		}
		if err := s.recoverJobs(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < cfg.CampaignWorkers; i++ {
		s.wg.Add(1)
		go s.campaignWorker()
	}
	if s.store != nil && cfg.RetainTTL > 0 {
		s.wg.Add(1)
		go s.retentionLoop()
	}
	return s, nil
}

// handleStats serves GET /v1/stats: process-wide execution counters as
// one flat JSON object — parity with /metrics for scrapeless clients
// (the watch mode, shell smokes). trials_executed counts trials computed
// by this process (journal replay excluded), so after a restart it
// measures exactly the recomputed tail; preemptions counts
// checkpoint-and-requeue events. Both endpoints read the same
// instruments, so cobrad_trials_executed_total always equals
// trials_executed here (the CI metrics smoke asserts it).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	hits, misses, size := s.cache.Stats()
	depths := s.queue.depths()
	bands := make(map[string]int, len(depths))
	queued := 0
	for band, n := range depths {
		bands[strconv.Itoa(band)] = n
		queued += n
	}
	s.mu.Lock()
	running := len(s.running)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"trials_executed":     s.met.trials.Value(),
		"preemptions":         s.met.preempts.Value(),
		"queue_depth":         queued,
		"queue_depth_by_band": bands,
		"jobs_running":        running,
		"cache_hits":          hits,
		"cache_misses":        misses,
		"cache_evictions":     s.cache.Evictions(),
		"cache_size":          size,
		"journal_appends":     s.met.journalAppends.Value(),
		"journal_fsyncs":      s.met.fsync.Count(),
		"journal_quarantines": s.met.quarantines.Value(),
		"backpressure_stalls": s.met.stalls.Value(),
		"event_streams":       s.met.eventStreams.Value(),
		"admission_waits":     s.met.admission.Count(),
		"rounds_dense":        s.met.roundsDense.Value(),
		"rounds_sparse":       s.met.roundsSparse.Value(),
		"rounds_tiled":        s.met.roundsTiled.Value(),
	})
}

// TrialsExecuted reports how many trials this process computed (replayed
// journal records excluded) — the resume path's "no recomputation"
// assertions key off it.
func (s *Server) TrialsExecuted() int64 { return s.met.trials.Value() }

// Preemptions reports how many checkpoint-and-requeue events occurred.
func (s *Server) Preemptions() int64 { return s.met.preempts.Value() }

// Registry exposes the server's metric registry so sibling subsystems
// (the fleet coordinator) can register their families into the same
// /metrics exposition and /v1/stats gather cycle.
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// log returns the server's structured logger (ServerConfig.Logger or the
// process default).
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

// setClock overrides the retention time source (tests only).
func (s *Server) setClock(now func() time.Time) {
	s.mu.Lock()
	s.clock = now
	s.mu.Unlock()
}

// retentionLoop enforces RetainTTL on a timer, so expired result slices
// are released even when no job finishes and no client reads — the
// pre-ticker behavior left them in RAM indefinitely on an idle server.
func (s *Server) retentionLoop() {
	defer s.wg.Done()
	interval := s.cfg.RetainTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.mu.Lock()
			s.evictLocked()
			s.mu.Unlock()
		}
	}
}

// touchRetention applies the TTL policy from read paths, so an expired
// job observed by a client is evicted without waiting for the ticker.
func (s *Server) touchRetention() {
	if s.store == nil || s.cfg.RetainTTL <= 0 {
		return
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the service: no new jobs start, running campaigns are
// aborted (StateFailed, cause recorded), and the queue is drained with
// every still-queued job marked failed — watchers always observe a
// terminal state; no job is orphaned in StateQueued. With a Store,
// aborted and drained jobs keep unterminated journals, so the next
// NewServerWith requeues and re-runs them. Safe to call more than once.
func (s *Server) Close() {
	s.queue.close() // stop handing out queued jobs
	s.cancel()      // abort running jobs
	s.wg.Wait()
	for _, job := range s.queue.drain() {
		job.mu.Lock()
		job.state = StateFailed
		job.errMsg = "aborted: server shut down before the job started"
		job.finished = time.Now()
		for i := range job.cellPhases {
			job.cellPhases[i] = CellFailed // drained sweep cells will never commit
		}
		job.bumpLocked()
		job.mu.Unlock()
		s.countTerminal(job, StateFailed)
		job.sink.interrupt() // no terminal record: recovery requeues it
	}
}

// CacheStats exposes graph-cache counters for diagnostics and tests.
func (s *Server) CacheStats() (hits, misses int64, size int) { return s.cache.Stats() }

func (s *Server) campaignWorker() {
	defer s.wg.Done()
	for {
		job := s.queue.pop()
		if job == nil {
			return // queue closed
		}
		if s.expireJob(job) {
			continue
		}
		s.runJob(job)
	}
}

// expireJob fails a job whose deadline passed while it was queued,
// reporting whether it did. Expiry is checked when a worker picks the
// job up — a job that starts before its deadline runs to completion, and
// a job that already executed trials (a preempted or recovered partial
// job waiting to resume) met its started-by deadline in its first run,
// so it is never expired retroactively.
func (s *Server) expireJob(job *Job) bool {
	job.mu.Lock()
	started := job.started
	job.mu.Unlock()
	if started || job.deadline.IsZero() || time.Now().Before(job.deadline) {
		return false
	}
	now := time.Now()
	job.mu.Lock()
	job.state = StateExpired
	job.errMsg = fmt.Sprintf("deadline %s passed before the job started", job.deadline.Format(time.RFC3339))
	job.finished = now
	for i := range job.cellPhases {
		job.cellPhases[i] = CellFailed // expired sweep cells will never commit
	}
	errMsg := job.errMsg
	job.bumpLocked()
	job.mu.Unlock()
	s.countTerminal(job, StateExpired)
	s.sealJob(job, StateExpired, 0, now, nil, errMsg)
	return true
}

func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	s.running[job] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.running, job)
		s.mu.Unlock()
	}()

	// Each run attempt gets its own context so preemption can stop this
	// attempt at a trial boundary without touching the server lifetime.
	runCtx, cancelRun := context.WithCancel(s.ctx)
	defer cancelRun()

	job.mu.Lock()
	job.state = StateRunning
	job.started = true
	job.preempt = false
	queuedAt := job.queuedAt
	job.bumpLocked()
	job.mu.Unlock()
	if !queuedAt.IsZero() {
		s.met.admission.Observe(time.Since(queuedAt).Seconds())
	}

	// A resumed job (preempted earlier, or recovered with its reopen
	// deferred) has no sink: reopen the journal positioned after the
	// committed prefix and reconcile RAM with it.
	if s.store != nil {
		s.reopenSink(job)
	}

	// fail distinguishes a genuine failure (terminal record sealed in the
	// journal) from a shutdown abort: the latter leaves the journal
	// unterminated so the next recovery resumes the job from its committed
	// prefix, byte-identical by the campaign determinism invariant.
	// Journal sealing fsyncs, so it happens outside job.mu (like record on
	// the hot path): status and list readers must never stall behind disk.
	fail := func(err error) {
		now := time.Now()
		shutdown := s.ctx.Err() != nil
		job.mu.Lock()
		job.state = StateFailed
		job.errMsg = err.Error()
		job.finished = now
		completed := job.completed
		job.bumpLocked()
		job.mu.Unlock()
		s.countTerminal(job, StateFailed)
		if shutdown {
			job.sink.interrupt()
			return
		}
		s.sealJob(job, StateFailed, completed, now, nil, err.Error())
	}

	if job.sweep != nil {
		s.runSweepJob(job, runCtx, cancelRun, fail)
		return
	}

	campaign, err := Compile(job.spec, s.cache)
	if err != nil {
		fail(err)
		return
	}
	// Resume point: everything already in RAM (replayed journal prefix,
	// or a preempted first attempt's delivered trials) is skipped; the
	// online clone seeds RunFrom's aggregate fold so the final aggregate
	// matches an uninterrupted run bit for bit.
	job.mu.Lock()
	from := job.completed
	online := job.online.Clone()
	job.mu.Unlock()
	if from > 0 {
		s.met.resumeTail.Observe(float64(job.spec.Trials - from))
	}
	agg, err := campaign.RunFrom(runCtx, from, online, func(r TrialResult) {
		job.sink.record(r)
		s.met.trials.Inc()
		s.met.roundsDense.Add(int64(r.DenseRounds))
		s.met.roundsSparse.Add(int64(r.SparseRounds))
		s.met.roundsTiled.Add(int64(r.TiledRounds))
		job.mu.Lock()
		job.results = append(job.results, r)
		job.completed++
		job.online.Add(float64(r.Rounds))
		preempt := job.preempt
		job.bumpLocked()
		job.mu.Unlock()
		if preempt {
			// Checkpoint at this trial boundary: fsync the delivered
			// prefix, then stop the attempt. Trials already in flight may
			// still deliver before the scheduler drains; each lands in the
			// journal and RAM alike, keeping the two in lockstep.
			job.sink.boundary()
			cancelRun()
		}
	})
	if err != nil {
		if s.requeuePreempted(job, runCtx) {
			return
		}
		fail(err)
		return
	}
	now := time.Now()
	job.mu.Lock()
	job.final = agg
	job.state = StateDone
	job.finished = now
	completed := job.completed
	job.bumpLocked()
	job.mu.Unlock()
	s.countTerminal(job, StateDone)
	s.sealJob(job, StateDone, completed, now, agg, "")
}

// requeuePreempted handles a run attempt that stopped because the job
// was asked to yield: the journal is closed at a committed boundary
// (reopened by the next attempt via ResumeAt) and the job goes back in
// the queue at its own priority, state queued. Reports false when the
// stop was not a preemption — genuine failure (runCtx not cancelled, so
// the yield was never checkpointed) or server shutdown — in which case
// the caller's normal error path applies.
func (s *Server) requeuePreempted(job *Job, runCtx context.Context) bool {
	job.mu.Lock()
	if !job.preempt || runCtx.Err() == nil || s.ctx.Err() != nil {
		job.mu.Unlock()
		return false
	}
	job.preempt = false
	job.preemptions++
	job.state = StateQueued
	job.queuedAt = time.Now()
	if job.sweep != nil {
		// Cells whose every trial was delivered are done; the rest wait
		// for the resumed attempt (the head cell re-enters mid-campaign).
		done := job.completed / job.sweep.Trials
		for i := range job.cellPhases {
			if i < done {
				job.cellPhases[i] = CellDone
			} else {
				job.cellPhases[i] = CellQueued
			}
		}
	}
	job.bumpLocked()
	job.mu.Unlock()
	// Close (flush+fsync) the journal so the resumed attempt's ResumeAt
	// sees every delivered trial as committed prefix.
	job.sink.interrupt()
	job.sink = nil
	s.met.preempts.Inc()
	if !s.queue.push(job, true) {
		// The queue closed during the preemption window: Close's drain ran
		// (or will run) without this job, so terminalize it here exactly
		// like the drain path. The unterminated journal resumes next start.
		job.mu.Lock()
		job.state = StateFailed
		job.errMsg = "aborted: server shut down before the job started"
		job.finished = time.Now()
		for i := range job.cellPhases {
			job.cellPhases[i] = CellFailed
		}
		job.bumpLocked()
		job.mu.Unlock()
		s.countTerminal(job, StateFailed)
	}
	return true
}

// maybePreempt asks the lowest-priority running job to yield when a
// newly queued submission outranks it and every campaign worker is busy.
// The victim observes the flag at its next delivered trial, checkpoints,
// and requeues — scheduling only; results are never affected.
func (s *Server) maybePreempt(priority int) {
	if !s.cfg.Preempt {
		return
	}
	s.mu.Lock()
	var victim *Job
	if len(s.running) >= s.cfg.CampaignWorkers {
		for job := range s.running {
			if job.priority >= priority {
				continue // priority and seq are immutable after submission
			}
			if victim == nil || job.priority < victim.priority ||
				(job.priority == victim.priority && job.seq > victim.seq) {
				victim = job
			}
		}
	}
	s.mu.Unlock()
	if victim == nil {
		return
	}
	victim.mu.Lock()
	if victim.state == StateRunning && !victim.preempt {
		victim.preempt = true
		victim.bumpLocked()
	}
	victim.mu.Unlock()
}

// sealJob writes a job's terminal record (fsync included) outside
// job.mu, then records the durable verdict and applies retention.
func (s *Server) sealJob(job *Job, state JobState, completed int, finished time.Time, final any, errMsg string) {
	persisted := job.sink.finish(state, completed, finished, final, errMsg)
	job.mu.Lock()
	job.persisted = persisted
	job.mu.Unlock()
	s.finishJob(job)
}

// runSweepJob executes a sweep job against the server's shared graph
// cache, accumulating results in (cell, trial) order and tracking each
// cell's scheduler phase for the status endpoint. A resumed sweep (a
// replayed journal prefix, or a preempted first attempt) re-enters at
// the first undelivered (cell, trial): fully-delivered cells are never
// re-admitted and the head cell continues mid-campaign.
func (s *Server) runSweepJob(job *Job, runCtx context.Context, cancelRun context.CancelFunc, fail func(error)) {
	sweep, err := CompileSweep(*job.sweep, s.cache)
	if err != nil {
		fail(err)
		return
	}
	// Observe-only instruments for the cell scheduler; library callers of
	// Sweep.Run leave these nil and take the exact same schedule.
	sweep.stalls = s.met.stalls
	sweep.reorder = s.met.reorder
	sweep.cellWall = s.met.cellWall
	sweep.OnCellPhase = func(cell int, phase CellPhase) {
		job.mu.Lock()
		job.cellPhases[cell] = phase
		job.bumpLocked()
		job.mu.Unlock()
	}
	remote := s.cfg.Remote != nil
	if remote {
		jobID := job.id
		sweep.Remote = func(ctx context.Context, cell int, spec Spec, from int, deliver func(TrialResult)) error {
			return s.cfg.Remote.RunCell(ctx, jobID, cell, spec, from, deliver)
		}
	}
	job.mu.Lock()
	from := job.completed
	prefix := make([]*stats.Online, len(job.cellOnline))
	for i, o := range job.cellOnline {
		prefix[i] = o.Clone()
	}
	job.mu.Unlock()
	if from > 0 {
		s.met.resumeTail.Observe(float64(len(job.cellSpecs)*job.sweep.Trials - from))
	}
	lastCell := -1
	cells, err := sweep.RunFrom(runCtx, from, prefix, func(r CellResult) {
		if r.Cell != lastCell {
			// A new cell starts committing: fsync the finished one (the
			// sweep journal's commit boundary).
			job.sink.boundary()
			lastCell = r.Cell
		}
		job.sink.record(r)
		if !remote {
			// Coordinator mode: these trials were computed by fleet
			// workers, not this process — the fleet counters receive
			// them; trials_executed keeps its "computed here" meaning.
			s.met.trials.Inc()
			s.met.roundsDense.Add(int64(r.DenseRounds))
			s.met.roundsSparse.Add(int64(r.SparseRounds))
			s.met.roundsTiled.Add(int64(r.TiledRounds))
		}
		job.mu.Lock()
		job.cellResults = append(job.cellResults, r)
		job.completed++
		job.cellOnline[r.Cell].Add(float64(r.Rounds))
		preempt := job.preempt
		job.bumpLocked()
		job.mu.Unlock()
		if preempt {
			// Checkpoint at this trial boundary (see the campaign path).
			job.sink.boundary()
			cancelRun()
		}
	})
	if err != nil {
		if s.requeuePreempted(job, runCtx) {
			return
		}
		// Cells admitted but never committed are dead, not running: leave
		// no phantom "running" phases behind on a failed job (cells still
		// "queued" genuinely never started).
		job.mu.Lock()
		for i, ph := range job.cellPhases {
			if ph == CellRunning {
				job.cellPhases[i] = CellFailed
			}
		}
		job.mu.Unlock()
		fail(err)
		return
	}
	for i := range cells {
		cells[i].Phase = CellDone
	}
	now := time.Now()
	job.mu.Lock()
	job.cellFinal = cells
	job.state = StateDone
	job.finished = now
	completed := job.completed
	job.bumpLocked()
	job.mu.Unlock()
	s.countTerminal(job, StateDone)
	s.sealJob(job, StateDone, completed, now, cells, "")
}

// handleCampaigns serves POST (submit) and GET (list) on /v1/campaigns.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.list(w)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// applyQueueParams folds the ?priority= and ?deadline= query parameters
// over the spec's own fields (the query wins) so clients can set queue
// placement without editing the spec body. Validation happens after.
func applyQueueParams(r *http.Request, priority *int, deadline *string) error {
	q := r.URL.Query()
	if v := q.Get("priority"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad priority query parameter %q: not an integer", v)
		}
		*priority = p
	}
	if v := q.Get("deadline"); v != "" {
		*deadline = v
	}
	return nil
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := applyQueueParams(r, &spec.Priority, &spec.Deadline); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("trials %d exceeds this server's limit of %d (per-trial results are retained in memory)",
				spec.Trials, s.cfg.MaxTrials))
		return
	}
	deadline, _ := spec.DeadlineTime() // validated above

	// Cheap overload shed before any disk work; push re-checks below.
	if s.queue.full() {
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}

	s.mu.Lock()
	s.nextID++
	s.seq++
	id := fmt.Sprintf("c%06d", s.nextID)
	seq := s.seq
	s.mu.Unlock()
	job := &Job{
		id:       id,
		spec:     spec,
		state:    StateQueued,
		online:   stats.NewOnline(),
		notify:   make(chan struct{}),
		created:  time.Now(),
		priority: spec.Priority,
		deadline: deadline,
		seq:      seq,
	}
	job.queuedAt = job.created

	// The journal header must be durable before the 202: an acknowledged
	// job is never forgotten by a crash.
	sink, err := s.createJournal(store.KindCampaign, id, spec, job.created)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "persist submission: "+err.Error())
		return
	}
	job.sink = sink

	// Reserve the queue slot before publishing the job: a rejected
	// submission must never be observable (a watcher of a published-then-
	// rolled-back job would hang on a notify that never comes).
	if !s.queue.push(job, false) {
		if sink != nil {
			sink.interrupt()
			_ = s.store.Remove(id)
		}
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}
	s.mu.Lock()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.maybePreempt(job.priority)
	w.Header().Set("Location", "/v1/campaigns/"+id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":          id,
		"status_url":  "/v1/campaigns/" + id,
		"results_url": "/v1/campaigns/" + id + "/results",
	})
}

func (s *Server) list(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		job := s.jobs[id]
		job.mu.Lock()
		out = append(out, job.statusLocked())
		job.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

// handleCampaign serves /v1/campaigns/{id} and /v1/campaigns/{id}/results.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.touchRetention()
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign "+id)
		return
	}
	switch sub {
	case "":
		job.mu.Lock()
		st := job.statusLocked()
		job.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case "results":
		s.streamResults(w, r, job)
	case "events":
		s.streamEvents(w, r, job)
	default:
		httpError(w, http.StatusNotFound, "unknown subresource "+sub)
	}
}

// Results streams end with the HTTP trailer X-Cobrad-Stream so a client
// can tell a complete stream from one truncated by server shutdown: the
// NDJSON body itself stays byte-identical to the job's result records
// (no in-band sentinel), and the trailer carries the verdict.
const (
	// StreamTrailer is the trailer header name.
	StreamTrailer = "X-Cobrad-Stream"
	// StreamComplete means the stream delivered everything the job
	// produced: it followed the job to a terminal state (or replayed a
	// finished journal in full).
	StreamComplete = "complete"
	// StreamAborted means the stream was truncated — the server shut down
	// (or the client went away) before the job reached a terminal state.
	// Reconnect after the restart: recovery re-runs the job and the
	// delivered prefix is a byte-prefix of the recovered stream.
	StreamAborted = "aborted"
)

// streamResults writes the job's per-trial results as NDJSON in trial
// order, following a live campaign until it reaches a terminal state.
// Evicted (or restored-from-disk) jobs stream their journal instead —
// the same bytes, by the journal format's construction.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, job *Job) {
	if s.claimStream(w, job) {
		return // served from the journal
	}
	defer s.releaseStream(job)
	streamNDJSON(s, w, r, job, func() []TrialResult { return job.results })
}

// claimStream routes the request to the journal when the job's results
// were evicted from RAM; otherwise it registers a live reader (blocking
// eviction for the stream's duration) and reports false.
func (s *Server) claimStream(w http.ResponseWriter, job *Job) bool {
	job.mu.Lock()
	if job.evicted {
		job.mu.Unlock()
		s.streamStored(w, job)
		return true
	}
	job.streams++
	job.mu.Unlock()
	return false
}

func (s *Server) releaseStream(job *Job) {
	job.mu.Lock()
	job.streams--
	job.mu.Unlock()
	if s.store != nil {
		// A deferred eviction may have been waiting on this stream.
		s.mu.Lock()
		s.evictLocked()
		s.mu.Unlock()
	}
}

// streamStored replays a finished job's journal result section: the
// lines on disk are byte-identical to the NDJSON the live stream wrote.
func (s *Server) streamStored(w http.ResponseWriter, job *Job) {
	it, err := s.store.Results(job.id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "read stored results: "+err.Error())
		return
	}
	defer it.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", StreamTrailer)
	for it.Next() {
		if _, err := w.Write(append(it.Line(), '\n')); err != nil {
			w.Header().Set(StreamTrailer, StreamAborted)
			return
		}
	}
	if it.Err() != nil {
		w.Header().Set(StreamTrailer, StreamAborted)
		return
	}
	w.Header().Set(StreamTrailer, StreamComplete)
}

// streamNDJSON is the shared live-follow loop behind the campaign and
// sweep results endpoints: it encodes each element of the snapshot slice
// as one NDJSON line, in order, waking on the job's notify channel until
// the job reaches a terminal state. snapshot is called with job.mu held
// and must return the job's full result slice (append-only, so the
// delivered prefix never changes). The X-Cobrad-Stream trailer seals the
// stream: "complete" after following the job to a terminal state,
// "aborted" when server shutdown (or the client) truncated it.
func streamNDJSON[T any](s *Server, w http.ResponseWriter, r *http.Request, job *Job, snapshot func() []T) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", StreamTrailer)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		job.mu.Lock()
		chunk := snapshot()[sent:]
		terminal := job.state.Terminal()
		wake := job.notify
		job.mu.Unlock()

		for _, res := range chunk {
			if err := enc.Encode(res); err != nil {
				w.Header().Set(StreamTrailer, StreamAborted)
				return
			}
		}
		sent += len(chunk)
		if flusher != nil && len(chunk) > 0 {
			flusher.Flush()
		}
		if terminal {
			w.Header().Set(StreamTrailer, StreamComplete)
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			w.Header().Set(StreamTrailer, StreamAborted)
			return
		case <-s.ctx.Done():
			w.Header().Set(StreamTrailer, StreamAborted)
			return
		}
	}
}

// handleSweeps serves POST (submit) and GET (list) on /v1/sweeps.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submitSweep(w, r)
	case http.MethodGet:
		s.listSweeps(w)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := applyQueueParams(r, &spec.Priority, &spec.Deadline); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Overflow-safe form of cells*Trials > MaxTrials (Trials arrives as an
	// arbitrary JSON integer; the product must never wrap past the cap).
	if cells := spec.CellCount(); spec.Trials > s.cfg.MaxTrials/cells {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep total of %d cells x %d trials exceeds this server's limit of %d (per-trial results are retained in memory)",
				cells, spec.Trials, s.cfg.MaxTrials))
		return
	}

	// A submission that leaves cell-level parallelism unset inherits the
	// server's -cell-workers default; the applied value is echoed in the
	// job's status. Results are identical either way.
	if spec.CellWorkers <= 0 {
		spec.CellWorkers = s.cfg.CellWorkers
	}

	deadline, _ := spec.DeadlineTime() // validated above

	// As for campaigns: shed overload before any disk work.
	if s.queue.full() {
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}

	s.mu.Lock()
	s.nextID++
	s.seq++
	id := fmt.Sprintf("s%06d", s.nextID)
	seq := s.seq
	s.mu.Unlock()
	cellSpecs := spec.Cells()
	job := &Job{
		id:         id,
		sweep:      &spec,
		cellSpecs:  cellSpecs,
		state:      StateQueued,
		online:     stats.NewOnline(),
		cellOnline: make([]*stats.Online, len(cellSpecs)),
		cellPhases: make([]CellPhase, len(cellSpecs)),
		notify:     make(chan struct{}),
		created:    time.Now(),
		priority:   spec.Priority,
		deadline:   deadline,
		seq:        seq,
	}
	job.queuedAt = job.created
	for i := range job.cellOnline {
		job.cellOnline[i] = stats.NewOnline()
		job.cellPhases[i] = CellQueued
	}

	// The journal header carries the effective spec (cell_workers default
	// already substituted), so a recovered re-run uses the same plan.
	sink, err := s.createJournal(store.KindSweep, id, spec, job.created)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "persist submission: "+err.Error())
		return
	}
	job.sink = sink

	// As for campaigns: reserve the queue slot before publishing the job.
	if !s.queue.push(job, false) {
		if sink != nil {
			sink.interrupt()
			_ = s.store.Remove(id)
		}
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}
	s.mu.Lock()
	s.sweeps[id] = job
	s.sweepOrder = append(s.sweepOrder, id)
	s.mu.Unlock()
	s.maybePreempt(job.priority)
	w.Header().Set("Location", "/v1/sweeps/"+id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":          id,
		"status_url":  "/v1/sweeps/" + id,
		"results_url": "/v1/sweeps/" + id + "/results",
		"table_url":   "/v1/sweeps/" + id + "/table",
	})
}

func (s *Server) listSweeps(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]sweepStatus, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		job := s.sweeps[id]
		job.mu.Lock()
		st := job.sweepStatusLocked(false)
		job.mu.Unlock()
		out = append(out, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// handleSweep serves /v1/sweeps/{id}, …/results and …/table.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.touchRetention()
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep "+id)
		return
	}
	switch sub {
	case "":
		job.mu.Lock()
		st := job.sweepStatusLocked(true)
		job.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case "results":
		s.streamSweepResults(w, r, job)
	case "events":
		s.streamEvents(w, r, job)
	case "table":
		job.mu.Lock()
		st := job.sweepStatusLocked(true)
		job.mu.Unlock()
		header, rows := SummaryTable(st.CellAggs)
		writeJSON(w, http.StatusOK, map[string]any{"header": header, "rows": rows})
	default:
		httpError(w, http.StatusNotFound, "unknown subresource "+sub)
	}
}

// streamSweepResults writes the sweep's trial results as NDJSON in
// (cell, trial) order, following a live sweep until it reaches a
// terminal state (the sweep twin of streamResults).
func (s *Server) streamSweepResults(w http.ResponseWriter, r *http.Request, job *Job) {
	if s.claimStream(w, job) {
		return // served from the journal
	}
	defer s.releaseStream(job)
	streamNDJSON(s, w, r, job, func() []CellResult { return job.cellResults })
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
