package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/repro/cobra/internal/stats"
)

// The cobrad job service: an http.Handler exposing campaigns and
// parameter sweeps as asynchronous jobs over HTTP/JSON, backed by an
// in-process queue with a bounded campaign-worker pool and the shared LRU
// graph cache. cmd/cobrad wraps it in a process; tests drive it through
// httptest.
//
// Endpoints:
//
//	POST /v1/campaigns            submit a Spec; 202 + {id, ...} or 400/503
//	GET  /v1/campaigns            list job summaries
//	GET  /v1/campaigns/{id}       status + online aggregates
//	GET  /v1/campaigns/{id}/results  per-trial results as NDJSON, streamed
//	                              live (the response follows a running
//	                              campaign until it finishes)
//	POST /v1/sweeps               submit a SweepSpec; 202 + {id, ...}
//	GET  /v1/sweeps               list sweep summaries
//	GET  /v1/sweeps/{id}          status + per-cell online aggregates and
//	                              scheduler phases (queued/running/done/failed)
//	GET  /v1/sweeps/{id}/results  per-cell trial results as NDJSON in
//	                              (cell, trial) order, streamed live
//	GET  /v1/sweeps/{id}/table    cross-cell summary grid (header + rows)
//	GET  /healthz                 liveness
//
// The determinism contract extends over the wire: a campaign submitted
// over HTTP yields exactly the per-trial results and aggregates of
// Compile + Run with the same Spec, and a sweep yields exactly those of
// CompileSweep + Run — cell by cell, byte for byte (service_test.go
// enforces both), for every cell-worker count: sweep cells execute in
// parallel (the spec's cell_workers, defaulting to ServerConfig.
// CellWorkers) behind a reorder buffer that keeps delivery in (cell,
// trial) order. Campaign and sweep jobs share one graph cache, so a
// sweep cell re-using an earlier campaign's graph is a cache hit.

// JobState is the lifecycle of a submitted campaign.
type JobState string

const (
	// StateQueued means the job waits for a campaign worker.
	StateQueued JobState = "queued"
	// StateRunning means trials are executing.
	StateRunning JobState = "running"
	// StateDone means every trial completed.
	StateDone JobState = "done"
	// StateFailed means compilation or a trial failed (or the server shut
	// down mid-run); Error holds the cause.
	StateFailed JobState = "failed"
)

// ServerConfig sizes the service.
type ServerConfig struct {
	// CampaignWorkers is how many campaigns run concurrently (default 2).
	CampaignWorkers int
	// CellWorkers is the cell-level parallelism substituted into sweep
	// submissions that leave cell_workers unset or <= 0 (default 2). It
	// never affects results, only wall-clock time.
	CellWorkers int
	// QueueDepth bounds the backlog of queued campaigns; submissions
	// beyond it are rejected with 503 (default 64).
	QueueDepth int
	// CacheSize is the LRU graph cache capacity (default 32).
	CacheSize int
	// MaxTrials bounds a single campaign's trial count — per-trial
	// results are retained in memory for the results endpoint, so this
	// caps per-job memory (default 1e6; ~56 bytes per trial).
	MaxTrials int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CampaignWorkers < 1 {
		c.CampaignWorkers = 2
	}
	if c.CellWorkers < 1 {
		c.CellWorkers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheSize < 1 {
		c.CacheSize = 32
	}
	if c.MaxTrials < 1 {
		c.MaxTrials = 1_000_000
	}
	return c
}

// Job is one submitted campaign or sweep and its accumulated results.
// Campaign jobs use spec/results/online/final; sweep jobs (sweep != nil)
// use sweep/cellSpecs/cellResults/cellOnline/cellFinal.
type Job struct {
	id        string
	spec      Spec
	sweep     *SweepSpec
	cellSpecs []Spec // expanded grid, fixed at submission

	mu          sync.Mutex
	state       JobState
	results     []TrialResult
	online      *stats.Online   // live partial aggregate while running
	final       *Aggregate      // Run's own aggregate, once done
	cellResults []CellResult    // sweep results in (cell, trial) order
	cellOnline  []*stats.Online // live per-cell aggregates
	cellPhases  []CellPhase     // per-cell scheduler phase (see CellPhase)
	cellFinal   []CellSummary   // Sweep.Run's own summaries, once done
	errMsg      string
	notify      chan struct{} // closed and replaced on every state change
	created     time.Time
	finished    time.Time
}

// jobStatus is the wire form of a job's status.
type jobStatus struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Spec      Spec       `json:"spec"`
	Trials    int        `json:"trials"`
	Completed int        `json:"completed"`
	Aggregate *Aggregate `json:"aggregate,omitempty"`
	Error     string     `json:"error,omitempty"`
}

func (j *Job) statusLocked() jobStatus {
	st := jobStatus{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Trials:    j.spec.Trials,
		Completed: len(j.results),
		Error:     j.errMsg,
	}
	if j.final != nil {
		st.Aggregate = j.final
	} else if j.online.N() > 0 {
		if summary, err := j.online.Summary(); err == nil {
			st.Aggregate = &Aggregate{Completed: j.online.N(), Rounds: summary}
		}
	}
	return st
}

// sweepStatus is the wire form of a sweep job's status.
type sweepStatus struct {
	ID        string        `json:"id"`
	State     JobState      `json:"state"`
	Spec      SweepSpec     `json:"spec"`
	Cells     int           `json:"cells"`
	Trials    int           `json:"trials"`    // total across cells
	Completed int           `json:"completed"` // trials completed across cells
	CellAggs  []CellSummary `json:"cell_aggregates,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// sweepStatusLocked renders the job's wire status; withCells selects
// whether the per-cell aggregates are included (the list endpoint skips
// them to keep listings compact and each job's lock hold short).
func (j *Job) sweepStatusLocked(withCells bool) sweepStatus {
	st := sweepStatus{
		ID:        j.id,
		State:     j.state,
		Spec:      *j.sweep,
		Cells:     len(j.cellSpecs),
		Trials:    len(j.cellSpecs) * j.sweep.Trials,
		Completed: len(j.cellResults),
		Error:     j.errMsg,
	}
	if !withCells {
		return st
	}
	if j.cellFinal != nil {
		st.CellAggs = j.cellFinal
		return st
	}
	for i, spec := range j.cellSpecs {
		cs := cellSummary(i, spec, nil)
		cs.Phase = j.cellPhases[i]
		if o := j.cellOnline[i]; o.N() > 0 {
			if summary, err := o.Summary(); err == nil {
				cs.Aggregate = &Aggregate{Completed: o.N(), Rounds: summary}
			}
		}
		st.CellAggs = append(st.CellAggs, cs)
	}
	return st
}

// bump wakes every watcher of j. Callers hold j.mu.
func (j *Job) bumpLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// Server is the cobrad service. Create with NewServer, serve it as an
// http.Handler, and Close it to stop the campaign workers.
type Server struct {
	cfg    ServerConfig
	cache  *Cache
	mux    *http.ServeMux
	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // submission order, for the list endpoint
	sweeps     map[string]*Job
	sweepOrder []string
	nextID     int
}

// NewServer builds the service and starts its campaign workers.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheSize),
		mux:    http.NewServeMux(),
		queue:  make(chan *Job, cfg.QueueDepth),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*Job),
		sweeps: make(map[string]*Job),
	}
	s.mux.HandleFunc("/v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/v1/campaigns/", s.handleCampaign)
	s.mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("/v1/sweeps/", s.handleSweep)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	for i := 0; i < cfg.CampaignWorkers; i++ {
		s.wg.Add(1)
		go s.campaignWorker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the campaign workers, aborting running campaigns. Safe to
// call more than once.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// CacheStats exposes graph-cache counters for diagnostics and tests.
func (s *Server) CacheStats() (hits, misses int64, size int) { return s.cache.Stats() }

func (s *Server) campaignWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	job.state = StateRunning
	job.bumpLocked()
	job.mu.Unlock()

	fail := func(err error) {
		job.mu.Lock()
		job.state = StateFailed
		job.errMsg = err.Error()
		job.finished = time.Now()
		job.bumpLocked()
		job.mu.Unlock()
	}

	if job.sweep != nil {
		s.runSweepJob(job, fail)
		return
	}

	campaign, err := Compile(job.spec, s.cache)
	if err != nil {
		fail(err)
		return
	}
	agg, err := campaign.Run(s.ctx, func(r TrialResult) {
		job.mu.Lock()
		job.results = append(job.results, r)
		job.online.Add(float64(r.Rounds))
		job.bumpLocked()
		job.mu.Unlock()
	})
	if err != nil {
		fail(err)
		return
	}
	job.mu.Lock()
	job.final = agg
	job.state = StateDone
	job.finished = time.Now()
	job.bumpLocked()
	job.mu.Unlock()
}

// runSweepJob executes a sweep job against the server's shared graph
// cache, accumulating results in (cell, trial) order and tracking each
// cell's scheduler phase for the status endpoint.
func (s *Server) runSweepJob(job *Job, fail func(error)) {
	sweep, err := CompileSweep(*job.sweep, s.cache)
	if err != nil {
		fail(err)
		return
	}
	sweep.OnCellPhase = func(cell int, phase CellPhase) {
		job.mu.Lock()
		job.cellPhases[cell] = phase
		job.bumpLocked()
		job.mu.Unlock()
	}
	cells, err := sweep.Run(s.ctx, func(r CellResult) {
		job.mu.Lock()
		job.cellResults = append(job.cellResults, r)
		job.cellOnline[r.Cell].Add(float64(r.Rounds))
		job.bumpLocked()
		job.mu.Unlock()
	})
	if err != nil {
		// Cells admitted but never committed are dead, not running: leave
		// no phantom "running" phases behind on a failed job (cells still
		// "queued" genuinely never started).
		job.mu.Lock()
		for i, ph := range job.cellPhases {
			if ph == CellRunning {
				job.cellPhases[i] = CellFailed
			}
		}
		job.mu.Unlock()
		fail(err)
		return
	}
	for i := range cells {
		cells[i].Phase = CellDone
	}
	job.mu.Lock()
	job.cellFinal = cells
	job.state = StateDone
	job.finished = time.Now()
	job.bumpLocked()
	job.mu.Unlock()
}

// handleCampaigns serves POST (submit) and GET (list) on /v1/campaigns.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.list(w)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("trials %d exceeds this server's limit of %d (per-trial results are retained in memory)",
				spec.Trials, s.cfg.MaxTrials))
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("c%06d", s.nextID)
	s.mu.Unlock()
	job := &Job{
		id:      id,
		spec:    spec,
		state:   StateQueued,
		online:  stats.NewOnline(),
		notify:  make(chan struct{}),
		created: time.Now(),
	}

	// Reserve the queue slot before publishing the job: a rejected
	// submission must never be observable (a watcher of a published-then-
	// rolled-back job would hang on a notify that never comes).
	select {
	case s.queue <- job:
	default:
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}
	s.mu.Lock()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/campaigns/"+id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":          id,
		"status_url":  "/v1/campaigns/" + id,
		"results_url": "/v1/campaigns/" + id + "/results",
	})
}

func (s *Server) list(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		job := s.jobs[id]
		job.mu.Lock()
		out = append(out, job.statusLocked())
		job.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

// handleCampaign serves /v1/campaigns/{id} and /v1/campaigns/{id}/results.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign "+id)
		return
	}
	switch sub {
	case "":
		job.mu.Lock()
		st := job.statusLocked()
		job.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case "results":
		s.streamResults(w, r, job)
	default:
		httpError(w, http.StatusNotFound, "unknown subresource "+sub)
	}
}

// streamResults writes the job's per-trial results as NDJSON in trial
// order, following a live campaign until it reaches a terminal state.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, job *Job) {
	streamNDJSON(s, w, r, job, func() []TrialResult { return job.results })
}

// streamNDJSON is the shared live-follow loop behind the campaign and
// sweep results endpoints: it encodes each element of the snapshot slice
// as one NDJSON line, in order, waking on the job's notify channel until
// the job reaches a terminal state. snapshot is called with job.mu held
// and must return the job's full result slice (append-only, so the
// delivered prefix never changes).
func streamNDJSON[T any](s *Server, w http.ResponseWriter, r *http.Request, job *Job, snapshot func() []T) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		job.mu.Lock()
		chunk := snapshot()[sent:]
		terminal := job.state == StateDone || job.state == StateFailed
		wake := job.notify
		job.mu.Unlock()

		for _, res := range chunk {
			if err := enc.Encode(res); err != nil {
				return
			}
		}
		sent += len(chunk)
		if flusher != nil && len(chunk) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// handleSweeps serves POST (submit) and GET (list) on /v1/sweeps.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submitSweep(w, r)
	case http.MethodGet:
		s.listSweeps(w)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Overflow-safe form of cells*Trials > MaxTrials (Trials arrives as an
	// arbitrary JSON integer; the product must never wrap past the cap).
	if cells := spec.CellCount(); spec.Trials > s.cfg.MaxTrials/cells {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep total of %d cells x %d trials exceeds this server's limit of %d (per-trial results are retained in memory)",
				cells, spec.Trials, s.cfg.MaxTrials))
		return
	}

	// A submission that leaves cell-level parallelism unset inherits the
	// server's -cell-workers default; the applied value is echoed in the
	// job's status. Results are identical either way.
	if spec.CellWorkers <= 0 {
		spec.CellWorkers = s.cfg.CellWorkers
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%06d", s.nextID)
	s.mu.Unlock()
	cellSpecs := spec.Cells()
	job := &Job{
		id:         id,
		sweep:      &spec,
		cellSpecs:  cellSpecs,
		state:      StateQueued,
		cellOnline: make([]*stats.Online, len(cellSpecs)),
		cellPhases: make([]CellPhase, len(cellSpecs)),
		notify:     make(chan struct{}),
		created:    time.Now(),
	}
	for i := range job.cellOnline {
		job.cellOnline[i] = stats.NewOnline()
		job.cellPhases[i] = CellQueued
	}

	// As for campaigns: reserve the queue slot before publishing the job.
	select {
	case s.queue <- job:
	default:
		httpError(w, http.StatusServiceUnavailable, "campaign queue full, retry later")
		return
	}
	s.mu.Lock()
	s.sweeps[id] = job
	s.sweepOrder = append(s.sweepOrder, id)
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/sweeps/"+id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":          id,
		"status_url":  "/v1/sweeps/" + id,
		"results_url": "/v1/sweeps/" + id + "/results",
		"table_url":   "/v1/sweeps/" + id + "/table",
	})
}

func (s *Server) listSweeps(w http.ResponseWriter) {
	s.mu.Lock()
	out := make([]sweepStatus, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		job := s.sweeps[id]
		job.mu.Lock()
		st := job.sweepStatusLocked(false)
		job.mu.Unlock()
		out = append(out, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// handleSweep serves /v1/sweeps/{id}, …/results and …/table.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep "+id)
		return
	}
	switch sub {
	case "":
		job.mu.Lock()
		st := job.sweepStatusLocked(true)
		job.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case "results":
		s.streamSweepResults(w, r, job)
	case "table":
		job.mu.Lock()
		st := job.sweepStatusLocked(true)
		job.mu.Unlock()
		header, rows := SummaryTable(st.CellAggs)
		writeJSON(w, http.StatusOK, map[string]any{"header": header, "rows": rows})
	default:
		httpError(w, http.StatusNotFound, "unknown subresource "+sub)
	}
}

// streamSweepResults writes the sweep's trial results as NDJSON in
// (cell, trial) order, following a live sweep until it reaches a
// terminal state (the sweep twin of streamResults).
func (s *Server) streamSweepResults(w http.ResponseWriter, r *http.Request, job *Job) {
	streamNDJSON(s, w, r, job, func() []CellResult { return job.cellResults })
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
