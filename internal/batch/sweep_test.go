package batch

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
)

func testSweepSpec() SweepSpec {
	return SweepSpec{
		Graphs:    []string{"ba:400:3", "rreg:256:3"},
		Processes: []string{"cobra", "bips"},
		Branches:  []int{2, 3},
		Start:     0,
		Trials:    10,
		Seed:      11,
	}
}

func runSweep(t *testing.T, spec SweepSpec, cache *Cache) ([]CellResult, []CellSummary) {
	t.Helper()
	sw, err := CompileSweep(spec, cache)
	if err != nil {
		t.Fatal(err)
	}
	var results []CellResult
	cells, err := sw.Run(context.Background(), func(r CellResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	return results, cells
}

func TestSweepSpecValidate(t *testing.T) {
	if err := testSweepSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SweepSpec){
		func(s *SweepSpec) { s.Graphs = nil },
		func(s *SweepSpec) { s.Graphs = []string{"nope:4"} },
		func(s *SweepSpec) { s.Graphs = []string{"ba:400:3", "BA:0400:3"} }, // same canonical form
		func(s *SweepSpec) { s.Processes = nil },
		func(s *SweepSpec) { s.Processes = []string{"walk"} },
		func(s *SweepSpec) { s.Processes = []string{"cobra", "COBRA"} },
		func(s *SweepSpec) { s.Branches = nil },
		func(s *SweepSpec) { s.Branches = []int{0} },
		func(s *SweepSpec) { s.Branches = []int{2, 2} },
		func(s *SweepSpec) { s.Rhos = []float64{2} },
		func(s *SweepSpec) { s.Rhos = []float64{0.5, 0.5} },
		func(s *SweepSpec) { s.Rhos = []float64{math.NaN()} }, // NaN evades range comparisons
		func(s *SweepSpec) { s.Rhos = []float64{math.Inf(1)} },
		func(s *SweepSpec) { s.Start = -1 },
		func(s *SweepSpec) { s.Trials = 0 },
		func(s *SweepSpec) { s.MaxRounds = -1 },
	}
	for i, mutate := range bad {
		s := testSweepSpec()
		mutate(&s)
		if err := s.Validate(); !errors.Is(err, ErrInput) {
			t.Fatalf("bad sweep %d accepted", i)
		}
	}
}

// The cell-ordering contract: row-major with graphs outermost, then
// processes, branches, rhos; every cell carries the sweep's scalars.
func TestSweepCellOrder(t *testing.T) {
	spec := testSweepSpec()
	spec.Rhos = []float64{0, 0.5}
	cells := spec.Cells()
	if len(cells) != spec.CellCount() || len(cells) != 2*2*2*2 {
		t.Fatalf("cell count %d", len(cells))
	}
	for gi, g := range spec.Graphs {
		for pi, proc := range spec.Processes {
			for bi, b := range spec.Branches {
				for ri, rho := range spec.Rhos {
					c := ((gi*2+pi)*2+bi)*2 + ri
					cell := cells[c]
					if cell.Graph != g || cell.Process != proc || cell.Branch != b || cell.Rho != rho {
						t.Fatalf("cell %d = %+v, want (%s,%s,%d,%g)", c, cell, g, proc, b, rho)
					}
					if cell.Seed != spec.Seed || cell.Trials != spec.Trials || cell.Start != spec.Start {
						t.Fatalf("cell %d lost sweep scalars: %+v", c, cell)
					}
					if err := cell.Validate(); err != nil {
						t.Fatalf("cell %d invalid: %v", c, err)
					}
				}
			}
		}
	}
}

// The sweep determinism contract, clause by clause: the flattened result
// stream is identical across worker counts {1, 2, GOMAXPROCS} and cold vs
// warm cache, each distinct graph compiles exactly once per cache, and
// every cell is byte-identical to the same spec run as a standalone
// campaign.
func TestSweepDeterminismAndStandaloneEquivalence(t *testing.T) {
	spec := testSweepSpec()

	spec.Workers = 1
	baseline, baseCells := runSweep(t, spec, nil)
	if len(baseline) != spec.CellCount()*spec.Trials {
		t.Fatalf("%d results for %d cells x %d trials", len(baseline), spec.CellCount(), spec.Trials)
	}
	for i, r := range baseline {
		if want := i / spec.Trials; r.Cell != want || r.Trial != i%spec.Trials {
			t.Fatalf("result %d out of (cell, trial) order: %+v", i, r)
		}
	}

	cache := NewCache(4)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, label := range []string{"cold", "warm"} {
			spec.Workers = workers
			results, cells := runSweep(t, spec, cache)
			if len(results) != len(baseline) {
				t.Fatalf("workers=%d %s: result count %d", workers, label, len(results))
			}
			for i := range results {
				if results[i] != baseline[i] {
					t.Fatalf("workers=%d %s cache: result %d differs: %+v vs %+v",
						workers, label, i, results[i], baseline[i])
				}
			}
			for i := range cells {
				if *cells[i].Aggregate != *baseCells[i].Aggregate {
					t.Fatalf("workers=%d %s cache: cell %d aggregate differs", workers, label, i)
				}
			}
		}
	}
	// Six sweep compilations of 8 cells each touched the cache 48 times;
	// each of the 2 distinct graphs was built exactly once.
	hits, misses, _ := cache.Stats()
	if misses != 2 || hits != 46 {
		t.Fatalf("cache hits=%d misses=%d, want 46/2 (single compile per distinct graph)", hits, misses)
	}

	// Standalone equivalence: submitting any cell's spec as its own
	// campaign reproduces the sweep cell byte for byte.
	for c, cellSpec := range spec.Cells() {
		results, agg := runCampaign(t, cellSpec, nil)
		for k, r := range results {
			if got := baseline[c*spec.Trials+k]; got.TrialResult != r {
				t.Fatalf("cell %d trial %d: sweep %+v vs standalone campaign %+v", c, k, got.TrialResult, r)
			}
		}
		if *agg != *baseCells[c].Aggregate {
			t.Fatalf("cell %d: sweep aggregate %+v vs standalone %+v", c, *baseCells[c].Aggregate, *agg)
		}
	}
}

// A nil cache still guarantees single compilation per distinct graph,
// sweep-locally. Cells compile lazily at admission, so the counters are
// checked after the run — and they must hold for parallel cells too.
func TestSweepPrivateCacheSingleCompile(t *testing.T) {
	spec := testSweepSpec()
	spec.CellWorkers = 4
	sw, err := CompileSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, size := sw.CacheStats(); hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("graphs compiled before Run: hits=%d misses=%d size=%d", hits, misses, size)
	}
	for _, c := range sw.Cells() {
		if c != nil {
			t.Fatal("cell campaign compiled before Run")
		}
	}
	if _, err := sw.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	hits, misses, size := sw.CacheStats()
	if misses != int64(len(spec.Graphs)) || size != len(spec.Graphs) {
		t.Fatalf("misses=%d size=%d, want one build per distinct graph (%d)", misses, size, len(spec.Graphs))
	}
	if wantHits := int64(spec.CellCount() - len(spec.Graphs)); hits != wantHits {
		t.Fatalf("hits=%d, want %d", hits, wantHits)
	}
	// Cells of the same graph share the identical compiled instance.
	perGraph := spec.CellCount() / len(spec.Graphs)
	cells := sw.Cells()
	for i := 1; i < perGraph; i++ {
		if cells[i].Graph() != cells[0].Graph() {
			t.Fatalf("cells 0 and %d of the same graph spec hold different graph instances", i)
		}
	}
	if cells[0].Graph() == cells[perGraph].Graph() {
		t.Fatal("cells of different graph specs share a graph instance")
	}
}

// A failing cell aborts the sweep with the cell named in the error.
func TestSweepCellFailure(t *testing.T) {
	spec := testSweepSpec()
	spec.Graphs = []string{"path:400"}
	spec.Processes = []string{"cobra"}
	spec.MaxRounds = 2 // a 400-path cannot cover in 2 rounds
	sw, err := CompileSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sw.Run(context.Background(), nil)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "cell 0") {
		t.Fatalf("error lost its cell index: %v", err)
	}
}

// The cross-cell summary grid: one row per cell, aligned with the header.
func TestSweepSummaryTable(t *testing.T) {
	spec := testSweepSpec()
	spec.Graphs = spec.Graphs[:1]
	spec.Processes = spec.Processes[:1]
	_, cells := runSweep(t, spec, nil)
	header, rows := SummaryTable(cells)
	if len(rows) != len(cells) {
		t.Fatalf("%d rows for %d cells", len(rows), len(cells))
	}
	for i, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("row %d has %d cells, header %d", i, len(row), len(header))
		}
		if row[1] != spec.Graphs[0] || row[2] != "cobra" {
			t.Fatalf("row %d coordinates wrong: %v", i, row)
		}
	}
}
