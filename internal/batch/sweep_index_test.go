package batch

import (
	"math/rand"
	"testing"
)

// Property and fuzz coverage for the row-major cell indexing bijection
// (CellIndex/CellCoords) and the contiguity guarantee the cell
// scheduler's admission order builds on: iterating cells in index order
// visits each graph's cells as one contiguous, non-decreasing block, so
// sequential admission gives single compilation per distinct graph at
// any cache capacity — by construction, not by luck.

// shapeSpec builds a spec whose axes have the given lengths; the entry
// values are irrelevant to indexing (only lengths are used). nr == 0
// exercises the empty-Rhos default (one implicit rho).
func shapeSpec(ng, np, nb, nr int) SweepSpec {
	s := SweepSpec{
		Graphs:    make([]string, ng),
		Processes: make([]string, np),
		Branches:  make([]int, nb),
	}
	if nr > 0 {
		s.Rhos = make([]float64, nr)
	}
	return s
}

// checkCellIndexBijection asserts the full round-trip and contiguity
// contract for one axis shape; it is shared by the property test and the
// fuzz target.
func checkCellIndexBijection(t interface {
	Helper()
	Fatalf(format string, args ...any)
}, s SweepSpec) {
	t.Helper()
	ng, np, nb := len(s.Graphs), len(s.Processes), len(s.Branches)
	nr := len(s.rhos())
	total := s.CellCount()
	if total != ng*np*nb*nr {
		t.Fatalf("CellCount %d != %d*%d*%d*%d", total, ng, np, nb, nr)
	}
	perGraph := total / ng

	// Forward: every coordinate tuple maps into range and round-trips.
	c := 0
	for gi := 0; gi < ng; gi++ {
		for pi := 0; pi < np; pi++ {
			for bi := 0; bi < nb; bi++ {
				for ri := 0; ri < nr; ri++ {
					got := s.CellIndex(gi, pi, bi, ri)
					if got != c {
						t.Fatalf("CellIndex(%d,%d,%d,%d) = %d, want %d (row-major, graphs outermost)",
							gi, pi, bi, ri, got, c)
					}
					c++
				}
			}
		}
	}

	// Backward: every index round-trips, and the graph coordinate is the
	// contiguous-block function c / perGraph, non-decreasing in c.
	prevGi := 0
	for c := 0; c < total; c++ {
		gi, pi, bi, ri := s.CellCoords(c)
		if gi < 0 || gi >= ng || pi < 0 || pi >= np || bi < 0 || bi >= nb || ri < 0 || ri >= nr {
			t.Fatalf("CellCoords(%d) = (%d,%d,%d,%d) out of range (%d,%d,%d,%d)",
				c, gi, pi, bi, ri, ng, np, nb, nr)
		}
		if back := s.CellIndex(gi, pi, bi, ri); back != c {
			t.Fatalf("CellIndex(CellCoords(%d)) = %d", c, back)
		}
		if want := c / perGraph; gi != want {
			t.Fatalf("cell %d: graph coordinate %d, want contiguous block %d", c, gi, want)
		}
		if gi < prevGi {
			t.Fatalf("cell %d: graph coordinate decreased %d -> %d (admission order broken)", c, prevGi, gi)
		}
		prevGi = gi
	}
}

// TestCellIndexRoundTripProperty drives the bijection over 200 random
// axis shapes (seeded, reproducible), including every length-1 and
// empty-rho degenerate combination.
func TestCellIndexRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xce11))
	for i := 0; i < 200; i++ {
		s := shapeSpec(1+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(4), rng.Intn(5))
		checkCellIndexBijection(t, s)
	}
	// Degenerate corners: single-cell grid, single-axis grids.
	for _, s := range []SweepSpec{
		shapeSpec(1, 1, 1, 0),
		shapeSpec(7, 1, 1, 0),
		shapeSpec(1, 2, 1, 1),
		shapeSpec(1, 1, 6, 0),
		shapeSpec(1, 1, 1, 9),
	} {
		checkCellIndexBijection(t, s)
	}
}

// TestCellsMatchesCellCoords pins Cells() to the bijection: expanding
// the grid and indexing it are the same function.
func TestCellsMatchesCellCoords(t *testing.T) {
	spec := testSweepSpec()
	spec.Rhos = []float64{0, 0.25, 0.5}
	cells := spec.Cells()
	for c, cell := range cells {
		gi, pi, bi, ri := spec.CellCoords(c)
		if cell.Graph != spec.Graphs[gi] || cell.Branch != spec.Branches[bi] || cell.Rho != spec.Rhos[ri] {
			t.Fatalf("cell %d = %+v does not match CellCoords (%d,%d,%d,%d)", c, cell, gi, pi, bi, ri)
		}
		if cell.Process != spec.Processes[pi] {
			t.Fatalf("cell %d process %q, want %q", c, cell.Process, spec.Processes[pi])
		}
	}
}

// FuzzCellIndexRoundTrip lets the fuzzer hunt for axis shapes that break
// the bijection or the contiguity guarantee.
func FuzzCellIndexRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(2), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(uint8(5), uint8(2), uint8(3), uint8(4))
	f.Add(uint8(8), uint8(1), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, ng, np, nb, nr uint8) {
		// Clamp to keep the exhaustive walk cheap: up to 8^3*9 cells.
		s := shapeSpec(1+int(ng%8), 1+int(np%8), 1+int(nb%8), int(nr%9))
		checkCellIndexBijection(t, s)
	})
}
