package batch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/repro/cobra/internal/stats"
)

// Per-job live event streams: GET /v1/campaigns/{id}/events and
// GET /v1/sweeps/{id}/events serve the job's lifecycle as server-sent
// events (text/event-stream). A follower sees:
//
//	event: state    one JSON object per observed change of the job's
//	                (state, completed, preemptions) tuple, carrying the
//	                rolling mean of rounds folded so far. Progress is
//	                coalesced, not per-trial: a follower that wakes after
//	                many trials sees one event with the latest counts, so
//	                a stream is cheap even on a million-trial campaign.
//	event: cell     (sweeps only) one {"cell": i, "phase": ...} object per
//	                observed per-cell scheduler phase change, in cell
//	                order within each wake-up.
//	event: end      exactly one, last: data "complete" when the stream
//	                followed the job to a terminal state (the terminal
//	                state event always precedes it), "aborted" when it
//	                could not — mirroring the X-Cobrad-Stream trailer
//	                contract of the results endpoints.
//
// The stream is a read-side follower of the same notify channel the
// results streams use: it takes snapshots under the job lock and never
// writes job state, so attaching any number of followers cannot perturb
// results (the observe-only contract; events_test.go races followers
// against the conformance suites' jobs).
//
// Server shutdown: Close leaves no job non-terminal, so a follower of a
// job aborted by Close still observes the terminal "failed" state event
// followed by end — it does not just see its connection drop.

// eventState is the data payload of a "state" event.
type eventState struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Trials is the job's total trial budget (cells x trials for sweeps);
	// Completed counts trials delivered so far.
	Trials    int `json:"trials"`
	Completed int `json:"completed"`
	// Preemptions counts trial-boundary checkpoints so far.
	Preemptions int `json:"preemptions,omitempty"`
	// MeanRounds is the rolling mean of rounds across the trials folded so
	// far (the live aggregate the status endpoint reports), 0 until the
	// first trial lands.
	MeanRounds float64 `json:"mean_rounds,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// eventCell is the data payload of a "cell" event (sweeps only).
type eventCell struct {
	Cell  int       `json:"cell"`
	Phase CellPhase `json:"phase"`
}

// End-event payloads, mirroring the results trailer values.
const (
	endComplete = StreamComplete
	endAborted  = StreamAborted
)

// eventSnap is one consistent observation of a job, taken under its lock.
type eventSnap struct {
	st       eventState
	phases   []CellPhase
	terminal bool
	wake     chan struct{}
}

func (s *Server) snapshotEvents(job *Job) eventSnap {
	job.mu.Lock()
	defer job.mu.Unlock()
	snap := eventSnap{
		st: eventState{
			ID:          job.id,
			State:       job.state,
			Completed:   job.completed,
			Preemptions: job.preemptions,
			Error:       job.errMsg,
		},
		terminal: job.state.Terminal(),
		wake:     job.notify,
	}
	if job.sweep != nil {
		snap.st.Trials = len(job.cellSpecs) * job.sweep.Trials
		snap.st.MeanRounds = meanRounds(job.cellOnline)
		snap.phases = append([]CellPhase(nil), job.cellPhases...)
	} else {
		snap.st.Trials = job.spec.Trials
		snap.st.MeanRounds = meanRounds([]*stats.Online{job.online})
	}
	return snap
}

// meanRounds folds the per-accumulator means into one weighted rolling
// mean; 0 while nothing has been observed.
func meanRounds(folds []*stats.Online) float64 {
	n := 0
	sum := 0.0
	for _, o := range folds {
		if o == nil || o.N() == 0 {
			continue
		}
		summary, err := o.Summary()
		if err != nil {
			continue
		}
		n += o.N()
		sum += float64(o.N()) * summary.Mean
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// streamEvents serves one follower. It loops snapshot → emit deltas →
// wait on the job's notify channel, ending with exactly one "end" event.
//
// ?cell=N (sweeps only) narrows the stream to one cell: "cell" events
// for other cells are dropped, while "state" events (whole-job progress)
// and the single terminal "end" event keep their full-stream semantics —
// a filtered follower still observes the job's fate exactly once. This
// is how a fleet operator watches the one cell a worker is leasing
// without the other cells' phase churn.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	cellFilter := -1
	if v := r.URL.Query().Get("cell"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "cell must be a non-negative integer")
			return
		}
		job.mu.Lock()
		isSweep, cells := job.sweep != nil, len(job.cellSpecs)
		job.mu.Unlock()
		if !isSweep {
			httpError(w, http.StatusBadRequest, "cell filtering applies to sweep event streams")
			return
		}
		if n >= cells {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("cell %d outside [0, %d)", n, cells))
			return
		}
		cellFilter = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "event stream needs a flushing writer")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.met.eventStreams.Add(1)
	defer s.met.eventStreams.Add(-1)

	emit := func(event string, data any) bool {
		payload, err := json.Marshal(data)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload); err != nil {
			return false
		}
		return true
	}
	end := func(verdict string) {
		if _, err := fmt.Fprintf(w, "event: end\ndata: %s\n\n", verdict); err == nil {
			flusher.Flush()
		}
	}

	var last *eventState
	var lastPhases []CellPhase
	// deliver emits whatever changed since the previous snapshot and
	// reports whether the connection is still writable.
	deliver := func(snap eventSnap) bool {
		wrote := false
		for i, ph := range snap.phases {
			if lastPhases != nil && lastPhases[i] == ph {
				continue
			}
			if cellFilter >= 0 && i != cellFilter {
				continue
			}
			if !emit("cell", eventCell{Cell: i, Phase: ph}) {
				return false
			}
			wrote = true
		}
		lastPhases = snap.phases
		if last == nil || *last != snap.st {
			if !emit("state", snap.st) {
				return false
			}
			st := snap.st
			last = &st
			wrote = true
		}
		if wrote {
			flusher.Flush()
		}
		return true
	}

	for {
		snap := s.snapshotEvents(job)
		if !deliver(snap) {
			return // client went away mid-write; nothing more to say
		}
		if snap.terminal {
			end(endComplete)
			return
		}
		select {
		case <-snap.wake:
		case <-r.Context().Done():
			end(endAborted)
			return
		case <-s.ctx.Done():
			// Server shutdown: Close's contract says every job reaches a
			// terminal state before Close returns, so keep following the
			// notify channel until the terminal snapshot arrives — the
			// follower must observe the job's fate, not just lose its
			// connection. Only a client disconnect aborts the stream now.
			for {
				snap := s.snapshotEvents(job)
				if !deliver(snap) {
					return
				}
				if snap.terminal {
					end(endComplete)
					return
				}
				select {
				case <-snap.wake:
				case <-r.Context().Done():
					end(endAborted)
					return
				}
			}
		}
	}
}
