package batch

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The SSE event-stream suite: followers of /v1/{campaigns,sweeps}/{id}/
// events must see a well-formed event sequence ending in exactly one
// "end" event, must observe the job's terminal state even when the job
// is aborted by Server.Close (not just lose the connection), and must
// never perturb the job they watch (streams are observe-only).

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes an event stream to EOF, returning the events in order.
func readSSE(t *testing.T, ts *httptest.Server, path string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	return parseSSE(t, bufio.NewScanner(resp.Body))
}

func parseSSE(t *testing.T, sc *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	flush := func() {
		if cur.name != "" || cur.data != "" {
			events = append(events, cur)
		}
		cur = sseEvent{}
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("malformed SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	flush()
	return events
}

// checkEnd asserts the stream's shape: at least one state event, exactly
// one end event, and the end event last with the wanted verdict. It
// returns the last state payload.
func checkEnd(t *testing.T, events []sseEvent, verdict string) eventState {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	ends := 0
	var last eventState
	seenState := false
	for i, ev := range events {
		switch ev.name {
		case "end":
			ends++
			if i != len(events)-1 {
				t.Fatalf("end event at %d of %d, not last", i, len(events))
			}
			if ev.data != verdict {
				t.Fatalf("end verdict %q, want %q", ev.data, verdict)
			}
		case "state":
			if err := json.Unmarshal([]byte(ev.data), &last); err != nil {
				t.Fatalf("bad state payload %q: %v", ev.data, err)
			}
			seenState = true
		case "cell":
			var c eventCell
			if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
				t.Fatalf("bad cell payload %q: %v", ev.data, err)
			}
		default:
			t.Fatalf("unknown event %q", ev.name)
		}
	}
	if ends != 1 {
		t.Fatalf("%d end events, want 1", ends)
	}
	if !seenState {
		t.Fatal("no state event before end")
	}
	return last
}

// A follower attached before the campaign finishes sees state progress
// ending in the terminal state, then end: complete — and the watched
// job's results are untouched by being watched.
func TestEventsCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{CampaignWorkers: 1})
	spec := testSpec()
	spec.Trials = 200
	id := postCampaign(t, ts, spec)

	events := readSSE(t, ts, "/v1/campaigns/"+id+"/events")
	last := checkEnd(t, events, StreamComplete)
	if last.State != StateDone {
		t.Fatalf("final state event %q, want done", last.State)
	}
	if last.Completed != spec.Trials || last.Trials != spec.Trials {
		t.Fatalf("final counts %d/%d, want %d/%d",
			last.Completed, last.Trials, spec.Trials, spec.Trials)
	}
	if last.MeanRounds <= 0 {
		t.Fatalf("final mean_rounds %v, want > 0", last.MeanRounds)
	}
	if got := fetchResults(t, ts, id); len(got) != spec.Trials {
		t.Fatalf("results after watching: %d trials, want %d", len(got), spec.Trials)
	}
}

// A follower of a finished job still gets a valid stream: the terminal
// state snapshot and end: complete, immediately.
func TestEventsAfterTerminal(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	id := postCampaign(t, ts, testSpec())
	awaitState(t, ts, id, StateDone)
	last := checkEnd(t, readSSE(t, ts, "/v1/campaigns/"+id+"/events"), StreamComplete)
	if last.State != StateDone {
		t.Fatalf("state %q, want done", last.State)
	}
}

// Sweep followers additionally see per-cell phase events; every cell's
// last observed phase must be done on a successful sweep.
func TestEventsSweepCellPhases(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{CellWorkers: 2})
	spec := testSweepSpec()
	id := postSweep(t, ts, spec)

	events := readSSE(t, ts, "/v1/sweeps/"+id+"/events")
	last := checkEnd(t, events, StreamComplete)
	if last.State != StateDone {
		t.Fatalf("final state %q, want done", last.State)
	}
	cells := len(spec.Cells())
	if want := cells * spec.Trials; last.Completed != want || last.Trials != want {
		t.Fatalf("final counts %d/%d, want %d/%d", last.Completed, last.Trials, want, want)
	}
	phase := make(map[int]CellPhase)
	for _, ev := range events {
		if ev.name != "cell" {
			continue
		}
		var c eventCell
		if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
			t.Fatal(err)
		}
		phase[c.Cell] = c.Phase
	}
	if len(phase) != cells {
		t.Fatalf("cell events for %d cells, want %d", len(phase), cells)
	}
	for cell, ph := range phase {
		if ph != CellDone {
			t.Fatalf("cell %d last phase %q, want done", cell, ph)
		}
	}
}

// A follower with ?cell= sees only that cell's phase events — but the
// full state stream and exactly one end event, since the filter narrows
// the cell channel, not the lifecycle.
func TestEventsCellFilter(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{CellWorkers: 2})
	spec := testSweepSpec()
	id := postSweep(t, ts, spec)

	events := readSSE(t, ts, "/v1/sweeps/"+id+"/events?cell=1")
	last := checkEnd(t, events, StreamComplete)
	if last.State != StateDone {
		t.Fatalf("final state %q, want done", last.State)
	}
	var lastPhase CellPhase
	sawCell := false
	for _, ev := range events {
		if ev.name != "cell" {
			continue
		}
		var c eventCell
		if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
			t.Fatal(err)
		}
		if c.Cell != 1 {
			t.Fatalf("cell event for cell %d leaked through ?cell=1", c.Cell)
		}
		sawCell = true
		lastPhase = c.Phase
	}
	if !sawCell {
		t.Fatal("no cell events for the filtered cell")
	}
	if lastPhase != CellDone {
		t.Fatalf("filtered cell's last phase %q, want done", lastPhase)
	}
}

// ?cell= rejects garbage, campaigns, and out-of-range indexes.
func TestEventsCellFilterRejects(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{CellWorkers: 2})
	sweepID := postSweep(t, ts, testSweepSpec())
	awaitSweepState(t, ts, sweepID, StateDone)
	campID := postCampaign(t, ts, testSpec())
	awaitState(t, ts, campID, StateDone)

	for _, tc := range []struct{ path, why string }{
		{"/v1/sweeps/" + sweepID + "/events?cell=abc", "non-integer"},
		{"/v1/sweeps/" + sweepID + "/events?cell=-1", "negative"},
		{"/v1/sweeps/" + sweepID + "/events?cell=9999", "out of range"},
		{"/v1/campaigns/" + campID + "/events?cell=0", "campaign has no cells"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s (%s): status %d, want 400", tc.path, tc.why, resp.StatusCode)
		}
	}
}

func TestEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/v1/campaigns/c999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// The shutdown contract for event streams: a follower of a job aborted
// by Server.Close observes the terminal "failed" state event and the end
// event — the stream resolves the job's fate rather than dropping — and
// no handler goroutines are left behind.
func TestEventsShutdownDeliversTerminal(t *testing.T) {
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	before := runtime.NumGoroutine()

	svc := NewServer(ServerConfig{CampaignWorkers: 1})
	ts := httptest.NewServer(svc)
	id := postCampaign(t, ts, longSpec())
	awaitStateRaw(t, ts, id, StateRunning)

	type result struct {
		events []sseEvent
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
		if err != nil {
			got <- result{}
			return
		}
		defer resp.Body.Close()
		got <- result{events: parseSSE(t, bufio.NewScanner(resp.Body))}
	}()

	// Let the follower attach (its gauge registers) before shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for svc.met.eventStreams.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close()

	var res result
	select {
	case res = <-got:
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not resolve after Close")
	}
	ts.Close()
	if res.events == nil {
		t.Fatal("event stream request failed")
	}
	last := checkEnd(t, res.events, StreamComplete)
	if last.State != StateFailed {
		t.Fatalf("terminal state %q, want failed", last.State)
	}

	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > %d after Close:\n%s",
				runtime.NumGoroutine(), before+2, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
