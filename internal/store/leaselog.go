package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Lease log: the fleet coordinator's durable lease table.
//
// The coordinator records every lease transition as one NDJSON line in
// <dir>/leases.log (a .log extension, so Recover's *.ndjson scan never
// mistakes it for a job journal). Replaying the log after a restart
// reconstructs the live lease set, so a coordinator crash does not
// invalidate leases that healthy workers are still renewing — they
// reattach and keep streaming. The log shares the journal line bound
// and torn-tail discipline of job journals: a crash mid-write leaves at
// most one partial line, which the open-time scan truncates away.
//
// The safety property (pinned by FuzzLeaseRecover): folding any lease
// log — including truncated or corrupted ones — yields at most one live
// lease per (job, cell). A grant supersedes any earlier lease on the
// same cell (the coordinator only re-grants after the earlier lease
// ended, so a surviving grant proves the predecessor is dead), and
// complete/expire/release events retire the lease they name; the fold
// is a map keyed by cell, so a double grant cannot survive it.

// leaseLogName is the lease table's file name inside the store
// directory.
const leaseLogName = "leases.log"

// Lease event kinds, in the order a lease moves through them. Renew is
// the only repeatable event; the other four are transitions.
const (
	// LeaseGrant assigns a cell to a worker starting at trial From.
	LeaseGrant = "grant"
	// LeaseRenew extends a live lease's expiry (heartbeat).
	LeaseRenew = "renew"
	// LeaseComplete retires a lease whose cell finished.
	LeaseComplete = "complete"
	// LeaseExpire retires a lease whose holder missed its TTL.
	LeaseExpire = "expire"
	// LeaseRelease retires a lease whose cell was withdrawn (job
	// cancelled, preempted, or the coordinator shut down).
	LeaseRelease = "release"
)

// LeaseEvent is one line of the lease log.
type LeaseEvent struct {
	Event  string `json:"event"`
	Lease  string `json:"lease"`
	Job    string `json:"job,omitempty"`
	Cell   int    `json:"cell"`
	Worker string `json:"worker,omitempty"`
	From   int    `json:"from"`
	// SpecHash is the canonical hash of the leased cell's spec (grant
	// events only). On restart the coordinator refuses to reattach a
	// restored lease to a re-offered cell whose spec hashes differently —
	// a cell key reused for different work cannot inherit the old holder.
	SpecHash string    `json:"spec_hash,omitempty"`
	Expires  time.Time `json:"expires"`
}

// LeaseLog is an open append handle on the lease table. Appends are
// serialized internally; errors are sticky like journal errors.
type LeaseLog struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	m   Metrics
	err error
}

// OpenLeaseLog opens (creating if absent) the store's lease log,
// returning the append handle and every event already on disk. A torn
// or undecodable tail is truncated away — exactly the ResumeAt
// discipline — so the returned events are the committed prefix the next
// append continues.
func (s *Store) OpenLeaseLog() (*LeaseLog, []LeaseEvent, error) {
	path := filepath.Join(s.dir, leaseLogName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: lease log: %w", err)
	}
	events, off, err := ScanLeaseEvents(bufio.NewReaderSize(f, 64<<10))
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: lease log: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: lease log: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: lease log: %w", err)
	}
	return &LeaseLog{f: f, w: bufio.NewWriterSize(f, 16<<10), m: s.metrics}, events, nil
}

// ScanLeaseEvents parses lease events from r until EOF or the first
// line that is torn, empty, or undecodable, returning the events and
// the byte offset of the clean prefix (the truncation point for a
// rewritten tail). A line exceeding the journal line bound is an error:
// a corrupt log cannot make the scan allocate without limit.
func ScanLeaseEvents(br *bufio.Reader) ([]LeaseEvent, int64, error) {
	var (
		events []LeaseEvent
		off    int64
	)
	for {
		line, err := readLine(br)
		if err == errLineTooLong {
			return nil, 0, fmt.Errorf("lease log line exceeds %d bytes", maxLine)
		}
		if err != nil {
			return events, off, nil
		}
		var ev LeaseEvent
		if json.Unmarshal(line, &ev) != nil || ev.Event == "" || ev.Lease == "" {
			// Garbage inside the log (not just a torn tail) still stops
			// the scan: everything after the first bad line is dropped,
			// keeping the replayed prefix self-consistent.
			return events, off, nil
		}
		events = append(events, ev)
		off += int64(len(line)) + 1
	}
}

// Append writes one lease event. Grants and retirements (complete,
// expire, release) pass commit=true to fsync before returning — those
// transitions decide which worker owns a cell and must survive a crash;
// renews pass commit=false (losing a buffered renew on crash only
// shortens a recovered lease's remaining TTL, never changes ownership).
func (l *LeaseLog) Append(ev LeaseEvent, commit bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	line, err := json.Marshal(ev)
	if err != nil {
		l.err = fmt.Errorf("store: lease log: encode: %w", err)
		return l.err
	}
	if len(line) >= maxLine {
		l.err = fmt.Errorf("store: lease log: event of %d bytes exceeds the %d-byte line limit", len(line), maxLine)
		return l.err
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = fmt.Errorf("store: lease log: %w", err)
		return l.err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = fmt.Errorf("store: lease log: %w", err)
		return l.err
	}
	l.m.Appends.Inc()
	if !commit {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("store: lease log: flush: %w", err)
		return l.err
	}
	start := time.Now()
	err = l.f.Sync()
	l.m.FsyncSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		l.err = fmt.Errorf("store: lease log: fsync: %w", err)
	}
	return l.err
}

// Close flushes, fsyncs, and closes the log.
func (l *LeaseLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	flushErr := l.w.Flush()
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	for _, err := range []error{flushErr, syncErr, closeErr} {
		if err != nil && l.err == nil {
			l.err = fmt.Errorf("store: lease log: close: %w", err)
		}
	}
	return l.err
}

// LiveLeases folds a lease event sequence into the set of leases still
// live at now, sorted by lease id. The fold keys by (job, cell): a
// grant replaces whatever lease previously held the cell, renews extend
// the current holder only, and complete/expire/release retire the
// holder they name — so the result carries at most one lease per cell
// no matter what the input looks like.
func LiveLeases(events []LeaseEvent, now time.Time) []LeaseEvent {
	type cellKey struct {
		job  string
		cell int
	}
	held := make(map[cellKey]LeaseEvent)
	for _, ev := range events {
		k := cellKey{ev.Job, ev.Cell}
		switch ev.Event {
		case LeaseGrant:
			held[k] = ev
		case LeaseRenew:
			if cur, ok := held[k]; ok && cur.Lease == ev.Lease {
				cur.Expires = ev.Expires
				held[k] = cur
			}
		case LeaseComplete, LeaseExpire, LeaseRelease:
			if cur, ok := held[k]; ok && cur.Lease == ev.Lease {
				delete(held, k)
			}
		}
	}
	var live []LeaseEvent
	for _, ev := range held {
		if now.Before(ev.Expires) {
			live = append(live, ev)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Lease < live[b].Lease })
	return live
}
