package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestResumeAtKeepsCommittedPrefix pins the resume contract: ResumeAt on
// an interrupted journal with a torn final line keeps every committed
// record, truncates only the torn tail, and returns an append handle
// that continues the stream exactly where the prefix ends.
func TestResumeAtKeepsCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000010")
	var lines [][]byte
	for k := 0; k < 5; k++ {
		lines = append(lines, record(t, j, k, 20+k))
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a torn final line follows the committed prefix.
	f, err := os.OpenFile(filepath.Join(dir, "c000010"+ext), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":5,"rou`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, n, err := s.ResumeAt("c000010")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("resume count %d, want 5", n)
	}
	// The torn tail is gone: appending continues the stream cleanly and
	// the finished journal replays prefix + tail as one unbroken section.
	lines = append(lines, record(t, j2, 5, 25))
	if err := j2.Finish(Terminal{State: "done", Completed: 6}); err != nil {
		t.Fatal(err)
	}
	it, err := s.Results("c000010")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		if !bytes.Equal(it.Line(), lines[i]) {
			t.Fatalf("line %d: %s != %s", i, it.Line(), lines[i])
		}
		i++
	}
	if it.Err() != nil || i != 6 {
		t.Fatalf("replayed %d lines, err %v", i, it.Err())
	}
	rec := recoverOne(t, s, "c000010")
	if rec.Err != nil || rec.Terminal == nil || rec.Results != 6 {
		t.Fatalf("after resume: %+v (err %v)", rec, rec.Err)
	}
}

// TestResumeAtCleanBoundary covers the no-torn-tail shape: a journal
// closed exactly at a commit boundary resumes with zero truncation.
func TestResumeAtCleanBoundary(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000011")
	record(t, j, 0, 3)
	record(t, j, 1, 4)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, n, err := s.ResumeAt("c000011")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resume count %d, want 2", n)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestResumeAtRejectsFinishedJournal(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000012")
	record(t, j, 0, 3)
	if err := j.Finish(Terminal{State: "done", Completed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ResumeAt("c000012"); err == nil {
		t.Fatal("ResumeAt accepted a finished journal")
	}
	// The finished journal is untouched by the failed resume.
	rec := recoverOne(t, s, "c000012")
	if rec.Err != nil || rec.Terminal == nil || rec.Results != 1 {
		t.Fatalf("finished journal damaged: %+v (err %v)", rec, rec.Err)
	}
}

// TestAppendRejectsOversizedRecord pins the write-side line bound: an
// oversized record fails without reaching the file, and the failure is
// sticky like every other journal error.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000013")
	if err := j.Append(bytes.Repeat([]byte("x"), maxLine)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := j.Append([]byte(`{"trial":0,"rounds":1}`)); err == nil {
		t.Fatal("journal error not sticky after oversized append")
	}
	// The journal on disk still holds only its header.
	if err := j.Close(); err == nil {
		t.Fatal("close cleared the sticky error")
	}
	rec := recoverOne(t, s, "c000013")
	if rec.Err != nil || rec.Results != 0 {
		t.Fatalf("oversized append leaked onto disk: %+v (err %v)", rec, rec.Err)
	}
}

// TestScanRejectsOversizedLine pins the read-side bound: a journal line
// past maxLine fails the recovery scan (Recovered.Err) and ResumeAt —
// instead of being buffered whole — so the caller quarantines the file.
func TestScanRejectsOversizedLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000014")
	record(t, j, 0, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "c000014"+ext), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := append(bytes.Repeat([]byte("y"), maxLine+16), '\n')
	if _, err := f.Write(huge); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec := recoverOne(t, s, "c000014")
	if rec.Err == nil {
		t.Fatalf("oversized line not flagged: %+v", rec)
	}
	if _, _, err := s.ResumeAt("c000014"); err == nil {
		t.Fatal("ResumeAt accepted an oversized line")
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c000015"+ext), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("c000015"); err != nil {
		t.Fatal(err)
	}
	// The scan no longer sees it; the renamed file remains for inspection.
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("quarantined journal still scanned: %d journals", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "c000015"+ext+corruptExt)); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

// FuzzRecoverScan feeds arbitrary (mostly truncated-journal) bytes to
// the recovery scan: Recover must classify without panicking or
// unbounded allocation, and any journal it reports as scannable and
// unterminated must then be resumable with the same committed count —
// the scan and ResumeAt may never disagree about the prefix.
func FuzzRecoverScan(f *testing.F) {
	hdr, err := json.Marshal(Header{
		Journal: Magic, Version: Version, Kind: KindCampaign, ID: "c000001",
		Created: time.Unix(0, 0).UTC(), Spec: json.RawMessage(`{"trials":4}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(hdr)
	buf.WriteByte('\n')
	for k := 0; k < 4; k++ {
		line, _ := json.Marshal(map[string]int{"trial": k, "rounds": 7 + k})
		buf.Write(line)
		buf.WriteByte('\n')
	}
	term, _ := json.Marshal(Terminal{JournalEnd: true, State: "done", Completed: 4})
	full := append(append([]byte{}, buf.Bytes()...), append(term, '\n')...)
	for _, cut := range []int{0, 1, len(hdr), len(hdr) + 1, len(hdr) + 8, buf.Len() - 1, buf.Len(), len(full) - 1, len(full)} {
		f.Add(full[:cut])
	}
	f.Add([]byte("not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "c000001"+ext), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := s.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("scanned %d journals, want 1", len(recs))
		}
		rec := recs[0]
		if rec.Err != nil || rec.Terminal != nil {
			return // unusable or finished: nothing to resume
		}
		j, n, err := s.ResumeAt("c000001")
		if err != nil {
			t.Fatalf("scan succeeded but resume failed: %v", err)
		}
		if n != rec.Results {
			t.Fatalf("resume count %d != scan count %d", n, rec.Results)
		}
		if err := j.Append([]byte(`{"trial":99,"rounds":1}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if rec2 := recoverOne(t, s, "c000001"); rec2.Err != nil || rec2.Results != n+1 {
			t.Fatalf("appended journal rescans as %+v (err %v), want %d results", rec2, rec2.Err, n+1)
		}
	})
}
