package store

import (
	"testing"

	"github.com/repro/cobra/internal/obs"
)

// The store's observe-only instruments: appends and fsyncs tick as the
// journal is written, quarantines tick on quarantine — and a store with
// no instruments attached (the zero Metrics) behaves identically.
func TestStoreMetrics(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	appends := reg.Counter("appends_total", "journal record appends")
	fsync := reg.Histogram("fsync_seconds", "fsync latency", obs.ExpBuckets(0.0001, 4, 8))
	quarantines := reg.Counter("quarantines_total", "journals quarantined")
	s.SetMetrics(Metrics{Appends: appends, FsyncSeconds: fsync, Quarantines: quarantines})

	j := mustCreate(t, s, "c000001")
	// Create appends the header line and commits it durably: one append
	// and at least one fsync before any record lands.
	if got := appends.Value(); got != 1 {
		t.Fatalf("appends after create: %d", got)
	}
	createFsyncs := fsync.Count()
	if createFsyncs == 0 {
		t.Fatal("journal creation recorded no fsync")
	}
	record(t, j, 0, 7)
	record(t, j, 1, 9)
	if got := appends.Value(); got != 3 {
		t.Fatalf("appends after header + 2 records: %d", got)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := fsync.Count(); got <= createFsyncs {
		t.Fatalf("commit recorded no fsync (count still %d)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.Quarantine("c000001"); err != nil {
		t.Fatal(err)
	}
	if got := quarantines.Value(); got != 1 {
		t.Fatalf("quarantines after 1 quarantine: %d", got)
	}

	// The un-instrumented path must still work (nil instruments no-op).
	bare, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bj := mustCreate(t, bare, "c000002")
	record(t, bj, 0, 3)
	if err := bj.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := bj.Close(); err != nil {
		t.Fatal(err)
	}
}
