// Package store is cobrad's durable job store: one append-only NDJSON
// journal per submitted job, written so that a crashed or restarted
// server can recover every job bit for bit.
//
// # Journal format
//
// A journal is a single file <dir>/<id>.ndjson of newline-delimited JSON
// records:
//
//	line 1     Header   {"journal":"cobrad","version":1,"kind":...,"id":...,"created":...,"spec":{...}}
//	lines 2..  results  one record per committed trial, exactly the bytes
//	                    the service streams to results clients
//	last line  Terminal {"journal_end":true,"state":"done",...}  (only once
//	                    the job reached a terminal state)
//
// The result section is byte-identical to the NDJSON a client receives
// from GET .../results: each record is json.Marshal output plus a
// newline, the same encoding json.Encoder uses on the wire. Serving a
// finished job's results therefore means copying journal lines verbatim.
//
// # Durability contract
//
// The header is fsynced before the submission is acknowledged, so an
// accepted job is never forgotten. Result records are buffered and
// fsynced at commit boundaries (Journal.Commit — the service commits
// periodically for campaigns and at each cell commit for sweeps) and the
// terminal record is fsynced before the journal closes, so a finished
// job's results and aggregate survive any later crash. Between commit
// boundaries a crash may lose buffered result lines — harmless, because
// the complete lines that did reach disk are a committed prefix of the
// result stream, and the campaign determinism contract (see
// internal/batch) guarantees the job's re-run reproduces exactly that
// prefix before computing the tail. ResumeAt is the recovery entry
// point for unterminated journals: it keeps the committed prefix,
// truncates any torn final line (crash mid-write), and positions an
// append handle after the last complete record, so recovery replays the
// prefix from disk and re-executes only the uncommitted tail.
//
// Every journal line is bounded by maxLine on both sides: Append rejects
// oversized records with a sticky error, and the recovery scan fails a
// journal whose lines exceed the bound instead of buffering them — a
// corrupt or adversarial journal cannot make recovery allocate without
// limit.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/repro/cobra/internal/obs"
)

const (
	// Magic is the Header.Journal tag identifying cobrad journals.
	Magic = "cobrad"
	// Version is the journal format version written by this package.
	Version = 1
	// ext is the journal filename extension.
	ext = ".ndjson"
	// corruptExt is appended to a quarantined journal's filename; the
	// recovery scan skips quarantined files (they no longer end in ext).
	corruptExt = ".corrupt"
	// maxLine bounds a single journal line, enforced on both write
	// (Append rejects longer records) and read (readLine fails instead of
	// buffering more) — result records are a few hundred bytes and
	// headers carry a spec, both well under this.
	maxLine = 1 << 20
)

// errLineTooLong marks a journal line exceeding maxLine: the scan stops
// buffering at the bound, so a corrupt or adversarial journal cannot
// exhaust memory during recovery.
var errLineTooLong = errors.New("store: journal line exceeds the line limit")

// Kind discriminates the job type a journal belongs to.
type Kind string

const (
	// KindCampaign marks a single-campaign job (batch.Spec).
	KindCampaign Kind = "campaign"
	// KindSweep marks a parameter-sweep job (batch.SweepSpec).
	KindSweep Kind = "sweep"
)

// Header is a journal's first line: everything needed to re-create the
// job it records. Spec stays raw JSON here — the batch layer decodes it
// by Kind, keeping this package free of campaign types.
type Header struct {
	Journal string          `json:"journal"`
	Version int             `json:"version"`
	Kind    Kind            `json:"kind"`
	ID      string          `json:"id"`
	Created time.Time       `json:"created"`
	Spec    json.RawMessage `json:"spec"`
}

// Terminal is a journal's last line, present only once the job reached a
// terminal state. State is the job's terminal JobState ("done",
// "failed", "expired"); Final carries the job's final aggregate (or
// per-cell summaries for sweeps) as raw JSON.
type Terminal struct {
	JournalEnd bool            `json:"journal_end"`
	State      string          `json:"state"`
	Completed  int             `json:"completed"`
	Finished   time.Time       `json:"finished"`
	Final      json.RawMessage `json:"final,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// Store is a directory of job journals. Methods are safe for concurrent
// use on distinct job ids; a single job's journal has one writer (the
// campaign worker running it).
type Store struct {
	dir     string
	metrics Metrics
}

// Metrics is the store's observe-only instrument set. Every field is
// optional (the obs instruments are nil-receiver safe), so a Store works
// identically with none, some, or all of them attached — instrumentation
// never changes what reaches disk or when.
type Metrics struct {
	// Appends counts journal lines appended (headers, results, terminals).
	Appends *obs.Counter
	// FsyncSeconds observes the latency of each journal fsync (commit
	// boundaries, terminal seals, and close-time flushes).
	FsyncSeconds *obs.Histogram
	// Quarantines counts journals renamed aside as unusable.
	Quarantines *obs.Counter
}

// SetMetrics attaches instruments to the store. Call it before journals
// are opened (journals capture the instrument set at open); the cobrad
// server wires it before recovery so replay I/O is observed too.
func (s *Store) SetMetrics(m Metrics) { s.metrics = m }

// Open prepares (creating if needed) the journal directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the journal directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string { return filepath.Join(s.dir, id+ext) }

// validID guards the filename namespace (ids are path components).
func validID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Journal is an open append handle on one job's journal file.
type Journal struct {
	f        *os.File
	w        *bufio.Writer
	m        Metrics // observe-only; zero value no-ops
	err      error   // first write error; later operations are no-ops
	finished bool
}

// sync fsyncs the journal file, timing the call.
func (j *Journal) sync() error {
	start := time.Now()
	err := j.f.Sync()
	j.m.FsyncSeconds.Observe(time.Since(start).Seconds())
	return err
}

// Create starts a new journal for a job: it writes and fsyncs the header
// line, so the job is durable before its submission is acknowledged.
// The id must be new (an existing journal is an error, not overwritten).
func (s *Store) Create(h Header) (*Journal, error) {
	if !validID(h.ID) {
		return nil, fmt.Errorf("store: invalid job id %q", h.ID)
	}
	h.Journal, h.Version = Magic, Version
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("store: encode header: %w", err)
	}
	f, err := os.OpenFile(s.path(h.ID), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriterSize(f, 64<<10), m: s.metrics}
	if err := j.Append(line); err == nil {
		err = j.Commit()
	}
	if j.err != nil {
		f.Close()
		os.Remove(s.path(h.ID))
		return nil, j.err
	}
	return j, nil
}

// Append buffers one NDJSON record (json.Marshal output, no trailing
// newline — Append adds it). Records must fit the journal line limit: an
// oversized record fails without being written, so the scan-side bound
// never encounters a line this package produced. Errors are sticky:
// after the first failure every later Append/Commit/Finish returns it
// without writing.
func (j *Journal) Append(record []byte) error {
	if j.err != nil {
		return j.err
	}
	if len(record) >= maxLine {
		j.err = fmt.Errorf("store: append: record of %d bytes exceeds the %d-byte journal line limit", len(record), maxLine)
		return j.err
	}
	if _, err := j.w.Write(record); err != nil {
		j.err = fmt.Errorf("store: append: %w", err)
		return j.err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.err = fmt.Errorf("store: append: %w", err)
		return j.err
	}
	j.m.Appends.Inc()
	return nil
}

// Commit flushes buffered records and fsyncs the file — a commit
// boundary: everything appended so far survives a crash.
func (j *Journal) Commit() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("store: flush: %w", err)
		return j.err
	}
	if err := j.sync(); err != nil {
		j.err = fmt.Errorf("store: fsync: %w", err)
	}
	return j.err
}

// Finish appends the terminal record, commits, and closes the journal:
// the job's terminal state and final aggregate are durable when Finish
// returns. A finished journal is complete — Recover restores it without
// re-running the job.
func (j *Journal) Finish(t Terminal) error {
	if j.err != nil {
		return j.err
	}
	t.JournalEnd = true
	line, err := json.Marshal(t)
	if err != nil {
		j.err = fmt.Errorf("store: encode terminal: %w", err)
		return j.err
	}
	if err := j.Append(line); err != nil {
		return err
	}
	if err := j.Commit(); err != nil {
		return err
	}
	j.finished = true
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("store: close: %w", err)
	}
	return j.err
}

// Close flushes and closes the journal without a terminal record —
// the shutdown path for interrupted jobs: Recover sees an unterminated
// journal and requeues the job for a (byte-identical) re-run.
func (j *Journal) Close() error {
	if j.finished {
		return nil
	}
	flushErr := j.w.Flush()
	syncErr := j.sync()
	closeErr := j.f.Close()
	for _, err := range []error{flushErr, syncErr, closeErr} {
		if err != nil && j.err == nil {
			j.err = fmt.Errorf("store: close: %w", err)
		}
	}
	j.finished = true
	return j.err
}

// Reset truncates a recovered journal back to its header, returning an
// append handle positioned for the job's re-run from trial 0. It is the
// fallback when the committed prefix is unusable (see ResumeAt, which
// keeps the prefix); a crash during or after Reset leaves the journal
// unterminated, so the job is simply requeued again on the next
// recovery.
func (s *Store) Reset(id string) (*Journal, error) {
	j, _, err := s.reopen(id, "reset", false)
	return j, err
}

// ResumeAt opens an interrupted journal for resumption: it scans the
// committed result lines, truncates any torn final line (crash
// mid-append), and returns an append handle positioned after the last
// complete record, plus the committed result count. The caller replays
// those records from disk (Results) and re-executes only the tail — the
// committed prefix is never recomputed. A journal that already carries a
// terminal record, or whose lines are oversized or header unreadable, is
// an error: finished journals are never resumed, and a corrupt prefix
// falls back to Reset.
func (s *Store) ResumeAt(id string) (*Journal, int, error) {
	return s.reopen(id, "resume", true)
}

// reopen is the shared Reset/ResumeAt implementation: it validates the
// header, finds the keep boundary (after the header, or after the last
// complete result line when keepResults is set), truncates everything
// past it, and returns an append handle positioned there.
func (s *Store) reopen(id, op string, keepResults bool) (*Journal, int, error) {
	if !validID(id) {
		return nil, 0, fmt.Errorf("store: invalid job id %q", id)
	}
	f, err := os.OpenFile(s.path(id), os.O_RDWR, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	fail := func(err error) (*Journal, int, error) {
		f.Close()
		return nil, 0, fmt.Errorf("store: %s %s: %w", op, id, err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	header, err := readLine(br)
	if err != nil {
		return fail(fmt.Errorf("unreadable header: %w", err))
	}
	var h Header
	if err := json.Unmarshal(header, &h); err != nil || h.Journal != Magic || h.ID != id || h.Version > Version {
		return fail(fmt.Errorf("bad header %.80q", header))
	}
	off := int64(len(header)) + 1
	count := 0
	if keepResults {
		for {
			line, err := readLine(br)
			if err == errLineTooLong {
				return fail(fmt.Errorf("result line exceeds %d bytes", maxLine))
			}
			if err != nil {
				break // clean end or torn tail: the committed prefix ends here
			}
			if _, ok := terminalRecord(line); ok {
				return fail(fmt.Errorf("journal already finished"))
			}
			count++
			off += int64(len(line)) + 1
		}
	}
	if err := f.Truncate(off); err != nil {
		return fail(err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return &Journal{f: f, w: bufio.NewWriterSize(f, 64<<10), m: s.metrics}, count, nil
}

// Quarantine renames an unusable journal to <id>.ndjson.corrupt: later
// recovery scans skip it (and stop paying to parse it), while the file
// stays on disk for the operator to inspect or delete.
func (s *Store) Quarantine(id string) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	if err := os.Rename(s.path(id), s.path(id)+corruptExt); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.metrics.Quarantines.Inc()
	return nil
}

// Remove deletes a job's journal (used to roll back a journal whose
// submission was rejected after the header was written).
func (s *Store) Remove(id string) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid job id %q", id)
	}
	if err := os.Remove(s.path(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Recovered is one journal's parsed state: its header, its terminal
// record when the job finished (nil for interrupted/queued jobs), and
// the count of complete result lines on disk. Err is set when the
// journal is unusable (unreadable or mismatched header) — the caller
// should skip it rather than fail recovery outright.
type Recovered struct {
	Header   Header
	Terminal *Terminal
	Results  int
	Err      error
}

// Recover parses every journal in the directory, in id order. A torn
// final line (crash mid-append) is ignored: the affected journal simply
// reports one fewer committed result, or no terminal record.
func (s *Store) Recover() ([]Recovered, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Recovered
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		id := strings.TrimSuffix(name, ext)
		rec := s.scan(id)
		out = append(out, rec)
	}
	return out, nil
}

// scan reads one journal, classifying its lines.
func (s *Store) scan(id string) Recovered {
	rec := Recovered{Header: Header{ID: id}}
	f, err := os.Open(s.path(id))
	if err != nil {
		rec.Err = fmt.Errorf("store: %w", err)
		return rec
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)

	header, err := readLine(br)
	if err != nil {
		rec.Err = fmt.Errorf("store: journal %s: unreadable header: %w", id, err)
		return rec
	}
	var h Header
	if err := json.Unmarshal(header, &h); err != nil || h.Journal != Magic || h.ID != id || h.Version > Version {
		rec.Err = fmt.Errorf("store: journal %s: bad header %.80q", id, header)
		return rec
	}
	rec.Header = h

	for {
		line, err := readLine(br)
		if err == errLineTooLong {
			// A line past the bound is corruption, not a torn tail: report
			// it so the caller can quarantine the file instead of treating
			// the truncated scan as a committed prefix.
			rec.Err = fmt.Errorf("store: journal %s: line exceeds %d bytes", id, maxLine)
			return rec
		}
		if err != nil {
			// io.EOF with no data, or a torn final line: either way the
			// committed journal ends here.
			return rec
		}
		if t, ok := terminalRecord(line); ok {
			rec.Terminal = &t
			return rec
		}
		rec.Results++
	}
}

// readLine returns the next complete (newline-terminated) line without
// its newline; a partial line at EOF is reported as an error so torn
// tails are never mistaken for committed records. Lines longer than
// maxLine fail with errLineTooLong before being buffered whole — unlike
// bufio.ReadBytes, which allocates without bound — so scanning a corrupt
// journal cannot OOM recovery. The returned slice may alias the reader's
// buffer (capacity capped, so appends copy) and is valid until the next
// read.
func readLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		if len(line)+len(chunk) > maxLine {
			return nil, errLineTooLong
		}
		if line == nil && err == nil {
			// Whole line inside the buffer: no copy needed.
			return chunk[: len(chunk)-1 : len(chunk)-1], nil
		}
		line = append(line, chunk...)
		switch err {
		case nil:
			return line[:len(line)-1], nil
		case bufio.ErrBufferFull:
			continue // line spans buffer fills; keep accumulating
		default:
			return nil, err // io.EOF (torn tail) or a real I/O fault
		}
	}
}

// terminalRecord reports whether a journal line is the terminal record.
// Result records never carry the "journal_end" key, so a successful
// decode with JournalEnd set identifies the terminal unambiguously.
func terminalRecord(line []byte) (Terminal, bool) {
	if !bytes.Contains(line, []byte(`"journal_end"`)) {
		return Terminal{}, false
	}
	var t Terminal
	if err := json.Unmarshal(line, &t); err != nil || !t.JournalEnd {
		return Terminal{}, false
	}
	return t, true
}

// Results iterates a journal's committed result lines in order, skipping
// the header and stopping before the terminal record (and before any
// torn final line). Lines are returned without their newline, exactly as
// appended — serving them with a newline re-creates the original NDJSON
// stream byte for byte.
type Results struct {
	f    *os.File
	br   *bufio.Reader
	line []byte
	err  error
	done bool
}

// Results opens a journal's result section for reading.
func (s *Store) Results(id string) (*Results, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: invalid job id %q", id)
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	if _, err := readLine(br); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: journal %s: unreadable header: %w", id, err)
	}
	return &Results{f: f, br: br}, nil
}

// Next advances to the next result line, reporting false at the end of
// the result section.
func (r *Results) Next() bool {
	if r.done {
		return false
	}
	line, err := readLine(r.br)
	if err != nil {
		if err != io.EOF {
			// readLine folds a torn tail into io.EOF; anything else is a
			// real fault — an I/O error, or an oversized (corrupt) line.
			r.err = err
		}
		r.done = true
		return false
	}
	if _, ok := terminalRecord(line); ok {
		r.done = true
		return false
	}
	r.line = line
	return true
}

// Line returns the current result line (valid until the next call to
// Next).
func (r *Results) Line() []byte { return r.line }

// Err returns the first I/O error hit while iterating (a clean end of
// section, including a torn tail, is not an error).
func (r *Results) Err() error { return r.err }

// Close releases the underlying file.
func (r *Results) Close() error { return r.f.Close() }
