package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testHeader(id string) Header {
	return Header{
		Kind:    KindCampaign,
		ID:      id,
		Created: time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC),
		Spec:    json.RawMessage(`{"graph":"cycle:8","process":"cobra","branch":2,"trials":3,"seed":1}`),
	}
}

func mustCreate(t *testing.T, s *Store, id string) *Journal {
	t.Helper()
	j, err := s.Create(testHeader(id))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func record(t *testing.T, j *Journal, trial, rounds int) []byte {
	t.Helper()
	line, err := json.Marshal(map[string]int{"trial": trial, "rounds": rounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(line); err != nil {
		t.Fatal(err)
	}
	return line
}

func recoverOne(t *testing.T, s *Store, id string) Recovered {
	t.Helper()
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Header.ID == id {
			return rec
		}
	}
	t.Fatalf("journal %s not recovered (have %d journals)", id, len(recs))
	return Recovered{}
}

func TestJournalLifecycle(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000001")
	var lines [][]byte
	for k := 0; k < 3; k++ {
		lines = append(lines, record(t, j, k, 10+k))
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	term := Terminal{State: "done", Completed: 3, Finished: time.Now().UTC(), Final: json.RawMessage(`{"completed":3}`)}
	if err := j.Finish(term); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, s, "c000001")
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if rec.Header.Kind != KindCampaign || rec.Header.Journal != Magic || rec.Header.Version != Version {
		t.Fatalf("header %+v", rec.Header)
	}
	if rec.Terminal == nil || rec.Terminal.State != "done" || rec.Terminal.Completed != 3 {
		t.Fatalf("terminal %+v", rec.Terminal)
	}
	if rec.Results != 3 {
		t.Fatalf("recovered %d results, want 3", rec.Results)
	}

	// The result section replays the appended lines exactly, terminal
	// excluded.
	it, err := s.Results("c000001")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.Next() {
		if string(it.Line()) != string(lines[i]) {
			t.Fatalf("line %d: %s != %s", i, it.Line(), lines[i])
		}
		i++
	}
	if it.Err() != nil || i != 3 {
		t.Fatalf("iterated %d lines, err %v", i, it.Err())
	}

	// Duplicate ids are a bug, not an overwrite.
	if _, err := s.Create(testHeader("c000001")); err == nil {
		t.Fatal("duplicate journal created")
	}
}

func TestJournalInterruptedAndReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000002")
	record(t, j, 0, 7)
	record(t, j, 1, 9)
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // interrupted: no terminal record
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn final line must not count as a
	// committed result nor corrupt recovery.
	f, err := os.OpenFile(filepath.Join(dir, "c000002"+ext), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":2,"rou`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec := recoverOne(t, s, "c000002")
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if rec.Terminal != nil {
		t.Fatalf("interrupted journal has terminal %+v", rec.Terminal)
	}
	if rec.Results != 2 {
		t.Fatalf("recovered %d results (torn tail must not count), want 2", rec.Results)
	}

	// Reset truncates to the header for the re-run; the re-run journal
	// finishes normally.
	j2, err := s.Reset("c000002")
	if err != nil {
		t.Fatal(err)
	}
	record(t, j2, 0, 7)
	if err := j2.Finish(Terminal{State: "done", Completed: 1}); err != nil {
		t.Fatal(err)
	}
	rec = recoverOne(t, s, "c000002")
	if rec.Err != nil || rec.Terminal == nil || rec.Results != 1 {
		t.Fatalf("after reset: %+v (err %v)", rec, rec.Err)
	}
}

func TestRecoverSkipsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000003")
	if err := j.Finish(Terminal{State: "done"}); err != nil {
		t.Fatal(err)
	}
	// A garbage journal reports Err; a foreign file is ignored outright.
	if err := os.WriteFile(filepath.Join(dir, "c000004"+ext), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d journals, want 2", len(recs))
	}
	good, bad := 0, 0
	for _, rec := range recs {
		if rec.Err != nil {
			bad++
		} else {
			good++
		}
	}
	if good != 1 || bad != 1 {
		t.Fatalf("good=%d bad=%d", good, bad)
	}
}

func TestRemoveAndInvalidIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := mustCreate(t, s, "c000005")
	if err := j.Finish(Terminal{State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("c000005"); err != nil {
		t.Fatal(err)
	}
	if recs, _ := s.Recover(); len(recs) != 0 {
		t.Fatalf("journal survived Remove: %d", len(recs))
	}
	for _, id := range []string{"", "../evil", "a/b", "x y"} {
		if _, err := s.Create(testHeader(id)); err == nil {
			t.Fatalf("invalid id %q accepted by Create", id)
		}
		if _, err := s.Results(id); err == nil {
			t.Fatalf("invalid id %q accepted by Results", id)
		}
	}
}
