package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func leaseStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func grantAt(lease, job string, cell int, worker string, from int, expires time.Time) LeaseEvent {
	return LeaseEvent{Event: LeaseGrant, Lease: lease, Job: job, Cell: cell, Worker: worker, From: from, Expires: expires}
}

func TestLeaseLogRoundTrip(t *testing.T) {
	s := leaseStore(t)
	l, events, err := s.OpenLeaseLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh log replayed %d events", len(events))
	}
	t0 := time.Unix(1000, 0).UTC()
	writes := []struct {
		ev     LeaseEvent
		commit bool
	}{
		{grantAt("l1", "s000001", 0, "w1", 0, t0.Add(10*time.Second)), true},
		{LeaseEvent{Event: LeaseRenew, Lease: "l1", Job: "s000001", Cell: 0, Worker: "w1", Expires: t0.Add(20 * time.Second)}, false},
		{LeaseEvent{Event: LeaseExpire, Lease: "l1", Job: "s000001", Cell: 0, Worker: "w1"}, true},
		{grantAt("l2", "s000001", 0, "w2", 17, t0.Add(30*time.Second)), true},
	}
	for _, w := range writes {
		if err := l.Append(w.ev, w.commit); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, events, err := s.OpenLeaseLog()
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(events) != len(writes) {
		t.Fatalf("replayed %d events, want %d", len(events), len(writes))
	}
	for i, w := range writes {
		if events[i] != w.ev {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], w.ev)
		}
	}
	live := LiveLeases(events, t0)
	if len(live) != 1 || live[0].Lease != "l2" || live[0].From != 17 {
		t.Fatalf("live = %+v, want the l2 re-grant at from=17", live)
	}
}

func TestLeaseLogTruncatesTornTail(t *testing.T) {
	s := leaseStore(t)
	l, _, err := s.OpenLeaseLog()
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0).UTC()
	if err := l.Append(grantAt("l1", "s000001", 0, "w1", 0, t0.Add(time.Minute)), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(LeaseEvent{Event: LeaseExpire, Lease: "l1", Job: "s000001", Cell: 0}, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), leaseLogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the expire record mid-line, as a crash during the write would.
	torn := raw[:len(raw)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, events, err := s.OpenLeaseLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Event != LeaseGrant {
		t.Fatalf("torn replay = %+v, want just the grant", events)
	}
	// The torn tail is truncated: the next append lands on a clean line.
	if err := l2.Append(LeaseEvent{Event: LeaseComplete, Lease: "l1", Job: "s000001", Cell: 0}, true); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, events, err = s.OpenLeaseLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Event != LeaseComplete {
		t.Fatalf("post-truncation replay = %+v", events)
	}
	if live := LiveLeases(events, t0); len(live) != 0 {
		t.Fatalf("live after complete = %+v, want none", live)
	}
}

func TestLiveLeasesDropExpired(t *testing.T) {
	t0 := time.Unix(1000, 0).UTC()
	events := []LeaseEvent{
		grantAt("l1", "s000001", 0, "w1", 0, t0.Add(time.Second)),
		grantAt("l2", "s000001", 1, "w2", 0, t0.Add(time.Hour)),
	}
	live := LiveLeases(events, t0.Add(time.Minute))
	if len(live) != 1 || live[0].Lease != "l2" {
		t.Fatalf("live = %+v, want only the unexpired l2", live)
	}
}

func TestLiveLeasesRenewExtendsOnlyHolder(t *testing.T) {
	t0 := time.Unix(1000, 0).UTC()
	events := []LeaseEvent{
		grantAt("l1", "s000001", 0, "w1", 0, t0.Add(time.Second)),
		// A stale renew from a lease that no longer holds the cell must
		// not resurrect or extend anything.
		{Event: LeaseRenew, Lease: "l0", Job: "s000001", Cell: 0, Expires: t0.Add(time.Hour)},
	}
	if live := LiveLeases(events, t0.Add(time.Minute)); len(live) != 0 {
		t.Fatalf("stale renew extended the cell: %+v", live)
	}
	events = append(events, LeaseEvent{Event: LeaseRenew, Lease: "l1", Job: "s000001", Cell: 0, Expires: t0.Add(time.Hour)})
	if live := LiveLeases(events, t0.Add(time.Minute)); len(live) != 1 || live[0].Lease != "l1" {
		t.Fatalf("holder renew lost: %+v", live)
	}
}

// FuzzLeaseRecover pins the lease-recovery safety property: scanning
// and folding ANY byte string — truncated logs, interleaved garbage,
// duplicated grants — never yields two live leases for one (job, cell),
// never invents a lease that was not granted, and never makes the scan
// panic or allocate past the line bound.
func FuzzLeaseRecover(f *testing.F) {
	t0 := time.Unix(1000, 0).UTC()
	var buf bytes.Buffer
	evs := []LeaseEvent{
		grantAt("l1", "s000001", 0, "w1", 0, t0.Add(time.Minute)),
		{Event: LeaseRenew, Lease: "l1", Job: "s000001", Cell: 0, Worker: "w1", Expires: t0.Add(2 * time.Minute)},
		{Event: LeaseExpire, Lease: "l1", Job: "s000001", Cell: 0, Worker: "w1"},
		grantAt("l2", "s000001", 0, "w2", 9, t0.Add(3*time.Minute)),
		grantAt("l3", "s000001", 1, "w1", 0, t0.Add(3*time.Minute)),
		{Event: LeaseComplete, Lease: "l2", Job: "s000001", Cell: 0, Worker: "w2"},
	}
	for _, ev := range evs {
		line, _ := json.Marshal(ev)
		buf.Write(line)
		buf.WriteByte('\n')
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, 17, len(full) / 2, len(full) - 1, len(full)} {
		f.Add(full[:cut])
	}
	f.Add([]byte("{\"event\":\"grant\",\"lease\":\"l1\",\"job\":\"j\",\"cell\":0}\n{\"event\":\"grant\",\"lease\":\"l2\",\"job\":\"j\",\"cell\":0}\n"))
	f.Add([]byte("not json\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, off, err := ScanLeaseEvents(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // oversized line: rejected wholesale, never replayed
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("clean offset %d outside input of %d bytes", off, len(data))
		}
		// The clean prefix re-scans to the same events (truncation is
		// idempotent, so a crash between truncate and reopen is safe).
		again, off2, err := ScanLeaseEvents(bufio.NewReader(bytes.NewReader(data[:off])))
		if err != nil || off2 != off || len(again) != len(events) {
			t.Fatalf("rescan of clean prefix diverged: %d/%d events, off %d/%d, err %v",
				len(again), len(events), off2, off, err)
		}
		granted := make(map[string]bool)
		for _, ev := range events {
			if ev.Event == LeaseGrant {
				granted[fmt.Sprintf("%s/%d/%s", ev.Job, ev.Cell, ev.Lease)] = true
			}
		}
		live := LiveLeases(events, t0)
		cells := make(map[string]string)
		for _, ev := range live {
			key := fmt.Sprintf("%s/%d", ev.Job, ev.Cell)
			if holder, dup := cells[key]; dup {
				t.Fatalf("double grant survived recovery: cell %s held by %s and %s", key, holder, ev.Lease)
			}
			cells[key] = ev.Lease
			if !granted[key+"/"+ev.Lease] {
				t.Fatalf("live lease %s on cell %s was never granted", ev.Lease, key)
			}
			if !t0.Before(ev.Expires) {
				t.Fatalf("expired lease %s reported live", ev.Lease)
			}
		}
	})
}
