// Package obs is cobrad's dependency-free observability core: a metrics
// registry of counters, gauges and fixed-bucket histograms exposed in
// the Prometheus text exposition format (version 0.0.4), plus a lint
// checker for that format (lint.go) used by tests and the CI metrics
// smoke.
//
// The package exists so the scheduler, cell scheduler, graph cache,
// engine result path and journal store can be instrumented without
// pulling a client library into the module. Design constraints:
//
//   - Observe-only: instruments are plain atomics on the side of the hot
//     path. Nothing in this package feeds back into scheduling or
//     results — a scrape reads state, it never changes it. Every
//     instrument method is nil-receiver safe, so library code paths that
//     run without a registry (batch.Campaign.Run outside cobrad) carry
//     nil instruments and pay a single predictable branch.
//   - Deterministic exposition: families render in registration order and
//     series within a family in sorted label order, so /metrics output is
//     stable across scrapes and directly diffable in tests.
//   - Fixed histogram buckets: bucket bounds are declared at registration
//     and never resize, so Observe is lock-free (binary search + two
//     atomic adds).
//
// Typical use:
//
//	reg := obs.NewRegistry()
//	trials := reg.Counter("cobrad_trials_executed_total", "Trials computed by this process.")
//	wait := reg.Histogram("cobrad_admission_wait_seconds", "Queue wait.", obs.ExpBuckets(0.001, 2, 14))
//	mux.Handle("/metrics", reg.Handler())
//	...
//	trials.Inc()
//	wait.Observe(time.Since(queued).Seconds())
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The nil Counter
// is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down. The nil Gauge is a
// valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric: observation counts
// per bucket plus a running sum, exposed with cumulative bucket counts
// the way Prometheus expects. The nil Histogram is a valid no-op
// instrument.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64 // per-bucket (non-cumulative), len = len(bounds)+1
	sum    atomic.Uint64  // math.Float64bits of the running sum
	n      atomic.Int64   // total observations
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound >= v; the last slot is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on the nil
// Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values (0 on the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous — the usual shape for latency
// histograms. start must be > 0 and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() int64
}

// family is one named metric with its help text, type, and label schema.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string

	mu     sync.Mutex
	series map[string]*series // key: joined label values
	order  []string           // insertion order; sorted at exposition
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Register instruments once at startup; all methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnGather registers fn to run at the start of every exposition, before
// any family is rendered — the hook point for gauges computed from live
// state (queue depths by band, cache size) rather than event ticks.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// register creates a family, panicking on an invalid or duplicate name —
// registration happens once at startup, so a clash is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, k kind, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: k, labels: labels, series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get returns (creating if needed) the series for the given label values.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil).get(nil).counter
}

// Gauge registers and returns a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil).get(nil).gauge
}

// Histogram registers and returns a histogram with the given strictly
// increasing bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	f := r.register(name, help, kindHistogram, nil)
	s := f.get(nil)
	s.hist = &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at every
// exposition — the bridge for pre-existing counters owned elsewhere
// (graph-cache hit counts). fn must be monotone and safe to call from
// any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, kindCounter, nil).get(nil).counterFn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at every
// exposition. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, kindGauge, nil).get(nil).gaugeFn = fn
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values, creating it on
// first use. The nil CounterVec returns the nil (no-op) Counter.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(vals).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values, creating it on
// first use. The nil GaugeVec returns the nil (no-op) Gauge.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(vals).gauge
}

// WriteText renders the registry as Prometheus text exposition
// (version 0.0.4): families in registration order, series within a
// family sorted by label values, histogram buckets cumulative.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	ser := make([]*series, len(keys))
	for i, k := range keys {
		ser[i] = f.series[k]
	}
	f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ser {
		switch f.kind {
		case kindCounter:
			v := s.counter.Value()
			if s.counterFn != nil {
				v = s.counterFn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatInt(v))
		case kindGauge:
			v := s.gauge.Value()
			if s.gaugeFn != nil {
				v = s.gaugeFn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatInt(v))
		case kindHistogram:
			h := s.hist
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %s\n", f.name,
					labelString(f.labels, s.labelVals, "le", formatFloat(bound)), formatInt(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "le", "+Inf"), formatInt(cum))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatInt(h.Count()))
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram "le" label) when extraKey is non-empty; "" for no labels.
func labelString(names, vals []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
