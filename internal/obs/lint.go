package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint reads a Prometheus text exposition (version 0.0.4) and returns an
// error describing the first violation found, or nil if the input is
// well-formed. It checks the subset of the format cobrad emits — enough
// for the CI metrics smoke to catch a malformed exposition before a real
// scraper would:
//
//   - every sample is preceded by # HELP and # TYPE lines for its family,
//     in that order, each appearing exactly once per family;
//   - metric and label names are valid ([a-zA-Z_:][a-zA-Z0-9_:]*, labels
//     without ':'), label values are correctly quoted;
//   - sample values parse as Go floats (or +Inf/-Inf/NaN);
//   - TYPE is one of counter|gauge|histogram|summary|untyped;
//   - histogram families have _bucket series with an "le" label,
//     cumulative bucket counts ending in an le="+Inf" bucket whose count
//     equals the family's _count sample, plus _sum and _count;
//   - no duplicate sample (same name + label set).
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type famState struct {
		typ      string
		seenHelp bool
		seenType bool
		histSeen map[string]*histCheck // label-set (minus le) -> check
	}
	fams := make(map[string]*famState)
	seen := make(map[string]bool) // full sample identity
	var order []string            // family order for final histogram checks
	line := 0

	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are allowed by the format.
				continue
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s", line, name, fields[1])
			}
			f := fams[name]
			if f == nil {
				f = &famState{histSeen: make(map[string]*histCheck)}
				fams[name] = f
				order = append(order, name)
			}
			switch fields[1] {
			case "HELP":
				if f.seenHelp {
					return fmt.Errorf("line %d: duplicate HELP for %q", line, name)
				}
				f.seenHelp = true
			case "TYPE":
				if f.seenType {
					return fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				if !f.seenHelp {
					return fmt.Errorf("line %d: TYPE for %q before HELP", line, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE for %q missing type", line, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %q", line, fields[3], name)
				}
				f.seenType = true
				f.typ = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := fams[base]
		if f == nil || !f.seenType {
			return fmt.Errorf("line %d: sample %q without preceding HELP/TYPE", line, name)
		}

		id := name + "{" + canonLabels(labels) + "}"
		if seen[id] {
			return fmt.Errorf("line %d: duplicate sample %s", line, id)
		}
		seen[id] = true

		if f.typ == "histogram" {
			key := canonLabelsExcept(labels, "le")
			hc := f.histSeen[key]
			if hc == nil {
				hc = &histCheck{}
				f.histSeen[key] = hc
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %q missing le label", line, name)
				}
				if hc.sawInf {
					return fmt.Errorf("line %d: %q bucket after le=\"+Inf\"", line, name)
				}
				if value < hc.prevCum {
					return fmt.Errorf("line %d: %q bucket counts not cumulative (%v < %v)", line, name, value, hc.prevCum)
				}
				hc.prevCum = value
				if le == "+Inf" {
					hc.sawInf = true
					hc.infCount = value
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le value %q", line, le)
				}
			case strings.HasSuffix(name, "_count"):
				hc.sawCount = true
				hc.count = value
			case strings.HasSuffix(name, "_sum"):
				hc.sawSum = true
			default:
				return fmt.Errorf("line %d: unexpected histogram sample %q", line, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for _, name := range order {
		f := fams[name]
		if !f.seenType {
			return fmt.Errorf("family %q has HELP but no TYPE", name)
		}
		if f.typ != "histogram" {
			continue
		}
		for key, hc := range f.histSeen {
			where := name
			if key != "" {
				where = name + "{" + key + "}"
			}
			if !hc.sawInf {
				return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", where)
			}
			if !hc.sawSum || !hc.sawCount {
				return fmt.Errorf("histogram %s missing _sum or _count", where)
			}
			if hc.infCount != hc.count {
				return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", where, hc.infCount, hc.count)
			}
		}
	}
	return nil
}

type histCheck struct {
	prevCum  float64
	sawInf   bool
	infCount float64
	sawSum   bool
	sawCount bool
	count    float64
}

// parseSample parses `name{labels} value` or `name value`.
func parseSample(s string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	name = s[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	if i < len(s) && s[i] == '{' {
		i++ // past '{'
		for {
			for i < len(s) && s[i] == ',' {
				i++
			}
			if i < len(s) && s[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(s) && s[j] != '=' {
				j++
			}
			if j >= len(s) {
				return "", nil, 0, fmt.Errorf("unterminated label in %q", s)
			}
			lname := s[i:j]
			if !validLabel(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			j++ // past '='
			if j >= len(s) || s[j] != '"' {
				return "", nil, 0, fmt.Errorf("label %q value not quoted", lname)
			}
			j++
			var val strings.Builder
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
					if j >= len(s) {
						return "", nil, 0, fmt.Errorf("bad escape in label %q", lname)
					}
					switch s[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in label %q", s[j], lname)
					}
				} else {
					val.WriteByte(s[j])
				}
				j++
			}
			if j >= len(s) {
				return "", nil, 0, fmt.Errorf("unterminated label value for %q", lname)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = val.String()
			i = j + 1 // past closing '"'
		}
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample %q missing value", name)
	}
	// A timestamp may follow the value; cobrad never emits one but the
	// format allows it.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	value, err = parseValue(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value %q", name, valStr)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil // value unused for NaN; presence is what we check
	}
	return strconv.ParseFloat(s, 64)
}

func canonLabels(labels map[string]string) string {
	return canonLabelsExcept(labels, "")
}

func canonLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == skip {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + labels[k] + `"`
	}
	return strings.Join(parts, ",")
}
