package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 2`,
		`test_lat_seconds_bucket{le="1"} 3`,
		`test_lat_seconds_bucket{le="10"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_sum 102.65`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecAndFuncSeries(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_jobs_total", "Jobs.", "kind", "state")
	cv.With("campaign", "finished").Add(3)
	cv.With("sweep", "failed").Inc()
	gv := r.GaugeVec("test_queue_depth", "Depth.", "band")
	gv.With("0").Set(2)
	gv.With("5").Set(1)
	live := int64(0)
	r.GaugeFunc("test_live", "Live.", func() int64 { return live })
	r.CounterFunc("test_hits_total", "Hits.", func() int64 { return 42 })
	r.OnGather(func() { live = 9 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_jobs_total Jobs.",
		"# TYPE test_jobs_total counter",
		`test_jobs_total{kind="campaign",state="finished"} 3`,
		`test_jobs_total{kind="sweep",state="failed"} 1`,
		`test_queue_depth{band="0"} 2`,
		`test_queue_depth{band="5"} 1`,
		"test_live 9",
		"test_hits_total 42",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Same labels return the same instrument.
	cv.With("campaign", "finished").Inc()
	if cv.With("campaign", "finished").Value() != 4 {
		t.Fatal("vec series not shared across With calls")
	}
}

func TestExpositionStableAndLints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_a_total", "A.")
	h := r.Histogram("test_b_seconds", "B.", ExpBuckets(0.001, 4, 6))
	v := r.CounterVec("test_c_total", "C.", "k")
	c.Add(10)
	h.Observe(0.02)
	h.Observe(3)
	v.With("z").Inc()
	v.With("a").Inc()

	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("exposition not stable across scrapes")
	}
	// Series sorted by label value within a family.
	out := b1.String()
	if strings.Index(out, `test_c_total{k="a"}`) > strings.Index(out, `test_c_total{k="z"}`) {
		t.Fatal("vec series not sorted by label values")
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("self-exposition fails lint: %v", err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	if err := Lint(resp.Body); err != nil {
		t.Fatalf("handler output fails lint: %v", err)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "C.")
	h := r.Histogram("test_conc_seconds", "H.", []float64{1, 2, 4})
	cv := r.CounterVec("test_conc_vec_total", "V.", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
				cv.With(lbl).Inc()
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := Lint(strings.NewReader(b.String())); err != nil {
		t.Fatalf("lint after concurrency: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_esc", "E.", "spec")
	v.With(`a"b\c` + "\n" + "d").Set(1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc{spec="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
	if err := Lint(strings.NewReader(b.String())); err != nil {
		t.Fatalf("escaped exposition fails lint: %v", err)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no help/type": "foo_total 1\n",
		"type before help": "# TYPE foo_total counter\n" +
			"# HELP foo_total x\nfoo_total 1\n",
		"bad type":         "# HELP foo x\n# TYPE foo bogus\nfoo 1\n",
		"bad value":        "# HELP foo x\n# TYPE foo gauge\nfoo abc\n",
		"duplicate sample": "# HELP foo x\n# TYPE foo gauge\nfoo 1\nfoo 2\n",
		"unquoted label":   "# HELP foo x\n# TYPE foo gauge\nfoo{a=b} 1\n",
		"hist missing inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"hist non-cumulative": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"hist count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n",
	}
	for name, in := range cases {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input", name)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total 3\n"
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected good input: %v", err)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
}
