// Package gossip implements the synchronous push broadcast protocol, the
// unrestricted-bandwidth reference point for COBRA: every informed vertex
// pushes to ONE random neighbour per round and — unlike COBRA — remains
// informed forever. Push covers expanders in Θ(log n) rounds but every
// vertex transmits every round once informed, whereas COBRA bounds
// transmissions to b per ACTIVE vertex per round and lets vertices go
// quiet. The E12 baseline experiment quantifies this rounds-vs-messages
// trade-off.
package gossip

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Errors returned by the drivers.
var (
	ErrInput      = errors.New("gossip: invalid input")
	ErrRoundLimit = errors.New("gossip: round limit exceeded")
)

// Result summarises one push-broadcast run.
type Result struct {
	// Rounds is the number of rounds until all n vertices were informed.
	Rounds int
	// Messages is the total number of push transmissions sent.
	Messages int64
}

// Push runs the push protocol from start until every vertex is informed.
func Push(g *graph.Graph, start int, rng *xrand.RNG) (Result, error) {
	if start < 0 || start >= g.N() {
		return Result{}, fmt.Errorf("%w: start %d", ErrInput, start)
	}
	if !g.IsConnected() {
		return Result{}, fmt.Errorf("%w: disconnected graph", ErrInput)
	}
	n := g.N()
	informed := bitset.New(n)
	informed.Set(start)
	count := 1
	var res Result
	members := make([]int, 0, n)
	// Push covers any connected graph in O(n log n) rounds w.h.p. (the
	// star is the coupon-collector worst case: only the hub can inform
	// leaves); cap well above that.
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	limit := 64*n*lg + 64

	for count < n {
		if res.Rounds >= limit {
			return res, fmt.Errorf("%w after %d rounds", ErrRoundLimit, res.Rounds)
		}
		members = informed.Members(members[:0])
		for _, u := range members {
			w := g.Neighbor(u, rng.Intn(g.Degree(u)))
			res.Messages++
			if !informed.Contains(w) {
				informed.Set(w)
				count++
			}
		}
		res.Rounds++
	}
	return res, nil
}
