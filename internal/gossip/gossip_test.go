package gossip

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestPushValidation(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := Push(g, 9, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad start accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := Push(b.MustBuild("disc"), 0, rng); !errors.Is(err, ErrInput) {
		t.Fatal("disconnected accepted")
	}
}

func TestPushCoversCompleteGraphLogRounds(t *testing.T) {
	// Push on K_n completes in log2 n + ln n + o(log n) rounds.
	g := graph.Complete(256)
	rng := xrand.New(3)
	const trials = 20
	var sum float64
	for k := 0; k < trials; k++ {
		res, err := Push(g, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages <= 0 {
			t.Fatal("no messages recorded")
		}
		sum += float64(res.Rounds)
	}
	mean := sum / trials
	want := math.Log2(256) + math.Log(256) // ≈ 13.5
	if mean < want*0.6 || mean > want*2 {
		t.Fatalf("push rounds mean %.1f vs theory %.1f", mean, want)
	}
}

func TestPushStarCouponCollector(t *testing.T) {
	// On the star only the hub informs leaves: Θ(n log n) rounds.
	g := graph.Star(64)
	rng := xrand.New(5)
	res, err := Push(g, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 63 * math.Log(63) // ≈ 261
	if float64(res.Rounds) < want/4 || float64(res.Rounds) > want*4 {
		t.Fatalf("star push rounds %d vs coupon collector %.0f", res.Rounds, want)
	}
}

func TestPushMessagesGrowWithRounds(t *testing.T) {
	// Messages = sum over rounds of |informed|; must be at least rounds
	// (one per round) and at most rounds*n.
	g := graph.Cycle(40)
	res, err := Push(g, 0, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages < int64(res.Rounds) || res.Messages > int64(res.Rounds)*40 {
		t.Fatalf("messages %d outside [rounds, rounds*n]", res.Messages)
	}
}

func TestPushDeterminism(t *testing.T) {
	g := graph.Hypercube(4)
	a, err := Push(g, 0, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Push(g, 0, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("determinism broken: %+v vs %+v", a, b)
	}
}
