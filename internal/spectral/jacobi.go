package spectral

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/graph"
)

// Dense full-spectrum computation via the cyclic Jacobi eigenvalue
// algorithm, used to cross-validate the power-iteration path on graphs
// with no closed-form spectrum and to compute spectral quantities exactly
// in tests. O(n³) per sweep and O(n²) memory: intended for n up to a few
// hundred.

// maxJacobiN caps the dense solver's problem size.
const maxJacobiN = 1024

// FullSpectrum returns all n eigenvalues of the random-walk transition
// matrix P = D⁻¹A of g (equivalently of the symmetrised S), sorted in
// non-increasing order. For a connected graph the first entry is 1 and
// the last is >= -1, with equality iff bipartite.
func FullSpectrum(g *graph.Graph) ([]float64, error) {
	n := g.N()
	if n > maxJacobiN {
		return nil, fmt.Errorf("spectral: FullSpectrum limited to n <= %d (n = %d)", maxJacobiN, n)
	}
	// Build the dense symmetric S = D^{-1/2} A D^{-1/2}.
	a := make([]float64, n*n)
	for v := 0; v < n; v++ {
		dv := math.Sqrt(float64(g.Degree(v)))
		for _, u := range g.Neighbors(v) {
			a[v*n+int(u)] = 1 / (dv * math.Sqrt(float64(g.Degree(int(u)))))
		}
	}
	eig := jacobiEigenvalues(a, n)
	// Sort non-increasing (insertion-free heap-less approach: simple
	// selection is O(n²), dominated by Jacobi's O(n³) anyway).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if eig[j] > eig[best] {
				best = j
			}
		}
		eig[i], eig[best] = eig[best], eig[i]
	}
	return eig, nil
}

// SecondEigenvalueExact computes λ = max_{i >= 2} |λ_i| from the full
// spectrum; the dense cross-check for SecondEigenvalue.
func SecondEigenvalueExact(g *graph.Graph) (float64, error) {
	eig, err := FullSpectrum(g)
	if err != nil {
		return 0, err
	}
	if len(eig) == 1 {
		return 0, nil
	}
	lam := math.Abs(eig[1])
	if low := math.Abs(eig[len(eig)-1]); low > lam {
		lam = low
	}
	return lam, nil
}

// jacobiEigenvalues runs cyclic Jacobi sweeps on the dense symmetric
// matrix a (row-major, n×n), destroying a and returning its eigenvalues.
func jacobiEigenvalues(a []float64, n int) []float64 {
	if n == 1 {
		return []float64{a[0]}
	}
	const (
		maxSweeps = 64
		tol       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm for the convergence test.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * a[i*n+j] * a[i*n+j]
			}
		}
		if off < tol*tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) < tol/float64(n) {
					continue
				}
				app, aqq := a[p*n+p], a[q*n+q]
				// Rotation angle zeroing a[p][q].
				theta := 0.5 * math.Atan2(2*apq, aqq-app)
				c, s := math.Cos(theta), math.Sin(theta)
				// Apply the rotation J^T A J restricted to rows/cols p,q.
				for k := 0; k < n; k++ {
					akp, akq := a[k*n+p], a[k*n+q]
					a[k*n+p] = c*akp - s*akq
					a[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p*n+k], a[q*n+k]
					a[p*n+k] = c*apk - s*aqk
					a[q*n+k] = s*apk + c*aqk
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a[i*n+i]
	}
	return eig
}
