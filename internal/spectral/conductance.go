package spectral

import (
	"math"

	"github.com/repro/cobra/internal/graph"
)

// Conductance quantities. The conductance of a graph is
//
//	ϕ(G) = min_{S: 0 < d(S) <= m} E(S, V\S) / d(S),
//
// minimised over vertex subsets with at most half the total degree, where
// E(S, V\S) counts cut edges and d(S) is the degree sum of S. The paper
// cites the bound 1−λ >= ϕ²/2 (the discrete Cheeger inequality) to compare
// its Theorem 1.2 against the O((r⁴/ϕ²) log² n) bound of [8].

// ConductanceExact computes ϕ(G) exactly by enumerating all 2^(n-1)-1
// proper subsets containing vertex 0's side; feasible for n <= ~24. Use it
// to validate the sweep heuristic and for small experiment graphs.
func ConductanceExact(g *graph.Graph) float64 {
	n := g.N()
	if n > 24 {
		panic("spectral: ConductanceExact limited to n <= 24")
	}
	if n < 2 {
		return 0
	}
	total := float64(g.DegreeSum())
	best := math.Inf(1)
	// Iterate over subsets that exclude vertex n-1, covering each
	// {S, complement} pair exactly once.
	for mask := 1; mask < 1<<(uint(n)-1); mask++ {
		var dS, cut float64
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) == 0 {
				continue
			}
			dS += float64(g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if mask&(1<<uint(u)) == 0 {
					cut++
				}
			}
		}
		vol := math.Min(dS, total-dS)
		if vol == 0 {
			continue
		}
		if phi := cut / vol; phi < best {
			best = phi
		}
	}
	return best
}

// ConductanceSweep returns an upper bound on ϕ(G) from a spectral sweep
// cut: order vertices by the (approximate) second eigenvector of the lazy
// walk and take the best prefix cut. By Cheeger's inequality the result
// phi satisfies ϕ <= phi <= sqrt(2(1−λ_lazy)) · const, making it a useful
// two-sided handle at experiment scale.
func ConductanceSweep(g *graph.Graph, opt Options) (float64, error) {
	opt = opt.withDefaults()
	n := g.N()
	if n < 2 {
		return 0, nil
	}
	vec, err := secondVector(g, opt)
	if err != nil {
		return 0, err
	}
	// Sort vertex ids by eigenvector entry.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Insertion-free sort via sort.Slice equivalent; implemented with
	// simple index sort to avoid importing sort twice across files.
	sortByKey(order, vec)

	inS := make([]bool, n)
	total := float64(g.DegreeSum())
	var dS, cut float64
	best := math.Inf(1)
	for k := 0; k < n-1; k++ {
		v := order[k]
		inS[v] = true
		dS += float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if inS[u] {
				cut-- // edge now internal
			} else {
				cut++ // new cut edge
			}
		}
		vol := math.Min(dS, total-dS)
		if vol > 0 {
			if phi := cut / vol; phi < best {
				best = phi
			}
		}
	}
	return best, nil
}

// secondVector runs deflated power iteration on the lazy symmetrised
// matrix and returns the resulting vector mapped back to walk coordinates
// (D^{-1/2} x), which is the correct ordering key for sweep cuts.
func secondVector(g *graph.Graph, opt Options) ([]float64, error) {
	n := g.N()
	perron := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		perron[v] = math.Sqrt(float64(g.Degree(v)))
		norm += perron[v] * perron[v]
	}
	norm = math.Sqrt(norm)
	for v := range perron {
		perron[v] /= norm
	}
	x := pseudoStart(n, opt.Seed)
	y := make([]float64, n)
	deflate(x, perron)
	normalize(x)
	prev := 0.0
	for iter := 0; iter < opt.MaxIter; iter++ {
		applySym(g, true, x, y)
		deflate(y, perron)
		lam := normalize(y)
		x, y = y, x
		if math.Abs(lam-prev) < opt.Tol {
			break
		}
		prev = lam
	}
	// Map to walk coordinates.
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = x[v] / math.Sqrt(float64(g.Degree(v)))
	}
	return out, nil
}

// sortByKey sorts ids ascending by key[id] (simple top-down mergesort to
// keep the package dependency-free and deterministic).
func sortByKey(ids []int, key []float64) {
	if len(ids) < 2 {
		return
	}
	buf := make([]int, len(ids))
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if key[ids[i]] <= key[ids[j]] {
				buf[k] = ids[i]
				i++
			} else {
				buf[k] = ids[j]
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = ids[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = ids[j]
			j++
			k++
		}
		copy(ids[lo:hi], buf[lo:hi])
	}
	rec(0, len(ids))
}

// CheegerLower returns the paper's cited lower bound 1−λ >= ϕ²/2
// rearranged as a bound on the gap from a conductance value.
func CheegerLower(phi float64) float64 { return phi * phi / 2 }
