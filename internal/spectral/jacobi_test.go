package spectral

import (
	"math"
	"sort"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestFullSpectrumClosedForms(t *testing.T) {
	// K_5: eigenvalues {1, -1/4 (×4)}.
	eig, err := FullSpectrum(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -0.25, -0.25, -0.25, -0.25}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Fatalf("K5 spectrum %v", eig)
		}
	}
	// C_4: cos(2πk/4) = {1, 0, 0, -1}.
	eig, err = FullSpectrum(graph.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	want = []float64{1, 0, 0, -1}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Fatalf("C4 spectrum %v", eig)
		}
	}
	// Petersen walk spectrum: {1, 1/3 ×5, -2/3 ×4}.
	eig, err = FullSpectrum(graph.Petersen())
	if err != nil {
		t.Fatal(err)
	}
	want = []float64{1, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, -2.0 / 3, -2.0 / 3, -2.0 / 3, -2.0 / 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Fatalf("petersen spectrum %v", eig)
		}
	}
}

func TestFullSpectrumHypercube(t *testing.T) {
	// Q_d: eigenvalues 1 - 2k/d with multiplicity C(d, k).
	d := 4
	eig, err := FullSpectrum(graph.Hypercube(d))
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	binom := []int{1, 4, 6, 4, 1}
	for k := 0; k <= d; k++ {
		v := 1 - 2*float64(k)/float64(d)
		for c := 0; c < binom[k]; c++ {
			want = append(want, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-9 {
			t.Fatalf("Q4 spectrum mismatch at %d: %v vs %v", i, eig[i], want[i])
		}
	}
}

func TestSpectrumSumsToZeroTrace(t *testing.T) {
	// trace(P) = 0 for loopless graphs, so eigenvalues sum to ~0.
	rng := xrand.New(7)
	g, err := graph.ErdosRenyi(60, 0.12, rng)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := FullSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range eig {
		sum += v
	}
	if math.Abs(sum) > 1e-8 {
		t.Fatalf("spectrum sums to %v, want 0", sum)
	}
	if math.Abs(eig[0]-1) > 1e-9 {
		t.Fatalf("top eigenvalue %v != 1", eig[0])
	}
}

func TestPowerIterationMatchesDense(t *testing.T) {
	// Cross-validate the production path against the dense solver on
	// irregular random graphs with no closed form.
	rng := xrand.New(11)
	for trial := 0; trial < 5; trial++ {
		g, err := graph.ErdosRenyi(50, 0.15, rng)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SecondEigenvalue(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SecondEigenvalueExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-exact) > 1e-6 {
			t.Fatalf("trial %d: power %v vs dense %v", trial, fast, exact)
		}
	}
	// And on random regular graphs.
	for trial := 0; trial < 5; trial++ {
		g, err := graph.RandomRegular(40, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SecondEigenvalue(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SecondEigenvalueExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-exact) > 1e-6 {
			t.Fatalf("regular trial %d: power %v vs dense %v", trial, fast, exact)
		}
	}
}

func TestFullSpectrumSizeCap(t *testing.T) {
	b := graph.NewBuilder(maxJacobiN + 1)
	for i := 0; i <= maxJacobiN-1; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild("too-big")
	if _, err := FullSpectrum(g); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestBipartiteLowestEigenvalueIsMinusOne(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(8), graph.Star(7), graph.CompleteBipartite(3, 5)} {
		eig, err := FullSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(eig[len(eig)-1]+1) > 1e-9 {
			t.Fatalf("%s: lowest eigenvalue %v != -1", g.Name(), eig[len(eig)-1])
		}
	}
}
