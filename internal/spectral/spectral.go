// Package spectral computes the spectral quantities that parameterise the
// paper's bounds: the second-largest eigenvalue modulus λ of the
// random-walk transition matrix P = D⁻¹A (Theorem 1.2's 1−λ gap), the lazy
// variant (I+P)/2, and conductance estimates (the ϕ in the prior
// O((r⁴/ϕ²) log² n) bound of Mitzenmacher et al. that the paper improves).
//
// For the reversible chain P, the similarity transform
// S = D^{1/2} P D^{-1/2} is symmetric with the same spectrum, so all
// eigenvalue computations run on S via power iteration with deflation of
// the known Perron vector (which for S is proportional to sqrt(deg)).
package spectral

import (
	"errors"
	"math"

	"github.com/repro/cobra/internal/graph"
)

// ErrNoConverge is returned when power iteration fails to reach the
// requested tolerance within the iteration budget.
var ErrNoConverge = errors.New("spectral: power iteration did not converge")

// Options tunes the eigenvalue computation. The zero value is replaced by
// defaults in each entry point.
type Options struct {
	// Tol is the absolute tolerance on the eigenvalue estimate.
	Tol float64
	// MaxIter caps the number of matrix–vector products.
	MaxIter int
	// Seed drives the deterministic pseudo-random start vector.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200000
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// SecondEigenvalue returns λ = max_{i>=2} |λ_i(P)| for the walk matrix
// P = D⁻¹A of a connected graph — exactly the λ of Theorem 1.2. For
// bipartite graphs λ = 1 (λ_n = −1), which the method recovers
// numerically.
func SecondEigenvalue(g *graph.Graph, opt Options) (float64, error) {
	return secondEigenvalue(g, false, opt)
}

// SecondEigenvalueLazy returns λ for the lazy walk (I+P)/2, whose spectrum
// is (1+λ_i)/2 >= 0; this is the relevant quantity for the lazy COBRA/BIPS
// processes on bipartite graphs.
func SecondEigenvalueLazy(g *graph.Graph, opt Options) (float64, error) {
	return secondEigenvalue(g, true, opt)
}

// Gap returns the eigenvalue gap 1−λ of the plain walk.
func Gap(g *graph.Graph, opt Options) (float64, error) {
	lam, err := SecondEigenvalue(g, opt)
	if err != nil {
		return 0, err
	}
	return 1 - lam, nil
}

func secondEigenvalue(g *graph.Graph, lazy bool, opt Options) (float64, error) {
	opt = opt.withDefaults()
	n := g.N()
	if n == 1 {
		return 0, nil
	}
	// Perron vector of the symmetrised matrix S: w(v) ∝ sqrt(deg v).
	perron := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		perron[v] = math.Sqrt(float64(g.Degree(v)))
		norm += perron[v] * perron[v]
	}
	norm = math.Sqrt(norm)
	for v := range perron {
		perron[v] /= norm
	}

	x := pseudoStart(n, opt.Seed)
	y := make([]float64, n)
	deflate(x, perron)
	normalize(x)

	// Power iteration on S² (two applications per step) so that both ends
	// of the spectrum (λ₂ near +1 and λ_n near −1) are captured by the
	// dominant eigenvalue of the deflated operator in absolute value. For
	// the lazy matrix the spectrum is non-negative and one application
	// would suffice; using S² uniformly halves the tolerance exponent and
	// keeps one code path.
	prev := 0.0
	for iter := 0; iter < opt.MaxIter; iter++ {
		applySym(g, lazy, x, y)
		deflate(y, perron)
		applySym(g, lazy, y, x)
		deflate(x, perron)
		lam2 := normalize(x) // estimates λ² of the deflated operator
		if math.Abs(lam2-prev) < opt.Tol {
			return math.Sqrt(math.Max(lam2, 0)), nil
		}
		prev = lam2
	}
	return 0, ErrNoConverge
}

// applySym computes y = S x where S = D^{-1/2} A D^{-1/2} (or the lazy
// (I+S)/2), the symmetric conjugate of the walk matrix.
func applySym(g *graph.Graph, lazy bool, x, y []float64) {
	n := g.N()
	for v := 0; v < n; v++ {
		var acc float64
		dv := math.Sqrt(float64(g.Degree(v)))
		for _, u := range g.Neighbors(v) {
			acc += x[u] / math.Sqrt(float64(g.Degree(int(u))))
		}
		y[v] = acc / dv
		if lazy {
			y[v] = 0.5*x[v] + 0.5*y[v]
		}
	}
}

func deflate(x, dir []float64) {
	var dot float64
	for i := range x {
		dot += x[i] * dir[i]
	}
	for i := range x {
		x[i] -= dot * dir[i]
	}
}

// normalize scales x to unit length and returns its previous norm (the
// Rayleigh-style eigenvalue estimate of the preceding application).
func normalize(x []float64) float64 {
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= norm
	}
	return norm
}

// pseudoStart builds a deterministic start vector with no special symmetry
// (a fixed-seed splitmix-style hash of the index), avoiding accidental
// orthogonality to the target eigenvector.
func pseudoStart(n int, seed uint64) []float64 {
	x := make([]float64, n)
	s := seed
	for i := range x {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		x[i] = float64(z>>11)/(1<<53) - 0.5
	}
	return x
}
