package spectral

import (
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

const tol = 1e-6

func almost(t *testing.T, what string, got, want, eps float64) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s: got %.9f want %.9f (eps %.1e)", what, got, want, eps)
	}
}

// Closed-form spectra used as test vectors:
//   - K_n: walk eigenvalues {1, -1/(n-1)}, so λ = 1/(n-1).
//   - C_n: cos(2πk/n); λ = max(|cos(2π/n)|, |cos(π·floor(n/2)·2/n)|);
//     for even n bipartite gives λ = 1.
//   - Q_d: eigenvalues 1 - 2k/d; bipartite, λ = 1.
//   - K_{a,b}: bipartite, λ = 1.
//   - Petersen: adjacency eigenvalues {3, 1, -2} → walk {1, 1/3, -2/3}; λ = 2/3.
//   - Star K_{1,n-1}: bipartite, λ = 1 (walk spectrum {1, 0, -1}).
func TestSecondEigenvalueClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K5", graph.Complete(5), 0.25},
		{"K10", graph.Complete(10), 1.0 / 9},
		// Odd cycle C_n: walk eigenvalues cos(2πk/n); the largest modulus
		// among non-trivial ones is |cos(π(n−1)/n)| = cos(π/n).
		{"C5", graph.Cycle(5), math.Cos(math.Pi / 5)},
		{"C6-bipartite", graph.Cycle(6), 1},
		{"C7", graph.Cycle(7), math.Cos(math.Pi / 7)},
		{"Q3-bipartite", graph.Hypercube(3), 1},
		{"K34-bipartite", graph.CompleteBipartite(3, 4), 1},
		{"petersen", graph.Petersen(), 2.0 / 3},
		{"star-bipartite", graph.Star(8), 1},
	}
	for _, tc := range cases {
		got, err := SecondEigenvalue(tc.g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		almost(t, tc.name, got, tc.want, 1e-5)
	}
}

func TestSecondEigenvalueLazy(t *testing.T) {
	// Lazy spectrum is (1+λ_i)/2. For Q_d the non-unit extremes are
	// 1-2/d and -1, so the lazy λ is max((1+(1-2/d))/2, 0) = 1 - 1/d.
	for _, d := range []int{3, 4, 5} {
		got, err := SecondEigenvalueLazy(graph.Hypercube(d), Options{})
		if err != nil {
			t.Fatal(err)
		}
		almost(t, "lazy hypercube", got, 1-1.0/float64(d), 1e-5)
	}
	// K_n lazy: eigenvalues {1, (1-1/(n-1))/2}.
	got, err := SecondEigenvalueLazy(graph.Complete(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "lazy K6", got, (1+(-1.0/5))/2, 1e-5)
}

func TestGap(t *testing.T) {
	gap, err := Gap(graph.Complete(11), Options{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "K11 gap", gap, 1-0.1, 1e-5)
}

func TestSingleVertex(t *testing.T) {
	b := graph.NewBuilder(1)
	g, err := b.Build("K1")
	if err != nil {
		t.Fatal(err)
	}
	lam, err := SecondEigenvalue(g, Options{})
	if err != nil || lam != 0 {
		t.Fatalf("K1: lam=%v err=%v", lam, err)
	}
}

func TestIrregularGraphGap(t *testing.T) {
	// Lollipop has tiny conductance; the gap must be strictly positive but
	// small, and below the cycle's gap at comparable size.
	lol := graph.Lollipop(8, 8)
	gl, err := Gap(lol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gl <= 0 || gl > 0.5 {
		t.Fatalf("lollipop gap %.6f implausible", gl)
	}
}

func TestRandomRegularGapIsLarge(t *testing.T) {
	// Random cubic graphs are expanders w.h.p.: λ close to the Ramanujan
	// bound 2*sqrt(2)/3 ≈ 0.9428. Assert the gap is bounded away from 0.
	rng := xrand.New(31)
	g, err := graph.RandomRegular(200, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := Gap(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0.02 {
		t.Fatalf("random cubic gap %.5f suspiciously small", gap)
	}
	if gap > 0.4 {
		t.Fatalf("random cubic gap %.5f suspiciously large", gap)
	}
}

func TestDoubleCycleGapScalesInverseSquare(t *testing.T) {
	// C_n(1,2) has gap Θ(1/n²): check the ratio between n and 2n runs is
	// roughly 4.
	g1, err := Gap(graph.DoubleCycle(32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Gap(graph.DoubleCycle(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := g1 / g2
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("gap ratio %.2f not ~4 (g1=%.6g g2=%.6g)", ratio, g1, g2)
	}
}

func TestConductanceExactKnown(t *testing.T) {
	// K_4: the minimising cut is the singleton: cut 3, vol 3 → 1? All cuts:
	// singleton: 3/3 = 1; pair: cut 4, vol 6 → 2/3. So ϕ = 2/3.
	almost(t, "K4", ConductanceExact(graph.Complete(4)), 2.0/3, 1e-12)
	// C_6: halving cut: 2 cut edges, vol 6 → 1/3. ϕ = 1/3.
	almost(t, "C6", ConductanceExact(graph.Cycle(6)), 1.0/3, 1e-12)
	// C_8: 2/8 = 1/4.
	almost(t, "C8", ConductanceExact(graph.Cycle(8)), 0.25, 1e-12)
	// Path P_4: cut the middle edge: 1 cut, vol 3 → 1/3.
	almost(t, "P4", ConductanceExact(graph.Path(4)), 1.0/3, 1e-12)
}

func TestConductanceExactPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n > 24")
		}
	}()
	ConductanceExact(graph.Cycle(30))
}

func TestConductanceSweepUpperBoundsExact(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(12), graph.Complete(8), graph.Hypercube(4),
		graph.Path(10), graph.Lollipop(6, 6),
	} {
		exact := ConductanceExact(g)
		sweep, err := ConductanceSweep(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if sweep < exact-tol {
			t.Fatalf("%s: sweep %.6f below exact %.6f", g.Name(), sweep, exact)
		}
		// The sweep should not be wildly loose on these structured
		// families: within a factor 3 or sqrt-Cheeger, whichever is looser.
		if sweep > 3*exact+0.3 {
			t.Fatalf("%s: sweep %.6f too loose vs exact %.6f", g.Name(), sweep, exact)
		}
	}
}

func TestCheegerInequalityHolds(t *testing.T) {
	// 1−λ_lazy >= ϕ²/2 with ϕ from the exact computation (using lazy
	// spectrum since plain λ is 1 on bipartite families).
	for _, g := range []*graph.Graph{
		graph.Cycle(10), graph.Hypercube(4), graph.Complete(8), graph.Path(12),
	} {
		lam, err := SecondEigenvalueLazy(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		phi := ConductanceExact(g)
		// Lazy halves conductance effects: gap_lazy = (1-λ_plain)/2 at the
		// low end; the valid inequality is 1-λ_lazy >= ϕ²/4 (half of ϕ²/2).
		if 1-lam < phi*phi/4-tol {
			t.Fatalf("%s: Cheeger violated: gap %.6f < ϕ²/4 = %.6f", g.Name(), 1-lam, phi*phi/4)
		}
	}
}

func TestCheegerLowerHelper(t *testing.T) {
	almost(t, "CheegerLower", CheegerLower(0.5), 0.125, 1e-15)
}

func TestDeterministicAcrossCalls(t *testing.T) {
	g := graph.Petersen()
	a, _ := SecondEigenvalue(g, Options{})
	b, _ := SecondEigenvalue(g, Options{})
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestHypercubeGapMatchesTheory(t *testing.T) {
	// Paper example: hypercube eigenvalue gap (lazy, since Q_d is
	// bipartite) is Θ(1/log n) = Θ(1/d). Verify 1-λ_lazy = 1/d exactly.
	for d := 2; d <= 7; d++ {
		lam, err := SecondEigenvalueLazy(graph.Hypercube(d), Options{})
		if err != nil {
			t.Fatal(err)
		}
		almost(t, "hypercube lazy gap", 1-lam, 1.0/float64(d), 1e-5)
	}
}

func BenchmarkSecondEigenvalueHypercube10(b *testing.B) {
	g := graph.Hypercube(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecondEigenvalueLazy(g, Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCirculantClosedForms(t *testing.T) {
	// Circulant C_n(1,2): walk eigenvalues (cos(2πk/n)+cos(4πk/n))/2.
	// Compute the expected second eigenvalue from the closed form and
	// compare against both the power-iteration and dense paths.
	n := 16
	want := 0.0
	for k := 1; k < n; k++ {
		th := 2 * math.Pi * float64(k) / float64(n)
		lam := (math.Cos(th) + math.Cos(2*th)) / 2
		if a := math.Abs(lam); a > want {
			want = a
		}
	}
	g := graph.DoubleCycle(n)
	got, err := SecondEigenvalue(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C16(1,2) power", got, want, 1e-6)
	exact, err := SecondEigenvalueExact(g)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C16(1,2) dense", exact, want, 1e-9)

	// Chord C_n(1..3): eigenvalues (Σ_{j=1..3} cos(2πjk/n))/3.
	c := graph.Chord(15, 3)
	want = 0
	for k := 1; k < 15; k++ {
		th := 2 * math.Pi * float64(k) / 15
		lam := (math.Cos(th) + math.Cos(2*th) + math.Cos(3*th)) / 3
		if a := math.Abs(lam); a > want {
			want = a
		}
	}
	got, err = SecondEigenvalue(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C15(1..3)", got, want, 1e-6)
}
