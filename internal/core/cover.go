package core

import (
	"fmt"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// High-level drivers corresponding to the paper's measured quantities.

// CoverTime runs one COBRA trial from the single start vertex and returns
// cover(start): the number of rounds until all vertices have been visited.
func CoverTime(g *graph.Graph, cfg Config, start int, rng *xrand.RNG) (int, error) {
	p, err := New(g, cfg, []int{start}, rng)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// CoverTimeWith is CoverTime with the kernel built through ws: the same
// result bit for bit, amortizing allocations and the connectivity check
// across trials (the hot-loop form for repeated trials on shared graphs).
func CoverTimeWith(ws *engine.Workspace, g *graph.Graph, cfg Config, start int, rng *xrand.RNG) (int, error) {
	p, err := NewWith(ws, g, cfg, []int{start}, rng)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// HitTime runs one COBRA trial from start and returns Hit_start(target),
// the first round at which target holds a particle.
func HitTime(g *graph.Graph, cfg Config, start, target int, rng *xrand.RNG) (int, error) {
	p, err := New(g, cfg, []int{start}, rng)
	if err != nil {
		return 0, err
	}
	return p.RunUntilHit(target)
}

// HitTimeFromSet runs one trial with C_0 = starts and returns the round at
// which target is first visited. This is the left-hand side of the duality
// Theorem 1.3 (P̂(Hit(v) > T | C_0 = C)).
func HitTimeFromSet(g *graph.Graph, cfg Config, starts []int, target int, rng *xrand.RNG) (int, error) {
	p, err := New(g, cfg, starts, rng)
	if err != nil {
		return 0, err
	}
	return p.RunUntilHit(target)
}

// RoundTrace records the trajectory of one run for growth-curve analysis.
type RoundTrace struct {
	// ActiveSize[t] is |C_t| (index 0 holds |C_0|).
	ActiveSize []int
	// CoveredSize[t] is |∪_{s<=t} C_s|.
	CoveredSize []int
	// CoverRound is the round at which covering completed (-1 if the run
	// hit the round cap first).
	CoverRound int
}

// Trace runs one COBRA trial from start, recording per-round set sizes.
func Trace(g *graph.Graph, cfg Config, start int, rng *xrand.RNG) (*RoundTrace, error) {
	p, err := New(g, cfg, []int{start}, rng)
	if err != nil {
		return nil, err
	}
	tr := &RoundTrace{CoverRound: -1}
	tr.ActiveSize = append(tr.ActiveSize, p.Current().Count())
	tr.CoveredSize = append(tr.CoveredSize, p.CoveredCount())
	limit := cfg.maxRounds(g.N())
	for !p.Complete() && p.Round() < limit {
		p.Step()
		tr.ActiveSize = append(tr.ActiveSize, p.Current().Count())
		tr.CoveredSize = append(tr.CoveredSize, p.CoveredCount())
	}
	if p.Complete() {
		tr.CoverRound = p.Round()
	}
	return tr, nil
}

// HitTimes runs one COBRA trial from start and returns, for every vertex
// v, the round Hit(v) at which v was first visited (Hit(start) = 0).
// The last entries to fill reveal where the cover time concentrates —
// e.g. the path tip of a lollipop, or the antipode of a torus.
func HitTimes(g *graph.Graph, cfg Config, start int, rng *xrand.RNG) ([]int, error) {
	p, err := New(g, cfg, []int{start}, rng)
	if err != nil {
		return nil, err
	}
	hits := make([]int, g.N())
	for i := range hits {
		hits[i] = -1
	}
	hits[start] = 0
	limit := cfg.maxRounds(g.N())
	seen := 1
	for seen < g.N() {
		if p.Round() >= limit {
			return hits, fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.Round(), g.Name())
		}
		p.Step()
		p.Current().ForEach(func(v int) {
			if hits[v] < 0 {
				hits[v] = p.Round()
				seen++
			}
		})
	}
	return hits, nil
}

// WorstStartCover estimates COVER(G) = max_u COVER(u) by running `trials`
// runs from each vertex of a candidate start set (all vertices when
// starts is nil) and returning the per-start mean maximised over starts.
// This mirrors the paper's worst-case-start definition of cover time.
func WorstStartCover(g *graph.Graph, cfg Config, starts []int, trials int, rng *xrand.RNG) (worstMean float64, worstStart int, err error) {
	if starts == nil {
		starts = make([]int, g.N())
		for i := range starts {
			starts[i] = i
		}
	}
	worstStart = -1
	for _, u := range starts {
		var sum float64
		for k := 0; k < trials; k++ {
			t, e := CoverTime(g, cfg, u, rng)
			if e != nil {
				return 0, 0, e
			}
			sum += float64(t)
		}
		if mean := sum / float64(trials); mean > worstMean {
			worstMean, worstStart = mean, u
		}
	}
	return worstMean, worstStart, nil
}
