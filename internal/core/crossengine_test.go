package core

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Cross-engine equivalence: for a fixed master seed, the serial Process,
// ParallelProcess at several worker counts, and the adaptive kernel in
// all three representation modes must produce bit-identical trajectories
// — the determinism contract of internal/engine.

// cobraEngine is the common face of every COBRA round engine under test.
type cobraEngine interface {
	Step()
	Round() int
	Complete() bool
	CoveredCount() int
	Current() *bitset.Set
}

// kernelFace adapts engine.Kernel's Frontier to the Current of the
// process types.
type kernelFace struct{ *engine.Kernel }

func (k kernelFace) Current() *bitset.Set { return k.Frontier() }

func crossEngines(t *testing.T, g *graph.Graph, cfg Config, start []int, masterSeed uint64) map[string]cobraEngine {
	t.Helper()
	// Process derives its kernel seed as rng.Uint64(); feed the others the
	// same derived value so all trajectories share one master seed.
	kseed := xrand.New(masterSeed).Uint64()
	engines := map[string]cobraEngine{}
	serial, err := New(g, cfg, start, xrand.New(masterSeed))
	if err != nil {
		t.Fatal(err)
	}
	engines["serial"] = serial
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		p, err := NewParallel(g, cfg, start, kseed, w)
		if err != nil {
			t.Fatal(err)
		}
		engines[fmt.Sprintf("parallel-%d", w)] = p
	}
	for name, mode := range map[string]engine.Mode{
		"forced-sparse": engine.ForceSparse,
		"forced-dense":  engine.ForceDense,
		"adaptive":      engine.Adaptive,
	} {
		par := cfg.engineParams(2)
		par.Mode = mode
		k, err := engine.NewCobra(g, par, start, kseed)
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = kernelFace{k}
	}
	// Tiled vs untiled byte-identity: the default forced-dense engine above
	// runs the tiled kernel; pin it against the legacy flat scan
	// (TileWords -1) and a pathological 1-word tile width.
	for name, tileWords := range map[string]int{
		"dense-untiled":   -1,
		"dense-tile-1":    1,
		"adaptive-tile-1": 1,
	} {
		par := cfg.engineParams(2)
		par.Mode = engine.ForceDense
		if name == "adaptive-tile-1" {
			par.Mode = engine.Adaptive
		}
		par.TileWords = tileWords
		k, err := engine.NewCobra(g, par, start, kseed)
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = kernelFace{k}
	}
	return engines
}

func TestCrossEngineEquivalenceCOBRA(t *testing.T) {
	ba, err := graph.BarabasiAlbert(400, 3, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := graph.WattsStrogatz(300, 4, 0.1, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Hypercube(7),
		graph.Torus(9, 9),
		graph.Lollipop(12, 24),
		ba,
		ws,
	}
	cfgs := []Config{
		{Branch: 2},
		{Branch: 2, Lazy: true},
		{Branch: 1, Rho: 0.5},
	}
	for gi, g := range graphs {
		for ci, cfg := range cfgs {
			seed := uint64(1000*gi + ci + 1)
			engines := crossEngines(t, g, cfg, []int{0, g.N() / 2}, seed)
			ref := engines["serial"]
			const roundCap = 20000
			for r := 0; r < roundCap && !ref.Complete(); r++ {
				for _, e := range engines {
					e.Step()
				}
				for name, e := range engines {
					if e.CoveredCount() != ref.CoveredCount() {
						t.Fatalf("%s/%+v round %d: %s covered %d != serial %d",
							g.Name(), cfg, r+1, name, e.CoveredCount(), ref.CoveredCount())
					}
					if !e.Current().Equal(ref.Current()) {
						t.Fatalf("%s/%+v round %d: %s frontier diverged from serial",
							g.Name(), cfg, r+1, name)
					}
				}
			}
			if !ref.Complete() {
				t.Fatalf("%s/%+v: serial did not cover within %d rounds", g.Name(), cfg, roundCap)
			}
			for name, e := range engines {
				if !e.Complete() || e.Round() != ref.Round() {
					t.Fatalf("%s/%+v: %s cover time %d (complete=%v) != serial %d",
						g.Name(), cfg, name, e.Round(), e.Complete(), ref.Round())
				}
			}
		}
	}
}

// Cover times through the Run drivers must agree too (they share the
// per-step states above, but Run adds the round-cap bookkeeping).
func TestCrossEngineCoverTimesViaRun(t *testing.T) {
	g := graph.Hypercube(8)
	cfg := Config{Branch: 2}
	for seed := uint64(1); seed <= 5; seed++ {
		kseed := xrand.New(seed).Uint64()
		serial, err := New(g, cfg, []int{3}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		st, err := serial.Run()
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallel(g, cfg, []int{3}, kseed, 0)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := par.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st != pt {
			t.Fatalf("seed %d: serial cover %d != parallel cover %d", seed, st, pt)
		}
	}
}
