package core

import (
	"testing"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// CoverTimeWith must reproduce CoverTime bit for bit from the same
// stream, even when one workspace is reused across trials and across
// graphs of different sizes (the experiments hot-loop pattern).
func TestCoverTimeWithMatchesCoverTime(t *testing.T) {
	gen := xrand.New(7)
	rr, err := graph.RandomRegular(200, 3, gen)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{rr, graph.Complete(64), graph.Cycle(300)}
	cfgs := []Config{{Branch: 2}, {Branch: 1, Rho: 0.5}, {Branch: 2, Lazy: true}}
	ws := engine.NewWorkspace()
	for _, g := range graphs {
		for _, cfg := range cfgs {
			for trial := 0; trial < 5; trial++ {
				seed := uint64(trial + 1)
				want, err := CoverTime(g, cfg, 0, xrand.NewStream(seed, 9))
				if err != nil {
					t.Fatal(err)
				}
				got, err := CoverTimeWith(ws, g, cfg, 0, xrand.NewStream(seed, 9))
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %+v trial %d: with-workspace %d vs fresh %d",
						g.Name(), cfg, trial, got, want)
				}
			}
		}
	}
}
