package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Branch: 0},
		{Branch: -1},
		{Branch: 1, Rho: -0.1},
		{Branch: 1, Rho: 1.5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Fatalf("%+v accepted", cfg)
		}
	}
	if b := (Config{Branch: 1, Rho: 0.5}).EffectiveBranch(); b != 1.5 {
		t.Fatalf("EffectiveBranch = %v", b)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	g := graph.Cycle(6)
	rng := xrand.New(1)
	if _, err := New(g, Config{Branch: 0}, []int{0}, rng); !errors.Is(err, ErrConfig) {
		t.Fatal("bad config accepted")
	}
	if _, err := New(g, DefaultConfig(), nil, rng); !errors.Is(err, ErrStart) {
		t.Fatal("empty start accepted")
	}
	if _, err := New(g, DefaultConfig(), []int{7}, rng); !errors.Is(err, ErrStart) {
		t.Fatal("out-of-range start accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	disc := b.MustBuild("disc")
	if _, err := New(disc, DefaultConfig(), []int{0}, rng); !errors.Is(err, ErrDisconnected) {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSingleRoundSemantics(t *testing.T) {
	// On a star from the hub with b=2, after one round C_1 must contain
	// one or two leaves and nothing else; the hub leaves the active set.
	g := graph.Star(10)
	p, err := New(g, DefaultConfig(), []int{0}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	if p.Current().Contains(0) {
		t.Fatal("hub still active after pushing")
	}
	c := p.Current().Count()
	if c < 1 || c > 2 {
		t.Fatalf("|C_1| = %d, want 1 or 2", c)
	}
	if p.Round() != 1 {
		t.Fatalf("round = %d", p.Round())
	}
	if p.Transmissions() != 2 {
		t.Fatalf("transmissions = %d, want 2", p.Transmissions())
	}
}

func TestParticlesStayOnNeighbors(t *testing.T) {
	g := graph.Cycle(9)
	p, err := New(g, DefaultConfig(), []int{0}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Current().Clone()
	for r := 0; r < 50; r++ {
		p.Step()
		// Every active vertex must be adjacent to some previously active
		// vertex.
		ok := true
		p.Current().ForEach(func(v int) {
			adj := false
			for _, u := range g.Neighbors(v) {
				if prev.Contains(int(u)) {
					adj = true
					break
				}
			}
			if !adj {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("round %d: particle teleported", r+1)
		}
		prev.CopyFrom(p.Current())
	}
}

func TestCoverMonotoneAndComplete(t *testing.T) {
	g := graph.Complete(32)
	p, err := New(g, DefaultConfig(), []int{0}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	last := p.CoveredCount()
	for !p.Complete() {
		p.Step()
		if p.CoveredCount() < last {
			t.Fatal("covered set shrank")
		}
		last = p.CoveredCount()
		if p.Round() > 1000 {
			t.Fatal("K32 not covered in 1000 rounds")
		}
	}
	if !p.Covered().Full() {
		t.Fatal("Complete true but covered not full")
	}
}

func TestCoverTimeCompleteGraphLogarithmic(t *testing.T) {
	// Paper intro (i): K_n covers in O(log n) rounds w.h.p. With n = 256
	// the typical cover time is ~log2(n)+O(1) ≈ 10–14; assert generous
	// bracket [4, 60] across trials.
	g := graph.Complete(256)
	rng := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		tm, err := CoverTime(g, DefaultConfig(), trial, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tm < 4 || tm > 60 {
			t.Fatalf("K256 cover time %d outside [4,60]", tm)
		}
	}
}

func TestCoverRespectsLowerBound(t *testing.T) {
	// cover >= max(log2 n, Diam) always.
	cases := []*graph.Graph{graph.Complete(64), graph.Cycle(20), graph.Path(15)}
	rng := xrand.New(13)
	for _, g := range cases {
		lb := g.CoverTimeLowerBound()
		for trial := 0; trial < 5; trial++ {
			tm, err := CoverTime(g, DefaultConfig(), 0, rng)
			if err != nil {
				t.Fatal(err)
			}
			if tm < lb {
				t.Fatalf("%s: cover %d below deterministic lower bound %d", g.Name(), tm, lb)
			}
		}
	}
}

func TestBranchOneIsRandomWalk(t *testing.T) {
	// With b=1 exactly one vertex is active each round.
	g := graph.Cycle(12)
	p, err := New(g, Config{Branch: 1}, []int{0}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		p.Step()
		if c := p.Current().Count(); c != 1 {
			t.Fatalf("b=1 active set size %d at round %d", c, r)
		}
	}
}

func TestHitTime(t *testing.T) {
	g := graph.Path(10)
	rng := xrand.New(19)
	tm, err := HitTime(g, DefaultConfig(), 0, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 9 { // must travel the diameter
		t.Fatalf("hit time %d below distance 9", tm)
	}
	// Hitting the start vertex itself is round 0.
	tm, err = HitTime(g, DefaultConfig(), 3, 3, rng)
	if err != nil || tm != 0 {
		t.Fatalf("self hit = %d, %v", tm, err)
	}
	if _, err := HitTime(g, DefaultConfig(), 0, 99, rng); !errors.Is(err, ErrStart) {
		t.Fatal("bad target accepted")
	}
}

func TestHitTimeFromSet(t *testing.T) {
	g := graph.Cycle(16)
	rng := xrand.New(23)
	// Starting from all vertices, every target is hit at round 0.
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	tm, err := HitTimeFromSet(g, DefaultConfig(), all, 5, rng)
	if err != nil || tm != 0 {
		t.Fatalf("full-start hit = %d, %v", tm, err)
	}
}

func TestRoundLimit(t *testing.T) {
	// Non-lazy b=1 walk on bipartite K_{1,3} alternates sides; covering
	// still happens, so use MaxRounds=1 on a big graph to force the error.
	g := graph.Cycle(64)
	cfg := DefaultConfig()
	cfg.MaxRounds = 1
	_, err := CoverTime(g, cfg, 0, xrand.New(29))
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestLazyCOBRACoversBipartite(t *testing.T) {
	// Lazy variant must cover bipartite graphs without parity issues.
	g := graph.CompleteBipartite(8, 8)
	cfg := Config{Branch: 2, Lazy: true}
	rng := xrand.New(31)
	tm, err := CoverTime(g, cfg, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 || tm > 200 {
		t.Fatalf("lazy cover time %d implausible", tm)
	}
}

func TestFractionalBranching(t *testing.T) {
	// ρ = 1 with Branch 1 equals b = 2 in distribution; spot check the
	// active set can exceed 1 (unlike pure b=1).
	g := graph.Complete(64)
	p, err := New(g, Config{Branch: 1, Rho: 1}, []int{0}, xrand.New(37))
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for r := 0; r < 20; r++ {
		p.Step()
		if p.Current().Count() > 1 {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatal("ρ=1 never branched")
	}
}

func TestFractionalSlowerThanFull(t *testing.T) {
	// ρ = 0.25 should cover K_n slower on average than ρ = 1.
	g := graph.Complete(128)
	mean := func(rho float64, seed uint64) float64 {
		rng := xrand.New(seed)
		var sum float64
		for k := 0; k < 30; k++ {
			tm, err := CoverTime(g, Config{Branch: 1, Rho: rho}, 0, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(tm)
		}
		return sum / 30
	}
	slow := mean(0.25, 41)
	fast := mean(1.0, 43)
	if slow <= fast {
		t.Fatalf("ρ=0.25 mean %.1f not slower than ρ=1 mean %.1f", slow, fast)
	}
}

func TestTrace(t *testing.T) {
	g := graph.Complete(64)
	tr, err := Trace(g, DefaultConfig(), 0, xrand.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if tr.CoverRound < 0 {
		t.Fatal("trace did not cover")
	}
	if len(tr.ActiveSize) != tr.CoverRound+1 || len(tr.CoveredSize) != tr.CoverRound+1 {
		t.Fatalf("trace lengths %d/%d vs cover round %d",
			len(tr.ActiveSize), len(tr.CoveredSize), tr.CoverRound)
	}
	if tr.ActiveSize[0] != 1 || tr.CoveredSize[0] != 1 {
		t.Fatal("trace initial sizes wrong")
	}
	for i := 1; i < len(tr.CoveredSize); i++ {
		if tr.CoveredSize[i] < tr.CoveredSize[i-1] {
			t.Fatal("covered size not monotone in trace")
		}
	}
	if last := tr.CoveredSize[len(tr.CoveredSize)-1]; last != g.N() {
		t.Fatalf("final covered %d != n", last)
	}
}

func TestWorstStartCover(t *testing.T) {
	// On a lollipop the worst start is inside the clique (the walk must
	// find the path tip); mostly we check mechanics: worst >= mean of an
	// arbitrary start and a valid vertex index is returned.
	g := graph.Lollipop(6, 6)
	rng := xrand.New(53)
	worst, at, err := WorstStartCover(g, DefaultConfig(), []int{0, 5, 11}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0 || at < 0 || at >= g.N() {
		t.Fatalf("worst=%v at=%d", worst, at)
	}
}

// Property: the informed set after a step is exactly the set of selected
// targets — every active vertex contributes at least one target, so
// |C_{t+1}| >= 1 and |C_{t+1}| <= b_max * |C_t|.
func TestActiveSetBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := graph.Cycle(10 + int(seed%13))
		p, err := New(g, DefaultConfig(), []int{0}, xrand.New(seed))
		if err != nil {
			return false
		}
		_ = rng
		prev := 1
		for r := 0; r < 30; r++ {
			p.Step()
			c := p.Current().Count()
			if c < 1 || c > 2*prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same trajectory (serial engine determinism).
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Hypercube(4)
		cfg := Config{Branch: 2, Lazy: true}
		t1, err1 := CoverTime(g, cfg, 0, xrand.New(seed))
		t2, err2 := CoverTime(g, cfg, 0, xrand.New(seed))
		return err1 == nil && err2 == nil && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverTimeExpanderVsCycleShape(t *testing.T) {
	// Sanity on the bound shapes: at n = 128 an expander covers in
	// O(log n) rounds while the cycle needs Ω(n/2) (diameter), so the
	// cycle must be at least several times slower.
	rng := xrand.New(59)
	exp, err := graph.RandomRegular(128, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	meanCover := func(g *graph.Graph) float64 {
		var sum float64
		for k := 0; k < 10; k++ {
			tm, err := CoverTime(g, DefaultConfig(), 0, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(tm)
		}
		return sum / 10
	}
	ce := meanCover(exp)
	cc := meanCover(graph.Cycle(128))
	if cc < 3*ce {
		t.Fatalf("cycle %.1f not ≫ expander %.1f", cc, ce)
	}
	if ce > 12*math.Log2(128) {
		t.Fatalf("expander cover %.1f far above O(log n)", ce)
	}
}

func TestHitTimes(t *testing.T) {
	g := graph.Path(12)
	hits, err := HitTimes(g, DefaultConfig(), 0, xrand.New(71))
	if err != nil {
		t.Fatal(err)
	}
	if hits[0] != 0 {
		t.Fatalf("Hit(start) = %d", hits[0])
	}
	for v, h := range hits {
		if h < 0 {
			t.Fatalf("vertex %d never hit", v)
		}
		// Information travels one hop per round: Hit(v) >= dist(start, v).
		if h < v {
			t.Fatalf("Hit(%d) = %d below hop distance %d", v, h, v)
		}
	}
	// On a path from 0, hit times must be non-decreasing along the path.
	for v := 1; v < len(hits); v++ {
		if hits[v] < hits[v-1] {
			t.Fatalf("hit times not monotone along path: %v", hits)
		}
	}
}

func TestHitTimesMaxEqualsCoverDistribution(t *testing.T) {
	// max_v Hit(v) is a sample of cover(u); check it sits in a plausible
	// bracket on K_64.
	g := graph.Complete(64)
	hits, err := HitTimes(g, DefaultConfig(), 0, xrand.New(73))
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, h := range hits {
		if h > max {
			max = h
		}
	}
	if max < 4 || max > 60 {
		t.Fatalf("K64 max hit %d implausible", max)
	}
}

func TestCoalescedAccounting(t *testing.T) {
	// Identity: Coalesced = Transmissions − Σ_{t>=1} |C_t|, and >= 0.
	g := graph.Complete(48)
	p, err := New(g, DefaultConfig(), []int{0}, xrand.New(81))
	if err != nil {
		t.Fatal(err)
	}
	var sumActive int64
	for !p.Complete() {
		p.Step()
		sumActive += int64(p.Current().Count())
	}
	if p.Coalesced() < 0 {
		t.Fatal("negative coalescence count")
	}
	if got, want := p.Coalesced(), p.Transmissions()-sumActive; got != want {
		t.Fatalf("Coalesced = %d, want transmissions−Σ|C_t| = %d", got, want)
	}
	// On K_48 with a growing active set, collisions must actually occur.
	if p.Coalesced() == 0 {
		t.Fatal("no coalescence ever observed on a complete graph (suspicious)")
	}
}

func TestCoalescedSingleWalkIsZero(t *testing.T) {
	// b=1: one particle, never a collision.
	g := graph.Cycle(24)
	p, err := New(g, Config{Branch: 1}, []int{0}, xrand.New(83))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		p.Step()
	}
	if p.Coalesced() != 0 {
		t.Fatalf("b=1 recorded %d coalescences", p.Coalesced())
	}
}
