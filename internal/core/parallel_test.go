package core

import (
	"testing"

	"github.com/repro/cobra/internal/graph"
)

func TestParallelMatchesAcrossWorkerCounts(t *testing.T) {
	// The hashed-randomness design promises identical trajectories for any
	// worker count. Compare covered-set evolution for 1 vs 4 workers.
	g := graph.Hypercube(7)
	mk := func(workers int) *ParallelProcess {
		p, err := NewParallel(g, Config{Branch: 2, Lazy: true}, []int{0}, 99, workers)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p4 := mk(1), mk(4)
	for r := 0; r < 40 && !(p1.Complete() && p4.Complete()); r++ {
		p1.Step()
		p4.Step()
		if !p1.Current().Equal(p4.Current()) {
			t.Fatalf("round %d: worker counts diverged", r+1)
		}
	}
}

func TestParallelRunCovers(t *testing.T) {
	g := graph.Complete(256)
	p, err := NewParallel(g, DefaultConfig(), []int{0}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 4 || rounds > 80 {
		t.Fatalf("parallel K256 cover %d implausible", rounds)
	}
	if !p.Complete() || p.CoveredCount() != g.N() {
		t.Fatal("Run returned without covering")
	}
}

func TestParallelSameSeedSameResult(t *testing.T) {
	g := graph.Torus(9, 9)
	run := func() int {
		p, err := NewParallel(g, DefaultConfig(), []int{0}, 1234, 3)
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rounds
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different cover times: %d vs %d", a, b)
	}
}

func TestParallelRejectsBadInputs(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := NewParallel(g, Config{Branch: 0}, []int{0}, 1, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewParallel(g, DefaultConfig(), nil, 1, 1); err == nil {
		t.Fatal("empty start accepted")
	}
	if _, err := NewParallel(g, DefaultConfig(), []int{9}, 1, 1); err == nil {
		t.Fatal("bad start vertex accepted")
	}
}

func BenchmarkParallelRoundHypercube12(b *testing.B) {
	g := graph.Hypercube(12)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	p, err := NewParallel(g, Config{Branch: 2, Lazy: true}, all, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
