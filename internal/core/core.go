package core
