package core

import (
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Stochastic-dominance sanity tests: relations that must hold between
// variants in expectation, tested with comfortable margins. They pin the
// direction of every knob in Config.

func meanCoverOf(t *testing.T, g *graph.Graph, cfg Config, trials int, seed uint64) float64 {
	t.Helper()
	rng := xrand.New(seed)
	var sum float64
	for k := 0; k < trials; k++ {
		tm, err := CoverTime(g, cfg, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(tm)
	}
	return sum / float64(trials)
}

func TestMoreBranchingIsFaster(t *testing.T) {
	// b = 3 covers at least as fast as b = 2, which beats b = 1, on a
	// cycle (where the differences are large).
	g := graph.Cycle(96)
	b1 := meanCoverOf(t, g, Config{Branch: 1}, 10, 101)
	b2 := meanCoverOf(t, g, Config{Branch: 2}, 30, 102)
	b3 := meanCoverOf(t, g, Config{Branch: 3}, 30, 103)
	if b2 >= b1 {
		t.Fatalf("b=2 (%.1f) not faster than b=1 (%.1f)", b2, b1)
	}
	if b3 > b2*1.1 {
		t.Fatalf("b=3 (%.1f) slower than b=2 (%.1f)", b3, b2)
	}
}

func TestLargerStartSetIsFaster(t *testing.T) {
	g := graph.Cycle(128)
	rng := xrand.New(7)
	mean := func(starts []int) float64 {
		var sum float64
		for k := 0; k < 25; k++ {
			p, err := New(g, DefaultConfig(), starts, rng)
			if err != nil {
				t.Fatal(err)
			}
			tm, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(tm)
		}
		return sum / 25
	}
	single := mean([]int{0})
	quad := mean([]int{0, 32, 64, 96})
	if quad >= single {
		t.Fatalf("4 starts (%.1f) not faster than 1 start (%.1f)", quad, single)
	}
}

func TestHigherRhoIsFaster(t *testing.T) {
	g := graph.Complete(128)
	lo := meanCoverOf(t, g, Config{Branch: 1, Rho: 0.25}, 30, 201)
	hi := meanCoverOf(t, g, Config{Branch: 1, Rho: 0.75}, 30, 202)
	if hi >= lo {
		t.Fatalf("rho=0.75 (%.1f) not faster than rho=0.25 (%.1f)", hi, lo)
	}
}

func TestLazyIsSlowerOnNonBipartite(t *testing.T) {
	g := graph.Complete(128)
	plain := meanCoverOf(t, g, Config{Branch: 2}, 30, 301)
	lazy := meanCoverOf(t, g, Config{Branch: 2, Lazy: true}, 30, 302)
	if lazy <= plain {
		t.Fatalf("lazy (%.1f) not slower than plain (%.1f)", lazy, plain)
	}
}
