package core

import (
	"runtime"
	"sync"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// ParallelProcess is a COBRA engine that executes each round across
// multiple goroutines. Determinism is preserved by deriving the randomness
// of each (round, vertex) pair from the master seed with a stateless
// stream hash, so results are independent of scheduling and worker count:
// a ParallelProcess with a given seed always produces the same trajectory.
//
// This engine pays per-vertex stream setup, so it only outperforms the
// serial Process when rounds are wide (large active sets on large graphs).
// The ablation bench BenchmarkAblationParallelRound quantifies the
// crossover.
type ParallelProcess struct {
	g       *graph.Graph
	cfg     Config
	seed    uint64
	workers int

	cur     *bitset.Set
	next    *bitset.Atomic
	covered *bitset.Set
	scratch *bitset.Set
	active  []int
	round   int
	nCov    int
}

// NewParallel creates a deterministic parallel COBRA process. workers <= 0
// selects GOMAXPROCS.
func NewParallel(g *graph.Graph, cfg Config, start []int, seed uint64, workers int) (*ParallelProcess, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, ErrDisconnected
	}
	if len(start) == 0 {
		return nil, ErrStart
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelProcess{
		g:       g,
		cfg:     cfg,
		seed:    seed,
		workers: workers,
		cur:     bitset.New(g.N()),
		next:    bitset.NewAtomic(g.N()),
		covered: bitset.New(g.N()),
		scratch: bitset.New(g.N()),
	}
	for _, v := range start {
		if v < 0 || v >= g.N() {
			return nil, ErrStart
		}
		if !p.cur.Contains(v) {
			p.cur.Set(v)
			p.covered.Set(v)
			p.nCov++
		}
	}
	return p, nil
}

// Round returns the number of completed rounds.
func (p *ParallelProcess) Round() int { return p.round }

// CoveredCount returns the number of visited vertices.
func (p *ParallelProcess) CoveredCount() int { return p.nCov }

// Complete reports whether the graph is covered.
func (p *ParallelProcess) Complete() bool { return p.nCov == p.g.N() }

// Current returns the live current set (read-only).
func (p *ParallelProcess) Current() *bitset.Set { return p.cur }

// Step advances one round, fanning the active set across workers.
func (p *ParallelProcess) Step() {
	p.active = p.cur.Members(p.active[:0])
	p.next.Reset()

	nw := p.workers
	if len(p.active) < 4*nw {
		nw = 1 // tiny rounds: goroutine overhead dominates
	}
	var wg sync.WaitGroup
	chunk := (len(p.active) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(p.active) {
			break
		}
		hi := lo + chunk
		if hi > len(p.active) {
			hi = len(p.active)
		}
		wg.Add(1)
		go func(verts []int) {
			defer wg.Done()
			for _, v := range verts {
				p.pushFromHashed(v)
			}
		}(p.active[lo:hi])
	}
	wg.Wait()

	p.next.Snapshot(p.scratch)
	p.cur.CopyFrom(p.scratch)
	p.round++
	for _, w := range p.cur.Members(p.active[:0]) {
		if !p.covered.Contains(w) {
			p.covered.Set(w)
			p.nCov++
		}
	}
}

// pushFromHashed draws v's selections for the current round from a
// stateless stream keyed by (seed, round, v): scheduling-independent.
func (p *ParallelProcess) pushFromHashed(v int) {
	rng := xrand.NewStream(p.seed, uint64(p.round)<<32|uint64(uint32(v)))
	b := p.cfg.Branch
	if p.cfg.Rho > 0 && rng.Bernoulli(p.cfg.Rho) {
		b++
	}
	deg := p.g.Degree(v)
	for k := 0; k < b; k++ {
		if p.cfg.Lazy && rng.Bool() {
			p.next.Set(v)
		} else {
			p.next.Set(p.g.Neighbor(v, rng.Intn(deg)))
		}
	}
}

// Run advances until cover or the round cap.
func (p *ParallelProcess) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.round >= limit {
			return p.round, ErrRoundLimit
		}
		p.Step()
	}
	return p.round, nil
}
