package core

import (
	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
)

// ParallelProcess is a COBRA engine that executes each round across
// multiple goroutines via the shared adaptive frontier kernel. Determinism
// is preserved by deriving the randomness of each (round, vertex) pair
// from the master seed with a stateless stream hash, so results are
// independent of scheduling, worker count, and the sparse/dense
// representation: a ParallelProcess with a given seed always produces the
// same trajectory — the same trajectory a serial Process produces when its
// RNG yields the same master seed.
//
// The kernel pays per-vertex stream setup, so extra workers only pay off
// when rounds are wide (large active sets on large graphs). The ablation
// bench BenchmarkAblationParallelRound quantifies the crossover.
type ParallelProcess struct {
	g   *graph.Graph
	cfg Config
	k   *engine.Kernel
}

// NewParallel creates a deterministic parallel COBRA process. workers <= 0
// selects GOMAXPROCS.
func NewParallel(g *graph.Graph, cfg Config, start []int, seed uint64, workers int) (*ParallelProcess, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(start) == 0 {
		return nil, ErrStart
	}
	for _, v := range start {
		if v < 0 || v >= g.N() {
			return nil, ErrStart
		}
	}
	k, err := engine.NewCobra(g, cfg.engineParams(workers), start, seed)
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return &ParallelProcess{g: g, cfg: cfg, k: k}, nil
}

// Round returns the number of completed rounds.
func (p *ParallelProcess) Round() int { return p.k.Round() }

// CoveredCount returns the number of visited vertices.
func (p *ParallelProcess) CoveredCount() int { return p.k.CoveredCount() }

// Complete reports whether the graph is covered.
func (p *ParallelProcess) Complete() bool { return p.k.Complete() }

// Current returns the live current set (read-only).
func (p *ParallelProcess) Current() *bitset.Set { return p.k.Frontier() }

// Step advances one round, fanning the active set across workers.
func (p *ParallelProcess) Step() { p.k.Step() }

// Run advances until cover or the round cap.
func (p *ParallelProcess) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.Round() >= limit {
			return p.Round(), ErrRoundLimit
		}
		p.Step()
	}
	return p.Round(), nil
}
