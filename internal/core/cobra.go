// Package core implements the COBRA (COalescing-BRAnching random walk)
// process — the subject of the paper — together with its variants:
// integer branching factors b >= 1, the fractional branching b = 1 + ρ of
// Section 6, and the lazy variant used for bipartite graphs (remark under
// Theorem 1.2).
//
// One COBRA round (paper, Section 1): every vertex of the current set C_t
// independently chooses b neighbours uniformly at random WITH REPLACEMENT;
// the chosen vertices form C_{t+1}. Multiple arrivals at a vertex coalesce
// — the set semantics make coalescing implicit. The cover time is the
// number of rounds until the union of all C_t equals V.
//
// Since the internal/engine refactor, both the serial Process and the
// ParallelProcess delegate their round loop to the shared adaptive
// frontier kernel: the trajectory of a run is a pure function of its
// master seed (for Process, one Uint64 drawn from the supplied RNG),
// independent of worker count and of the sparse/dense representation the
// kernel picks per round.
package core

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Errors returned by the process constructors and drivers.
var (
	ErrConfig       = errors.New("cobra: invalid configuration")
	ErrDisconnected = errors.New("cobra: graph must be connected")
	ErrRoundLimit   = errors.New("cobra: round limit exceeded before cover")
	ErrStart        = errors.New("cobra: invalid start set")
)

// Config selects the COBRA variant.
type Config struct {
	// Branch is the integer branching factor b >= 1. Branch == 1 with
	// Rho == 0 is the simple random walk; the paper's main case is 2.
	Branch int
	// Rho adds fractional branching: each particle sends to one extra
	// neighbour with probability Rho, so the expected branching factor is
	// Branch + Rho. Section 6 studies Branch = 1, Rho = ρ ∈ (0, 1].
	// Must lie in [0, 1].
	Rho float64
	// Lazy makes every neighbour selection pick the current vertex itself
	// with probability 1/2 (the paper's lazy variant, which restores a
	// positive eigenvalue gap on bipartite graphs).
	Lazy bool
	// MaxRounds caps a single run; 0 means the driver default of
	// 64·n·log2(n)+64 rounds, far above every bound proven in the paper,
	// so hitting the cap signals a stuck process (e.g. non-lazy COBRA on a
	// bipartite graph with an unlucky parity) rather than slow covering.
	MaxRounds int
}

// DefaultConfig is the paper's primary setting: b = 2, non-lazy.
func DefaultConfig() Config { return Config{Branch: 2} }

// EffectiveBranch returns the expected branching factor Branch + Rho.
func (c Config) EffectiveBranch() float64 { return float64(c.Branch) + c.Rho }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Branch < 1 {
		return fmt.Errorf("%w: Branch must be >= 1, got %d", ErrConfig, c.Branch)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1], got %v", ErrConfig, c.Rho)
	}
	return nil
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return engine.DefaultMaxRounds(n)
}

// engineParams maps the configuration onto the shared kernel.
func (c Config) engineParams(workers int) engine.Params {
	return engine.Params{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy, Workers: workers}
}

// translateEngineErr maps kernel errors onto this package's exported
// error values. Connectivity is checked only inside the kernel (one
// O(n+m) traversal per construction); config and start-set problems are
// pre-validated by the constructors, so the kernel cannot surface them.
func translateEngineErr(err error) error {
	if errors.Is(err, engine.ErrDisconnected) {
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	return err
}

// Process is a single COBRA run on the serial (single-goroutine) path of
// the shared frontier kernel. It is not safe for concurrent use; run one
// Process per goroutine (see internal/sim for the parallel trial harness).
type Process struct {
	g   *graph.Graph
	cfg Config
	k   *engine.Kernel
}

// New creates a COBRA process on g starting from the given set of vertices
// (C_0 = start). The graph must be connected and start non-empty. The
// kernel's master seed is one Uint64 drawn from rng, so the whole
// trajectory is a pure function of the rng's state at this call.
func New(g *graph.Graph, cfg Config, start []int, rng *xrand.RNG) (*Process, error) {
	return NewWith(engine.NewWorkspace(), g, cfg, start, rng)
}

// NewWith is New constructing the kernel through ws (see engine.Workspace
// for the reuse contract): the trajectory is identical to New from the
// same (graph, config, start, rng state), with none of the per-trial
// kernel allocations and with connectivity verified once per distinct
// graph. The previous kernel built through ws becomes invalid.
func NewWith(ws *engine.Workspace, g *graph.Graph, cfg Config, start []int, rng *xrand.RNG) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(start) == 0 {
		return nil, fmt.Errorf("%w: empty C_0", ErrStart)
	}
	for _, v := range start {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("%w: vertex %d out of range", ErrStart, v)
		}
	}
	k, err := engine.NewCobraWith(ws, g, cfg.engineParams(1), start, rng.Uint64())
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return &Process{g: g, cfg: cfg, k: k}, nil
}

// Round returns the number of completed rounds t.
func (p *Process) Round() int { return p.k.Round() }

// Current returns the current set C_t. The returned set is live; do not
// modify it.
func (p *Process) Current() *bitset.Set { return p.k.Frontier() }

// Covered returns the cumulative visited set ∪ C_0..C_t (live; read-only).
func (p *Process) Covered() *bitset.Set { return p.k.Covered() }

// CoveredCount returns |∪ C_0..C_t| without a popcount scan.
func (p *Process) CoveredCount() int { return p.k.CoveredCount() }

// Complete reports whether every vertex has been visited.
func (p *Process) Complete() bool { return p.k.Complete() }

// Transmissions returns the total number of messages (particle moves) sent
// so far; the paper's motivation is bounding these per vertex per round.
func (p *Process) Transmissions() int64 { return p.k.Sent() }

// Coalesced returns the total number of particle coalescences so far:
// arrivals that landed on a vertex already receiving a particle in the
// same round (the "CO" in COBRA). It always equals
// Transmissions() − Σ_{t>=1} |C_t|.
func (p *Process) Coalesced() int64 { return p.k.Coalesced() }

// Step advances the process by one round: every vertex of C_t pushes to b
// random neighbours (with replacement), forming C_{t+1}.
func (p *Process) Step() { p.k.Step() }

// Run advances the process until cover or the round cap and returns the
// number of rounds to cover. If the cap is hit it returns the cap and
// ErrRoundLimit.
func (p *Process) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.Round() >= limit {
			return p.Round(), fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.Round(), p.g.Name())
		}
		p.Step()
	}
	return p.Round(), nil
}

// RunUntilHit advances until target is visited (or the cap) and returns
// the hitting round Hit(target).
func (p *Process) RunUntilHit(target int) (int, error) {
	if target < 0 || target >= p.g.N() {
		return 0, fmt.Errorf("%w: target %d out of range", ErrStart, target)
	}
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Covered().Contains(target) {
		if p.Round() >= limit {
			return p.Round(), fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.Round(), p.g.Name())
		}
		p.Step()
	}
	return p.Round(), nil
}
