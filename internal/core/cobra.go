// Package core implements the COBRA (COalescing-BRAnching random walk)
// process — the subject of the paper — together with its variants:
// integer branching factors b >= 1, the fractional branching b = 1 + ρ of
// Section 6, and the lazy variant used for bipartite graphs (remark under
// Theorem 1.2).
//
// One COBRA round (paper, Section 1): every vertex of the current set C_t
// independently chooses b neighbours uniformly at random WITH REPLACEMENT;
// the chosen vertices form C_{t+1}. Multiple arrivals at a vertex coalesce
// — the set semantics make coalescing implicit. The cover time is the
// number of rounds until the union of all C_t equals V.
package core

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Errors returned by the process constructors and drivers.
var (
	ErrConfig       = errors.New("cobra: invalid configuration")
	ErrDisconnected = errors.New("cobra: graph must be connected")
	ErrRoundLimit   = errors.New("cobra: round limit exceeded before cover")
	ErrStart        = errors.New("cobra: invalid start set")
)

// Config selects the COBRA variant.
type Config struct {
	// Branch is the integer branching factor b >= 1. Branch == 1 with
	// Rho == 0 is the simple random walk; the paper's main case is 2.
	Branch int
	// Rho adds fractional branching: each particle sends to one extra
	// neighbour with probability Rho, so the expected branching factor is
	// Branch + Rho. Section 6 studies Branch = 1, Rho = ρ ∈ (0, 1].
	// Must lie in [0, 1].
	Rho float64
	// Lazy makes every neighbour selection pick the current vertex itself
	// with probability 1/2 (the paper's lazy variant, which restores a
	// positive eigenvalue gap on bipartite graphs).
	Lazy bool
	// MaxRounds caps a single run; 0 means the driver default of
	// 64·n·log2(n)+64 rounds, far above every bound proven in the paper,
	// so hitting the cap signals a stuck process (e.g. non-lazy COBRA on a
	// bipartite graph with an unlucky parity) rather than slow covering.
	MaxRounds int
}

// DefaultConfig is the paper's primary setting: b = 2, non-lazy.
func DefaultConfig() Config { return Config{Branch: 2} }

// EffectiveBranch returns the expected branching factor Branch + Rho.
func (c Config) EffectiveBranch() float64 { return float64(c.Branch) + c.Rho }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Branch < 1 {
		return fmt.Errorf("%w: Branch must be >= 1, got %d", ErrConfig, c.Branch)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1], got %v", ErrConfig, c.Rho)
	}
	return nil
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	return 64*n*lg + 64
}

// Process is a single COBRA run. It is not safe for concurrent use; run
// one Process per goroutine (see internal/sim for the parallel trial
// harness).
type Process struct {
	g   *graph.Graph
	cfg Config
	rng *xrand.RNG

	cur       *bitset.Set // C_t
	next      *bitset.Set // C_{t+1} under construction
	covered   *bitset.Set // union of C_0..C_t
	active    []int       // scratch: members of cur
	round     int
	nCov      int // cached covered count
	sent      int64
	coalesced int64
}

// New creates a COBRA process on g starting from the given set of vertices
// (C_0 = start). The graph must be connected and start non-empty.
func New(g *graph.Graph, cfg Config, start []int, rng *xrand.RNG) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("%w: %s", ErrDisconnected, g.Name())
	}
	if len(start) == 0 {
		return nil, fmt.Errorf("%w: empty C_0", ErrStart)
	}
	p := &Process{
		g:       g,
		cfg:     cfg,
		rng:     rng,
		cur:     bitset.New(g.N()),
		next:    bitset.New(g.N()),
		covered: bitset.New(g.N()),
		active:  make([]int, 0, g.N()),
	}
	for _, v := range start {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("%w: vertex %d out of range", ErrStart, v)
		}
		if !p.cur.Contains(v) {
			p.cur.Set(v)
			p.covered.Set(v)
			p.nCov++
		}
	}
	return p, nil
}

// Round returns the number of completed rounds t.
func (p *Process) Round() int { return p.round }

// Current returns the current set C_t. The returned set is live; do not
// modify it.
func (p *Process) Current() *bitset.Set { return p.cur }

// Covered returns the cumulative visited set ∪ C_0..C_t (live; read-only).
func (p *Process) Covered() *bitset.Set { return p.covered }

// CoveredCount returns |∪ C_0..C_t| without a popcount scan.
func (p *Process) CoveredCount() int { return p.nCov }

// Complete reports whether every vertex has been visited.
func (p *Process) Complete() bool { return p.nCov == p.g.N() }

// Transmissions returns the total number of messages (particle moves) sent
// so far; the paper's motivation is bounding these per vertex per round.
func (p *Process) Transmissions() int64 { return p.sent }

// Coalesced returns the total number of particle coalescences so far:
// arrivals that landed on a vertex already receiving a particle in the
// same round (the "CO" in COBRA). It always equals
// Transmissions() − Σ_{t>=1} |C_t|.
func (p *Process) Coalesced() int64 { return p.coalesced }

// Step advances the process by one round: every vertex of C_t pushes to b
// random neighbours (with replacement), forming C_{t+1}.
func (p *Process) Step() {
	p.active = p.cur.Members(p.active[:0])
	p.next.Reset()
	sentBefore := p.sent
	for _, v := range p.active {
		p.pushFrom(v)
	}
	p.coalesced += (p.sent - sentBefore) - int64(p.next.Count())
	p.cur, p.next = p.next, p.cur
	p.round++
	// Fold the new set into the cover set, updating the cached count.
	for _, w := range p.cur.Members(p.active[:0]) {
		if !p.covered.Contains(w) {
			p.covered.Set(w)
			p.nCov++
		}
	}
}

// pushFrom sends the configured number of particles from v into next.
func (p *Process) pushFrom(v int) {
	b := p.cfg.Branch
	if p.cfg.Rho > 0 && p.rng.Bernoulli(p.cfg.Rho) {
		b++
	}
	deg := p.g.Degree(v)
	for k := 0; k < b; k++ {
		if p.cfg.Lazy && p.rng.Bool() {
			p.next.Set(v)
		} else {
			p.next.Set(p.g.Neighbor(v, p.rng.Intn(deg)))
		}
		p.sent++
	}
}

// Run advances the process until cover or the round cap and returns the
// number of rounds to cover. If the cap is hit it returns the cap and
// ErrRoundLimit.
func (p *Process) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.round >= limit {
			return p.round, fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.round, p.g.Name())
		}
		p.Step()
	}
	return p.round, nil
}

// RunUntilHit advances until target is visited (or the cap) and returns
// the hitting round Hit(target).
func (p *Process) RunUntilHit(target int) (int, error) {
	if target < 0 || target >= p.g.N() {
		return 0, fmt.Errorf("%w: target %d out of range", ErrStart, target)
	}
	limit := p.cfg.maxRounds(p.g.N())
	for !p.covered.Contains(target) {
		if p.round >= limit {
			return p.round, fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.round, p.g.Name())
		}
		p.Step()
	}
	return p.round, nil
}
