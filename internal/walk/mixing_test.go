package walk

import (
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/spectral"
	"github.com/repro/cobra/internal/xrand"
)

func TestStationarySumsToOne(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Star(9), graph.Cycle(8), graph.Lollipop(5, 5)} {
		pi := Stationary(g)
		var sum float64
		for _, v := range pi {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%s: stationary sums to %v", g.Name(), sum)
		}
	}
	// Star: hub mass = (n-1)/2m = 8/16 = 0.5.
	pi := Stationary(graph.Star(9))
	if math.Abs(pi[0]-0.5) > 1e-12 {
		t.Fatalf("star hub mass %v", pi[0])
	}
}

func TestEvolvePreservesMassAndFixesStationary(t *testing.T) {
	g := graph.Lollipop(6, 4)
	pi := Stationary(g)
	out := make([]float64, g.N())
	EvolveDistribution(g, pi, out, false)
	for v := range pi {
		if math.Abs(out[v]-pi[v]) > 1e-12 {
			t.Fatalf("stationary not fixed at %d: %v vs %v", v, out[v], pi[v])
		}
	}
	p := make([]float64, g.N())
	p[3] = 1
	EvolveDistribution(g, p, out, true)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass not preserved: %v", sum)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if tv := TotalVariation(p, q); math.Abs(tv-1) > 1e-12 {
		t.Fatalf("TV %v", tv)
	}
	if tv := TotalVariation(p, p); tv != 0 {
		t.Fatalf("TV self %v", tv)
	}
}

func TestMixingTimeCompleteGraphFast(t *testing.T) {
	tm, err := MixingTime(graph.Complete(32), 0, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 12 {
		t.Fatalf("K32 lazy mixing time %d too slow", tm)
	}
}

func TestMixingTimeCycleSlow(t *testing.T) {
	fast, err := MixingTime(graph.Complete(24), 0, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MixingTime(graph.Cycle(24), 0, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= 2*fast {
		t.Fatalf("cycle mixing %d not ≫ complete %d", slow, fast)
	}
}

func TestMixingTimeValidation(t *testing.T) {
	g := graph.Cycle(6)
	if _, err := MixingTime(g, -1, 0.25, 0); err == nil {
		t.Fatal("bad src accepted")
	}
	if _, err := MixingTime(g, 0, 0, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := MixingTime(g, 0, 1.5, 0); err == nil {
		t.Fatal("eps>1 accepted")
	}
	if _, err := MixingTime(g, 0, 1e-9, 3); err == nil {
		t.Fatal("tiny step cap not reported")
	}
}

func TestSpectralMixingBoundDominates(t *testing.T) {
	// The spectral bound must upper-bound the exact mixing time on
	// assorted graphs (using the lazy gap).
	rng := xrand.New(3)
	rr, err := graph.RandomRegular(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{graph.Cycle(20), graph.Complete(20), rr, graph.Hypercube(4)} {
		lamLazy, err := spectral.SecondEigenvalueLazy(g, spectral.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := MixingTime(g, 0, 0.25, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := SpectralMixingBound(g, 1-lamLazy, 0.25)
		if float64(exact) > bound+1 {
			t.Fatalf("%s: exact mixing %d exceeds spectral bound %.1f", g.Name(), exact, bound)
		}
	}
}
