package walk

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/graph"
)

// Exact expected hitting times of the simple random walk by solving the
// harmonic system
//
//	h(t) = 0,   h(u) = 1 + (1/deg u) Σ_{w ~ u} h(w)  for u ≠ t,
//
// with Gauss–Seidel iteration (guaranteed to converge for connected
// graphs: the system is a diagonally dominant M-matrix). These values
// anchor the b = 1 baseline: COBRA with b = 2 must beat them, and the
// closed forms (cycle: k(n−k); path; complete: n−1) validate the solver.

// HitTimes returns h(u) = E[steps for a walk from u to reach target] for
// every vertex u. tol is the Gauss–Seidel convergence tolerance
// (default 1e-10 when <= 0).
func HitTimes(g *graph.Graph, target int, tol float64) ([]float64, error) {
	n := g.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("%w: target %d", ErrInput, target)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("%w: disconnected graph", ErrInput)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	h := make([]float64, n)
	// Initialise with BFS distances — a decent starting point.
	for v, d := range g.BFS(target) {
		h[v] = float64(d)
	}
	// Gauss–Seidel sweeps until the largest update falls below tol.
	// The iteration count scales with the mixing time; cap generously.
	maxSweeps := 1000 * n
	if maxSweeps < 100000 {
		maxSweeps = 100000
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var delta float64
		for u := 0; u < n; u++ {
			if u == target {
				continue
			}
			var acc float64
			for _, w := range g.Neighbors(u) {
				acc += h[w]
			}
			next := 1 + acc/float64(g.Degree(u))
			if d := math.Abs(next - h[u]); d > delta {
				delta = d
			}
			h[u] = next
		}
		if delta < tol {
			return h, nil
		}
	}
	return nil, fmt.Errorf("%w: Gauss-Seidel did not converge", ErrInput)
}

// CommuteTime returns the expected round trip u→v→u of the simple walk,
// h(u→v) + h(v→u). By the electrical identity this equals 2m·R_eff(u,v).
func CommuteTime(g *graph.Graph, u, v int, tol float64) (float64, error) {
	hv, err := HitTimes(g, v, tol)
	if err != nil {
		return 0, err
	}
	hu, err := HitTimes(g, u, tol)
	if err != nil {
		return 0, err
	}
	return hv[u] + hu[v], nil
}

// MaxHitTime returns max_{u,v} h(u→v), an upper anchor for the walk's
// cover time via Matthews' bound: cover <= MaxHit · H_n (harmonic
// number).
func MaxHitTime(g *graph.Graph, tol float64) (float64, error) {
	var worst float64
	for t := 0; t < g.N(); t++ {
		h, err := HitTimes(g, t, tol)
		if err != nil {
			return 0, err
		}
		for _, v := range h {
			if v > worst {
				worst = v
			}
		}
	}
	return worst, nil
}

// MatthewsUpper returns Matthews' upper bound on the expected cover time
// of the simple walk: MaxHit · H_{n-1}.
func MatthewsUpper(g *graph.Graph, tol float64) (float64, error) {
	mh, err := MaxHitTime(g, tol)
	if err != nil {
		return 0, err
	}
	var harmonic float64
	for k := 1; k < g.N(); k++ {
		harmonic += 1 / float64(k)
	}
	return mh * harmonic, nil
}
