// Package walk implements the random-walk baselines against which the
// paper positions COBRA: the simple random walk (the b = 1 degenerate
// case, with cover time Ω(n log n) on every graph and Θ(n³) on the
// lollipop), and k independent parallel random walks (the "multiple
// random walks" literature cited as [1-3, 7]).
package walk

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Errors returned by the drivers.
var (
	ErrInput     = errors.New("walk: invalid input")
	ErrStepLimit = errors.New("walk: step limit exceeded before cover")
)

// maxSteps returns the driver safety cap: comfortably above the Θ(n³)
// worst-case cover time of the simple walk.
func maxSteps(n int) int64 {
	nn := int64(n)
	cap := 64*nn*nn*nn + 1024
	return cap
}

// CoverTime runs a simple random walk (lazy if lazy is set: stay put with
// probability 1/2) from start and returns the number of steps to visit
// every vertex.
func CoverTime(g *graph.Graph, start int, lazy bool, rng *xrand.RNG) (int64, error) {
	if start < 0 || start >= g.N() {
		return 0, fmt.Errorf("%w: start %d", ErrInput, start)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("%w: disconnected graph", ErrInput)
	}
	visited := bitset.New(g.N())
	visited.Set(start)
	remaining := g.N() - 1
	pos := start
	limit := maxSteps(g.N())
	var steps int64
	for remaining > 0 {
		if steps >= limit {
			return steps, ErrStepLimit
		}
		if !lazy || rng.Bool() {
			pos = g.Neighbor(pos, rng.Intn(g.Degree(pos)))
		}
		steps++
		if !visited.Contains(pos) {
			visited.Set(pos)
			remaining--
		}
	}
	return steps, nil
}

// HitTime returns the number of steps for a simple random walk from start
// to first reach target.
func HitTime(g *graph.Graph, start, target int, lazy bool, rng *xrand.RNG) (int64, error) {
	if start < 0 || start >= g.N() || target < 0 || target >= g.N() {
		return 0, fmt.Errorf("%w: start %d target %d", ErrInput, start, target)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("%w: disconnected graph", ErrInput)
	}
	pos := start
	limit := maxSteps(g.N())
	var steps int64
	for pos != target {
		if steps >= limit {
			return steps, ErrStepLimit
		}
		if !lazy || rng.Bool() {
			pos = g.Neighbor(pos, rng.Intn(g.Degree(pos)))
		}
		steps++
	}
	return steps, nil
}

// MultiCoverTime runs k independent random walks in synchronised rounds,
// all starting at start, and returns the number of ROUNDS (one move of
// every walker) until every vertex has been visited by some walker. This
// is the comparison process of the multiple-random-walk literature: like
// COBRA it moves k tokens per round, but the token count is fixed rather
// than branching-and-coalescing.
func MultiCoverTime(g *graph.Graph, k, start int, rng *xrand.RNG) (int64, error) {
	if k < 1 {
		return 0, fmt.Errorf("%w: k < 1", ErrInput)
	}
	if start < 0 || start >= g.N() {
		return 0, fmt.Errorf("%w: start %d", ErrInput, start)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("%w: disconnected graph", ErrInput)
	}
	visited := bitset.New(g.N())
	visited.Set(start)
	remaining := g.N() - 1
	pos := make([]int, k)
	for i := range pos {
		pos[i] = start
	}
	limit := maxSteps(g.N())
	var rounds int64
	for remaining > 0 {
		if rounds >= limit {
			return rounds, ErrStepLimit
		}
		for i := range pos {
			pos[i] = g.Neighbor(pos[i], rng.Intn(g.Degree(pos[i])))
			if !visited.Contains(pos[i]) {
				visited.Set(pos[i])
				remaining--
			}
		}
		rounds++
	}
	return rounds, nil
}
