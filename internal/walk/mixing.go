package walk

import (
	"fmt"
	"math"

	"github.com/repro/cobra/internal/graph"
)

// Mixing analysis of the (lazy) simple random walk. The paper's
// Theorem 1.2 is parameterised by the eigenvalue gap 1−λ, whose inverse
// is (up to log factors) the walk's mixing time; this module computes
// stationary distributions and total-variation mixing times exactly by
// evolving the distribution vector, providing an independent handle on
// the same quantity for validation and for the EXPERIMENTS.md discussion.

// maxMixingN caps the dense distribution evolution (O(m) per step but
// O(n) vectors per source; the driver below uses a single source).
const maxMixingN = 1 << 16

// Stationary returns the stationary distribution of the simple random
// walk: π(v) = deg(v) / 2m.
func Stationary(g *graph.Graph) []float64 {
	pi := make([]float64, g.N())
	total := float64(g.DegreeSum())
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(v)) / total
	}
	return pi
}

// EvolveDistribution advances the walk distribution p by one step:
// out(v) = Σ_{u ~ v} p(u)/deg(u), lazily if lazy is set. out must have
// length n and may not alias p.
func EvolveDistribution(g *graph.Graph, p, out []float64, lazy bool) {
	n := g.N()
	for v := 0; v < n; v++ {
		var acc float64
		for _, u := range g.Neighbors(v) {
			acc += p[u] / float64(g.Degree(int(u)))
		}
		if lazy {
			out[v] = 0.5*p[v] + 0.5*acc
		} else {
			out[v] = acc
		}
	}
}

// TotalVariation returns (1/2) Σ |p(v) − q(v)|.
func TotalVariation(p, q []float64) float64 {
	var tv float64
	for i := range p {
		tv += math.Abs(p[i] - q[i])
	}
	return tv / 2
}

// MixingTime returns the smallest t such that the lazy walk started at
// src is within eps total-variation distance of stationarity, computed
// exactly by evolving the distribution. Returns an error if maxSteps is
// exceeded (e.g. eps too small for a poorly connected graph).
func MixingTime(g *graph.Graph, src int, eps float64, maxSteps int) (int, error) {
	if src < 0 || src >= g.N() {
		return 0, fmt.Errorf("%w: src %d", ErrInput, src)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("%w: eps must be in (0,1)", ErrInput)
	}
	if g.N() > maxMixingN {
		return 0, fmt.Errorf("%w: MixingTime limited to n <= %d", ErrInput, maxMixingN)
	}
	if maxSteps <= 0 {
		maxSteps = 256 * g.N() * g.N()
	}
	pi := Stationary(g)
	p := make([]float64, g.N())
	q := make([]float64, g.N())
	p[src] = 1
	for t := 0; t <= maxSteps; t++ {
		if TotalVariation(p, pi) <= eps {
			return t, nil
		}
		EvolveDistribution(g, p, q, true)
		p, q = q, p
	}
	return 0, fmt.Errorf("%w: no mixing within %d steps", ErrStepLimit, maxSteps)
}

// SpectralMixingBound returns the standard upper-bound shape for the lazy
// walk's eps-mixing time from a lazy eigenvalue gap:
// (1/gap)·ln(1/(eps·π_min)).
func SpectralMixingBound(g *graph.Graph, lazyGap, eps float64) float64 {
	piMin := math.Inf(1)
	pi := Stationary(g)
	for _, v := range pi {
		if v < piMin {
			piMin = v
		}
	}
	return math.Log(1/(eps*piMin)) / lazyGap
}
