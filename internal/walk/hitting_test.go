package walk

import (
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestHitTimesCompleteGraph(t *testing.T) {
	// K_n: h(u→v) = n−1 for u ≠ v (geometric with success 1/(n-1)).
	g := graph.Complete(8)
	h, err := HitTimes(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range h {
		want := 7.0
		if u == 3 {
			want = 0
		}
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("K8 h(%d→3) = %v, want %v", u, v, want)
		}
	}
}

func TestHitTimesCycle(t *testing.T) {
	// C_n: h(u→v) = k(n−k) where k is the hop distance.
	g := graph.Cycle(10)
	h, err := HitTimes(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		k := float64(u)
		if u > 5 {
			k = float64(10 - u)
		}
		want := k * (10 - k)
		if math.Abs(h[u]-want) > 1e-7 {
			t.Fatalf("C10 h(%d→0) = %v, want %v", u, h[u], want)
		}
	}
}

func TestHitTimesPathEnd(t *testing.T) {
	// Path 0..n-1 with a reflecting far end, target 0:
	// h(u→0) = u(2(n−1) − u) (gambler's ruin with reflection).
	g := graph.Path(7)
	h, err := HitTimes(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 7; u++ {
		want := float64(u * (2*6 - u))
		if math.Abs(h[u]-want) > 1e-7 {
			t.Fatalf("P7 h(%d→0) = %v, want %v", u, h[u], want)
		}
	}
}

func TestHitTimesValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := HitTimes(g, 9, 0); err == nil {
		t.Fatal("bad target accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := HitTimes(b.MustBuild("disc"), 0, 0); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestCommuteTimeSymmetricAndElectrical(t *testing.T) {
	// Commute time is symmetric by definition here; on a path of length L
	// between u,v in a tree, C(u,v) = 2m·dist (R_eff = hop distance).
	g := graph.Path(6) // m = 5
	c, err := CommuteTime(g, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 5 * 3 // 2m · R_eff(1,4) = 2·5·3
	if math.Abs(c-want) > 1e-6 {
		t.Fatalf("commute(1,4) = %v, want %v", c, want)
	}
	c2, err := CommuteTime(g, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-c2) > 1e-6 {
		t.Fatalf("commute asymmetric: %v vs %v", c, c2)
	}
}

func TestMatthewsUpperBoundsSimulatedCover(t *testing.T) {
	// Matthews: E[cover] <= MaxHit·H_{n-1}. Compare with simulation.
	rng := xrand.New(9)
	for _, g := range []*graph.Graph{graph.Cycle(16), graph.Complete(12), graph.Lollipop(5, 5)} {
		bound, err := MatthewsUpper(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 50
		var mean float64
		for k := 0; k < trials; k++ {
			steps, err := CoverTime(g, 0, false, rng)
			if err != nil {
				t.Fatal(err)
			}
			mean += float64(steps)
		}
		mean /= trials
		if mean > bound*1.15 { // slack for sampling noise
			t.Fatalf("%s: simulated cover %.1f exceeds Matthews bound %.1f", g.Name(), mean, bound)
		}
	}
}

func TestHitTimesMatchSimulation(t *testing.T) {
	g := graph.Lollipop(4, 4)
	exact, err := HitTimes(g, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	const trials = 4000
	var sum, sumsq float64
	for k := 0; k < trials; k++ {
		steps, err := HitTime(g, 0, 7, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(steps)
		sumsq += float64(steps) * float64(steps)
	}
	mean := sum / trials
	sd := math.Sqrt(sumsq/trials - mean*mean)
	if math.Abs(mean-exact[0]) > 5*sd/math.Sqrt(trials) {
		t.Fatalf("simulated h(0→7) %.2f vs exact %.2f", mean, exact[0])
	}
}
