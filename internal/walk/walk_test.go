package walk

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestCoverTimeInputValidation(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := CoverTime(g, -1, false, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad start accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := CoverTime(b.MustBuild("disc"), 0, false, rng); !errors.Is(err, ErrInput) {
		t.Fatal("disconnected accepted")
	}
}

func TestCoverTimeCompleteGraphCouponCollector(t *testing.T) {
	// Cover time of K_n by a simple walk is ~ n ln n (coupon collector).
	g := graph.Complete(64)
	rng := xrand.New(3)
	const trials = 40
	var sum float64
	for k := 0; k < trials; k++ {
		steps, err := CoverTime(g, 0, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(steps)
	}
	mean := sum / trials
	want := 64 * math.Log(64) // ≈ 266
	if mean < want/2 || mean > want*2 {
		t.Fatalf("K64 RW cover mean %.1f vs coupon collector %.1f", mean, want)
	}
}

func TestCoverTimeCycleQuadratic(t *testing.T) {
	// Cycle cover time is n(n-1)/2 in expectation.
	g := graph.Cycle(32)
	rng := xrand.New(5)
	const trials = 60
	var sum float64
	for k := 0; k < trials; k++ {
		steps, err := CoverTime(g, 0, false, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(steps)
	}
	mean := sum / trials
	want := 32.0 * 31 / 2 // 496
	if mean < want*0.6 || mean > want*1.6 {
		t.Fatalf("C32 RW cover mean %.1f vs theory %.1f", mean, want)
	}
}

func TestLazyWalkSlowerByFactorTwo(t *testing.T) {
	g := graph.Cycle(24)
	mean := func(lazy bool, seed uint64) float64 {
		rng := xrand.New(seed)
		var sum float64
		for k := 0; k < 60; k++ {
			steps, err := CoverTime(g, 0, lazy, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(steps)
		}
		return sum / 60
	}
	plain := mean(false, 7)
	lazy := mean(true, 9)
	ratio := lazy / plain
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("lazy/plain cover ratio %.2f not ≈ 2", ratio)
	}
}

func TestHitTime(t *testing.T) {
	g := graph.Path(6)
	rng := xrand.New(11)
	// Hitting the far end of a path takes at least the distance.
	steps, err := HitTime(g, 0, 5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 5 {
		t.Fatalf("hit time %d below distance", steps)
	}
	steps, err = HitTime(g, 2, 2, false, rng)
	if err != nil || steps != 0 {
		t.Fatalf("self hit %d, %v", steps, err)
	}
	if _, err := HitTime(g, 0, 9, false, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad target accepted")
	}
}

func TestMultiCoverTime(t *testing.T) {
	g := graph.Complete(64)
	rng := xrand.New(13)
	single, err := MultiCoverTime(g, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiCoverTime(g, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if multi >= single {
		t.Fatalf("16 walkers (%d rounds) not faster than 1 (%d rounds)", multi, single)
	}
	if _, err := MultiCoverTime(g, 0, 0, rng); !errors.Is(err, ErrInput) {
		t.Fatal("k=0 accepted")
	}
	if _, err := MultiCoverTime(g, 2, -3, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad start accepted")
	}
}

func TestWalkDeterminism(t *testing.T) {
	g := graph.Petersen()
	a, err := CoverTime(g, 0, false, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoverTime(g, 0, false, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("determinism broken: %d vs %d", a, b)
	}
}
