// Package bitset implements dense bit sets over the vertex range [0, n).
//
// Two variants are provided:
//
//   - Set: a plain, single-goroutine bit set. This is the representation of
//     the informed/infected vertex sets in the serial simulation engines.
//   - Atomic: a bit set whose Set operation is safe for concurrent writers,
//     used by the parallel round engine where many workers mark vertices of
//     the next infected set simultaneously.
//
// Both store one bit per vertex in []uint64 words, so a 1M-vertex set is
// 128 KiB — small enough to stay cache-resident across rounds.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Set is a fixed-capacity dense bit set. The zero value is unusable; create
// with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for items in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity n of the set (not the population count).
func (s *Set) Len() int { return s.n }

// Set marks item i as present. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear removes item i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether item i is present.
func (s *Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of items present.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all items, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill marks every item in [0, n) present.
func (s *Set) Fill() {
	if len(s.words) == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Zero the tail bits beyond n so Count stays exact.
	if rem := uint(s.n) % wordBits; rem != 0 {
		s.words[len(s.words)-1] = (1 << rem) - 1
	}
}

// Full reports whether every item in [0, n) is present.
func (s *Set) Full() bool { return s.Count() == s.n }

// CopyFrom overwrites s with the contents of other. Both must have the same
// capacity.
func (s *Set) CopyFrom(other *Set) {
	if s.n != other.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, other.words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Words exposes the backing word array for word-level scans (one bit per
// item, 64 items per word, LSB = lowest item). The slice aliases the set's
// storage: callers must treat it as read-only. This is the hook the dense
// frontier engine uses to iterate wide vertex sets without materialising a
// member slice.
func (s *Set) Words() []uint64 { return s.words }

// WordCount returns the number of backing words, (n+63)/64.
func (s *Set) WordCount() int { return len(s.words) }

// Word returns backing word i (items [64i, 64i+64)).
func (s *Set) Word(i int) uint64 { return s.words[i] }

// SetWord overwrites backing word i wholesale. This is the mutation dual
// of Words(), used by the tiled dense engine whose tiles own disjoint word
// ranges; the caller is responsible for keeping tail bits beyond n zero.
func (s *Set) SetWord(i int, w uint64) { s.words[i] = w }

// UnionCount adds every member of other to s and returns the number of
// items that were newly added (present in other but not previously in s).
// Capacities must match. This fuses the covered-set fold of a simulation
// round into a single word scan.
func (s *Set) UnionCount(other *Set) int {
	if s.n != other.n {
		panic("bitset: UnionCount capacity mismatch")
	}
	added := 0
	for i, w := range other.words {
		old := s.words[i]
		added += bits.OnesCount64(w &^ old)
		s.words[i] = old | w
	}
	return added
}

// Union adds every member of other to s. Capacities must match.
func (s *Set) Union(other *Set) {
	if s.n != other.n {
		panic("bitset: Union capacity mismatch")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Intersects reports whether s and other share at least one member.
func (s *Set) Intersects(other *Set) bool {
	if s.n != other.n {
		panic("bitset: Intersects capacity mismatch")
	}
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and other contain exactly the same members.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Members appends all present items to dst (which may be nil) and returns it.
// Items are produced in increasing order.
func (s *Set) Members(dst []int) []int {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every present item in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Atomic is a bit set with a concurrency-safe Set operation. Reads
// (Contains, Count) are safe only after all writers have synchronised (for
// example, after a WaitGroup barrier at the end of a simulation round).
type Atomic struct {
	words []uint64
	n     int
}

// NewAtomic returns an empty atomic set with capacity n.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Atomic{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity n.
func (a *Atomic) Len() int { return a.n }

// Set marks item i as present. Safe for concurrent callers. The
// already-set fast path is a plain atomic load; setting is one locked OR,
// cheaper under contention than a CAS loop.
func (a *Atomic) Set(i int) {
	addr := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	if atomic.LoadUint64(addr)&mask != 0 {
		return
	}
	atomic.OrUint64(addr, mask)
}

// Contains reports whether item i is present. Uses an atomic load, so it is
// safe to interleave with writers, though the answer is only a snapshot.
func (a *Atomic) Contains(i int) bool {
	return atomic.LoadUint64(&a.words[i/wordBits])&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the population count. Call only after writers are quiesced.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(atomic.LoadUint64(&a.words[i]))
	}
	return c
}

// Reset removes all items. Call only while no writers are active.
func (a *Atomic) Reset() {
	for i := range a.words {
		atomic.StoreUint64(&a.words[i], 0)
	}
}

// Word returns backing word i with an atomic load; the value is exact only
// after writers are quiesced.
func (a *Atomic) Word(i int) uint64 {
	return atomic.LoadUint64(&a.words[i])
}

// ClearWord zeroes backing word i. Call only while no writers are active on
// that word.
func (a *Atomic) ClearWord(i int) {
	atomic.StoreUint64(&a.words[i], 0)
}

// WordCount returns the number of backing words, (n+63)/64.
func (a *Atomic) WordCount() int { return len(a.words) }

// Snapshot copies the atomic set into a plain Set of the same capacity.
// Call only after writers are quiesced.
func (a *Atomic) Snapshot(dst *Set) {
	if dst.n != a.n {
		panic("bitset: Snapshot capacity mismatch")
	}
	for i := range a.words {
		dst.words[i] = atomic.LoadUint64(&a.words[i])
	}
}
