package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set has count %d", s.Count())
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 100; i++ {
		if s.Contains(i) {
			t.Fatalf("new set contains %d", i)
		}
	}
}

func TestNewZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Len() != 0 || !s.Full() {
		t.Fatal("empty-capacity set misbehaves")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on zero-capacity set set bits")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearContains(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Set(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) false after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) true after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d after Clear, want 7", s.Count())
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if s.Count() != 1 {
		t.Fatalf("double Set gave count %d", s.Count())
	}
}

func TestFillAndFull(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		if s.Full() {
			t.Fatalf("n=%d: empty set reports Full", n)
		}
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Fill gave count %d", n, got)
		}
		if !s.Full() {
			t.Fatalf("n=%d: filled set not Full", n)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Reset left count %d", s.Count())
	}
}

func TestUnion(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	a.Union(b)
	want := []int{1, 50, 99}
	got := a.Members(nil)
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestUnionCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Union")
		}
	}()
	New(10).Union(New(11))
}

func TestIntersects(t *testing.T) {
	a := New(128)
	b := New(128)
	if a.Intersects(b) {
		t.Fatal("empty sets intersect")
	}
	a.Set(64)
	b.Set(65)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Set(64)
	if !a.Intersects(b) {
		t.Fatal("overlapping sets do not intersect")
	}
}

func TestEqualCloneCopyFrom(t *testing.T) {
	a := New(70)
	a.Set(0)
	a.Set(69)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(5)
	if a.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	d := New(70)
	d.CopyFrom(c)
	if !d.Equal(c) {
		t.Fatal("CopyFrom not equal")
	}
	if a.Equal(New(71)) {
		t.Fatal("different capacities compare equal")
	}
}

func TestMembersOrderAndForEach(t *testing.T) {
	s := New(300)
	items := []int{299, 0, 128, 64, 65, 7}
	for _, i := range items {
		s.Set(i)
	}
	got := s.Members(nil)
	want := []int{0, 7, 64, 65, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	var walked []int
	s.ForEach(func(i int) { walked = append(walked, i) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", walked, want)
		}
	}
}

func TestMembersAppendsToDst(t *testing.T) {
	s := New(10)
	s.Set(4)
	dst := []int{-1}
	dst = s.Members(dst)
	if len(dst) != 2 || dst[0] != -1 || dst[1] != 4 {
		t.Fatalf("Members append = %v", dst)
	}
}

// Property: Set then Contains always true; count equals number of distinct
// items inserted.
func TestSetContainsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		distinct := make(map[int]bool)
		for _, r := range raw {
			i := int(r)
			s.Set(i)
			distinct[i] = true
			if !s.Contains(i) {
				return false
			}
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative over membership.
func TestUnionCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a1, b1 := New(256), New(256)
		a2, b2 := New(256), New(256)
		for _, x := range xs {
			a1.Set(int(x))
			a2.Set(int(x))
		}
		for _, y := range ys {
			b1.Set(int(y))
			b2.Set(int(y))
		}
		a1.Union(b1) // a1 = A ∪ B
		b2.Union(a2) // b2 = B ∪ A
		return a1.Equal(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBasics(t *testing.T) {
	a := NewAtomic(130)
	if a.Len() != 130 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(0)
	a.Set(129)
	a.Set(129)
	if !a.Contains(0) || !a.Contains(129) || a.Contains(64) {
		t.Fatal("atomic membership wrong")
	}
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestAtomicConcurrentSet(t *testing.T) {
	const n = 4096
	const workers = 8
	a := NewAtomic(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker sets an overlapping arithmetic progression.
			for i := w; i < n; i += 2 {
				a.Set(i)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Count(); got != n {
		t.Fatalf("concurrent Set lost updates: count %d, want %d", got, n)
	}
}

func TestAtomicSnapshot(t *testing.T) {
	a := NewAtomic(100)
	a.Set(3)
	a.Set(77)
	s := New(100)
	a.Snapshot(s)
	if s.Count() != 2 || !s.Contains(3) || !s.Contains(77) {
		t.Fatal("Snapshot mismatch")
	}
}

func TestAtomicSnapshotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAtomic(10).Snapshot(New(11))
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & ((1 << 20) - 1))
	}
}

func BenchmarkAtomicSet(b *testing.B) {
	s := NewAtomic(1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Set(i & ((1 << 20) - 1))
			i += 7919
		}
	})
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 20)
	s.Fill()
	for i := 0; i < b.N; i++ {
		if s.Count() != 1<<20 {
			b.Fatal("bad count")
		}
	}
}
