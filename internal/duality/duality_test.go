package duality

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Branch: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{Branch: 0}, {Branch: 1, Rho: -0.1}, {Branch: 1, Rho: 1.1}} {
		if err := cfg.Validate(); !errors.Is(err, ErrInput) {
			t.Fatalf("%+v accepted", cfg)
		}
	}
}

func TestSampleTableShape(t *testing.T) {
	g := graph.Cycle(7)
	tab, err := SampleTable(g, Config{Branch: 2}, 5, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.T != 5 || len(tab.sel) != 5 {
		t.Fatalf("table T=%d len=%d", tab.T, len(tab.sel))
	}
	for t2 := 0; t2 < 5; t2++ {
		for u := 0; u < g.N(); u++ {
			row := tab.sel[t2][u]
			if len(row) != 2 {
				t.Fatalf("row length %d", len(row))
			}
			for _, w := range row {
				if !g.HasEdge(u, int(w)) {
					t.Fatalf("selection %d not a neighbour of %d", w, u)
				}
			}
		}
	}
}

func TestSampleTableFractionalRowLengths(t *testing.T) {
	g := graph.Complete(6)
	tab, err := SampleTable(g, Config{Branch: 1, Rho: 0.5}, 40, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ones, twos := 0, 0
	for t2 := range tab.sel {
		for u := range tab.sel[t2] {
			switch len(tab.sel[t2][u]) {
			case 1:
				ones++
			case 2:
				twos++
			default:
				t.Fatalf("row length %d", len(tab.sel[t2][u]))
			}
		}
	}
	if ones == 0 || twos == 0 {
		t.Fatalf("fractional rows degenerate: %d ones, %d twos", ones, twos)
	}
	frac := float64(twos) / float64(ones+twos)
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("two-selection fraction %.3f far from ρ=0.5", frac)
	}
}

func TestSampleTableLazyMaySelectSelf(t *testing.T) {
	g := graph.Cycle(5)
	tab, err := SampleTable(g, Config{Branch: 2, Lazy: true}, 20, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	self := false
	for t2 := range tab.sel {
		for u := range tab.sel[t2] {
			for _, w := range tab.sel[t2][u] {
				if int(w) == u {
					self = true
				} else if !g.HasEdge(u, int(w)) {
					t.Fatal("lazy selection neither self nor neighbour")
				}
			}
		}
	}
	if !self {
		t.Fatal("lazy table never selected self in 20 rounds (p < 2^-200)")
	}
}

func TestSampleTableErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := SampleTable(g, Config{Branch: 0}, 3, xrand.New(1)); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := SampleTable(g, Config{Branch: 2}, -1, xrand.New(1)); err == nil {
		t.Fatal("negative T accepted")
	}
}

func TestReplayCOBRATrivialCases(t *testing.T) {
	g := graph.Path(4)
	tab, err := SampleTable(g, Config{Branch: 2}, 0, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// T=0: hit iff target in starts.
	if !tab.ReplayCOBRA(g, []int{2}, 2) {
		t.Fatal("target in C0 not hit at T=0")
	}
	if tab.ReplayCOBRA(g, []int{0}, 3) {
		t.Fatal("distant target hit at T=0")
	}
	// BIPS with T=0: A_0={source}; meets C iff source in C.
	if !tab.ReplayBIPS(g, 2, []int{2, 0}) {
		t.Fatal("source in C not detected at T=0")
	}
	if tab.ReplayBIPS(g, 2, []int{0}) {
		t.Fatal("empty intersection detected at T=0")
	}
}

func TestCheckPathwiseInputValidation(t *testing.T) {
	g := graph.Cycle(6)
	rng := xrand.New(9)
	if _, _, err := CheckPathwise(g, Config{Branch: 2}, []int{0}, 9, 3, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad target accepted")
	}
	if _, _, err := CheckPathwise(g, Config{Branch: 2}, nil, 0, 3, rng); !errors.Is(err, ErrInput) {
		t.Fatal("empty starts accepted")
	}
	if _, _, err := CheckPathwise(g, Config{Branch: 2}, []int{-1}, 0, 3, rng); !errors.Is(err, ErrInput) {
		t.Fatal("bad start accepted")
	}
}

// The heart of Theorem 1.3: the pathwise equivalence holds on every
// sample, every graph, every variant, every horizon.
func TestPathwiseEquivalenceExhaustive(t *testing.T) {
	rng := xrand.New(11)
	graphs := []*graph.Graph{
		graph.Cycle(9), graph.Complete(8), graph.Petersen(),
		graph.Path(7), graph.Star(8), graph.Hypercube(3),
		graph.Lollipop(4, 3),
	}
	configs := []Config{
		{Branch: 1},
		{Branch: 2},
		{Branch: 3},
		{Branch: 1, Rho: 0.5},
		{Branch: 2, Lazy: true},
	}
	for _, g := range graphs {
		for _, cfg := range configs {
			for _, T := range []int{0, 1, 2, 5, 11} {
				for rep := 0; rep < 30; rep++ {
					starts := []int{rng.Intn(g.N())}
					if rep%3 == 0 { // multi-vertex start sets too
						starts = append(starts, rng.Intn(g.N()))
					}
					target := rng.Intn(g.N())
					hit, meet, err := CheckPathwise(g, cfg, starts, target, T, rng)
					if err != nil {
						t.Fatal(err)
					}
					if hit != meet {
						t.Fatalf("%s cfg=%+v T=%d starts=%v target=%d: COBRA hit=%v BIPS meet=%v",
							g.Name(), cfg, T, starts, target, hit, meet)
					}
				}
			}
		}
	}
}

// Property-based variant on random trees with random parameters.
func TestPathwiseEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g, err := graph.RandomTree(6+int(seed%10), rng)
		if err != nil {
			return false
		}
		starts := []int{rng.Intn(g.N())}
		target := rng.Intn(g.N())
		T := rng.Intn(12)
		hit, meet, err := CheckPathwise(g, Config{Branch: 2}, starts, target, T, rng)
		return err == nil && hit == meet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Two-sided Monte Carlo: the independent estimates of both sides of
// Theorem 1.3 agree within sampling error.
func TestTwoSidedMonteCarlo(t *testing.T) {
	g := graph.Cycle(10)
	cfg := Config{Branch: 2}
	const trials = 6000
	for _, T := range []int{2, 4, 6} {
		p1, err := HitProbability(g, cfg, []int{0}, 5, T, trials, xrand.New(uint64(100+T)))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := EscapeProbability(g, cfg, 5, []int{0}, T, trials, xrand.New(uint64(200+T)))
		if err != nil {
			t.Fatal(err)
		}
		// Binomial std ~ sqrt(p(1-p)/trials) <= 0.0065; allow 5 sigma on
		// the difference of two independent estimates.
		if math.Abs(p1-p2) > 5*math.Sqrt(0.5/float64(trials)) {
			t.Fatalf("T=%d: COBRA side %.4f vs BIPS side %.4f", T, p1, p2)
		}
	}
}

func TestEstimatorErrors(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := HitProbability(g, Config{Branch: 2}, []int{0}, 1, 2, 0, rng); !errors.Is(err, ErrInput) {
		t.Fatal("trials=0 accepted")
	}
	if _, err := EscapeProbability(g, Config{Branch: 2}, 0, []int{1}, 2, 0, rng); !errors.Is(err, ErrInput) {
		t.Fatal("trials=0 accepted")
	}
}
