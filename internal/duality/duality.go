// Package duality reproduces Theorem 1.3, the COBRA–BIPS duality of
// [Cooper et al., PODC 2016] that the paper's proofs rest on:
//
//	P̂(Hit(v) > T | C₀ = C) = P(C ∩ A_T = ∅ | A₀ = {v}).
//
// Two independent verifications are provided:
//
//  1. Pathwise replay (the proof idea): materialise the neighbour
//     selections ω(u, t) ⊆ N(u) for all u ∈ V, 1 <= t <= T; run COBRA
//     forward on the table and BIPS backward (round s uses ω(·, T+1−s))
//     on the same table; then "v visited by COBRA within T rounds" must
//     hold if and only if "some vertex of C is infected at BIPS round T" —
//     an exact, per-sample equivalence.
//
//  2. Monte-Carlo two-sided estimation: estimate both probabilities with
//     independent trials and confirm they agree within confidence bounds
//     (done by the experiment harness; this package provides the two
//     estimators).
package duality

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// ErrInput flags invalid arguments to the duality drivers.
var ErrInput = errors.New("duality: invalid input")

// Config selects the shared process variant. Branch/Rho/Lazy have the
// same meaning as in the core (COBRA) and bips packages; the duality
// holds for every such variant (the paper proves it for all b = 1+ρ, and
// the replay argument extends verbatim to lazy selections).
type Config struct {
	Branch int
	Rho    float64
	Lazy   bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Branch < 1 {
		return fmt.Errorf("%w: Branch must be >= 1", ErrInput)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1]", ErrInput)
	}
	return nil
}

// Table is a materialised selection table ω(u, t) for rounds 1..T.
// Entry (t, u) lists the vertices selected by u in round t (neighbours of
// u, or u itself under the lazy variant); length varies per entry under
// fractional branching.
type Table struct {
	T   int
	sel [][][]int32 // sel[t-1][u]
}

// SampleTable draws a fresh selection table for T rounds on g under cfg.
func SampleTable(g *graph.Graph, cfg Config, T int, rng *xrand.RNG) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if T < 0 {
		return nil, fmt.Errorf("%w: negative T", ErrInput)
	}
	tab := &Table{T: T, sel: make([][][]int32, T)}
	n := g.N()
	for t := 0; t < T; t++ {
		tab.sel[t] = make([][]int32, n)
		for u := 0; u < n; u++ {
			b := cfg.Branch
			if cfg.Rho > 0 && rng.Bernoulli(cfg.Rho) {
				b++
			}
			row := make([]int32, b)
			deg := g.Degree(u)
			for k := 0; k < b; k++ {
				if cfg.Lazy && rng.Bool() {
					row[k] = int32(u)
				} else {
					row[k] = int32(g.Neighbor(u, rng.Intn(deg)))
				}
			}
			tab.sel[t][u] = row
		}
	}
	return tab, nil
}

// ReplayCOBRA runs COBRA forward on the table from C₀ = starts and
// reports whether target is visited within the table's T rounds
// (Hit(target) <= T, counting membership of C₀ itself as round 0).
func (tab *Table) ReplayCOBRA(g *graph.Graph, starts []int, target int) bool {
	n := g.N()
	cur := bitset.New(n)
	next := bitset.New(n)
	for _, v := range starts {
		cur.Set(v)
	}
	if cur.Contains(target) {
		return true
	}
	for t := 0; t < tab.T; t++ {
		next.Reset()
		row := tab.sel[t]
		cur.ForEach(func(u int) {
			for _, w := range row[u] {
				next.Set(int(w))
			}
		})
		cur, next = next, cur
		if cur.Contains(target) {
			return true
		}
	}
	return false
}

// ReplayBIPS runs BIPS backward on the table (BIPS round s consumes
// ω(·, T+1−s)) with the given persistent source, and reports whether the
// final infected set A_T intersects the set C.
func (tab *Table) ReplayBIPS(g *graph.Graph, source int, c []int) bool {
	n := g.N()
	cur := bitset.New(n)
	next := bitset.New(n)
	cur.Set(source)
	for s := 1; s <= tab.T; s++ {
		row := tab.sel[tab.T-s] // time reversal
		next.Reset()
		for u := 0; u < n; u++ {
			if u == source {
				next.Set(u)
				continue
			}
			for _, w := range row[u] {
				if cur.Contains(int(w)) {
					next.Set(u)
					break
				}
			}
		}
		cur, next = next, cur
	}
	for _, u := range c {
		if cur.Contains(u) {
			return true
		}
	}
	return false
}

// CheckPathwise samples one table and verifies the exact equivalence
// "target hit by COBRA from starts within T" ⇔ "starts ∩ A_T ≠ ∅ in BIPS
// with source target". It returns the two booleans; the caller asserts
// equality. This is the proof of Theorem 1.3 executed on one sample.
func CheckPathwise(g *graph.Graph, cfg Config, starts []int, target, T int, rng *xrand.RNG) (cobraHit, bipsMeet bool, err error) {
	if target < 0 || target >= g.N() {
		return false, false, fmt.Errorf("%w: target %d", ErrInput, target)
	}
	if len(starts) == 0 {
		return false, false, fmt.Errorf("%w: empty start set", ErrInput)
	}
	for _, v := range starts {
		if v < 0 || v >= g.N() {
			return false, false, fmt.Errorf("%w: start %d", ErrInput, v)
		}
	}
	tab, err := SampleTable(g, cfg, T, rng)
	if err != nil {
		return false, false, err
	}
	return tab.ReplayCOBRA(g, starts, target), tab.ReplayBIPS(g, target, starts), nil
}

// HitProbability Monte-Carlo estimates the COBRA side,
// P̂(Hit(target) > T | C₀ = starts), with `trials` independent runs.
func HitProbability(g *graph.Graph, cfg Config, starts []int, target, T, trials int, rng *xrand.RNG) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("%w: trials < 1", ErrInput)
	}
	miss := 0
	for k := 0; k < trials; k++ {
		tab, err := SampleTable(g, cfg, T, rng)
		if err != nil {
			return 0, err
		}
		if !tab.ReplayCOBRA(g, starts, target) {
			miss++
		}
	}
	return float64(miss) / float64(trials), nil
}

// EscapeProbability Monte-Carlo estimates the BIPS side,
// P(starts ∩ A_T = ∅ | A₀ = {source}), with `trials` independent runs.
func EscapeProbability(g *graph.Graph, cfg Config, source int, starts []int, T, trials int, rng *xrand.RNG) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("%w: trials < 1", ErrInput)
	}
	miss := 0
	for k := 0; k < trials; k++ {
		tab, err := SampleTable(g, cfg, T, rng)
		if err != nil {
			return 0, err
		}
		if !tab.ReplayBIPS(g, source, starts) {
			miss++
		}
	}
	return float64(miss) / float64(trials), nil
}
