// Package plot renders small ASCII charts for terminal output: line
// charts of per-round trajectories (infection curves, active-set sizes)
// and log–log scatter plots of scaling sweeps. The experiments and CLI
// tools use it to make the reproduction readable without leaving the
// terminal; it is deliberately tiny and dependency-free.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrInput flags invalid plotting arguments.
var ErrInput = errors.New("plot: invalid input")

// Line renders ys as an ASCII line chart of the given width and height
// (characters). X is the index. A y-axis scale is printed on the left.
func Line(w io.Writer, title string, ys []float64, width, height int) error {
	if len(ys) == 0 || width < 8 || height < 2 {
		return fmt.Errorf("%w: need data, width >= 8, height >= 2", ErrInput)
	}
	lo, hi := minMax(ys)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		// Sample ys at column c (nearest index).
		idx := c * (len(ys) - 1) / max(width-1, 1)
		y := ys[idx]
		r := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[r][c] = '*'
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%10.3g", lo)
		default:
			label = strings.Repeat(" ", 10)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s +%s\n%s  0%s%d\n",
		strings.Repeat(" ", 10), strings.Repeat("-", width),
		strings.Repeat(" ", 10), strings.Repeat(" ", max(width-len(fmt.Sprint(len(ys)-1))-1, 1)), len(ys)-1)
	return err
}

// Scatter renders (x, y) points on log-log axes, for scaling sweeps.
func Scatter(w io.Writer, title string, xs, ys []float64, width, height int) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("%w: need equal non-empty xs/ys", ErrInput)
	}
	if width < 8 || height < 2 {
		return fmt.Errorf("%w: width >= 8, height >= 2", ErrInput)
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return fmt.Errorf("%w: log-log scatter needs positive data", ErrInput)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	xlo, xhi := minMax(lx)
	ylo, yhi := minMax(ly)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range lx {
		c := int(math.Round((lx[i] - xlo) / (xhi - xlo) * float64(width-1)))
		r := int(math.Round((yhi - ly[i]) / (yhi - ylo) * float64(height-1)))
		grid[r][c] = 'o'
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := strings.Repeat(" ", 10)
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", math.Exp(yhi))
		case height - 1:
			label = fmt.Sprintf("%10.3g", math.Exp(ylo))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s +%s\n%s  %.3g%s%.3g  (log-log)\n",
		strings.Repeat(" ", 10), strings.Repeat("-", width),
		strings.Repeat(" ", 10), math.Exp(xlo),
		strings.Repeat(" ", max(width-16, 1)), math.Exp(xhi))
	return err
}

// Sparkline returns a one-line unicode sparkline of ys (8 levels).
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := minMax(ys)
	if hi == lo {
		return strings.Repeat(string(blocks[0]), len(ys))
	}
	var sb strings.Builder
	for _, y := range ys {
		level := int((y - lo) / (hi - lo) * 7.999)
		if level < 0 {
			level = 0
		}
		if level > 7 {
			level = 7
		}
		sb.WriteRune(blocks[level])
	}
	return sb.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
