package plot

import (
	"errors"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	var sb strings.Builder
	ys := []float64{0, 1, 4, 9, 16, 25}
	if err := Line(&sb, "squares", ys, 30, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "squares") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	if !strings.Contains(out, "25") || !strings.Contains(out, "0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+8+2 { // title + height + rule + x labels
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	var sb strings.Builder
	if err := Line(&sb, "", []float64{5, 5, 5}, 12, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("constant series plotted nothing")
	}
}

func TestLineErrors(t *testing.T) {
	var sb strings.Builder
	if err := Line(&sb, "", nil, 20, 5); !errors.Is(err, ErrInput) {
		t.Fatal("empty accepted")
	}
	if err := Line(&sb, "", []float64{1}, 2, 5); !errors.Is(err, ErrInput) {
		t.Fatal("narrow accepted")
	}
	if err := Line(&sb, "", []float64{1}, 20, 1); !errors.Is(err, ErrInput) {
		t.Fatal("short accepted")
	}
}

func TestScatterBasic(t *testing.T) {
	var sb strings.Builder
	xs := []float64{10, 100, 1000}
	ys := []float64{3, 30, 300}
	if err := Scatter(&sb, "sweep", xs, ys, 24, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	points := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			points += strings.Count(line, "o")
		}
	}
	if points != 3 {
		t.Fatalf("expected 3 points, got %d:\n%s", points, out)
	}
	if !strings.Contains(out, "log-log") {
		t.Fatal("axis note missing")
	}
}

func TestScatterErrors(t *testing.T) {
	var sb strings.Builder
	if err := Scatter(&sb, "", []float64{1}, []float64{1, 2}, 20, 5); !errors.Is(err, ErrInput) {
		t.Fatal("ragged accepted")
	}
	if err := Scatter(&sb, "", []float64{0}, []float64{1}, 20, 5); !errors.Is(err, ErrInput) {
		t.Fatal("non-positive accepted")
	}
	if err := Scatter(&sb, "", nil, nil, 20, 5); !errors.Is(err, ErrInput) {
		t.Fatal("empty accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline runes %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline levels wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	flat := Sparkline([]float64{2, 2, 2})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline %q", flat)
	}
}
