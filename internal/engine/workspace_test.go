package engine

import (
	"errors"
	"testing"

	"github.com/repro/cobra/internal/graph"
)

// trajectory runs k to completion (capped) and returns the per-round
// frontier sizes plus the final counters, the full observable state.
func trajectory(t *testing.T, k *Kernel, cap int) (sizes []int, covered int, sent, coal int64) {
	t.Helper()
	sizes = append(sizes, k.FrontierCount())
	for !k.Complete() {
		if k.Round() >= cap {
			t.Fatalf("round cap %d hit", cap)
		}
		k.Step()
		sizes = append(sizes, k.FrontierCount())
	}
	return sizes, k.CoveredCount(), k.Sent(), k.Coalesced()
}

func sameTrajectory(t *testing.T, label string, a, b *Kernel, cap int) {
	t.Helper()
	as, ac, asent, acoal := trajectory(t, a, cap)
	bs, bc, bsent, bcoal := trajectory(t, b, cap)
	if len(as) != len(bs) {
		t.Fatalf("%s: round counts differ: %d vs %d", label, len(as)-1, len(bs)-1)
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("%s: frontier size at round %d differs: %d vs %d", label, i, as[i], bs[i])
		}
	}
	if ac != bc || asent != bsent || acoal != bcoal {
		t.Fatalf("%s: final counters differ: covered %d/%d sent %d/%d coalesced %d/%d",
			label, ac, bc, asent, bsent, acoal, bcoal)
	}
}

// A workspace-backed kernel must reproduce the fresh kernel's trajectory
// bit for bit, including on the second, third, ... reuse of the workspace,
// across kinds and across graphs of different sizes.
func TestWorkspaceTrajectoriesMatchFresh(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Hypercube(10),
		graph.Grid(24, 24),
		graph.Cycle(301),
	}
	par := Params{Branch: 2, Workers: 1}
	ws := NewWorkspace()
	for trial := 0; trial < 3; trial++ {
		for _, g := range graphs {
			seed := uint64(1000*trial + g.N())

			fresh, err := NewCobra(g, par, []int{0}, seed)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := NewCobraWith(ws, g, par, []int{0}, seed)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectory(t, "cobra "+g.Name(), fresh, reused, 1<<20)

			freshB, err := NewBips(g, par, 0, seed^0xb1b5)
			if err != nil {
				t.Fatal(err)
			}
			reusedB, err := NewBipsWith(ws, g, par, 0, seed^0xb1b5)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectory(t, "bips "+g.Name(), freshB, reusedB, 1<<20)
		}
	}
}

// Workspace reuse with the parallel round path must also be invisible.
func TestWorkspaceParallelMatchesSerial(t *testing.T) {
	g := graph.Hypercube(11)
	ws := NewWorkspace()
	for trial := 0; trial < 2; trial++ {
		seed := uint64(42 + trial)
		serial, err := NewCobra(g, Params{Branch: 2, Workers: 1}, []int{0}, seed)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewCobraWith(ws, g, Params{Branch: 2, Workers: 4}, []int{0}, seed)
		if err != nil {
			t.Fatal(err)
		}
		sameTrajectory(t, "cobra parallel", serial, par, 1<<20)
	}
}

// A workspace must re-verify connectivity when handed a different graph,
// and must keep rejecting disconnected graphs on every construction.
func TestWorkspaceConnectivityPerGraph(t *testing.T) {
	ws := NewWorkspace()
	good := graph.Cycle(16)
	if _, err := NewCobraWith(ws, good, Params{Branch: 2}, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(16)
	for i := 0; i < 7; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(8, 9)
	disc := b.MustBuild("disc16")
	if _, err := NewCobraWith(ws, disc, Params{Branch: 2}, []int{0}, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected graph accepted after workspace warm-up: %v", err)
	}
	// The good graph still works afterwards (the cached check is per graph).
	if _, err := NewBipsWith(ws, good, Params{Branch: 2}, 0, 1); err != nil {
		t.Fatal(err)
	}
}
