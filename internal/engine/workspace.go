package engine

import (
	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
)

// Workspace is a reusable arena for kernel state, the amortization layer
// under the batch trial harness (internal/batch). A fresh kernel on an
// n-vertex graph allocates Θ(n) bitsets, the stamp array, and the member
// slices, and re-verifies connectivity with an O(n+m) traversal; across a
// campaign of thousands of trials on one shared graph those costs dominate
// the simulation itself. Constructing kernels through a Workspace instead
// reuses every buffer (bitsets are reset, slices retain their grown
// capacity, the stamp array carries its epoch across trials) and verifies
// connectivity once per distinct graph.
//
// Reuse contract:
//
//   - A Workspace is single-owner: it backs at most one live kernel at a
//     time, and constructing a new kernel through it invalidates the
//     previous one. One Workspace per worker goroutine.
//   - Trajectories are unchanged: a kernel built with NewCobraWith /
//     NewBipsWith produces bit-for-bit the trajectory of one built with
//     NewCobra / NewBips from the same (graph, params, start, seed) —
//     workspace reuse, like worker count, is invisible to the trajectory.
//   - Graphs of different sizes may share a Workspace; buffers are
//     reallocated when the vertex count changes and reused otherwise.
type Workspace struct {
	n       int          // capacity the buffers are sized for
	checked *graph.Graph // last graph whose connectivity was verified
	kern    Kernel       // the (single) kernel backed by this workspace

	cur, nextPlain, scratch *bitset.Set
	covered                 *bitset.Set
	nextAtomic              *bitset.Atomic
	stamp                   []uint32
	epoch                   uint32
	curList, newList        []int32
	candList                []int32
	bufs                    [][]int32
	sentParts               []int64

	// Tiled round scratch: per-tile partial counts (tile.go) and the
	// persistent worker pool shared by every parallel tiled kernel built
	// through this workspace. The pool's goroutines are released by the
	// workspace's finalizer.
	tileN   []int32
	tileVol []int64
	tileNew []int32
	pool    *roundPool
}

// NewWorkspace returns an empty workspace; buffers are sized lazily by the
// first kernel constructed through it.
func NewWorkspace() *Workspace { return &Workspace{} }

// NewCobraWith is NewCobra constructing into ws. The previous kernel built
// through ws (if any) becomes invalid.
func NewCobraWith(ws *Workspace, g *graph.Graph, par Params, start []int, seed uint64) (*Kernel, error) {
	return newCobra(g, par, start, seed, ws)
}

// NewBipsWith is NewBips constructing into ws. The previous kernel built
// through ws (if any) becomes invalid.
func NewBipsWith(ws *Workspace, g *graph.Graph, par Params, source int, seed uint64) (*Kernel, error) {
	return newBips(g, par, source, seed, ws)
}

// reclaim pulls grown buffers back from the previous kernel (appends may
// have reallocated the slices it was handed) and carries its stamp epoch
// forward so stale stamps from earlier trials can never read as current.
func (ws *Workspace) reclaim() {
	k := &ws.kern
	if k.g == nil {
		return
	}
	ws.curList, ws.newList, ws.candList = k.curList, k.newList, k.candList
	ws.epoch = k.epoch
	if k.bufs != nil {
		ws.bufs = k.bufs
	}
}

// acquire resets ws for a kernel on an n-vertex graph and hands its
// buffers to ws.kern, which the caller finishes initialising.
func (ws *Workspace) acquire(n, workers int, kind Kind) *Kernel {
	ws.reclaim()
	if ws.n != n {
		ws.cur = bitset.New(n)
		ws.nextPlain = bitset.New(n)
		ws.stamp = make([]uint32, n)
		ws.epoch = 0
		ws.covered = nil
		ws.scratch = nil
		ws.nextAtomic = nil
		ws.curList = ws.curList[:0]
		ws.newList = ws.newList[:0]
		ws.candList = ws.candList[:0]
		ws.n = n
	} else {
		ws.cur.Reset()
		ws.nextPlain.Reset()
		// The tiled paths rely on the next sets being all-zero at kernel
		// construction (zero-after-fold invariant); a legacy flat dense
		// round of the previous kernel can leave the atomic set dirty.
		if ws.nextAtomic != nil {
			ws.nextAtomic.Reset()
		}
	}
	if kind == Cobra {
		if ws.covered == nil {
			ws.covered = bitset.New(n)
		} else {
			ws.covered.Reset()
		}
	}
	if workers > 1 {
		if len(ws.bufs) < workers {
			ws.bufs = append(ws.bufs, make([][]int32, workers-len(ws.bufs))...)
		}
		if len(ws.sentParts) < workers {
			ws.sentParts = make([]int64, workers)
		}
		if ws.scratch == nil {
			ws.scratch = bitset.New(n)
		}
		if kind == Cobra && ws.nextAtomic == nil {
			ws.nextAtomic = bitset.NewAtomic(n)
		}
	}

	k := &ws.kern
	*k = Kernel{
		cur:       ws.cur,
		nextPlain: ws.nextPlain,
		stamp:     ws.stamp,
		epoch:     ws.epoch,
		curList:   ws.curList[:0],
		newList:   ws.newList[:0],
		candList:  ws.candList[:0],
	}
	if kind == Cobra {
		k.covered = ws.covered
	}
	if workers > 1 {
		k.bufs = ws.bufs[:workers]
		k.sentParts = ws.sentParts[:workers]
		k.scratch = ws.scratch
		if kind == Cobra {
			k.nextAtomic = ws.nextAtomic
		}
	}
	return k
}

// tileScratch returns per-tile counter scratch of the given length,
// growing the backing arrays only when a kernel needs more tiles than any
// predecessor.
func (ws *Workspace) tileScratch(tiles int) ([]int32, []int64, []int32) {
	if cap(ws.tileN) < tiles {
		ws.tileN = make([]int32, tiles)
		ws.tileVol = make([]int64, tiles)
		ws.tileNew = make([]int32, tiles)
	}
	return ws.tileN[:tiles], ws.tileVol[:tiles], ws.tileNew[:tiles]
}
