package engine

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/repro/cobra/internal/xrand"
)

// Tiled dense rounds. The flat dense scan (cobra.go / bips.go) treats the
// frontier bitset as one word array: one goroutine per static chunk, one
// shared atomic next set, and a separate Θ(n) pass afterwards to recount
// the frontier. At 2·10^7 vertices that shape stops scaling — every worker
// streams the whole adjacency range through a shared L3 while the
// per-round goroutine spawns and the recount pass cost allocations and a
// full extra scan.
//
// The tiled path shards a dense round across cache-sized word tiles
// (DefaultTileWords words of 64 vertices each, sized so one tile's bitset
// words plus its slice of the CSR offset array sit inside L2). Tiles are
// pulled off an atomic cursor by a pool of persistent worker goroutines —
// work-stealing granularity without per-round spawns — and every per-tile
// pass fuses its bookkeeping (next-frontier popcount, frontier volume,
// newly-covered count) into the same scan that touches the words, storing
// the partial sums in per-tile scratch. The partials are folded serially
// in ascending tile order after the barrier, so the trajectory and every
// derived statistic stay a pure function of the seed: which worker ran a
// tile is invisible, the fold order is fixed, and the per-(round, vertex)
// draws are the same stateless streams the flat paths consume.
//
// COBRA needs two barriers (pushes cross tile boundaries, so the scan
// phase must complete before the fold phase may claim next words); BIPS
// pulls are tile-local writes, so one phase suffices and the frontier
// swap is a pointer exchange instead of an O(n) copy.
//
// Invariant (zero-after-fold): between tiled COBRA rounds the next sets
// (nextPlain serial, nextAtomic parallel) are all-zero — each fold zeroes
// the words it consumes, and the workspace resets both sets when a kernel
// is (re)acquired, so no round ever pays an up-front Θ(n) Reset.

// DefaultTileWords is the dense tile width in 64-vertex bitset words. One
// tile touches its frontier, next and covered words (3·8 B/word) plus the
// CSR offset entries of its vertices (64·4 B/word), ≈ 280 B/word, so 4096
// words ≈ 1.1 MiB — inside a 2 MiB L2 with room left for the adjacency
// stream. The serial sweep (BenchmarkEngineTileWidth in tile_test.go,
// 2^20-vertex scale-free graph) is flat within noise from 256 to 16384
// words, so the default sits where the per-core working set stays
// L2-resident for the parallel pool without inflating the tile count the
// cursor has to hand out.
const DefaultTileWords = 4096

// Per-worker floor for fanning a round out (see parallelRounds): rounds
// below minParallelItems stay serial outright, and wider rounds use at
// most one worker per minItemsPerWorker items so narrow parallel rounds
// stop losing to serial on spawn-and-barrier overhead. Measured with
// BenchmarkEngineParallelFloor (4096-item sparse round, Chord(2^18, 4)):
// ~75 ns of draw work per item versus ~7 µs of goroutine handoff per
// extra worker, so a worker needs ≈ 100 items just to break even and
// 1024 to make the detour clearly worthwhile.
const (
	minParallelItems  = 2048
	minItemsPerWorker = 1024
)

// tileJob selects which per-tile pass a pool worker runs.
type tileJob int

const (
	jobCobraScan tileJob = iota // draw pushes into nextAtomic
	jobCobraFold                // claim next words into cur/covered, count
	jobBipsScan                 // re-decide a tile's vertices, count
)

// roundPool is a set of persistent worker goroutines shared by every
// parallel tiled round of a kernel (or of all kernels backed by one
// workspace). Spawning goroutines per round allocates their closures on
// every round; the pool spawns once and parks workers on an unbuffered
// channel, so steady-state rounds are allocation-free. run is only ever
// called from the kernel's owner goroutine (kernels are single-owner), so
// the job fields need no lock: the channel sends publish them and the
// WaitGroup barrier collects the results.
type roundPool struct {
	spawned int
	work    chan int      // worker ids for the current pass
	quit    chan struct{} // closed by the owner's finalizer
	kern    *Kernel
	job     tileJob
	wg      sync.WaitGroup
}

func newRoundPool() *roundPool {
	return &roundPool{work: make(chan int), quit: make(chan struct{})}
}

func (p *roundPool) worker() {
	for {
		select {
		case w := <-p.work:
			p.kern.runTileJob(p.job, w)
			p.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// run executes one pass: nw workers drain the kernel's tile cursor.
func (p *roundPool) run(k *Kernel, job tileJob, nw int) {
	for p.spawned < nw {
		go p.worker()
		p.spawned++
	}
	k.tileCur = 0
	p.kern, p.job = k, job
	p.wg.Add(nw)
	for w := 0; w < nw; w++ {
		p.work <- w
	}
	p.wg.Wait()
	p.kern = nil
}

// stop releases the pool's goroutines; registered as the finalizer of the
// pool's owner (a fresh Kernel or a Workspace).
func (p *roundPool) stop() { close(p.quit) }

func (k *Kernel) runTileJob(job tileJob, w int) {
	switch job {
	case jobCobraScan:
		k.sentParts[w] = k.cobraTileScanAtomic()
	case jobCobraFold:
		k.cobraTileFold(true)
	default:
		k.bipsTileScan()
	}
}

// tileSpan returns tile t's backing-word range [lo, hi).
func (k *Kernel) tileSpan(t int) (lo, hi int) {
	lo = t * k.tileWords
	hi = lo + k.tileWords
	if nw := k.cur.WordCount(); hi > nw {
		hi = nw
	}
	return lo, hi
}

// nextTile claims the next unprocessed tile index, or -1 when drained.
func (k *Kernel) nextTile() int {
	t := int(atomic.AddInt64(&k.tileCur, 1)) - 1
	if t >= k.tiles {
		return -1
	}
	return t
}

// cobraDenseTiled runs one COBRA round over word tiles: a scan phase that
// draws every frontier vertex's pushes, a barrier, then a fold phase that
// claims the next words into cur, folds them into covered, and fuses the
// per-tile frontier/volume/newly-covered counts. The per-tile partials are
// folded serially in ascending tile order.
func (k *Kernel) cobraDenseTiled() {
	nw := k.parallelRounds(k.frontierN)
	if nw > k.tiles {
		nw = k.tiles
	}
	var sent int64
	if nw <= 1 {
		sent = k.cobraTileScanPlain()
		k.tileCur = 0
		k.cobraTileFold(false)
	} else {
		k.pool.run(k, jobCobraScan, nw)
		for w := 0; w < nw; w++ {
			sent += k.sentParts[w]
		}
		k.pool.run(k, jobCobraFold, nw)
	}
	frontierN, newCov := 0, 0
	vol := 0
	for t := 0; t < k.tiles; t++ {
		frontierN += int(k.tileN[t])
		vol += int(k.tileVol[t])
		newCov += int(k.tileNew[t])
	}
	k.frontierN = frontierN
	k.frontierVol = vol
	k.nCov += newCov
	k.sent += sent
	k.coalesced += sent - int64(frontierN)
	k.curListOK = false
	k.volOK = true
}

// cobraTileScanPlain is the serial scan phase: tiles in cursor order on
// the calling goroutine, pushes into the plain next set (zero on entry by
// the zero-after-fold invariant).
func (k *Kernel) cobraTileScanPlain() int64 {
	k.tileCur = 0
	var sent int64
	for {
		t := k.nextTile()
		if t < 0 {
			return sent
		}
		lo, hi := k.tileSpan(t)
		for wi := lo; wi < hi; wi++ {
			word := k.cur.Word(wi)
			base := wi * 64
			for word != 0 {
				v := base + bits.TrailingZeros64(word)
				word &= word - 1
				rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
				b := k.drawCount(&rng)
				deg := k.g.Degree(v)
				for i := 0; i < b; i++ {
					k.nextPlain.Set(k.drawTarget(v, deg, &rng))
				}
				sent += int64(b)
			}
		}
	}
}

// cobraTileScanAtomic is the pool-worker scan phase: identical draws, but
// only pushes that cross the tile boundary pay for the atomic next set.
// Targets inside the scanned tile land in the plain next set — the scanning
// worker owns the tile's words until the barrier, so those stores are
// race-free — which makes rounds on locally-connected graphs (grids, tori,
// circulants) almost entirely lock-free. The fold ORs both sets back
// together.
func (k *Kernel) cobraTileScanAtomic() int64 {
	var sent int64
	for {
		t := k.nextTile()
		if t < 0 {
			return sent
		}
		lo, hi := k.tileSpan(t)
		vlo, vhi := lo*64, hi*64
		for wi := lo; wi < hi; wi++ {
			word := k.cur.Word(wi)
			base := wi * 64
			for word != 0 {
				v := base + bits.TrailingZeros64(word)
				word &= word - 1
				rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
				b := k.drawCount(&rng)
				deg := k.g.Degree(v)
				for i := 0; i < b; i++ {
					tgt := k.drawTarget(v, deg, &rng)
					if tgt >= vlo && tgt < vhi {
						k.nextPlain.Set(tgt)
					} else {
						k.nextAtomic.Set(tgt)
					}
				}
				sent += int64(b)
			}
		}
	}
}

// cobraTileFold is the fold phase: for every word of its claimed tiles it
// moves the next word into cur (zeroing the source, restoring the
// zero-after-fold invariant), ORs it into covered, and accumulates the
// tile's next-frontier popcount, frontier volume and newly-covered count
// into the per-tile scratch. Tiles own disjoint word ranges, so all writes
// are race-free without atomics on cur/covered.
func (k *Kernel) cobraTileFold(fromAtomic bool) {
	for {
		t := k.nextTile()
		if t < 0 {
			return
		}
		lo, hi := k.tileSpan(t)
		var tn, tnew int32
		var tvol int64
		for wi := lo; wi < hi; wi++ {
			w := k.nextPlain.Word(wi)
			if w != 0 {
				k.nextPlain.SetWord(wi, 0)
			}
			if fromAtomic {
				if aw := k.nextAtomic.Word(wi); aw != 0 {
					k.nextAtomic.ClearWord(wi)
					w |= aw
				}
			}
			k.cur.SetWord(wi, w)
			if w == 0 {
				continue
			}
			old := k.covered.Word(wi)
			if newBits := w &^ old; newBits != 0 {
				k.covered.SetWord(wi, old|w)
				tnew += int32(bits.OnesCount64(newBits))
			}
			tn += int32(bits.OnesCount64(w))
			base := wi * 64
			for bw := w; bw != 0; bw &= bw - 1 {
				tvol += int64(k.g.Degree(base + bits.TrailingZeros64(bw)))
			}
		}
		k.tileN[t], k.tileVol[t], k.tileNew[t] = tn, tvol, tnew
	}
}

// bipsDenseTiled runs one BIPS round over vertex tiles. Every pull reads
// the (immutable this round) current set and writes only its own tile's
// next words, so a single phase suffices; the frontier swap afterwards is
// a pointer exchange, and the fused per-tile counts make FrontierVolume
// O(1) without rebuilding the member mirror.
func (k *Kernel) bipsDenseTiled() {
	nw := k.parallelRounds(k.g.N())
	if nw > k.tiles {
		nw = k.tiles
	}
	if nw <= 1 {
		k.tileCur = 0
		k.bipsTileScan()
	} else {
		k.pool.run(k, jobBipsScan, nw)
	}
	k.cur, k.nextPlain = k.nextPlain, k.cur
	frontierN := 0
	vol := 0
	for t := 0; t < k.tiles; t++ {
		frontierN += int(k.tileN[t])
		vol += int(k.tileVol[t])
	}
	k.frontierN = frontierN
	k.frontierVol = vol
	k.curListOK = false
	k.volOK = true
}

// bipsTileScan re-decides the vertices of its claimed tiles, zeroing each
// tile's next words first (the swap leaves the previous frontier behind)
// and fusing the tile's frontier count and volume into the scratch.
func (k *Kernel) bipsTileScan() {
	n := k.g.N()
	for {
		t := k.nextTile()
		if t < 0 {
			return
		}
		lo, hi := k.tileSpan(t)
		for wi := lo; wi < hi; wi++ {
			k.nextPlain.SetWord(wi, 0)
		}
		var tn int32
		var tvol int64
		uhi := hi * 64
		if uhi > n {
			uhi = n
		}
		for u := lo * 64; u < uhi; u++ {
			if u == k.source || k.bipsInfected(u) {
				k.nextPlain.Set(u)
				tn++
				tvol += int64(k.g.Degree(u))
			}
		}
		k.tileN[t], k.tileVol[t] = tn, tvol
	}
}

// attachPool wires the persistent round pool into a kernel that can run
// parallel tiled rounds. Workspace-backed kernels share the workspace's
// pool (spawned goroutines amortise across every trial it backs); a fresh
// kernel owns its own. Either owner's finalizer releases the goroutines.
func (k *Kernel) attachPool(ws *Workspace) {
	if ws != nil {
		if ws.pool == nil {
			ws.pool = newRoundPool()
			runtime.SetFinalizer(ws, func(w *Workspace) { w.pool.stop() })
		}
		k.pool = ws.pool
		return
	}
	k.pool = newRoundPool()
	runtime.SetFinalizer(k, func(k2 *Kernel) { k2.pool.stop() })
}
