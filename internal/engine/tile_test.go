package engine

import (
	"fmt"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Tiled dense rounds must be byte-identical to the legacy flat scan for
// every tile width, including the degenerate ones: a single-word tile, a
// width that does not divide the word count, and a width larger than the
// whole graph (one tile total). Exercised serial and parallel, both kinds.
func TestTileWordsEdgeCases(t *testing.T) {
	ba, err := graph.BarabasiAlbert(777, 3, xrand.New(2)) // 13 words, non-dividing widths
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Hypercube(9), // 8 words
		ba,
		graph.Complete(50), // n smaller than one 64-vertex word
	}
	for _, g := range graphs {
		for _, tileWords := range []int{1, 3, 4096} {
			for _, workers := range []int{1, 4} {
				par := Params{Branch: 2, Mode: ForceDense, Workers: workers}

				par.TileWords = -1
				ref, err := NewCobra(g, par, []int{0}, 77)
				if err != nil {
					t.Fatal(err)
				}
				par.TileWords = tileWords
				tiled, err := NewCobra(g, par, []int{0}, 77)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("cobra %s tw=%d w=%d", g.Name(), tileWords, workers)
				sameTrajectory(t, label, ref, tiled, 1<<20)

				par.TileWords = -1
				refB, err := NewBips(g, par, 0, 78)
				if err != nil {
					t.Fatal(err)
				}
				par.TileWords = tileWords
				tiledB, err := NewBips(g, par, 0, 78)
				if err != nil {
					t.Fatal(err)
				}
				label = fmt.Sprintf("bips %s tw=%d w=%d", g.Name(), tileWords, workers)
				sameBipsTrajectory(t, label, refB, tiledB, 1<<20)
			}
		}
	}
}

// bipsTrajectory runs a BIPS kernel for a fixed number of rounds (BIPS
// need not terminate) and returns the per-round frontier sizes + volumes.
func bipsTrajectory(k *Kernel, rounds int) (sizes, vols []int) {
	for r := 0; r < rounds; r++ {
		k.Step()
		sizes = append(sizes, k.FrontierCount())
		vols = append(vols, k.FrontierVolume())
	}
	return sizes, vols
}

func sameBipsTrajectory(t *testing.T, label string, a, b *Kernel, _ int) {
	t.Helper()
	const rounds = 120
	as, av := bipsTrajectory(a, rounds)
	bs, bv := bipsTrajectory(b, rounds)
	for i := range as {
		if as[i] != bs[i] || av[i] != bv[i] {
			t.Fatalf("%s: round %d differs: |A| %d/%d vol %d/%d",
				label, i+1, as[i], bs[i], av[i], bv[i])
		}
	}
	if !a.Frontier().Equal(b.Frontier()) {
		t.Fatalf("%s: final infected sets differ", label)
	}
}

// The fused per-tile bookkeeping (frontier count, volume, covered fold)
// must agree with a from-scratch recount every tiled round, for widths
// that stress partial tiles.
func TestTiledBookkeepingInvariants(t *testing.T) {
	g, err := graph.BarabasiAlbert(300, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tileWords := range []int{1, 2, 4096} {
		k, err := NewCobra(g, Params{Branch: 2, Mode: ForceDense, Workers: 2, TileWords: tileWords}, []int{0, 5}, 11)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 60 && !k.Complete(); r++ {
			k.Step()
			if got, want := k.FrontierCount(), k.Frontier().Count(); got != want {
				t.Fatalf("tw=%d round %d: FrontierCount %d != popcount %d", tileWords, r+1, got, want)
			}
			vol := 0
			k.Frontier().ForEach(func(v int) { vol += g.Degree(v) })
			if got := k.FrontierVolume(); got != vol {
				t.Fatalf("tw=%d round %d: FrontierVolume %d != recount %d", tileWords, r+1, got, vol)
			}
			if got, want := k.CoveredCount(), k.Covered().Count(); got != want {
				t.Fatalf("tw=%d round %d: CoveredCount %d != popcount %d", tileWords, r+1, got, want)
			}
		}
	}
}

// Workspace reuse must stay invisible to tiled trajectories — including
// when the previous kernel ran the legacy flat path (whose parallel rounds
// leave the atomic next set dirty) and when graph sizes change under one
// workspace.
func TestTiledWorkspaceReuse(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Hypercube(11),
		graph.Grid(30, 30),
	}
	ws := NewWorkspace()
	for trial := 0; trial < 3; trial++ {
		for _, g := range graphs {
			seed := uint64(9000*trial + g.N())

			// A legacy untiled parallel kernel first: its dense rounds leave
			// nextAtomic non-zero, which the next acquire must clear before
			// a tiled kernel can rely on the zero-after-fold invariant.
			dirty, err := NewCobraWith(ws, g, Params{Branch: 2, Mode: ForceDense, Workers: 4, TileWords: -1}, []int{0}, seed)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 5; r++ {
				dirty.Step()
			}

			fresh, err := NewCobra(g, Params{Branch: 2, Workers: 4}, []int{0}, seed)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := NewCobraWith(ws, g, Params{Branch: 2, Workers: 4}, []int{0}, seed)
			if err != nil {
				t.Fatal(err)
			}
			sameTrajectory(t, "tiled cobra "+g.Name(), fresh, reused, 1<<20)

			freshB, err := NewBips(g, Params{Branch: 2, Workers: 4}, 0, seed^0x7e57)
			if err != nil {
				t.Fatal(err)
			}
			reusedB, err := NewBipsWith(ws, g, Params{Branch: 2, Workers: 4}, 0, seed^0x7e57)
			if err != nil {
				t.Fatal(err)
			}
			sameBipsTrajectory(t, "tiled bips "+g.Name(), freshB, reusedB, 1<<20)
		}
	}
}

// Wide tiled rounds must be allocation-free under workspace reuse, with
// and without the parallel pool (acceptance criterion of the tiled
// kernel). The pool's goroutines are spawned before measuring; steady
// state must not allocate.
func TestTiledRoundsZeroAlloc(t *testing.T) {
	g := graph.Hypercube(14) // n = 16384, wide dense rounds
	for _, workers := range []int{1, 4} {
		for _, kind := range []Kind{Cobra, Bips} {
			ws := NewWorkspace()
			par := Params{Branch: 2, Mode: ForceDense, Workers: workers}
			var k *Kernel
			var err error
			if kind == Cobra {
				k, err = NewCobraWith(ws, g, par, []int{0}, 5)
			} else {
				k, err = NewBipsWith(ws, g, par, 0, 5)
			}
			if err != nil {
				t.Fatal(err)
			}
			// Warm up until the frontier saturates (a b=2 frontier roughly
			// doubles per round) so the measured rounds are genuinely wide,
			// and the pool goroutines are spawned.
			for r := 0; r < 20; r++ {
				k.Step()
			}
			if k.FrontierCount() < g.N()/3 {
				t.Fatalf("warm-up left frontier at %d of %d", k.FrontierCount(), g.N())
			}
			avg := testing.AllocsPerRun(50, func() { k.Step() })
			if avg != 0 {
				t.Errorf("kind=%d workers=%d: %v allocs per tiled round, want 0", kind, workers, avg)
			}
		}
	}
}

// BenchmarkEngineCrossover measures one sparse round against one tiled
// dense round at controlled frontier fractions; the crossover constants
// (DefaultDenseDiv, the BIPS volume rule) cite this sweep. The frontier is
// reinstalled outside the timer every iteration so each measured round
// sees exactly the fraction under test.
func BenchmarkEngineCrossover(b *testing.B) {
	g := graph.Chord(1<<18, 4) // 8-regular circulant
	n := g.N()
	members := func(frac int) []int {
		m := make([]int, 0, n/frac)
		for i := 0; i < n; i += frac {
			m = append(m, i)
		}
		return m
	}
	for _, kind := range []Kind{Cobra, Bips} {
		kindName := "cobra"
		if kind == Bips {
			kindName = "bips"
		}
		for _, mode := range []Mode{ForceSparse, ForceDense} {
			repr := "sparse"
			if mode == ForceDense {
				repr = "dense"
			}
			for _, frac := range []int{512, 256, 128, 96, 64, 48, 32, 16, 12, 8, 6, 4, 2} {
				b.Run(fmt.Sprintf("%s/%s/frac=1_%d", kindName, repr, frac), func(b *testing.B) {
					ws := NewWorkspace()
					par := Params{Branch: 2, Mode: mode, Workers: 1}
					var k *Kernel
					var err error
					if kind == Cobra {
						k, err = NewCobraWith(ws, g, par, []int{0}, 5)
					} else {
						k, err = NewBipsWith(ws, g, par, 0, 5)
					}
					if err != nil {
						b.Fatal(err)
					}
					mem := members(frac)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						k.InstallFrontier(mem)
						b.StartTimer()
						k.Step()
					}
				})
			}
		}
	}
}

// The parallel fan-out floor: rounds must never hand a worker less than
// minItemsPerWorker items, and sub-minParallelItems rounds stay serial.
func TestParallelRoundsFloor(t *testing.T) {
	g := graph.Hypercube(9)
	k, err := NewCobra(g, Params{Branch: 2, Workers: 8}, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ items, want int }{
		{0, 1},
		{minParallelItems - 1, 1},
		{minParallelItems, minParallelItems / minItemsPerWorker},
		{4 * minItemsPerWorker, 4},
		{100 * minItemsPerWorker, 8}, // capped at Workers
	}
	for _, c := range cases {
		if got := k.parallelRounds(c.items); got != c.want {
			t.Errorf("parallelRounds(%d) = %d, want %d", c.items, got, c.want)
		}
	}
	serial, err := NewCobra(g, Params{Branch: 2, Workers: 1}, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.parallelRounds(1 << 20); got != 1 {
		t.Errorf("Workers=1 parallelRounds = %d, want 1", got)
	}
}

// BenchmarkEngineParallelFloor pins the narrow-round fan-out cost: a
// ~4k-item sparse round under a Workers=8 kernel now fans to
// items/minItemsPerWorker workers instead of all eight, so the per-worker
// slice stays above the goroutine handoff cost. Compare the serial
// sub-benchmark to see the remaining overhead.
func BenchmarkEngineParallelFloor(b *testing.B) {
	g := graph.Chord(1<<18, 4)
	members := make([]int, 4096)
	for i := range members {
		members[i] = i * (g.N() / len(members))
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			ws := NewWorkspace()
			k, err := NewCobraWith(ws, g, Params{Branch: 2, Mode: ForceSparse, Workers: workers}, []int{0}, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				k.InstallFrontier(members)
				b.StartTimer()
				k.Step()
			}
		})
	}
}

// BenchmarkEngineTileWidth sweeps the tile width on a wide dense round;
// the DefaultTileWords comment in tile.go cites this sweep.
func BenchmarkEngineTileWidth(b *testing.B) {
	g, err := graph.BarabasiAlbert(1<<20, 4, xrand.New(3))
	if err != nil {
		b.Fatal(err)
	}
	for _, tw := range []int{256, 1024, 2048, 4096, 8192, 16384} {
		b.Run(fmt.Sprintf("tw=%d", tw), func(b *testing.B) {
			ws := NewWorkspace()
			k, err := NewCobraWith(ws, g, Params{Branch: 2, Mode: ForceDense, Workers: 1, TileWords: tw}, []int{0}, 9)
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < 25; r++ { // saturate the frontier first
				k.Step()
			}
			if k.FrontierCount() < g.N()/3 {
				b.Fatalf("warm-up left frontier at %d of %d", k.FrontierCount(), g.N())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
	}
}
