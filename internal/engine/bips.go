package engine

import (
	"sync"

	"github.com/repro/cobra/internal/xrand"
)

// BIPS round kernels. One round: every vertex u pulls b (or b+1 with
// probability Rho) uniform random neighbours — itself with probability 1/2
// per pull under Lazy — and joins A_{t+1} iff some pull lies in A_t; the
// persistent source is always infected. Unlike COBRA the frontier can
// shrink: every vertex re-decides each round.
//
// Only vertices in N(A_t) ∪ {source} — plus A_t itself under Lazy, where a
// self-pull can hit — can possibly join A_{t+1}; every other vertex pulls
// from a set disjoint from A_t and always decides "not infected". The
// sparse path therefore evaluates exactly that candidate superset, in
// Θ(vol(A_t)) work, and agrees bit for bit with the dense Θ(n) scan
// because each vertex's decision is a pure function of its own stream.

// bipsInfected draws u's pulls from its (round, u) stream and reports
// whether any lies in the current infected set. Early exit on the first
// hit is safe: the rest of the stream is never consumed elsewhere.
func (k *Kernel) bipsInfected(u int) bool {
	rng := xrand.StreamValue(k.seed, streamKey(k.round, u))
	b := k.drawCount(&rng)
	deg := k.g.Degree(u)
	for i := 0; i < b; i++ {
		if k.cur.Contains(k.drawTarget(u, deg, &rng)) {
			return true
		}
	}
	return false
}

// bipsSparse evaluates only the candidate superset N(A) ∪ {source}
// (∪ A under Lazy), built by stamping the frontier's neighbourhoods.
func (k *Kernel) bipsSparse() {
	if !k.curListOK {
		k.ensureList()
	}
	k.bumpEpoch()
	k.candList = k.candList[:0]
	if k.stamp[k.source] != k.epoch {
		k.stamp[k.source] = k.epoch
		k.candList = append(k.candList, int32(k.source))
	}
	for _, v32 := range k.curList {
		v := int(v32)
		if k.par.Lazy && k.stamp[v] != k.epoch {
			k.stamp[v] = k.epoch
			k.candList = append(k.candList, v32)
		}
		for _, w := range k.g.Neighbors(v) {
			if k.stamp[w] != k.epoch {
				k.stamp[w] = k.epoch
				k.candList = append(k.candList, w)
			}
		}
	}
	k.newList = k.newList[:0]
	if nw := k.parallelRounds(len(k.candList)); nw <= 1 {
		for _, u32 := range k.candList {
			u := int(u32)
			if u == k.source || k.bipsInfected(u) {
				k.newList = append(k.newList, u32)
			}
		}
	} else {
		k.bipsEvalParallel(nw)
	}
	// Swap the frontier: clear the old members, set the new. All reads of
	// k.cur above see A_t because newList is built on the side.
	for _, v := range k.curList {
		k.cur.Clear(int(v))
	}
	vol := 0
	for _, w32 := range k.newList {
		w := int(w32)
		k.cur.Set(w)
		vol += k.g.Degree(w)
	}
	k.frontierN = len(k.newList)
	k.frontierVol = vol
	k.curList, k.newList = k.newList, k.curList
	k.curListOK = true
	k.volOK = true
}

// bipsEvalParallel fans candidate decisions across workers into worker-
// local buffers (candidates are distinct, so no claims are needed).
func (k *Kernel) bipsEvalParallel(nw int) {
	var wg sync.WaitGroup
	chunk := (len(k.candList) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(k.candList) {
			k.bufs[w] = k.bufs[w][:0]
			continue
		}
		hi := lo + chunk
		if hi > len(k.candList) {
			hi = len(k.candList)
		}
		wg.Add(1)
		go func(w int, cands []int32) {
			defer wg.Done()
			buf := k.bufs[w][:0]
			for _, u32 := range cands {
				u := int(u32)
				if u == k.source || k.bipsInfected(u) {
					buf = append(buf, u32)
				}
			}
			k.bufs[w] = buf
		}(w, k.candList[lo:hi])
	}
	wg.Wait()
	for w := 0; w < nw; w++ {
		k.newList = append(k.newList, k.bufs[w]...)
	}
}

// bipsDense re-decides every vertex in a flat scan. Workers own
// word-aligned vertex ranges, so their writes to the plain next bitset
// touch disjoint words and need no atomics.
func (k *Kernel) bipsDense() {
	n := k.g.N()
	k.nextPlain.Reset()
	if nw := k.parallelRounds(n); nw <= 1 {
		for u := 0; u < n; u++ {
			if u == k.source || k.bipsInfected(u) {
				k.nextPlain.Set(u)
			}
		}
	} else {
		var wg sync.WaitGroup
		nWords := (n + 63) / 64
		chunkW := (nWords + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo := w * chunkW * 64
			if lo >= n {
				break
			}
			hi := lo + chunkW*64
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for u := lo; u < hi; u++ {
					if u == k.source || k.bipsInfected(u) {
						k.nextPlain.Set(u)
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	k.cur.CopyFrom(k.nextPlain)
	k.curListOK = false
	k.ensureList() // rebuild members + volume in one scan
	k.frontierN = len(k.curList)
}
