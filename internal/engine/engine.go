// Package engine implements the unified adaptive frontier kernel shared by
// the COBRA walk (internal/core) and its BIPS epidemic dual (internal/bips).
//
// Both processes are frontier processes: each round is generated from the
// current active vertex set. COBRA pushes b particles from every active
// vertex; BIPS re-samples every vertex and keeps those that pull from an
// infected neighbour. The kernel runs one round in one of two
// representations and, in Adaptive mode, picks per round — the
// direction-optimizing-BFS idea applied to branching walks:
//
//   - Sparse: the frontier is an active-vertex slice. Next-frontier
//     deduplication uses a generation-stamped array, so a round touches
//     only O(|frontier|·b) memory (COBRA), respectively O(vol(frontier))
//     (BIPS candidate construction) — no Θ(n) scans or bitset resets.
//     This is the winning shape while the frontier is a small fraction of
//     the graph (early rounds, b = 1 walks, long sparse tails).
//   - Dense: the frontier lives in its bitset and rounds are word-level
//     scans: 64 vertices per fetched word, with the per-word fetch hoisted
//     out of the per-vertex draw loop, and no member slice is ever
//     materialised. This wins once the frontier spans a constant fraction
//     of the graph (wide mid-phase rounds on expanders and the scale-free
//     families), where the sparse slice and stamp traffic costs more than
//     scanning n/64 words.
//
// Determinism contract: the randomness of every (round, vertex) pair is
// drawn from a stateless stream keyed by the master seed,
// xrand.NewStream(seed, round<<32|vertex). A vertex's decisions in a round
// are therefore a pure function of (seed, round, vertex, frontier), so the
// trajectory — every per-round frontier set and derived statistic — is
// identical across representations (sparse, dense, adaptive) and across
// any number of workers, including the serial path. It depends only on
// the seed. This keying is byte-compatible with the pre-engine parallel
// processes, whose trajectories it preserves exactly.
//
// Dense rounds run tiled by default (tile.go): cache-sized word tiles
// pulled off an atomic cursor by persistent pool workers, with per-tile
// frontier/volume counts fused into the scans and folded in tile order.
//
// The crossover defaults (|C_t| > n/64 for COBRA, vol(A_t) > n for BIPS)
// were re-measured on the tiled kernel with BenchmarkEngineCrossover in
// tile_test.go; see doc.go ("Performance notes") for guidance.
package engine

import (
	"errors"
	"fmt"
	"runtime"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
)

// Errors returned by the kernel constructors.
var (
	ErrConfig       = errors.New("engine: invalid configuration")
	ErrDisconnected = errors.New("engine: graph must be connected")
	ErrStart        = errors.New("engine: invalid start set")
)

// Kind selects the frontier process the kernel simulates.
type Kind int

const (
	// Cobra is the coalescing-branching random walk: every frontier
	// vertex pushes b particles to random neighbours; the targets form
	// the next frontier and accumulate into the covered set.
	Cobra Kind = iota
	// Bips is the epidemic dual: every vertex pulls b random neighbours
	// and joins the next frontier iff one is currently infected; the
	// persistent source is always infected.
	Bips
)

// Mode selects the frontier representation policy.
type Mode int

const (
	// Adaptive switches between sparse and dense per round on the
	// measured crossover; the default and the recommended setting.
	Adaptive Mode = iota
	// ForceSparse always uses the active-slice representation.
	ForceSparse
	// ForceDense always uses the word-scan representation.
	ForceDense
)

// DefaultDenseDiv is the COBRA crossover divisor: a round goes dense when
// |frontier| > n/DefaultDenseDiv. Re-measured on the tiled kernel
// (BenchmarkEngineCrossover in tile_test.go, 8-regular 2^18-vertex
// circulant): both representations pay the same |C_t|·b draw cost, but the
// tiled scan-and-fold costs less per member than the sparse stamp/dedup
// traffic, so dense wins everywhere above ≈ n/128 and ties near n/96; 64
// keeps a safety margin on the sparse side of that tie. (The PR 1 flat
// kernel measured 8 here; the tiled fold moved the crossover.)
const DefaultDenseDiv = 64

// DefaultMaxRounds is the shared default cap on a single run over an
// n-vertex graph: 64·n·log2(n)+64 rounds, far above every bound proven in
// the paper, so hitting it signals a stuck process (e.g. non-lazy COBRA
// on a bipartite graph with an unlucky parity) rather than slow covering.
// core.Config, bips.Config and batch campaigns all apply this default;
// keep them on this one definition.
func DefaultMaxRounds(n int) int {
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	return 64*n*lg + 64
}

// Params configures a kernel. Branch/Rho/Lazy have the meaning shared by
// the core and bips packages (the duality requires them to match).
type Params struct {
	// Branch is the integer branching factor b >= 1.
	Branch int
	// Rho adds a fractional extra branch with probability Rho ∈ [0, 1].
	Rho float64
	// Lazy makes each selection stay at the sampling vertex with
	// probability 1/2.
	Lazy bool
	// Mode picks the representation policy (default Adaptive).
	Mode Mode
	// Workers bounds round-level parallelism: 1 keeps every round on the
	// calling goroutine; <= 0 selects GOMAXPROCS. Worker count never
	// affects the trajectory, only wall-clock time.
	Workers int
	// DenseDiv overrides the COBRA sparse→dense crossover (dense when
	// |frontier|·DenseDiv > n); 0 selects DefaultDenseDiv.
	DenseDiv int
	// TileWords overrides the dense tile width in 64-vertex bitset words:
	// 0 selects DefaultTileWords (sized to L2, see tile.go), a positive
	// value forces that width, and -1 disables tiling entirely, keeping
	// dense rounds on the legacy flat scan (the reference path for the
	// equivalence suites and crossover measurements). Like Workers, the
	// setting never affects the trajectory, only wall-clock time.
	TileWords int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Branch < 1 {
		return fmt.Errorf("%w: Branch must be >= 1, got %d", ErrConfig, p.Branch)
	}
	if p.Rho < 0 || p.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1], got %v", ErrConfig, p.Rho)
	}
	if p.DenseDiv < 0 {
		return fmt.Errorf("%w: DenseDiv must be >= 0, got %d", ErrConfig, p.DenseDiv)
	}
	if p.TileWords < -1 {
		return fmt.Errorf("%w: TileWords must be >= -1, got %d", ErrConfig, p.TileWords)
	}
	return nil
}

// Kernel is one frontier simulation. It is not safe for concurrent use by
// multiple goroutines (its own workers synchronise internally).
type Kernel struct {
	g        *graph.Graph
	kind     Kind
	par      Params
	seed     uint64
	source   int // Bips only
	workers  int
	denseDiv int

	// Frontier state. cur is always authoritative; curList mirrors it
	// when curListOK (maintained by sparse rounds, rebuilt on demand).
	// frontierVol is trusted when volOK — tiled dense rounds fuse the
	// volume into their word scans, so volOK can hold while the member
	// mirror is stale.
	cur         *bitset.Set
	curList     []int32
	curListOK   bool
	volOK       bool
	frontierN   int
	frontierVol int // Σ deg(v) over the frontier; see FrontierVolume

	// Cobra-only cumulative state.
	covered   *bitset.Set
	nCov      int
	sent      int64
	coalesced int64

	round int

	// Round scratch.
	nextPlain  *bitset.Set
	nextAtomic *bitset.Atomic
	scratch    *bitset.Set
	stamp      []uint32
	epoch      uint32
	newList    []int32
	candList   []int32
	bufs       [][]int32
	sentParts  []int64

	// Tiled dense state (tile.go). tileCur is the shared tile cursor of
	// the in-flight pass; tileN/tileVol/tileNew hold the per-tile partial
	// counts folded serially in tile order after each pass.
	tileWords int // words per tile; 0 disables tiling (legacy flat scan)
	tiles     int
	tileCur   int64
	tileN     []int32
	tileVol   []int64
	tileNew   []int32
	pool      *roundPool

	denseRounds  int
	sparseRounds int
	tiledRounds  int
}

// NewCobra creates a COBRA kernel with initial frontier C_0 = start.
func NewCobra(g *graph.Graph, par Params, start []int, seed uint64) (*Kernel, error) {
	return newCobra(g, par, start, seed, nil)
}

func newCobra(g *graph.Graph, par Params, start []int, seed uint64, ws *Workspace) (*Kernel, error) {
	k, err := newKernel(g, Cobra, par, seed, ws)
	if err != nil {
		return nil, err
	}
	if len(start) == 0 {
		return nil, fmt.Errorf("%w: empty C_0", ErrStart)
	}
	if k.covered == nil { // workspace constructions arrive with a reset set
		k.covered = bitset.New(g.N())
	}
	for _, v := range start {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("%w: vertex %d out of range", ErrStart, v)
		}
		if !k.cur.Contains(v) {
			k.cur.Set(v)
			k.curList = append(k.curList, int32(v))
			k.frontierVol += g.Degree(v)
			k.covered.Set(v)
			k.nCov++
		}
	}
	k.frontierN = len(k.curList)
	k.curListOK = true
	k.volOK = true
	return k, nil
}

// NewBips creates a BIPS kernel with the given persistent source,
// A_0 = {source}.
func NewBips(g *graph.Graph, par Params, source int, seed uint64) (*Kernel, error) {
	return newBips(g, par, source, seed, nil)
}

func newBips(g *graph.Graph, par Params, source int, seed uint64, ws *Workspace) (*Kernel, error) {
	k, err := newKernel(g, Bips, par, seed, ws)
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("%w: source %d out of range", ErrStart, source)
	}
	k.source = source
	k.cur.Set(source)
	k.curList = append(k.curList, int32(source))
	k.frontierN = 1
	k.frontierVol = g.Degree(source)
	k.curListOK = true
	k.volOK = true
	return k, nil
}

func newKernel(g *graph.Graph, kind Kind, par Params, seed uint64, ws *Workspace) (*Kernel, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	// Connectivity is an O(n+m) traversal; a workspace amortizes it to one
	// check per distinct graph across all the trials it backs.
	if ws == nil || ws.checked != g {
		if !g.IsConnected() {
			return nil, fmt.Errorf("%w: %s", ErrDisconnected, g.Name())
		}
		if ws != nil {
			ws.checked = g
		}
	}
	workers := par.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	denseDiv := par.DenseDiv
	if denseDiv == 0 {
		denseDiv = DefaultDenseDiv
	}
	n := g.N()
	var k *Kernel
	if ws != nil {
		k = ws.acquire(n, workers, kind)
	} else {
		k = &Kernel{
			cur:       bitset.New(n),
			nextPlain: bitset.New(n),
			stamp:     make([]uint32, n),
		}
		if workers > 1 {
			k.bufs = make([][]int32, workers)
			k.sentParts = make([]int64, workers)
			k.scratch = bitset.New(n)
			if kind == Cobra {
				k.nextAtomic = bitset.NewAtomic(n)
			}
		}
	}
	k.g = g
	k.kind = kind
	k.par = par
	k.seed = seed
	k.workers = workers
	k.denseDiv = denseDiv
	if tw := par.TileWords; tw >= 0 && par.Mode != ForceSparse {
		if tw == 0 {
			tw = DefaultTileWords
		}
		k.tileWords = tw
		k.tiles = (k.cur.WordCount() + tw - 1) / tw
		if ws != nil {
			k.tileN, k.tileVol, k.tileNew = ws.tileScratch(k.tiles)
		} else {
			k.tileN = make([]int32, k.tiles)
			k.tileVol = make([]int64, k.tiles)
			k.tileNew = make([]int32, k.tiles)
		}
		if workers > 1 {
			k.attachPool(ws)
		}
	}
	return k, nil
}

// streamKey is the per-(round, vertex) stream index; identical to the
// keying of the pre-engine parallel processes, whose trajectories the
// kernel preserves exactly.
func streamKey(round, v int) uint64 {
	return uint64(round)<<32 | uint64(uint32(v))
}

// Round returns the number of completed rounds t.
func (k *Kernel) Round() int { return k.round }

// Frontier returns the live current frontier set (C_t for COBRA, A_t for
// BIPS). Read-only.
func (k *Kernel) Frontier() *bitset.Set { return k.cur }

// FrontierCount returns |C_t| respectively |A_t| without a popcount scan.
func (k *Kernel) FrontierCount() int { return k.frontierN }

// FrontierVolume returns Σ_{v ∈ frontier} deg(v) — d(A_t) in the paper's
// Section 3 notation. Sparse and tiled dense rounds maintain the volume as
// they go; it rebuilds the member mirror only if a legacy (untiled) dense
// round left both stale.
func (k *Kernel) FrontierVolume() int {
	if !k.volOK {
		k.ensureList()
	}
	return k.frontierVol
}

// Covered returns the cumulative visited set of a COBRA kernel (nil for
// BIPS). Read-only.
func (k *Kernel) Covered() *bitset.Set { return k.covered }

// CoveredCount returns |∪ C_0..C_t| for COBRA kernels.
func (k *Kernel) CoveredCount() int { return k.nCov }

// Complete reports whether the process finished: full coverage for COBRA,
// full infection for BIPS.
func (k *Kernel) Complete() bool {
	if k.kind == Cobra {
		return k.nCov == k.g.N()
	}
	return k.frontierN == k.g.N()
}

// Sent returns the cumulative number of particle transmissions of a COBRA
// kernel (b draws per active vertex per round, plus fractional extras).
func (k *Kernel) Sent() int64 { return k.sent }

// Coalesced returns the cumulative number of COBRA coalescences:
// Sent() − Σ_{t>=1} |C_t|.
func (k *Kernel) Coalesced() int64 { return k.coalesced }

// DenseRounds returns how many completed rounds ran in the legacy flat
// dense representation (TileWords -1); with tiling enabled (the default)
// dense rounds are counted by TiledRounds instead.
func (k *Kernel) DenseRounds() int { return k.denseRounds }

// SparseRounds returns how many completed rounds ran in the sparse
// representation.
func (k *Kernel) SparseRounds() int { return k.sparseRounds }

// TiledRounds returns how many completed rounds ran in the tiled dense
// representation (tile.go), the default dense path.
func (k *Kernel) TiledRounds() int { return k.tiledRounds }

// InstallFrontier replaces the frontier with the given member set and
// advances the round counter, as if a Step produced it. This is the hook
// for externally-serialised rounds (bips.Process.SerialRound), which draw
// their own randomness; duplicates in members are ignored. For COBRA
// kernels the members fold into the covered set.
func (k *Kernel) InstallFrontier(members []int) {
	if k.curListOK {
		for _, v := range k.curList {
			k.cur.Clear(int(v))
		}
	} else {
		k.cur.Reset()
	}
	k.curList = k.curList[:0]
	vol := 0
	for _, v := range members {
		if k.cur.Contains(v) {
			continue
		}
		k.cur.Set(v)
		k.curList = append(k.curList, int32(v))
		vol += k.g.Degree(v)
		if k.kind == Cobra && !k.covered.Contains(v) {
			k.covered.Set(v)
			k.nCov++
		}
	}
	k.frontierN = len(k.curList)
	k.frontierVol = vol
	k.curListOK = true
	k.volOK = true
	k.round++
}

// Step advances the kernel by one round in the representation chosen by
// the mode policy: sparse, tiled dense (the default dense path), or the
// legacy flat dense scan when tiling is disabled (TileWords -1).
func (k *Kernel) Step() {
	dense := k.useDense()
	switch {
	case !dense:
		k.sparseRounds++
		if k.kind == Cobra {
			k.cobraSparse()
		} else {
			k.bipsSparse()
		}
	case k.tileWords > 0:
		k.tiledRounds++
		if k.kind == Cobra {
			k.cobraDenseTiled()
		} else {
			k.bipsDenseTiled()
		}
	default:
		k.denseRounds++
		if k.kind == Cobra {
			k.cobraDense()
		} else {
			k.bipsDense()
		}
	}
	k.round++
}

// useDense applies the representation policy for the upcoming round.
// COBRA round cost scales with |frontier| in both representations (the
// dense scan only saves the member-slice traffic), so it crosses over on
// the frontier fraction. A BIPS sparse round costs Θ(vol(A)) candidate
// construction versus Θ(n) for the dense scan, so it crosses over when
// the frontier volume reaches the vertex count.
func (k *Kernel) useDense() bool {
	switch k.par.Mode {
	case ForceSparse:
		return false
	case ForceDense:
		return true
	}
	if k.kind == Cobra {
		return k.frontierN*k.denseDiv > k.g.N()
	}
	return k.FrontierVolume() > k.g.N()
}

// parallelRounds reports how many workers to fan a round of the given
// item count across; tiny rounds stay serial because goroutine overhead
// dominates, and wider rounds get at most one worker per
// minItemsPerWorker items so the per-worker slice always outweighs the
// handoff cost (see the measured floor constants in tile.go). The answer
// never affects the trajectory.
func (k *Kernel) parallelRounds(items int) int {
	if k.workers <= 1 || items < minParallelItems {
		return 1
	}
	nw := items / minItemsPerWorker
	if nw > k.workers {
		nw = k.workers
	}
	return nw
}

// ensureList rebuilds the member mirror (and frontier volume) from the
// authoritative bitset after a dense round invalidated it.
func (k *Kernel) ensureList() {
	k.curList = k.curList[:0]
	vol := 0
	k.cur.ForEach(func(v int) {
		k.curList = append(k.curList, int32(v))
		vol += k.g.Degree(v)
	})
	k.frontierVol = vol
	k.curListOK = true
	k.volOK = true
}

// bumpEpoch opens a fresh stamp generation, clearing the array only on
// uint32 wraparound.
func (k *Kernel) bumpEpoch() {
	k.epoch++
	if k.epoch == 0 {
		for i := range k.stamp {
			k.stamp[i] = 0
		}
		k.epoch = 1
	}
}
