package engine

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/xrand"
)

// COBRA round kernels. One round: every vertex of C_t pushes b (or b+1
// with probability Rho) particles to uniform random neighbours — to itself
// with probability 1/2 per particle under Lazy — and the targets form
// C_{t+1}. Multiple arrivals coalesce via set semantics.
//
// The draw structure per vertex (fractional-branch Bernoulli first, then
// per-particle lazy coin and neighbour index) is fixed across all four
// paths below, so every representation consumes the (round, vertex) stream
// identically and the trajectories agree bit for bit.

// drawCount draws the number of particles v sends this round.
func (k *Kernel) drawCount(rng *xrand.RNG) int {
	b := k.par.Branch
	if k.par.Rho > 0 && rng.Bernoulli(k.par.Rho) {
		b++
	}
	return b
}

// drawTarget draws one particle target for v.
func (k *Kernel) drawTarget(v, deg int, rng *xrand.RNG) int {
	if k.par.Lazy && rng.Bool() {
		return v
	}
	return k.g.Neighbor(v, rng.Intn(deg))
}

// cobraSparse runs one round over the active-vertex slice, deduplicating
// the next frontier with the stamp array. No Θ(n) work anywhere.
func (k *Kernel) cobraSparse() {
	if !k.curListOK {
		k.ensureList()
	}
	k.bumpEpoch()
	k.newList = k.newList[:0]
	var sent int64
	if nw := k.parallelRounds(len(k.curList)); nw <= 1 {
		for _, v32 := range k.curList {
			v := int(v32)
			rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
			b := k.drawCount(&rng)
			deg := k.g.Degree(v)
			for i := 0; i < b; i++ {
				t := k.drawTarget(v, deg, &rng)
				if k.stamp[t] != k.epoch {
					k.stamp[t] = k.epoch
					k.newList = append(k.newList, int32(t))
				}
			}
			sent += int64(b)
		}
	} else {
		sent = k.cobraSparseParallel(nw)
	}
	// Maintain the authoritative bitset incrementally and fold the new
	// frontier into the covered set: O(|old| + |new|), not O(n).
	for _, v := range k.curList {
		k.cur.Clear(int(v))
	}
	vol := 0
	for _, w32 := range k.newList {
		w := int(w32)
		k.cur.Set(w)
		vol += k.g.Degree(w)
		if !k.covered.Contains(w) {
			k.covered.Set(w)
			k.nCov++
		}
	}
	k.sent += sent
	k.coalesced += sent - int64(len(k.newList))
	k.frontierN = len(k.newList)
	k.frontierVol = vol
	k.curList, k.newList = k.newList, k.curList
	k.curListOK = true
	k.volOK = true
}

// cobraSparseParallel fans the active slice across workers; next-frontier
// membership is claimed with CAS stamps and each claimer records its wins
// in a worker-local buffer, so no Θ(n) scan is needed to collect members.
// Which worker wins a contended claim is scheduling-dependent, but the
// claimed set — the only observable — is not.
func (k *Kernel) cobraSparseParallel(nw int) int64 {
	var wg sync.WaitGroup
	chunk := (len(k.curList) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(k.curList) {
			k.bufs[w] = k.bufs[w][:0]
			k.sentParts[w] = 0
			continue
		}
		hi := lo + chunk
		if hi > len(k.curList) {
			hi = len(k.curList)
		}
		wg.Add(1)
		go func(w int, verts []int32) {
			defer wg.Done()
			buf := k.bufs[w][:0]
			var sent int64
			for _, v32 := range verts {
				v := int(v32)
				rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
				b := k.drawCount(&rng)
				deg := k.g.Degree(v)
				for i := 0; i < b; i++ {
					t := k.drawTarget(v, deg, &rng)
					if k.claimStamp(t) {
						buf = append(buf, int32(t))
					}
				}
				sent += int64(b)
			}
			k.bufs[w] = buf
			k.sentParts[w] = sent
		}(w, k.curList[lo:hi])
	}
	wg.Wait()
	var sent int64
	for w := 0; w < nw; w++ {
		k.newList = append(k.newList, k.bufs[w]...)
		sent += k.sentParts[w]
	}
	return sent
}

// claimStamp marks t in the current stamp generation; true if this caller
// won the claim.
func (k *Kernel) claimStamp(t int) bool {
	addr := &k.stamp[t]
	for {
		old := atomic.LoadUint32(addr)
		if old == k.epoch {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, k.epoch) {
			return true
		}
	}
}

// cobraDense runs one round as a word-level scan of the frontier bitset:
// the word fetch is hoisted and up to 64 active vertices are decoded per
// fetched word, with no member slice materialised in either direction.
func (k *Kernel) cobraDense() {
	words := k.cur.Words()
	var sent int64
	var next *bitset.Set
	if nw := k.parallelRounds(k.frontierN); nw <= 1 {
		k.nextPlain.Reset()
		for wi, word := range words {
			base := wi * 64
			for word != 0 {
				v := base + bits.TrailingZeros64(word)
				word &= word - 1
				rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
				b := k.drawCount(&rng)
				deg := k.g.Degree(v)
				for i := 0; i < b; i++ {
					k.nextPlain.Set(k.drawTarget(v, deg, &rng))
				}
				sent += int64(b)
			}
		}
		next = k.nextPlain
	} else {
		sent = k.cobraDenseParallel(words, nw)
		k.nextAtomic.Snapshot(k.scratch)
		next = k.scratch
	}
	k.cur.CopyFrom(next)
	k.frontierN = k.cur.Count()
	k.nCov += k.covered.UnionCount(k.cur)
	k.sent += sent
	k.coalesced += sent - int64(k.frontierN)
	k.curListOK = false
	k.volOK = false
}

// cobraDenseParallel splits the word array across workers; targets land in
// the atomic next set since pushes cross chunk boundaries.
func (k *Kernel) cobraDenseParallel(words []uint64, nw int) int64 {
	k.nextAtomic.Reset()
	var wg sync.WaitGroup
	chunk := (len(words) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(words) {
			k.sentParts[w] = 0
			continue
		}
		hi := lo + chunk
		if hi > len(words) {
			hi = len(words)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sent int64
			for wi := lo; wi < hi; wi++ {
				word := words[wi]
				base := wi * 64
				for word != 0 {
					v := base + bits.TrailingZeros64(word)
					word &= word - 1
					rng := xrand.StreamValue(k.seed, streamKey(k.round, v))
					b := k.drawCount(&rng)
					deg := k.g.Degree(v)
					for i := 0; i < b; i++ {
						k.nextAtomic.Set(k.drawTarget(v, deg, &rng))
					}
					sent += int64(b)
				}
			}
			k.sentParts[w] = sent
		}(w, lo, hi)
	}
	wg.Wait()
	var sent int64
	for w := 0; w < nw; w++ {
		sent += k.sentParts[w]
	}
	return sent
}
