package engine

import (
	"errors"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Branch: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Branch: 0},
		{Branch: 1, Rho: -0.5},
		{Branch: 1, Rho: 1.5},
		{Branch: 1, DenseDiv: -2},
		{Branch: 1, TileWords: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrConfig) {
			t.Fatalf("%+v accepted", p)
		}
	}
}

func TestConstructorsReject(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := NewCobra(g, Params{Branch: 0}, []int{0}, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("bad config accepted")
	}
	if _, err := NewCobra(g, Params{Branch: 2}, nil, 1); !errors.Is(err, ErrStart) {
		t.Fatal("empty start accepted")
	}
	if _, err := NewCobra(g, Params{Branch: 2}, []int{8}, 1); !errors.Is(err, ErrStart) {
		t.Fatal("out-of-range start accepted")
	}
	if _, err := NewBips(g, Params{Branch: 2}, -1, 1); !errors.Is(err, ErrStart) {
		t.Fatal("bad source accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	disc := b.MustBuild("disc")
	if _, err := NewCobra(disc, Params{Branch: 2}, []int{0}, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatal("disconnected accepted")
	}
	if _, err := NewBips(disc, Params{Branch: 2}, 0, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatal("disconnected accepted (bips)")
	}
}

// The adaptive policy must actually exercise both representations on a
// run that starts narrow and goes wide.
func TestAdaptiveUsesBothRepresentations(t *testing.T) {
	g := graph.Hypercube(10) // n = 1024
	k, err := NewCobra(g, Params{Branch: 2, Workers: 1}, []int{0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000 && !k.Complete(); r++ {
		k.Step()
	}
	if !k.Complete() {
		t.Fatal("did not cover")
	}
	if k.SparseRounds() == 0 || k.TiledRounds() == 0 {
		t.Fatalf("adaptive run used sparse=%d tiled=%d rounds; want both > 0",
			k.SparseRounds(), k.TiledRounds())
	}
	// With tiling enabled (the default) no round may fall back to the
	// legacy flat dense scan.
	if k.DenseRounds() != 0 {
		t.Fatalf("adaptive tiled run used %d legacy dense rounds", k.DenseRounds())
	}
}

// Forced modes must report only their own representation.
func TestForcedModesAreForced(t *testing.T) {
	g := graph.Complete(64)
	for _, tc := range []struct {
		mode Mode
		name string
	}{{ForceSparse, "sparse"}, {ForceDense, "dense"}} {
		k, err := NewCobra(g, Params{Branch: 2, Mode: tc.mode, Workers: 1}, []int{0}, 3)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 500 && !k.Complete(); r++ {
			k.Step()
		}
		switch tc.mode {
		case ForceSparse:
			if k.DenseRounds() != 0 {
				t.Fatalf("%s: %d dense rounds", tc.name, k.DenseRounds())
			}
		case ForceDense:
			if k.SparseRounds() != 0 {
				t.Fatalf("%s: %d sparse rounds", tc.name, k.SparseRounds())
			}
		}
	}
}

// Frontier bookkeeping (count, volume, bitset, covered) must agree with a
// from-scratch recount in every representation, every round.
func TestKernelBookkeepingInvariants(t *testing.T) {
	g, err := graph.BarabasiAlbert(300, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Adaptive, ForceSparse, ForceDense} {
		k, err := NewCobra(g, Params{Branch: 2, Mode: mode, Workers: 2}, []int{0, 5}, 11)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 60 && !k.Complete(); r++ {
			k.Step()
			if got, want := k.FrontierCount(), k.Frontier().Count(); got != want {
				t.Fatalf("mode %d round %d: FrontierCount %d != popcount %d", mode, r+1, got, want)
			}
			vol := 0
			k.Frontier().ForEach(func(v int) { vol += g.Degree(v) })
			if got := k.FrontierVolume(); got != vol {
				t.Fatalf("mode %d round %d: FrontierVolume %d != recount %d", mode, r+1, got, vol)
			}
			if got, want := k.CoveredCount(), k.Covered().Count(); got != want {
				t.Fatalf("mode %d round %d: CoveredCount %d != popcount %d", mode, r+1, got, want)
			}
		}
	}
}

func TestInstallFrontier(t *testing.T) {
	g := graph.Cycle(10)
	k, err := NewBips(g, Params{Branch: 2, Workers: 1}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	k.Step()
	k.InstallFrontier([]int{0, 3, 7, 3}) // duplicate 3 must be ignored
	if k.Round() != 2 {
		t.Fatalf("round = %d after install", k.Round())
	}
	if k.FrontierCount() != 3 || k.Frontier().Count() != 3 {
		t.Fatalf("frontier count %d/%d", k.FrontierCount(), k.Frontier().Count())
	}
	if k.FrontierVolume() != 6 {
		t.Fatalf("frontier volume %d, want 6", k.FrontierVolume())
	}
	for _, v := range []int{0, 3, 7} {
		if !k.Frontier().Contains(v) {
			t.Fatalf("vertex %d missing after install", v)
		}
	}
	// Subsequent plain steps keep working from the installed frontier.
	k.Step()
	if k.Round() != 3 {
		t.Fatalf("round = %d after step", k.Round())
	}
	if !k.Frontier().Contains(0) {
		t.Fatal("source lost infection after install+step")
	}
}

// COBRA transmissions/coalescences must satisfy the defining identity in
// every representation, including parallel workers.
func TestSentCoalescedIdentity(t *testing.T) {
	g := graph.Complete(200)
	for _, mode := range []Mode{ForceSparse, ForceDense, Adaptive} {
		k, err := NewCobra(g, Params{Branch: 2, Mode: mode, Workers: 4}, []int{0}, 9)
		if err != nil {
			t.Fatal(err)
		}
		var sumActive int64
		for !k.Complete() {
			k.Step()
			sumActive += int64(k.FrontierCount())
		}
		if got, want := k.Coalesced(), k.Sent()-sumActive; got != want {
			t.Fatalf("mode %d: Coalesced = %d, want Sent−Σ|C_t| = %d", mode, got, want)
		}
	}
}
