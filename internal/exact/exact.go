// Package exact computes COBRA and BIPS quantities *exactly* on small
// graphs by evolving probability distributions over vertex subsets
// (bitmask state spaces), with no Monte-Carlo error. It serves as the
// ground truth against which the simulators are validated, and verifies
// the duality Theorem 1.3 to machine precision:
//
//	CobraHitProbability(g, cfg, C, v, T) ==
//	BipsMeetComplementProbability(g, cfg, v, C, T)
//
// for every graph, variant and horizon — an equality of two numbers
// computed through entirely different recursions.
//
// Complexity is O(poly · 2ⁿ) per round (see the per-function notes), so
// the package enforces n <= MaxN.
package exact

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/repro/cobra/internal/graph"
)

// MaxN caps the subset state space at 2^MaxN.
const MaxN = 14

// ErrInput flags invalid arguments.
var ErrInput = errors.New("exact: invalid input")

// Config mirrors the simulators' variant selection: integer Branch
// (1, 2 or 3 supported here), fractional Rho, Lazy selections.
type Config struct {
	Branch int
	Rho    float64
	Lazy   bool
}

// Validate checks the configuration (exact supports b = 1, 1+ρ, 2, 3).
func (c Config) Validate() error {
	if c.Branch < 1 || c.Branch > 3 {
		return fmt.Errorf("%w: exact analysis supports Branch 1..3, got %d", ErrInput, c.Branch)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1]", ErrInput)
	}
	if c.Branch > 1 && c.Rho != 0 {
		return fmt.Errorf("%w: fractional Rho requires Branch=1", ErrInput)
	}
	return nil
}

func checkGraph(g *graph.Graph) error {
	if g.N() > MaxN {
		return fmt.Errorf("%w: n = %d exceeds MaxN = %d", ErrInput, g.N(), MaxN)
	}
	return nil
}

// pickDist returns vertex u's single-selection distribution as parallel
// slices (targets, probs): uniform over neighbours, or lazy (self with
// probability 1/2, neighbours with 1/(2d) each).
func pickDist(g *graph.Graph, cfg Config, u int) ([]int, []float64) {
	deg := g.Degree(u)
	if cfg.Lazy {
		targets := make([]int, deg+1)
		probs := make([]float64, deg+1)
		targets[0] = u
		probs[0] = 0.5
		for i := 0; i < deg; i++ {
			targets[i+1] = g.Neighbor(u, i)
			probs[i+1] = 0.5 / float64(deg)
		}
		return targets, probs
	}
	targets := make([]int, deg)
	probs := make([]float64, deg)
	for i := 0; i < deg; i++ {
		targets[i] = g.Neighbor(u, i)
		probs[i] = 1 / float64(deg)
	}
	return targets, probs
}

// outcomeDist returns the distribution of the SET of vertices that u's
// selections cover in one round, as a map from bitmask to probability.
// For Branch=2: two independent picks. For Branch=1 with Rho: one pick,
// plus a second with probability Rho.
func outcomeDist(g *graph.Graph, cfg Config, u int) map[uint32]float64 {
	targets, probs := pickDist(g, cfg, u)
	out := make(map[uint32]float64)
	single := func(w float64) {
		for i, t := range targets {
			out[uint32(1)<<uint(t)] += w * probs[i]
		}
	}
	double := func(w float64) {
		for i, t1 := range targets {
			for j, t2 := range targets {
				mask := uint32(1)<<uint(t1) | uint32(1)<<uint(t2)
				out[mask] += w * probs[i] * probs[j]
			}
		}
	}
	triple := func(w float64) {
		for i, t1 := range targets {
			for j, t2 := range targets {
				for k, t3 := range targets {
					mask := uint32(1)<<uint(t1) | uint32(1)<<uint(t2) | uint32(1)<<uint(t3)
					out[mask] += w * probs[i] * probs[j] * probs[k]
				}
			}
		}
	}
	switch {
	case cfg.Branch == 3:
		triple(1)
	case cfg.Branch == 2:
		double(1)
	case cfg.Rho == 0:
		single(1)
	default:
		single(1 - cfg.Rho)
		double(cfg.Rho)
	}
	return out
}

// CobraHitProbability computes P̂(Hit(target) > T | C₀ = starts) exactly:
// the probability that COBRA started from the set `starts` has not
// visited target within T rounds. It evolves the distribution of the
// active set C_t over subsets, collapsing all states whose history
// touched target into an absorbing "hit" mass.
//
// Cost: O(T · 2ⁿ · Σ_v d(v)²) in the worst case.
func CobraHitProbability(g *graph.Graph, cfg Config, starts []int, target, T int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := checkGraph(g); err != nil {
		return 0, err
	}
	if target < 0 || target >= g.N() {
		return 0, fmt.Errorf("%w: target %d", ErrInput, target)
	}
	if len(starts) == 0 {
		return 0, fmt.Errorf("%w: empty start set", ErrInput)
	}
	if T < 0 {
		return 0, fmt.Errorf("%w: negative T", ErrInput)
	}
	n := g.N()
	var startMask uint32
	for _, v := range starts {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("%w: start %d", ErrInput, v)
		}
		startMask |= 1 << uint(v)
	}
	targetBit := uint32(1) << uint(target)
	if startMask&targetBit != 0 {
		return 0, nil
	}
	size := 1 << uint(n)
	dist := make([]float64, size) // over active sets that have NOT hit target
	dist[startMask] = 1
	outcomes := make([]map[uint32]float64, n)
	for v := 0; v < n; v++ {
		outcomes[v] = outcomeDist(g, cfg, v)
	}
	next := make([]float64, size)
	scratch := make(map[uint32]float64, size)
	for t := 0; t < T; t++ {
		for i := range next {
			next[i] = 0
		}
		for mask := 1; mask < size; mask++ {
			p := dist[mask]
			if p == 0 {
				continue
			}
			// Convolve the outcome distributions of the active vertices.
			for k := range scratch {
				delete(scratch, k)
			}
			scratch[0] = p
			m := uint32(mask)
			for m != 0 {
				v := trailingZeros(m)
				m &^= 1 << uint(v)
				conv := make(map[uint32]float64, len(scratch)*2)
				for acc, pw := range scratch {
					for om, op := range outcomes[v] {
						conv[acc|om] += pw * op
					}
				}
				// Reuse scratch's identity by replacing contents.
				for k := range scratch {
					delete(scratch, k)
				}
				for k, v2 := range conv {
					scratch[k] = v2
				}
			}
			for nm, np := range scratch {
				if nm&targetBit != 0 {
					continue // absorbed into "hit"; drop from survival mass
				}
				next[nm] += np
			}
		}
		dist, next = next, dist
	}
	var surv float64
	for _, p := range dist {
		surv += p
	}
	return surv, nil
}

func trailingZeros(m uint32) int { return bits.TrailingZeros32(m) }

// bipsStep evolves a BIPS subset distribution one round. For each current
// infected set A, every vertex u independently belongs to the next set
// with probability p_u(A) (source with probability 1). The per-state
// expansion is a DP over vertices: O(n · 2ⁿ) per source state.
func bipsStep(g *graph.Graph, cfg Config, source int, dist, next []float64, buf0, buf1 []float64) {
	n := g.N()
	size := 1 << uint(n)
	for i := range next {
		next[i] = 0
	}
	probs := make([]float64, n)
	for mask := 0; mask < size; mask++ {
		p := dist[mask]
		if p == 0 {
			continue
		}
		for u := 0; u < n; u++ {
			probs[u] = infectProb(g, cfg, uint32(mask), u, source)
		}
		// DP over vertices: buf holds distribution over subsets of the
		// first k vertices.
		cur := buf0[:1]
		cur[0] = p
		width := 1
		for u := 0; u < n; u++ {
			nw := width << 1
			out := buf1[:nw]
			pu := probs[u]
			for m2 := 0; m2 < width; m2++ {
				w := cur[m2]
				out[m2] = w * (1 - pu)
				out[m2|width] = w * pu
			}
			cur = out
			buf0, buf1 = buf1, buf0
			width = nw
		}
		for m2 := 0; m2 < size; m2++ {
			next[m2] += cur[m2]
		}
	}
}

// infectProb returns the probability that vertex u is in the next
// infected set given current set A (as mask) under cfg; 1 for the source.
func infectProb(g *graph.Graph, cfg Config, a uint32, u, source int) float64 {
	if u == source {
		return 1
	}
	deg := g.Degree(u)
	dA := 0
	for _, w := range g.Neighbors(u) {
		if a&(1<<uint(w)) != 0 {
			dA++
		}
	}
	// q = P(one selection lands in A).
	q := float64(dA) / float64(deg)
	if cfg.Lazy {
		self := 0.0
		if a&(1<<uint(u)) != 0 {
			self = 1
		}
		q = 0.5*self + 0.5*q
	}
	switch {
	case cfg.Branch == 3:
		miss := (1 - q) * (1 - q) * (1 - q)
		return 1 - miss
	case cfg.Branch == 2:
		return 1 - (1-q)*(1-q)
	case cfg.Rho == 0:
		return q
	default:
		return 1 - (1-q)*(1-cfg.Rho*q)
	}
}

// BipsMeetComplementProbability computes P(C ∩ A_T = ∅ | A₀ = {source})
// exactly — the right-hand side of Theorem 1.3.
//
// Cost: O(T · n · 4ⁿ) in the worst case (practical for n <= ~12).
func BipsMeetComplementProbability(g *graph.Graph, cfg Config, source int, c []int, T int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := checkGraph(g); err != nil {
		return 0, err
	}
	if source < 0 || source >= g.N() {
		return 0, fmt.Errorf("%w: source %d", ErrInput, source)
	}
	if len(c) == 0 {
		return 0, fmt.Errorf("%w: empty C", ErrInput)
	}
	if T < 0 {
		return 0, fmt.Errorf("%w: negative T", ErrInput)
	}
	n := g.N()
	var cMask uint32
	for _, v := range c {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("%w: C member %d", ErrInput, v)
		}
		cMask |= 1 << uint(v)
	}
	size := 1 << uint(n)
	dist := make([]float64, size)
	dist[1<<uint(source)] = 1
	next := make([]float64, size)
	buf0 := make([]float64, size)
	buf1 := make([]float64, size)
	for t := 0; t < T; t++ {
		bipsStep(g, cfg, source, dist, next, buf0, buf1)
		dist, next = next, dist
	}
	var miss float64
	for mask := 0; mask < size; mask++ {
		if uint32(mask)&cMask == 0 {
			miss += dist[mask]
		}
	}
	return miss, nil
}

// ExpectedInfectionTime computes E[infec(source)] exactly as
// Σ_{t≥0} P(A_t ≠ V), truncating when the residual probability falls
// below tol (default 1e-12 when tol <= 0). Returns an error if the
// expectation has not converged within maxRounds (default 10⁶/n).
func ExpectedInfectionTime(g *graph.Graph, cfg Config, source int, tol float64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := checkGraph(g); err != nil {
		return 0, err
	}
	if source < 0 || source >= g.N() {
		return 0, fmt.Errorf("%w: source %d", ErrInput, source)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := g.N()
	size := 1 << uint(n)
	full := size - 1
	dist := make([]float64, size)
	dist[1<<uint(source)] = 1
	next := make([]float64, size)
	buf0 := make([]float64, size)
	buf1 := make([]float64, size)
	var expect float64
	maxRounds := 1 << 20
	for t := 0; t < maxRounds; t++ {
		notFull := 1 - dist[full]
		if notFull < tol {
			return expect, nil
		}
		expect += notFull
		bipsStep(g, cfg, source, dist, next, buf0, buf1)
		dist, next = next, dist
		// A_t = V is absorbing: once fully infected every vertex has all
		// neighbours infected, so p_u = 1 for all u. The recursion keeps
		// that mass at `full` automatically; no special casing needed.
	}
	return expect, fmt.Errorf("%w: expectation did not converge (bipartite non-lazy oscillation?)", ErrInput)
}

// ExpectedHitTime computes E[Hit(target)] for COBRA from starts exactly
// as Σ_{T≥0} P(Hit > T), truncating at tol.
func ExpectedHitTime(g *graph.Graph, cfg Config, starts []int, target int, tol float64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if err := checkGraph(g); err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := g.N()
	var startMask uint32
	for _, v := range starts {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("%w: start %d", ErrInput, v)
		}
		startMask |= 1 << uint(v)
	}
	if startMask == 0 {
		return 0, fmt.Errorf("%w: empty start set", ErrInput)
	}
	if target < 0 || target >= n {
		return 0, fmt.Errorf("%w: target %d", ErrInput, target)
	}
	targetBit := uint32(1) << uint(target)
	if startMask&targetBit != 0 {
		return 0, nil
	}
	size := 1 << uint(n)
	dist := make([]float64, size)
	dist[startMask] = 1
	next := make([]float64, size)
	outcomes := make([]map[uint32]float64, n)
	for v := 0; v < n; v++ {
		outcomes[v] = outcomeDist(g, cfg, v)
	}
	scratch := make(map[uint32]float64, size)
	var expect float64
	maxRounds := 1 << 20
	for t := 0; t < maxRounds; t++ {
		var surv float64
		for _, p := range dist {
			surv += p
		}
		if surv < tol {
			return expect, nil
		}
		expect += surv
		for i := range next {
			next[i] = 0
		}
		for mask := 1; mask < size; mask++ {
			p := dist[mask]
			if p == 0 {
				continue
			}
			for k := range scratch {
				delete(scratch, k)
			}
			scratch[0] = p
			m := uint32(mask)
			for m != 0 {
				v := trailingZeros(m)
				m &^= 1 << uint(v)
				conv := make(map[uint32]float64, len(scratch)*2)
				for acc, pw := range scratch {
					for om, op := range outcomes[v] {
						conv[acc|om] += pw * op
					}
				}
				for k := range scratch {
					delete(scratch, k)
				}
				for k, v2 := range conv {
					scratch[k] = v2
				}
			}
			for nm, np := range scratch {
				if nm&targetBit != 0 {
					continue
				}
				next[nm] += np
			}
		}
		dist, next = next, dist
	}
	if expect > float64(maxRounds)/2 {
		return expect, fmt.Errorf("%w: hit-time expectation did not converge", ErrInput)
	}
	return expect, nil
}
