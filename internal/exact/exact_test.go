package exact

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/duality"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{{Branch: 2}, {Branch: 1}, {Branch: 1, Rho: 0.5}, {Branch: 2, Lazy: true}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{{Branch: 0}, {Branch: 4}, {Branch: 1, Rho: -1}, {Branch: 2, Rho: 0.5}}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrInput) {
			t.Fatalf("%+v accepted", c)
		}
	}
}

func TestCobraHitHandComputed(t *testing.T) {
	// Path 0-1-2, start {0}, target 2, b=2, T=1: round 1 sends both picks
	// from 0 to vertex 1 (its only neighbour); 2 unreachable. P(Hit>1)=1.
	g := graph.Path(3)
	p, err := CobraHitProbability(g, Config{Branch: 2}, []int{0}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-15 {
		t.Fatalf("path T=1: %v", p)
	}
	// T=2: C_1 = {1}; vertex 1 picks 2 of {0,2}: P(2 not picked) = 1/4.
	p, err = CobraHitProbability(g, Config{Branch: 2}, []int{0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("path T=2: %v, want 0.25", p)
	}
	// Triangle, b=1 (random walk), start {0}, target 1, T=1: picks one of
	// two neighbours: P(miss) = 1/2.
	tri := graph.Complete(3)
	p, err = CobraHitProbability(tri, Config{Branch: 1}, []int{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("triangle b=1: %v", p)
	}
	// Target already in starts: probability 0 at any T.
	p, err = CobraHitProbability(tri, Config{Branch: 2}, []int{1}, 1, 5)
	if err != nil || p != 0 {
		t.Fatalf("self start: %v, %v", p, err)
	}
}

func TestBipsMeetHandComputed(t *testing.T) {
	// Path 0-1-2, source 0, C={1}, T=1: vertex 1 picks two of {0,2};
	// infected iff it picks 0 at least once: 1-(1/2)^2 = 3/4.
	// So P(C ∩ A_1 = ∅) = 1/4.
	g := graph.Path(3)
	p, err := BipsMeetComplementProbability(g, Config{Branch: 2}, 0, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("path bips T=1: %v, want 0.25", p)
	}
	// C containing the source is met at every T >= 0.
	p, err = BipsMeetComplementProbability(g, Config{Branch: 2}, 0, []int{0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("source in C: %v", p)
	}
}

// The centrepiece: Theorem 1.3 as an exact identity between two numbers
// computed by unrelated recursions (COBRA forward chain with absorption
// vs BIPS product-Bernoulli chain).
func TestDualityExactIdentity(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(5), graph.Cycle(6), graph.Complete(5),
		graph.Star(6), graph.Petersen(),
	}
	configs := []Config{
		{Branch: 1},
		{Branch: 2},
		{Branch: 3},
		{Branch: 1, Rho: 0.5},
		{Branch: 2, Lazy: true},
	}
	for _, g := range graphs {
		for _, cfg := range configs {
			for _, T := range []int{0, 1, 2, 3, 5, 8} {
				starts := []int{0}
				target := g.N() - 1
				lhs, err := CobraHitProbability(g, cfg, starts, target, T)
				if err != nil {
					t.Fatal(err)
				}
				rhs, err := BipsMeetComplementProbability(g, cfg, target, starts, T)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(lhs-rhs) > 1e-10 {
					t.Fatalf("%s cfg=%+v T=%d: COBRA %.15f vs BIPS %.15f (Theorem 1.3 exact identity broken)",
						g.Name(), cfg, T, lhs, rhs)
				}
			}
		}
	}
}

// Multi-vertex start sets too.
func TestDualityExactIdentityMultiStart(t *testing.T) {
	g := graph.Cycle(7)
	cfg := Config{Branch: 2}
	for _, T := range []int{1, 3, 6} {
		lhs, err := CobraHitProbability(g, cfg, []int{0, 3}, 5, T)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := BipsMeetComplementProbability(g, cfg, 5, []int{0, 3}, T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Fatalf("T=%d: %.15f vs %.15f", T, lhs, rhs)
		}
	}
}

// The Monte-Carlo estimators must converge to the exact values.
func TestSimulationConvergesToExact(t *testing.T) {
	g := graph.Cycle(8)
	cfg := Config{Branch: 2}
	dcfg := duality.Config{Branch: 2}
	const T = 4
	exactP, err := CobraHitProbability(g, cfg, []int{0}, 4, T)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40000
	est, err := duality.HitProbability(g, dcfg, []int{0}, 4, T, trials, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	se := math.Sqrt(exactP * (1 - exactP) / trials)
	if math.Abs(est-exactP) > 5*se+1e-9 {
		t.Fatalf("simulation %.5f vs exact %.5f (se %.5f)", est, exactP, se)
	}
	estB, err := duality.EscapeProbability(g, dcfg, 4, []int{0}, T, trials, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(estB-exactP) > 5*se+1e-9 {
		t.Fatalf("BIPS simulation %.5f vs exact %.5f", estB, exactP)
	}
}

func TestExpectedInfectionTime(t *testing.T) {
	// K_2 with source 0: vertex 1 infected iff it picks 0 — its only
	// neighbour — so infection completes in exactly 1 round.
	g := graph.Complete(2)
	e, err := ExpectedInfectionTime(g, Config{Branch: 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-10 {
		t.Fatalf("K2: %v", e)
	}
	// Triangle, b=1: each non-source picks one of its two neighbours; it
	// is infected in a given round with p depending on current set.
	// Just sanity-bound: 1 <= E <= 10, and simulation agrees.
	tri := graph.Complete(3)
	e, err = ExpectedInfectionTime(tri, Config{Branch: 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e < 1 || e > 10 {
		t.Fatalf("triangle E[infec] = %v", e)
	}
}

func TestExpectedInfectionTimeMatchesSimulation(t *testing.T) {
	g := graph.Cycle(6)
	exactE, err := ExpectedInfectionTime(g, Config{Branch: 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate.
	rng := xrand.New(23)
	const trials = 20000
	var sum, sumsq float64
	for k := 0; k < trials; k++ {
		tm, err := simInfection(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(tm)
		sumsq += float64(tm) * float64(tm)
	}
	mean := sum / trials
	sd := math.Sqrt(sumsq/trials - mean*mean)
	if math.Abs(mean-exactE) > 5*sd/math.Sqrt(trials) {
		t.Fatalf("simulated %.4f vs exact %.4f (sd %.3f)", mean, exactE, sd)
	}
}

// simInfection is a local minimal BIPS simulation (avoids importing the
// bips package just for this test's convergence check).
func simInfection(g *graph.Graph, rng *xrand.RNG) (int, error) {
	n := g.N()
	cur := make([]bool, n)
	next := make([]bool, n)
	cur[0] = true
	count := 1
	rounds := 0
	for count < n {
		if rounds > 1<<20 {
			return 0, errors.New("no convergence")
		}
		count = 0
		for u := 0; u < n; u++ {
			if u == 0 {
				next[u] = true
				count++
				continue
			}
			deg := g.Degree(u)
			hit := cur[g.Neighbor(u, rng.Intn(deg))] || cur[g.Neighbor(u, rng.Intn(deg))]
			next[u] = hit
			if hit {
				count++
			}
		}
		cur, next = next, cur
		rounds++
	}
	return rounds, nil
}

func TestExpectedHitTime(t *testing.T) {
	// K_2, b=1: from 0, hit 1 after exactly 1 round.
	g := graph.Complete(2)
	e, err := ExpectedHitTime(g, Config{Branch: 1}, []int{0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-10 {
		t.Fatalf("K2 hit: %v", e)
	}
	// Triangle, b=1 random walk: E[hit of a fixed other vertex] = 2
	// (each step hits the target w.p. 1/2: geometric mean 2).
	tri := graph.Complete(3)
	e, err = ExpectedHitTime(tri, Config{Branch: 1}, []int{0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2) > 1e-9 {
		t.Fatalf("triangle b=1 hit: %v, want 2", e)
	}
	// b=2 must hit faster than b=1 on the cycle.
	c := graph.Cycle(7)
	e1, err := ExpectedHitTime(c, Config{Branch: 1}, []int{0}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ExpectedHitTime(c, Config{Branch: 2}, []int{0}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("b=2 hit %v not faster than b=1 %v", e2, e1)
	}
}

func TestInputValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := CobraHitProbability(g, Config{Branch: 2}, nil, 0, 1); !errors.Is(err, ErrInput) {
		t.Fatal("empty starts accepted")
	}
	if _, err := CobraHitProbability(g, Config{Branch: 2}, []int{0}, 9, 1); !errors.Is(err, ErrInput) {
		t.Fatal("bad target accepted")
	}
	if _, err := CobraHitProbability(g, Config{Branch: 2}, []int{0}, 1, -1); !errors.Is(err, ErrInput) {
		t.Fatal("negative T accepted")
	}
	if _, err := BipsMeetComplementProbability(g, Config{Branch: 2}, 9, []int{0}, 1); !errors.Is(err, ErrInput) {
		t.Fatal("bad source accepted")
	}
	if _, err := BipsMeetComplementProbability(g, Config{Branch: 2}, 0, nil, 1); !errors.Is(err, ErrInput) {
		t.Fatal("empty C accepted")
	}
	big := graph.Cycle(MaxN + 2)
	if _, err := CobraHitProbability(big, Config{Branch: 2}, []int{0}, 1, 1); !errors.Is(err, ErrInput) {
		t.Fatal("oversized graph accepted")
	}
}

func TestBranchThreeFasterThanTwo(t *testing.T) {
	// Exact hit-time ordering: b=3 dominates b=2 dominates b=1.
	g := graph.Cycle(8)
	e1, err := ExpectedHitTime(g, Config{Branch: 1}, []int{0}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ExpectedHitTime(g, Config{Branch: 2}, []int{0}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := ExpectedHitTime(g, Config{Branch: 3}, []int{0}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(e3 < e2 && e2 < e1) {
		t.Fatalf("expected hit times not ordered: b3=%v b2=%v b1=%v", e3, e2, e1)
	}
}
