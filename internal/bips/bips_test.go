package bips

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{Branch: 0}, {Branch: 2, Rho: -1}, {Branch: 2, Rho: 2}} {
		if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Fatalf("%+v accepted", cfg)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := New(g, Config{Branch: 0}, 0, rng); !errors.Is(err, ErrConfig) {
		t.Fatal("bad config accepted")
	}
	if _, err := New(g, DefaultConfig(), -1, rng); !errors.Is(err, ErrSource) {
		t.Fatal("negative source accepted")
	}
	if _, err := New(g, DefaultConfig(), 5, rng); !errors.Is(err, ErrSource) {
		t.Fatal("out-of-range source accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := New(b.MustBuild("disc"), DefaultConfig(), 0, rng); !errors.Is(err, ErrDisconnected) {
		t.Fatal("disconnected accepted")
	}
}

func TestSourceAlwaysInfected(t *testing.T) {
	g := graph.Cycle(11)
	p, err := New(g, DefaultConfig(), 4, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Source() != 4 {
		t.Fatalf("Source = %d", p.Source())
	}
	for r := 0; r < 200; r++ {
		p.Step()
		if !p.Infected().Contains(4) {
			t.Fatalf("round %d: source lost infection", r+1)
		}
	}
}

func TestInfectedCountMatchesSet(t *testing.T) {
	g := graph.Hypercube(4)
	p, err := New(g, DefaultConfig(), 0, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		p.Step()
		if p.InfectedCount() != p.Infected().Count() {
			t.Fatalf("round %d: cached count %d != %d", r+1, p.InfectedCount(), p.Infected().Count())
		}
	}
}

func TestInfectionSpreadOnlyFromNeighbors(t *testing.T) {
	// After one round from a single source, only the source and its
	// neighbours can be infected.
	g := graph.Cycle(20)
	p, err := New(g, DefaultConfig(), 10, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	p.Infected().ForEach(func(u int) {
		if u != 10 && !g.HasEdge(u, 10) {
			t.Fatalf("vertex %d infected without an infected neighbour", u)
		}
	})
}

func TestInfectionTimeCompleteGraph(t *testing.T) {
	// On K_n infection spreads like a logistic map: completion in
	// O(log n) rounds.
	g := graph.Complete(256)
	rng := xrand.New(11)
	for k := 0; k < 5; k++ {
		tm, err := InfectionTime(g, DefaultConfig(), k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tm < 4 || tm > 80 {
			t.Fatalf("K256 infection time %d outside [4,80]", tm)
		}
	}
}

func TestInfectionCanRecede(t *testing.T) {
	// Unlike COBRA's cover set, |A_t| is not monotone. On a long cycle
	// this happens readily; detect at least one shrink across a run.
	g := graph.Cycle(64)
	p, err := New(g, DefaultConfig(), 0, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	shrank := false
	prev := 1
	for r := 0; r < 2000 && !p.Complete(); r++ {
		p.Step()
		if p.InfectedCount() < prev {
			shrank = true
			break
		}
		prev = p.InfectedCount()
	}
	if !shrank {
		t.Fatal("infected set never shrank on a cycle (suspicious)")
	}
}

func TestRoundLimitError(t *testing.T) {
	g := graph.Cycle(32)
	cfg := DefaultConfig()
	cfg.MaxRounds = 1
	if _, err := InfectionTime(g, cfg, 0, xrand.New(17)); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v", err)
	}
}

func TestLazyBIPSOnBipartite(t *testing.T) {
	g := graph.CompleteBipartite(6, 6)
	cfg := Config{Branch: 2, Lazy: true}
	tm, err := InfectionTime(g, cfg, 0, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 || tm > 500 {
		t.Fatalf("lazy bipartite infection time %d", tm)
	}
}

func TestFractionalBranchingSlower(t *testing.T) {
	g := graph.Complete(128)
	mean := func(cfg Config, seed uint64) float64 {
		rng := xrand.New(seed)
		var sum float64
		for k := 0; k < 20; k++ {
			tm, err := InfectionTime(g, cfg, 0, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(tm)
		}
		return sum / 20
	}
	slow := mean(Config{Branch: 1, Rho: 0.25}, 23)
	fast := mean(Config{Branch: 2}, 29)
	if slow <= fast {
		t.Fatalf("ρ=0.25 mean %.1f not slower than b=2 mean %.1f", slow, fast)
	}
}

func TestTrace(t *testing.T) {
	g := graph.Complete(64)
	tr, err := Trace(g, DefaultConfig(), 0, xrand.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if tr.CompleteRound < 0 {
		t.Fatal("trace did not complete")
	}
	if len(tr.InfectedSize) != tr.CompleteRound+1 {
		t.Fatalf("trace length %d vs round %d", len(tr.InfectedSize), tr.CompleteRound)
	}
	if tr.InfectedSize[0] != 1 {
		t.Fatal("initial infected size != 1")
	}
	if last := tr.InfectedSize[len(tr.InfectedSize)-1]; last != g.N() {
		t.Fatalf("final infected %d != n", last)
	}
	// Candidate sizes: never zero during active rounds (paper: C_t ≠ ∅).
	for i := 1; i < len(tr.CandidateSize); i++ {
		if tr.CandidateSize[i] < 1 {
			t.Fatalf("round %d: empty candidate set", i)
		}
	}
}

// Property: determinism — same seed, same infection time.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Petersen()
		a, err1 := InfectionTime(g, DefaultConfig(), 0, xrand.New(seed))
		b, err2 := InfectionTime(g, DefaultConfig(), 0, xrand.New(seed))
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the candidate set is never empty before completion (proved in
// Section 3: if v ∈ Bfix, a vertex on a shortest path to V\A is in C).
func TestCandidateNonEmptyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g, err := graph.RandomTree(24, rng)
		if err != nil {
			return false
		}
		p, err := New(g, DefaultConfig(), 0, rng)
		if err != nil {
			return false
		}
		for r := 0; r < 300 && !p.Complete(); r++ {
			if p.CandidateCount() < 1 {
				return false
			}
			p.Step()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
