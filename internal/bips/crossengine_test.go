package bips

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Cross-engine equivalence for BIPS: serial Process, ParallelProcess at
// several worker counts, and the kernel in all three representation
// modes must produce identical infection traces for a fixed master seed.

type bipsEngine interface {
	Step()
	Round() int
	Complete() bool
	InfectedCount() int
	Infected() *bitset.Set
}

type kernelFace struct{ *engine.Kernel }

func (k kernelFace) Infected() *bitset.Set { return k.Frontier() }
func (k kernelFace) InfectedCount() int    { return k.FrontierCount() }

func TestCrossEngineEquivalenceBIPS(t *testing.T) {
	ba, err := graph.BarabasiAlbert(300, 2, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := graph.WattsStrogatz(256, 6, 0.2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Hypercube(6),
		graph.Torus(7, 7),
		ba,
		ws,
	}
	cfgs := []Config{
		{Branch: 2},
		{Branch: 2, Lazy: true},
		{Branch: 1, Rho: 0.5},
	}
	for gi, g := range graphs {
		for ci, cfg := range cfgs {
			seed := uint64(100*gi + ci + 1)
			kseed := xrand.New(seed).Uint64()
			engines := map[string]bipsEngine{}
			serial, err := New(g, cfg, 0, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			engines["serial"] = serial
			for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				p, err := NewParallel(g, cfg, 0, kseed, w)
				if err != nil {
					t.Fatal(err)
				}
				engines[fmt.Sprintf("parallel-%d", w)] = p
			}
			for name, mode := range map[string]engine.Mode{
				"forced-sparse": engine.ForceSparse,
				"forced-dense":  engine.ForceDense,
				"adaptive":      engine.Adaptive,
			} {
				par := cfg.engineParams(2)
				par.Mode = mode
				k, err := engine.NewBips(g, par, 0, kseed)
				if err != nil {
					t.Fatal(err)
				}
				engines[name] = kernelFace{k}
			}
			// Tiled vs untiled byte-identity: forced-dense above is the
			// tiled kernel; pin it against the legacy flat scan and a
			// 1-word tile width.
			for name, tileWords := range map[string]int{
				"dense-untiled": -1,
				"dense-tile-1":  1,
			} {
				par := cfg.engineParams(2)
				par.Mode = engine.ForceDense
				par.TileWords = tileWords
				k, err := engine.NewBips(g, par, 0, kseed)
				if err != nil {
					t.Fatal(err)
				}
				engines[name] = kernelFace{k}
			}
			ref := engines["serial"]
			const roundCap = 40000
			for r := 0; r < roundCap && !ref.Complete(); r++ {
				for _, e := range engines {
					e.Step()
				}
				for name, e := range engines {
					if e.InfectedCount() != ref.InfectedCount() {
						t.Fatalf("%s/%+v round %d: %s infected %d != serial %d",
							g.Name(), cfg, r+1, name, e.InfectedCount(), ref.InfectedCount())
					}
					if !e.Infected().Equal(ref.Infected()) {
						t.Fatalf("%s/%+v round %d: %s infected set diverged",
							g.Name(), cfg, r+1, name)
					}
				}
			}
			if !ref.Complete() {
				t.Fatalf("%s/%+v: serial not fully infected within %d rounds", g.Name(), cfg, roundCap)
			}
			for name, e := range engines {
				if !e.Complete() || e.Round() != ref.Round() {
					t.Fatalf("%s/%+v: %s infection time %d (complete=%v) != serial %d",
						g.Name(), cfg, name, e.Round(), e.Complete(), ref.Round())
				}
			}
		}
	}
}
