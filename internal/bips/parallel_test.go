package bips

import (
	"testing"

	"github.com/repro/cobra/internal/graph"
)

func TestParallelBIPSMatchesAcrossWorkerCounts(t *testing.T) {
	g := graph.Hypercube(7)
	mk := func(workers int) *ParallelProcess {
		p, err := NewParallel(g, Config{Branch: 2, Lazy: true}, 0, 77, workers)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p4 := mk(1), mk(4)
	for r := 0; r < 60 && !(p1.Complete() && p4.Complete()); r++ {
		p1.Step()
		p4.Step()
		if !p1.Infected().Equal(p4.Infected()) {
			t.Fatalf("round %d: trajectories diverged across worker counts", r+1)
		}
	}
}

func TestParallelBIPSRunCompletes(t *testing.T) {
	g := graph.Complete(256)
	p, err := NewParallel(g, DefaultConfig(), 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 3 || rounds > 80 {
		t.Fatalf("K256 parallel infection %d implausible", rounds)
	}
	if !p.Complete() || p.InfectedCount() != g.N() {
		t.Fatal("Run returned incomplete")
	}
}

func TestParallelBIPSSourcePersists(t *testing.T) {
	g := graph.Cycle(31)
	p, err := NewParallel(g, DefaultConfig(), 7, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		p.Step()
		if !p.Infected().Contains(7) {
			t.Fatalf("round %d: source lost", r+1)
		}
	}
}

func TestParallelBIPSRejectsBadInputs(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := NewParallel(g, Config{Branch: 0}, 0, 1, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewParallel(g, DefaultConfig(), -1, 1, 1); err == nil {
		t.Fatal("bad source accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := NewParallel(b.MustBuild("disc"), DefaultConfig(), 0, 1, 1); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func BenchmarkParallelBIPSRound(b *testing.B) {
	g := graph.Hypercube(12)
	p, err := NewParallel(g, Config{Branch: 2, Lazy: true}, 0, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
