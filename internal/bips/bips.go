// Package bips implements the BIPS process (Biased Infection with
// Persistent Source), the epidemic dual of COBRA introduced in
// [Cooper et al., PODC 2016] and analysed in Sections 3–6 of the paper.
//
// Given a connected graph G, a persistent source v and branching b, the
// infected set evolves as A_0 = {v}, A_{t+1} = Infect(A_t) ∪ {v}, where
// each vertex u independently selects b neighbours uniformly at random
// with replacement and joins Infect(A_t) iff at least one selected
// neighbour is in A_t. The infection time infec(v) is the first round at
// which A_t = V; Theorems 1.4 and 1.5 bound it by O(m + dmax² log n) and
// O((r/(1−λ) + r²) log n) respectively.
//
// The package also implements the paper's key proof device: the
// *serialisation* of a round into per-vertex steps over the candidate set
// C_t = (N(A) ∪ {v}) \ Bfix, exposing the super-martingale increments Y_l
// of Section 3 for direct empirical verification.
//
// Since the internal/engine refactor, the plain round of both Process and
// ParallelProcess runs on the shared adaptive frontier kernel: early
// rounds evaluate only the candidate neighbourhood of the infected set
// (Θ(vol(A_t)) work), wide rounds fall back to the paper's flat Θ(n·b)
// scan, and the trajectory is a pure function of the master seed (for
// Process, one Uint64 drawn from the supplied RNG), independent of worker
// count and representation.
package bips

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// Errors returned by constructors and drivers.
var (
	ErrConfig       = errors.New("bips: invalid configuration")
	ErrDisconnected = errors.New("bips: graph must be connected")
	ErrRoundLimit   = errors.New("bips: round limit exceeded before full infection")
	ErrSource       = errors.New("bips: invalid source vertex")
)

// Config selects the BIPS variant; it mirrors core.Config for COBRA, as
// the duality theorem requires matching parameters.
type Config struct {
	// Branch is the integer number of neighbours sampled per vertex per
	// round (b in the paper; main case 2).
	Branch int
	// Rho adds a fractional extra sample with probability Rho, giving the
	// Section 6 branching factor b = Branch + Rho (the paper's case is
	// Branch = 1). Must lie in [0, 1].
	Rho float64
	// Lazy makes each selection pick the sampling vertex itself with
	// probability 1/2, restoring a positive eigenvalue gap on bipartite
	// graphs.
	Lazy bool
	// MaxRounds caps a run; 0 selects the driver default 64·n·log2(n)+64.
	MaxRounds int
}

// DefaultConfig is the paper's primary setting b = 2.
func DefaultConfig() Config { return Config{Branch: 2} }

// EffectiveBranch returns Branch + Rho.
func (c Config) EffectiveBranch() float64 { return float64(c.Branch) + c.Rho }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Branch < 1 {
		return fmt.Errorf("%w: Branch must be >= 1, got %d", ErrConfig, c.Branch)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("%w: Rho must be in [0,1], got %v", ErrConfig, c.Rho)
	}
	return nil
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return engine.DefaultMaxRounds(n)
}

// engineParams maps the configuration onto the shared kernel.
func (c Config) engineParams(workers int) engine.Params {
	return engine.Params{Branch: c.Branch, Rho: c.Rho, Lazy: c.Lazy, Workers: workers}
}

// translateEngineErr maps kernel errors onto this package's exported
// error values. Connectivity is checked only inside the kernel (one
// O(n+m) traversal per construction); config and source problems are
// pre-validated by the constructors, so the kernel cannot surface them.
func translateEngineErr(err error) error {
	if errors.Is(err, engine.ErrDisconnected) {
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	return err
}

// Process is a single BIPS run on the serial path of the shared frontier
// kernel. Not safe for concurrent use.
type Process struct {
	g      *graph.Graph
	cfg    Config
	rng    *xrand.RNG // feeds SerialRound's per-step draws only
	source int
	k      *engine.Kernel
}

// New creates a BIPS process with the given persistent source. The plain
// rounds' master seed is one Uint64 drawn from rng at construction; rng
// additionally feeds SerialRound's per-step decisions.
func New(g *graph.Graph, cfg Config, source int, rng *xrand.RNG) (*Process, error) {
	return NewWith(engine.NewWorkspace(), g, cfg, source, rng)
}

// NewWith is New constructing the kernel through ws (see engine.Workspace
// for the reuse contract): the trajectory is identical to New from the
// same (graph, config, source, rng state), with none of the per-trial
// kernel allocations and with connectivity verified once per distinct
// graph. The previous kernel built through ws becomes invalid.
func NewWith(ws *engine.Workspace, g *graph.Graph, cfg Config, source int, rng *xrand.RNG) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("%w: %d", ErrSource, source)
	}
	k, err := engine.NewBipsWith(ws, g, cfg.engineParams(1), source, rng.Uint64())
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return &Process{g: g, cfg: cfg, rng: rng, source: source, k: k}, nil
}

// Round returns the number of completed rounds t.
func (p *Process) Round() int { return p.k.Round() }

// Source returns the persistent source vertex.
func (p *Process) Source() int { return p.source }

// Infected returns the live infected set A_t (read-only).
func (p *Process) Infected() *bitset.Set { return p.k.Frontier() }

// InfectedCount returns |A_t|.
func (p *Process) InfectedCount() int { return p.k.FrontierCount() }

// Complete reports whether A_t = V.
func (p *Process) Complete() bool { return p.k.Complete() }

// Step advances the process one round using the plain (parallel-decision)
// dynamics. Unlike COBRA's informed set, |A_t| may shrink: vertices other
// than the source refresh their state every round.
func (p *Process) Step() { p.k.Step() }

// sampleInfected draws u's selections from the process's own RNG and
// reports whether any lies in the current infected set; the sampling path
// of the serialised round decomposition.
func (p *Process) sampleInfected(u int) bool {
	b := p.cfg.Branch
	if p.cfg.Rho > 0 && p.rng.Bernoulli(p.cfg.Rho) {
		b++
	}
	deg := p.g.Degree(u)
	cur := p.k.Frontier()
	for k := 0; k < b; k++ {
		var pick int
		if p.cfg.Lazy && p.rng.Bool() {
			pick = u
		} else {
			pick = p.g.Neighbor(u, p.rng.Intn(deg))
		}
		if cur.Contains(pick) {
			return true
		}
	}
	return false
}

// Run advances until full infection and returns infec(source), or
// ErrRoundLimit at the cap.
func (p *Process) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.Round() >= limit {
			return p.Round(), fmt.Errorf("%w: %d rounds on %s", ErrRoundLimit, p.Round(), p.g.Name())
		}
		p.Step()
	}
	return p.Round(), nil
}

// InfectionTime runs one BIPS trial and returns infec(source).
func InfectionTime(g *graph.Graph, cfg Config, source int, rng *xrand.RNG) (int, error) {
	p, err := New(g, cfg, source, rng)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// InfectionTimeWith is InfectionTime with the kernel built through ws:
// the same result bit for bit, amortizing allocations and the
// connectivity check across trials (the hot-loop form for repeated
// trials on shared graphs).
func InfectionTimeWith(ws *engine.Workspace, g *graph.Graph, cfg Config, source int, rng *xrand.RNG) (int, error) {
	p, err := NewWith(ws, g, cfg, source, rng)
	if err != nil {
		return 0, err
	}
	return p.Run()
}

// RoundTrace records per-round infected-set sizes of one run.
type RoundTrace struct {
	// InfectedSize[t] is |A_t| (index 0 is 1, the source alone).
	InfectedSize []int
	// CandidateSize[t] is |C_t| for rounds t >= 1 (index 0 unused, 0);
	// the candidate set of Section 3, needed for Corollary 5.2 checks.
	CandidateSize []int
	// CompleteRound is the first round with A_t = V (-1 if capped).
	CompleteRound int
}

// Trace runs one BIPS trial recording |A_t| and |C_t| each round.
func Trace(g *graph.Graph, cfg Config, source int, rng *xrand.RNG) (*RoundTrace, error) {
	p, err := New(g, cfg, source, rng)
	if err != nil {
		return nil, err
	}
	tr := &RoundTrace{CompleteRound: -1}
	tr.InfectedSize = append(tr.InfectedSize, 1)
	tr.CandidateSize = append(tr.CandidateSize, 0)
	limit := cfg.maxRounds(g.N())
	for !p.Complete() && p.Round() < limit {
		tr.CandidateSize = append(tr.CandidateSize, candidateCount(g, p.Infected(), p.source))
		p.Step()
		tr.InfectedSize = append(tr.InfectedSize, p.InfectedCount())
	}
	if p.Complete() {
		tr.CompleteRound = p.Round()
	}
	return tr, nil
}

// candidateCount computes |C| = |(N(A) ∪ {v}) \ Bfix| for the round about
// to be taken from infected set A.
func candidateCount(g *graph.Graph, a *bitset.Set, source int) int {
	n := g.N()
	count := 0
	for u := 0; u < n; u++ {
		if inCandidates(g, a, source, u) {
			count++
		}
	}
	return count
}

// inCandidates reports whether u ∈ C = (N(A) ∪ {v}) \ Bfix, where
// Bfix = {u : N(u) ⊆ A}.
func inCandidates(g *graph.Graph, a *bitset.Set, source, u int) bool {
	dA := 0
	deg := g.Degree(u)
	for _, w := range g.Neighbors(u) {
		if a.Contains(int(w)) {
			dA++
		}
	}
	if dA == deg { // u ∈ Bfix
		return false
	}
	return dA > 0 || u == source
}
