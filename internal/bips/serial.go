package bips

import (
	"fmt"
	"math"
)

// Serialisation of a BIPS round (paper, Section 3). One parallel round is
// decomposed as:
//
//	A = A_{t-1}
//	Bfix  = {u ∈ V : N(u) ⊆ A}                  deterministic part of A_t
//	C     = (N(A) ∪ {v}) \ Bfix                  candidates, never empty
//	Brand = random subset of C (each u joins with the infection
//	        probability; the source joins surely)
//	A_t   = Bfix ∪ Brand
//
// Vertices outside N(A) ∪ {v} cannot be infected, so this reproduces the
// plain round exactly. Processing C in a fixed vertex order yields the
// step increments
//
//	Y_l = d(u)·X_u − d_A(u)
//
// whose running sums track d(A_t) (equation (14)) and whose conditional
// expectations satisfy E(Y_l | past) >= 1/2 for b = 2 (equation (18)),
// respectively >= ρ/2 for branching 1+ρ (Section 6).
//
// The serialisation demands the paper's sampling model (with replacement,
// non-lazy) and Branch ∈ {1, 2}; other variants return an error.

// Step records one serialised step: the decision of one candidate vertex.
type Step struct {
	// Vertex is the candidate u deciding at this step.
	Vertex int
	// Deg and DegA are d(u) and d_A(u), the degree and the number of
	// currently infected neighbours.
	Deg, DegA int
	// Infected is X_u: whether u joined Brand.
	Infected bool
	// Y is the realised increment d(u)·X_u − d_A(u).
	Y int
	// ExpectedY is the exact conditional expectation of Y given the
	// current infected set: d_A(1 − d_A/d) for b = 2,
	// ρ·d_A(1 − d_A/d) for b = 1+ρ, and d − d_A for the source.
	ExpectedY float64
	// IsSource marks the persistent source (X ≡ 1).
	IsSource bool
}

// SerialRound advances the process by one round using the serialised
// dynamics and returns the per-step records in the fixed (increasing
// vertex id) order. The resulting A_t has exactly the distribution of a
// plain Step.
func (p *Process) SerialRound() ([]Step, error) {
	if p.cfg.Lazy {
		return nil, fmt.Errorf("%w: serialisation requires the non-lazy process", ErrConfig)
	}
	if p.cfg.Branch > 2 || (p.cfg.Branch == 2 && p.cfg.Rho > 0) {
		return nil, fmt.Errorf("%w: serialisation supports b = 2 or b = 1+ρ, got %d+%v",
			ErrConfig, p.cfg.Branch, p.cfg.Rho)
	}
	n := p.g.N()
	cur := p.k.Frontier()
	next := make([]int, 0, p.InfectedCount()+8)
	var steps []Step
	for u := 0; u < n; u++ {
		deg := p.g.Degree(u)
		dA := 0
		for _, w := range p.g.Neighbors(u) {
			if cur.Contains(int(w)) {
				dA++
			}
		}
		if dA == deg {
			// u ∈ Bfix: infected deterministically, not a step.
			next = append(next, u)
			continue
		}
		if dA == 0 && u != p.source {
			// Not a candidate; cannot be infected this round.
			continue
		}
		st := Step{Vertex: u, Deg: deg, DegA: dA, IsSource: u == p.source}
		if u == p.source {
			st.Infected = true
			st.Y = deg - dA
			st.ExpectedY = float64(deg - dA)
		} else {
			st.Infected = p.sampleInfected(u)
			if st.Infected {
				st.Y = deg - dA
			} else {
				st.Y = -dA
			}
			st.ExpectedY = p.expectedY(deg, dA)
		}
		if st.Infected {
			next = append(next, u)
		}
		steps = append(steps, st)
	}
	// Hand the serialised round's outcome back to the kernel, which
	// advances the round counter exactly as a plain Step would.
	p.k.InstallFrontier(next)
	return steps, nil
}

// expectedY returns E(Y) = d·P(infected) − d_A for a non-source candidate.
// For b = 2: P = 1 − (1−d_A/d)², giving E(Y) = d_A(1 − d_A/d) (eq. 17).
// For b = 1+ρ: P = 1 − (1−d_A/d)(1−ρ d_A/d) (eq. 33), giving
// E(Y) = ρ·d_A(1 − d_A/d).
func (p *Process) expectedY(deg, dA int) float64 {
	frac := float64(dA) / float64(deg)
	switch {
	case p.cfg.Branch == 2:
		return float64(dA) * (1 - frac)
	default: // Branch == 1, fractional Rho (possibly 0 = plain walk dual)
		return p.cfg.Rho * float64(dA) * (1 - frac)
	}
}

// MartingaleFloor returns the paper's lower bound on every conditional
// step expectation for this configuration: 1/2 for b = 2 (eq. 18), ρ/2
// for b = 1+ρ (Section 6). Source steps satisfy Y >= 1 always.
func (c Config) MartingaleFloor() float64 {
	if c.Branch == 2 {
		return 0.5
	}
	return c.Rho / 2
}

// DegreeOfInfected returns d(A_t) = Σ_{u ∈ A_t} d(u), the quantity whose
// growth Section 3 tracks (equation (14)).
func (p *Process) DegreeOfInfected() int {
	return p.k.FrontierVolume()
}

// CandidateCount returns |C_t| for the upcoming round, the set bounded
// below by Corollary 5.2 (|C| >= |A|(1−λ)/2 while |A| <= n/2 on regular
// graphs).
func (p *Process) CandidateCount() int {
	return candidateCount(p.g, p.k.Frontier(), p.source)
}

// TheoremOneBound evaluates the Theorem 1.4 bound shape
// m + dmax²·log n for the process's graph (the constant-free version used
// to normalise measured infection times in experiments).
func (p *Process) TheoremOneBound() float64 {
	g := p.g
	d := float64(g.MaxDegree())
	return float64(g.M()) + d*d*math.Log(float64(g.N()))
}
