package bips

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

func TestSerialRoundRejectsUnsupportedVariants(t *testing.T) {
	g := graph.Cycle(8)
	lazy, err := New(g, Config{Branch: 2, Lazy: true}, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.SerialRound(); !errors.Is(err, ErrConfig) {
		t.Fatal("lazy serialisation accepted")
	}
	big, err := New(g, Config{Branch: 3}, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.SerialRound(); !errors.Is(err, ErrConfig) {
		t.Fatal("b=3 serialisation accepted")
	}
}

func TestSerialStepInvariants(t *testing.T) {
	// Check every step on every round of full runs across families:
	//   - steps are in increasing vertex order;
	//   - non-source candidates have 1 <= d_A <= d-1 (paper: u ∈ N(A)\Bfix);
	//   - Y ∈ {d - d_A, -d_A} matching Infected;
	//   - ExpectedY matches the closed form and respects the 1/2 floor
	//     (non-source); source steps have Y >= 1.
	graphs := []*graph.Graph{
		graph.Complete(16), graph.Cycle(15), graph.Petersen(),
		graph.Lollipop(5, 5), graph.Star(12),
	}
	rng := xrand.New(3)
	for _, g := range graphs {
		p, err := New(g, DefaultConfig(), 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 400 && !p.Complete(); r++ {
			steps, err := p.SerialRound()
			if err != nil {
				t.Fatal(err)
			}
			if len(steps) == 0 && !p.Complete() {
				t.Fatalf("%s round %d: no steps before completion", g.Name(), r+1)
			}
			lastV := -1
			for _, st := range steps {
				if st.Vertex <= lastV {
					t.Fatalf("%s: steps out of order", g.Name())
				}
				lastV = st.Vertex
				if st.IsSource {
					if !st.Infected || st.Y < 1 {
						t.Fatalf("%s: source step Y=%d infected=%v", g.Name(), st.Y, st.Infected)
					}
					continue
				}
				if st.DegA < 1 || st.DegA > st.Deg-1 {
					t.Fatalf("%s: candidate with d_A=%d d=%d", g.Name(), st.DegA, st.Deg)
				}
				wantY := -st.DegA
				if st.Infected {
					wantY = st.Deg - st.DegA
				}
				if st.Y != wantY {
					t.Fatalf("%s: Y=%d want %d", g.Name(), st.Y, wantY)
				}
				frac := float64(st.DegA) / float64(st.Deg)
				wantE := float64(st.DegA) * (1 - frac)
				if math.Abs(st.ExpectedY-wantE) > 1e-12 {
					t.Fatalf("%s: ExpectedY=%v want %v", g.Name(), st.ExpectedY, wantE)
				}
				if st.ExpectedY < DefaultConfig().MartingaleFloor()-1e-12 {
					t.Fatalf("%s: ExpectedY=%v below floor 1/2 (eq. 18 violated)", g.Name(), st.ExpectedY)
				}
			}
		}
		if !p.Complete() {
			t.Fatalf("%s: serial run did not complete", g.Name())
		}
	}
}

func TestSerialFractionalExpectedY(t *testing.T) {
	// For b = 1+ρ: ExpectedY = ρ·d_A(1−d_A/d) >= ρ/2 (Section 6).
	g := graph.Complete(24)
	cfg := Config{Branch: 1, Rho: 0.5}
	p, err := New(g, cfg, 0, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	floor := cfg.MartingaleFloor()
	if floor != 0.25 {
		t.Fatalf("floor = %v", floor)
	}
	for r := 0; r < 500 && !p.Complete(); r++ {
		steps, err := p.SerialRound()
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			if st.IsSource {
				continue
			}
			frac := float64(st.DegA) / float64(st.Deg)
			wantE := 0.5 * float64(st.DegA) * (1 - frac)
			if math.Abs(st.ExpectedY-wantE) > 1e-12 {
				t.Fatalf("fractional ExpectedY=%v want %v", st.ExpectedY, wantE)
			}
			if st.ExpectedY < floor-1e-12 {
				t.Fatalf("fractional ExpectedY=%v below ρ/2", st.ExpectedY)
			}
		}
	}
}

func TestSerialMatchesPlainDistribution(t *testing.T) {
	// The serialised round must reproduce the plain round's distribution.
	// Compare the mean |A_1| starting from a fixed A_0 via both engines.
	g := graph.Petersen()
	const trials = 4000
	meanAfterOne := func(serial bool, seed uint64) float64 {
		rng := xrand.New(seed)
		var sum float64
		for k := 0; k < trials; k++ {
			p, err := New(g, DefaultConfig(), 0, rng)
			if err != nil {
				t.Fatal(err)
			}
			if serial {
				if _, err := p.SerialRound(); err != nil {
					t.Fatal(err)
				}
			} else {
				p.Step()
			}
			sum += float64(p.InfectedCount())
		}
		return sum / trials
	}
	ms := meanAfterOne(true, 7)
	mp := meanAfterOne(false, 8)
	if math.Abs(ms-mp) > 0.08 {
		t.Fatalf("serial mean %.4f vs plain mean %.4f differ beyond noise", ms, mp)
	}
}

func TestEmpiricalStepMeanMatchesExpectedY(t *testing.T) {
	// Fix an infected set, repeatedly serialise one round from it, and
	// check the empirical mean of each candidate's Y against ExpectedY.
	g := graph.Cycle(12)
	const trials = 20000
	sums := map[int]float64{}
	expect := map[int]float64{}
	counts := map[int]int{}
	rng := xrand.New(9)
	for k := 0; k < trials; k++ {
		p, err := New(g, DefaultConfig(), 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Advance two plain rounds deterministically re-seeded so A is the
		// same across trials? Instead: from A_0={0}, first round has fixed
		// A, so serialise round 1 only.
		steps, err := p.SerialRound()
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			if st.IsSource {
				continue
			}
			sums[st.Vertex] += float64(st.Y)
			expect[st.Vertex] = st.ExpectedY
			counts[st.Vertex]++
		}
	}
	for v, s := range sums {
		mean := s / float64(counts[v])
		if math.Abs(mean-expect[v]) > 0.05 {
			t.Fatalf("vertex %d: empirical E(Y) %.4f vs theoretical %.4f", v, mean, expect[v])
		}
	}
}

func TestDegreeOfInfected(t *testing.T) {
	g := graph.Star(9)
	p, err := New(g, DefaultConfig(), 0, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// A_0 = {hub}: d(A) = 8.
	if d := p.DegreeOfInfected(); d != 8 {
		t.Fatalf("d(A_0) = %d, want 8", d)
	}
}

func TestTheoremOneBoundPositive(t *testing.T) {
	g := graph.Cycle(10)
	p, err := New(g, DefaultConfig(), 0, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// m + dmax² ln n = 10 + 4·ln 10.
	want := 10 + 4*math.Log(10)
	if math.Abs(p.TheoremOneBound()-want) > 1e-9 {
		t.Fatalf("bound = %v want %v", p.TheoremOneBound(), want)
	}
}

func TestSerialRunCompletesAndSumsTrackDegree(t *testing.T) {
	// Equation (14): d(A_t) = d(v) + Σ Y_l over all steps so far.
	g := graph.Lollipop(6, 4)
	p, err := New(g, DefaultConfig(), 2, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	running := g.Degree(2)
	for r := 0; r < 2000 && !p.Complete(); r++ {
		steps, err := p.SerialRound()
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			running += st.Y
		}
		// Paper's identity holds per round: d(A_t) = d(Bfix) + d(Brand)
		// where the sum accumulates the random parts; verify directly.
		if got := p.DegreeOfInfected(); got != running {
			t.Fatalf("round %d: d(A_t)=%d but d(v)+ΣY=%d", r+1, got, running)
		}
	}
	if !p.Complete() {
		t.Fatal("did not complete")
	}
}
