package bips

import (
	"testing"

	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// InfectionTimeWith must reproduce InfectionTime bit for bit from the
// same stream, with one workspace reused across trials and graphs.
func TestInfectionTimeWithMatchesInfectionTime(t *testing.T) {
	gen := xrand.New(7)
	rr, err := graph.RandomRegular(200, 3, gen)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{rr, graph.Complete(64)}
	cfgs := []Config{{Branch: 2}, {Branch: 1, Rho: 0.25}}
	ws := engine.NewWorkspace()
	for _, g := range graphs {
		for _, cfg := range cfgs {
			for trial := 0; trial < 5; trial++ {
				seed := uint64(trial + 1)
				want, err := InfectionTime(g, cfg, 0, xrand.NewStream(seed, 9))
				if err != nil {
					t.Fatal(err)
				}
				got, err := InfectionTimeWith(ws, g, cfg, 0, xrand.NewStream(seed, 9))
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %+v trial %d: with-workspace %d vs fresh %d",
						g.Name(), cfg, trial, got, want)
				}
			}
		}
	}
}
