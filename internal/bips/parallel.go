package bips

import (
	"runtime"
	"sync"

	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// ParallelProcess is a BIPS engine that evaluates each round across
// worker goroutines. A BIPS round is Θ(n·b) work regardless of infection
// size (every vertex re-samples), so rounds parallelise well on large
// graphs. Randomness for each (round, vertex) pair derives from the
// master seed with a stateless stream hash, making the trajectory
// independent of scheduling and worker count, exactly as in
// core.ParallelProcess.
type ParallelProcess struct {
	g       *graph.Graph
	cfg     Config
	seed    uint64
	source  int
	workers int

	cur   *bitset.Set
	next  *bitset.Atomic
	snap  *bitset.Set
	round int
	nInf  int
}

// NewParallel creates a deterministic parallel BIPS process. workers <= 0
// selects GOMAXPROCS.
func NewParallel(g *graph.Graph, cfg Config, source int, seed uint64, workers int) (*ParallelProcess, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, ErrDisconnected
	}
	if source < 0 || source >= g.N() {
		return nil, ErrSource
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelProcess{
		g:       g,
		cfg:     cfg,
		seed:    seed,
		source:  source,
		workers: workers,
		cur:     bitset.New(g.N()),
		next:    bitset.NewAtomic(g.N()),
		snap:    bitset.New(g.N()),
	}
	p.cur.Set(source)
	p.nInf = 1
	return p, nil
}

// Round returns the number of completed rounds.
func (p *ParallelProcess) Round() int { return p.round }

// InfectedCount returns |A_t|.
func (p *ParallelProcess) InfectedCount() int { return p.nInf }

// Infected returns the live infected set (read-only).
func (p *ParallelProcess) Infected() *bitset.Set { return p.cur }

// Complete reports whether A_t = V.
func (p *ParallelProcess) Complete() bool { return p.nInf == p.g.N() }

// Step advances one round, fanning vertex decisions across workers.
func (p *ParallelProcess) Step() {
	n := p.g.N()
	p.next.Reset()
	nw := p.workers
	if n < 4*nw {
		nw = 1
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				if u == p.source || p.sampleInfectedHashed(u) {
					p.next.Set(u)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	p.next.Snapshot(p.snap)
	p.cur.CopyFrom(p.snap)
	p.round++
	p.nInf = p.cur.Count()
}

// sampleInfectedHashed mirrors Process.sampleInfected with per-(round,
// vertex) hashed streams.
func (p *ParallelProcess) sampleInfectedHashed(u int) bool {
	rng := xrand.NewStream(p.seed, uint64(p.round)<<32|uint64(uint32(u)))
	b := p.cfg.Branch
	if p.cfg.Rho > 0 && rng.Bernoulli(p.cfg.Rho) {
		b++
	}
	deg := p.g.Degree(u)
	for k := 0; k < b; k++ {
		var pick int
		if p.cfg.Lazy && rng.Bool() {
			pick = u
		} else {
			pick = p.g.Neighbor(u, rng.Intn(deg))
		}
		if p.cur.Contains(pick) {
			return true
		}
	}
	return false
}

// Run advances until full infection or the round cap.
func (p *ParallelProcess) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.round >= limit {
			return p.round, ErrRoundLimit
		}
		p.Step()
	}
	return p.round, nil
}
