package bips

import (
	"github.com/repro/cobra/internal/bitset"
	"github.com/repro/cobra/internal/engine"
	"github.com/repro/cobra/internal/graph"
)

// ParallelProcess is a BIPS engine that evaluates each round across
// worker goroutines via the shared adaptive frontier kernel. Randomness
// for each (round, vertex) pair derives from the master seed with a
// stateless stream hash, making the trajectory independent of scheduling,
// worker count, and the kernel's sparse/dense representation, exactly as
// in core.ParallelProcess — and identical to a serial Process whose RNG
// yields the same master seed.
type ParallelProcess struct {
	g   *graph.Graph
	cfg Config
	k   *engine.Kernel
}

// NewParallel creates a deterministic parallel BIPS process. workers <= 0
// selects GOMAXPROCS.
func NewParallel(g *graph.Graph, cfg Config, source int, seed uint64, workers int) (*ParallelProcess, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 || source >= g.N() {
		return nil, ErrSource
	}
	k, err := engine.NewBips(g, cfg.engineParams(workers), source, seed)
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return &ParallelProcess{g: g, cfg: cfg, k: k}, nil
}

// Round returns the number of completed rounds.
func (p *ParallelProcess) Round() int { return p.k.Round() }

// InfectedCount returns |A_t|.
func (p *ParallelProcess) InfectedCount() int { return p.k.FrontierCount() }

// Infected returns the live infected set (read-only).
func (p *ParallelProcess) Infected() *bitset.Set { return p.k.Frontier() }

// Complete reports whether A_t = V.
func (p *ParallelProcess) Complete() bool { return p.k.Complete() }

// Step advances one round, fanning vertex decisions across workers.
func (p *ParallelProcess) Step() { p.k.Step() }

// Run advances until full infection or the round cap.
func (p *ParallelProcess) Run() (int, error) {
	limit := p.cfg.maxRounds(p.g.N())
	for !p.Complete() {
		if p.Round() >= limit {
			return p.Round(), ErrRoundLimit
		}
		p.Step()
	}
	return p.Round(), nil
}
