package graph

import (
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/xrand"
)

func TestIsConnected(t *testing.T) {
	if !Cycle(5).IsConnected() {
		t.Fatal("cycle disconnected")
	}
	// Two disjoint edges.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild("2K2")
	if g.IsConnected() {
		t.Fatal("disjoint union reported connected")
	}
	// Single vertex counts as connected.
	single := NewBuilder(1)
	sg, err := single.Build("K1")
	if err != nil {
		t.Fatal(err)
	}
	if !sg.IsConnected() {
		t.Fatal("K1 not connected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for v := 0; v < 5; v++ {
		if d[v] != v {
			t.Fatalf("BFS path distance d[%d]=%d", v, d[v])
		}
	}
	// Disconnected: unreachable gets -1.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.MustBuild("e+v")
	d2 := g2.BFS(0)
	if d2[2] != -1 {
		t.Fatalf("unreachable distance %d", d2[2])
	}
	if g2.Eccentricity(0) != -1 {
		t.Fatal("eccentricity of disconnected should be -1")
	}
	if g2.Diameter() != -1 {
		t.Fatal("diameter of disconnected should be -1")
	}
}

func TestDiameterKnownValues(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Complete(6), 1},
		{Cycle(10), 5},
		{Cycle(11), 5},
		{Path(7), 6},
		{Star(9), 2},
		{Hypercube(5), 5},
		{Grid(3, 7), 2 + 6},
	}
	for _, tc := range cases {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s diameter = %d, want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestDiameterApproxIsLowerBoundAndExactOnTrees(t *testing.T) {
	rng := xrand.New(5)
	for i := 0; i < 10; i++ {
		tr, err := RandomTree(60, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DiameterApprox() != tr.Diameter() {
			t.Fatal("double sweep not exact on a tree")
		}
	}
	for _, g := range []*Graph{Cycle(12), Hypercube(4), Petersen(), Lollipop(6, 5)} {
		if g.DiameterApprox() > g.Diameter() {
			t.Fatalf("%s: approx %d exceeds exact %d", g.Name(), g.DiameterApprox(), g.Diameter())
		}
	}
}

func TestCoverTimeLowerBound(t *testing.T) {
	// K_n: diameter 1, so bound is ceil(log2 n).
	if got := Complete(16).CoverTimeLowerBound(); got != 4 {
		t.Fatalf("K16 lower bound %d", got)
	}
	// Long path: diameter dominates.
	if got := Path(100).CoverTimeLowerBound(); got != 99 {
		t.Fatalf("P100 lower bound %d", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Cycle(6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a neighbour entry to break symmetry.
	old := g.adj[1]
	g.adj[1] = g.adj[0]
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted adjacency")
	}
	g.adj[1] = old
	if err := g.Validate(); err != nil {
		t.Fatal("restore failed")
	}
}

// Property: every generated random graph validates and satisfies the
// handshake lemma.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 20 + rng.Intn(60)
		if n%2 == 1 {
			n++
		}
		g, err := RandomRegular(n, 4, rng)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		deg := 0
		for v := 0; v < g.N(); v++ {
			deg += g.Degree(v)
		}
		return deg == 2*g.M() && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances obey the triangle condition |d(u)-d(v)| <= 1 for
// every edge {u,v}.
func TestBFSLipschitzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g, err := ErdosRenyi(40, 0.15, rng)
		if err != nil {
			return true // disconnected draw exhausted attempts; skip
		}
		d := g.BFS(0)
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				diff := d[v] - d[int(u)]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteKnownFamilies(t *testing.T) {
	if !Hypercube(3).IsBipartite() {
		t.Fatal("hypercube not bipartite")
	}
	if !Grid(4, 4).IsBipartite() {
		t.Fatal("grid not bipartite")
	}
	if Complete(4).IsBipartite() {
		t.Fatal("K4 bipartite")
	}
	if Petersen().IsBipartite() {
		t.Fatal("petersen bipartite")
	}
	if !CompleteBipartite(2, 5).IsBipartite() {
		t.Fatal("K_{2,5} not bipartite")
	}
}
