package graph

import (
	"errors"
	"fmt"

	"github.com/repro/cobra/internal/xrand"
)

// Random graph families. All generators are deterministic functions of the
// supplied RNG, so experiments are reproducible from a master seed.

// ErrGenerator is wrapped by failures of randomised constructions (e.g. a
// connected sample could not be found within the attempt budget).
var ErrGenerator = errors.New("graph: randomised generator failed")

// ErdosRenyi samples G(n, p) conditioned on being connected: it redraws up
// to maxAttempts times until the sample is connected. For p >= c*ln(n)/n
// with c > 1 a draw is connected with probability 1 - o(1), so a small
// budget suffices; callers passing sub-threshold p get ErrGenerator.
func ErdosRenyi(n int, p float64, rng *xrand.RNG) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: ErdosRenyi needs n >= 2", ErrGenerator)
	}
	// Written as !(p > 0) so that NaN is rejected too.
	if !(p > 0) || p > 1 {
		return nil, fmt.Errorf("%w: ErdosRenyi needs 0 < p <= 1", ErrGenerator)
	}
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := NewBuilder(n)
		// Geometric skipping (Batagelj–Brandes) samples G(n,p) in O(n+m)
		// rather than O(n^2) when p is small.
		sampleGnp(b, n, p, rng)
		g, err := b.Build(fmt.Sprintf("er-%d-p%.4f", n, p))
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: G(%d, %.4f) not connected after %d attempts (p below connectivity threshold?)",
		ErrGenerator, n, p, maxAttempts)
}

func sampleGnp(b *Builder, n int, p float64, rng *xrand.RNG) {
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return
	}
	// Enumerate candidate pairs (u,v), u<v, in row-major order, skipping
	// ahead geometrically.
	logq := log1p(-p)
	u, v := 0, 0
	for u < n-1 {
		// Draw skip ~ Geometric(p): number of pairs to jump over.
		skip := int(log(1-rng.Float64())/logq) + 1
		v += skip
		for v >= n && u < n-1 {
			u++
			v = v - n + u + 1
		}
		if u < n-1 && v < n && v > u {
			b.AddEdge(u, v)
		}
	}
}

// RandomRegular samples a random r-regular simple connected graph on n
// vertices using the Steger–Wormald incremental pairing algorithm: keep a
// pool of unsaturated half-edge stubs and repeatedly match two random
// stubs, accepting only pairs that create neither loops nor multi-edges;
// if the process wedges (no acceptable pair remains), restart. The output
// distribution is asymptotically uniform for r = O(n^{1/28}) and close to
// uniform in practice for the (n, r) ranges used here, and samples succeed
// in O(1) expected restarts unlike pure configuration-model rejection
// whose acceptance decays like e^{-(r^2-1)/4}.
//
// Disconnected accepted samples are also redrawn (for r >= 3 they occur
// with probability o(1)). Requires n*r even and n > r.
func RandomRegular(n, r int, rng *xrand.RNG) (*Graph, error) {
	if r < 1 {
		return nil, fmt.Errorf("%w: RandomRegular needs r >= 1", ErrGenerator)
	}
	if n < r+1 {
		return nil, fmt.Errorf("%w: RandomRegular needs n > r", ErrGenerator)
	}
	if n*r%2 != 0 {
		return nil, fmt.Errorf("%w: RandomRegular needs n*r even (n=%d, r=%d)", ErrGenerator, n, r)
	}
	const maxAttempts = 500
	stubs := make([]int, 0, n*r)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := NewBuilder(n)
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for k := 0; k < r; k++ {
				stubs = append(stubs, v)
			}
		}
		wedged := false
		for len(stubs) > 0 {
			// Try to find an acceptable random pair; the expected number
			// of retries is O(1) until very near the end, so a generous
			// cap distinguishes "unlucky draw" from "wedged state".
			tries := 0
			matched := false
			for tries < 50+len(stubs)*10 {
				i := rng.Intn(len(stubs))
				j := rng.Intn(len(stubs))
				if i == j {
					tries++
					continue
				}
				u, v := stubs[i], stubs[j]
				if u == v || b.HasEdge(u, v) {
					tries++
					continue
				}
				b.AddEdge(u, v)
				// Remove the two stubs (order-insensitive swap-delete).
				if i < j {
					i, j = j, i
				}
				last := len(stubs) - 1
				stubs[i] = stubs[last]
				stubs = stubs[:last]
				last--
				stubs[j] = stubs[last]
				stubs = stubs[:last]
				matched = true
				break
			}
			if !matched {
				wedged = true
				break
			}
		}
		if wedged {
			continue
		}
		g, err := b.Build(fmt.Sprintf("rreg-%d-r%d", n, r))
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: no simple connected %d-regular sample on %d vertices after %d attempts",
		ErrGenerator, r, n, maxAttempts)
}

// RingExpander returns a connected non-bipartite weak expander built from
// a ring plus a random perfect matching of chords (n even): 3-regular up
// to chord collisions, in which case the collided vertices keep degree 2.
// Cheaper than rejection-sampling an exact random regular graph when only
// "some expander" is needed, e.g. in examples.
func RingExpander(n int, rng *xrand.RNG) (*Graph, error) {
	if n < 6 || n%2 != 0 {
		return nil, fmt.Errorf("%w: RingExpander needs even n >= 6", ErrGenerator)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i += 2 {
		u, v := perm[i], perm[i+1]
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build(fmt.Sprintf("ringexp-%d", n))
}

// RandomTree samples a uniform labelled tree on n vertices via a random
// Prüfer sequence. Trees are the sparsest connected graphs (m = n-1) and
// stress the additive m term versus the dmax^2 log n term in Theorem 1.1.
func RandomTree(n int, rng *xrand.RNG) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: RandomTree needs n >= 2", ErrGenerator)
	}
	b := NewBuilder(n)
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Build("rtree-2")
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = rng.Intn(n)
		deg[prufer[i]]++
	}
	// Decode: repeatedly join the smallest leaf to the next code symbol.
	// A simple O(n log n) approach with an index scan is fine at our sizes.
	used := make([]bool, n)
	leaf := -1
	next := 0 // smallest candidate leaf not yet used
	findLeaf := func() int {
		for next < n {
			if deg[next] == 1 && !used[next] {
				return next
			}
			next++
		}
		return -1
	}
	for _, code := range prufer {
		if leaf < 0 {
			leaf = findLeaf()
		}
		b.AddEdge(leaf, code)
		used[leaf] = true
		deg[code]--
		if deg[code] == 1 && code < next {
			leaf = code
		} else {
			leaf = -1
		}
	}
	// Two vertices of degree 1 remain; connect them.
	u := -1
	for v := 0; v < n; v++ {
		if !used[v] && deg[v] == 1 {
			if u < 0 {
				u = v
			} else {
				b.AddEdge(u, v)
				break
			}
		}
	}
	return b.Build(fmt.Sprintf("rtree-%d", n))
}
