package graph

import (
	"fmt"
	"math"
)

// This file contains the deterministic graph families used across the
// experiments. Random families (Erdős–Rényi, random regular) are in
// generators_random.go.

// Complete returns the complete graph K_n. The paper's intro example (i):
// COBRA covers K_n in O(log n) rounds.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild(fmt.Sprintf("complete-%d", n))
}

// Cycle returns the n-cycle C_n (n >= 3). Even cycles are bipartite, which
// exercises the lazy-COBRA remark under Theorem 1.2.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.MustBuild(fmt.Sprintf("cycle-%d", n))
}

// Path returns the path graph P_n on n vertices (n >= 2). Its cover time is
// diameter-dominated: the worst deterministic lower bound from the paper,
// max{log2 n, Diam(G)}, is tight up to the diameter term here.
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: Path requires n >= 2")
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild(fmt.Sprintf("path-%d", n))
}

// Star returns the star K_{1,n-1}: vertex 0 adjacent to all others. This is
// the extreme dmax = n-1 case of Theorem 1.1's (dmax)^2 log n term.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star requires n >= 2")
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild(fmt.Sprintf("star-%d", n))
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}. It is
// connected and bipartite, so plain BIPS/COBRA with b=2 can oscillate;
// the lazy variants are needed (remark under Theorem 1.2).
func CompleteBipartite(a, bn int) *Graph {
	if a < 1 || bn < 1 {
		panic("graph: CompleteBipartite requires both parts non-empty")
	}
	b := NewBuilder(a + bn)
	for u := 0; u < a; u++ {
		for v := 0; v < bn; v++ {
			b.AddEdge(u, a+v)
		}
	}
	return b.MustBuild(fmt.Sprintf("bipartite-%d-%d", a, bn))
}

// Hypercube returns the d-dimensional hypercube Q_d on n = 2^d vertices.
// Vertex labels are the binary strings; u ~ v iff they differ in one bit.
// The paper's running example: degree r = log2 n, eigenvalue gap
// 1-λ = Θ(1/log n), and the successive cover-time bounds O(log^8 n) [8],
// O(log^4 n) [4], O(log^3 n) (this paper).
func Hypercube(d int) *Graph {
	if d < 1 || d > 30 {
		panic("graph: Hypercube requires 1 <= d <= 30")
	}
	n := 1 << uint(d)
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << uint(bit))
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild(fmt.Sprintf("hypercube-%d", d))
}

// Grid returns the D-dimensional grid with side s (n = s^D vertices),
// with non-periodic boundaries. The D-dimensional grid is the family with
// the O(D^2 n^{1/D}) bound from [8] cited in the introduction.
func Grid(dims ...int) *Graph {
	if len(dims) == 0 {
		panic("graph: Grid requires at least one dimension")
	}
	n := 1
	for _, s := range dims {
		if s < 2 {
			panic("graph: Grid sides must be >= 2")
		}
		if n > (1<<31)/s {
			panic("graph: Grid too large")
		}
		n *= s
	}
	b := NewBuilder(n)
	// Mixed-radix encoding: index = sum coord[k] * stride[k].
	stride := make([]int, len(dims))
	stride[0] = 1
	for k := 1; k < len(dims); k++ {
		stride[k] = stride[k-1] * dims[k-1]
	}
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		rem := v
		for k := range dims {
			coord[k] = rem % dims[k]
			rem /= dims[k]
		}
		for k := range dims {
			if coord[k]+1 < dims[k] {
				b.AddEdge(v, v+stride[k])
			}
		}
	}
	return b.MustBuild(fmt.Sprintf("grid-%dd-%d", len(dims), n))
}

// Torus returns the D-dimensional torus (grid with periodic boundaries).
// For every side >= 3 it is regular with degree 2D, the regular-graph
// stand-in for the grid family in Theorem 1.2 experiments. Even sides make
// it bipartite in 1 dimension; for D >= 2 with any side >= 3 odd it is not.
func Torus(dims ...int) *Graph {
	if len(dims) == 0 {
		panic("graph: Torus requires at least one dimension")
	}
	n := 1
	for _, s := range dims {
		if s < 3 {
			panic("graph: Torus sides must be >= 3")
		}
		if n > (1<<31)/s {
			panic("graph: Torus too large")
		}
		n *= s
	}
	b := NewBuilder(n)
	stride := make([]int, len(dims))
	stride[0] = 1
	for k := 1; k < len(dims); k++ {
		stride[k] = stride[k-1] * dims[k-1]
	}
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		rem := v
		for k := range dims {
			coord[k] = rem % dims[k]
			rem /= dims[k]
		}
		for k := range dims {
			next := v - coord[k]*stride[k] + ((coord[k]+1)%dims[k])*stride[k]
			if next != v && !b.HasEdge(v, next) {
				b.AddEdge(v, next)
			}
		}
	}
	return b.MustBuild(fmt.Sprintf("torus-%dd-%d", len(dims), n))
}

// BinaryTree returns the complete binary tree on n vertices (heap
// numbering: children of v are 2v+1, 2v+2). Trees have m = n-1, so
// Theorem 1.1's bound is dominated by the dmax^2 log n term.
func BinaryTree(n int) *Graph {
	if n < 2 {
		panic("graph: BinaryTree requires n >= 2")
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.MustBuild(fmt.Sprintf("bintree-%d", n))
}

// Lollipop returns the lollipop graph: a clique on k vertices with a path
// of n-k vertices attached to clique vertex 0. The classic worst case for
// random-walk cover time (Θ(n^3) for the simple walk when k ≈ 2n/3); used
// in E1 to stress Theorem 1.1's O(m + dmax^2 log n) shape.
func Lollipop(cliqueSize, pathLen int) *Graph {
	if cliqueSize < 2 || pathLen < 1 {
		panic("graph: Lollipop requires cliqueSize >= 2 and pathLen >= 1")
	}
	n := cliqueSize + pathLen
	b := NewBuilder(n)
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, cliqueSize)
	for v := cliqueSize; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild(fmt.Sprintf("lollipop-%d-%d", cliqueSize, pathLen))
}

// Barbell returns two k-cliques joined by a path of bridgeLen vertices
// (bridgeLen may be 0, joining the cliques by a single edge).
func Barbell(cliqueSize, bridgeLen int) *Graph {
	if cliqueSize < 2 || bridgeLen < 0 {
		panic("graph: Barbell requires cliqueSize >= 2 and bridgeLen >= 0")
	}
	n := 2*cliqueSize + bridgeLen
	b := NewBuilder(n)
	addClique := func(lo int) {
		for u := lo; u < lo+cliqueSize; u++ {
			for v := u + 1; v < lo+cliqueSize; v++ {
				b.AddEdge(u, v)
			}
		}
	}
	addClique(0)
	addClique(cliqueSize + bridgeLen)
	if bridgeLen == 0 {
		b.AddEdge(0, cliqueSize)
	} else {
		b.AddEdge(0, cliqueSize)
		for v := cliqueSize; v+1 < cliqueSize+bridgeLen; v++ {
			b.AddEdge(v, v+1)
		}
		b.AddEdge(cliqueSize+bridgeLen-1, cliqueSize+bridgeLen)
	}
	return b.MustBuild(fmt.Sprintf("barbell-%d-%d", cliqueSize, bridgeLen))
}

// DoubleCycle returns the circulant graph C_n(1, 2): each vertex adjacent
// to its neighbours at distance 1 and 2 on the ring. 4-regular,
// non-bipartite for every n >= 5, with poor expansion — a regular graph
// whose gap 1-λ = Θ(1/n^2) violates Theorem 1.2's gap premise, used in
// tests of the premise check.
func DoubleCycle(n int) *Graph {
	if n < 5 {
		panic("graph: DoubleCycle requires n >= 5")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
		b.AddEdge(v, (v+2)%n)
	}
	return b.MustBuild(fmt.Sprintf("doublecycle-%d", n))
}

// Chord returns the circulant graph C_n(1, 2, ..., k): a 2k-regular ring
// lattice. For k ≈ log n this is a weak expander used in small ablations.
func Chord(n, k int) *Graph {
	if n < 2*k+1 || k < 1 {
		panic("graph: Chord requires n >= 2k+1, k >= 1")
	}
	// The circulant's adjacency is known in closed form — neighbours of v
	// are v±1..v±k mod n, all distinct for n >= 2k+1 — so the CSR arrays
	// are built directly in sorted order. The Builder's dedup map costs
	// minutes and gigabytes at the 2·10^7-vertex scale of the engine
	// scaling benchmarks; this path is linear and matches the Builder's
	// output byte for byte (TestChordMatchesBuilder).
	deg := 2 * k
	off := make([]int32, n+1)
	adj := make([]int32, n*deg)
	for v := 0; v <= n; v++ {
		off[v] = int32(v * deg)
	}
	nbr := make([]int32, 0, deg)
	for v := 0; v < n; v++ {
		nbr = nbr[:0]
		for j := -k; j <= k; j++ {
			if j == 0 {
				continue
			}
			nbr = append(nbr, int32(((v+j)%n+n)%n))
		}
		// Insertion sort: deg is tiny and the list is nearly sorted.
		for i := 1; i < len(nbr); i++ {
			for p := i; p > 0 && nbr[p] < nbr[p-1]; p-- {
				nbr[p], nbr[p-1] = nbr[p-1], nbr[p]
			}
		}
		copy(adj[v*deg:], nbr)
	}
	return &Graph{n: n, m: n * deg / 2, off: off, adj: adj,
		name: fmt.Sprintf("chord-%d-%d", n, k)}
}

// Spider returns the "star of paths": `legs` paths of `legLen` vertices
// each, all attached to a central vertex 0 (n = 1 + legs*legLen). A
// natural adversarial shape for cover-time conjectures: many long
// dead-ends that must each be walked to the tip.
func Spider(legs, legLen int) *Graph {
	if legs < 1 || legLen < 1 {
		panic("graph: Spider requires legs >= 1 and legLen >= 1")
	}
	n := 1 + legs*legLen
	b := NewBuilder(n)
	for l := 0; l < legs; l++ {
		base := 1 + l*legLen
		b.AddEdge(0, base)
		for i := 0; i+1 < legLen; i++ {
			b.AddEdge(base+i, base+i+1)
		}
	}
	return b.MustBuild(fmt.Sprintf("spider-%d-%d", legs, legLen))
}

// Petersen returns the Petersen graph: 10 vertices, 3-regular,
// vertex-transitive, λ = 2/3 known in closed form — a spectral test vector.
func Petersen() *Graph {
	b := NewBuilder(10)
	// Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
		b.AddEdge(5+i, 5+(i+2)%5)
		b.AddEdge(i, 5+i)
	}
	return b.MustBuild("petersen")
}

// IsPowerOfTwo reports whether n is a positive power of two; exported for
// hypercube-driving experiment code.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns log2(n) for exact powers of two and panics otherwise.
func Log2(n int) int {
	if !IsPowerOfTwo(n) {
		panic("graph: Log2 requires a power of two")
	}
	return int(math.Round(math.Log2(float64(n))))
}
