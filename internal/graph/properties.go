package graph

import "math"

// Structural properties used by the theorems: connectivity (all results
// assume connected G), bipartiteness (Theorem 1.2 needs non-bipartite, or
// lazy processes), BFS distances and diameter (the lower bound
// max{log2 n, Diam(G)} from the introduction).

// log and log1p are tiny indirections so generator code reads cleanly.
func log(x float64) float64   { return math.Log(x) }
func log1p(x float64) float64 { return math.Log1p(x) }

// IsConnected reports whether the graph is connected (true for n = 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	visited := make([]bool, g.n)
	stack := []int32{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(int(v)) {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// IsBipartite reports whether the graph is bipartite, by 2-colouring BFS.
// A connected graph is bipartite iff λ_n = -1, i.e. the plain (non-lazy)
// walk does not mix; the paper handles this case with lazy COBRA/BIPS.
func (g *Graph) IsBipartite() bool {
	color := make([]int8, g.n) // 0 = unseen, 1 / 2 = sides
	queue := make([]int32, 0, g.n)
	for start := 0; start < g.n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(int(v)) {
				if color[u] == 0 {
					color[u] = 3 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return false
				}
			}
		}
	}
	return true
}

// BFS returns the array of hop distances from src; unreachable vertices
// get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 1, g.n)
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src, or -1 if
// some vertex is unreachable.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running BFS from every vertex
// (O(nm)); fine at experiment sizes. Returns -1 for disconnected graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterApprox returns a lower bound on the diameter via a double BFS
// sweep (exact on trees), used when n is too large for the exact O(nm)
// computation.
func (g *Graph) DiameterApprox() int {
	if g.n == 0 {
		return 0
	}
	dist := g.BFS(0)
	far := 0
	for v, d := range dist {
		if d > dist[far] {
			far = v
		}
	}
	return g.Eccentricity(far)
}

// CoverTimeLowerBound returns the paper's deterministic lower bound on the
// number of COBRA (b=2) rounds to inform all vertices:
// max{log2 n, Diam(G)} — the informed set at most doubles per round, and
// information travels one hop per round.
func (g *Graph) CoverTimeLowerBound() int {
	lg := int(math.Ceil(math.Log2(float64(g.n))))
	d := g.DiameterApprox()
	if d > lg {
		return d
	}
	return lg
}

// Validate performs the internal consistency checks used by property
// tests: symmetric adjacency, sorted neighbour lists, no loops or
// duplicates, handshake identity sum(deg) = 2m.
func (g *Graph) Validate() error {
	degSum := 0
	for v := 0; v < g.n; v++ {
		nb := g.Neighbors(v)
		degSum += len(nb)
		for i, u := range nb {
			if int(u) == v {
				return ErrSelfLoop
			}
			if i > 0 && nb[i-1] >= u {
				return ErrDuplicate
			}
			if u < 0 || int(u) >= g.n {
				return ErrVertexRange
			}
			if !g.HasEdge(int(u), v) {
				return errAsymmetric
			}
		}
	}
	if degSum != 2*g.m {
		return errHandshake
	}
	return nil
}

var (
	errAsymmetric = errorString("graph: asymmetric adjacency")
	errHandshake  = errorString("graph: degree sum != 2m")
)

type errorString string

func (e errorString) Error() string { return string(e) }
