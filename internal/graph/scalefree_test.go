package graph

import (
	"bytes"
	"errors"
	"testing"

	"github.com/repro/cobra/internal/xrand"
)

func TestBarabasiAlbertShape(t *testing.T) {
	const n, m = 4000, 2
	g, err := BarabasiAlbert(n, m, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if want := (n - m) * m; g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("builder invariants violated: %v", err)
	}
	// Every non-seed vertex attaches to m distinct earlier vertices.
	for v := m; v < n; v++ {
		if g.Degree(v) < m {
			t.Fatalf("vertex %d degree %d < m", v, g.Degree(v))
		}
	}
	// Preferential attachment has a heavy tail: the hub degree must far
	// exceed the mean 2m (E[dmax] ≈ m·√n ≈ 126 here; 6m = 12 is a safe
	// floor that a flat-degree family would still fail).
	if g.MaxDegree() < 6*m {
		t.Fatalf("max degree %d suspiciously flat for preferential attachment", g.MaxDegree())
	}
}

func TestBarabasiAlbertDegreeDistributionSkew(t *testing.T) {
	// Sanity on the power-law shape: in a BA graph most vertices stay at
	// the minimum degree while a few accumulate large degree. Check that
	// the median degree is ≤ 1.5·m while the 99.9th percentile is ≥ 5·m.
	const n, m = 8000, 3
	g, err := BarabasiAlbert(n, m, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, 0, n)
	for v := 0; v < n; v++ {
		degs = append(degs, g.Degree(v))
	}
	atMostMedian, atLeastTail := 0, 0
	for _, d := range degs {
		if d <= 3*m/2 {
			atMostMedian++
		}
		if d >= 5*m {
			atLeastTail++
		}
	}
	if atMostMedian < n/2 {
		t.Fatalf("only %d/%d vertices near the minimum degree; body not heavy at the bottom", atMostMedian, n)
	}
	if atLeastTail < 3 {
		t.Fatalf("only %d vertices with degree >= %d; tail too light", atLeastTail, 5*m)
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	const n, k = 600, 6
	// beta = 0 is the exact ring lattice: k-regular, nk/2 edges.
	lattice, err := WattsStrogatz(n, k, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if reg, r := lattice.IsRegular(); !reg || r != k {
		t.Fatalf("beta=0 lattice not %d-regular", k)
	}
	if lattice.M() != n*k/2 {
		t.Fatalf("beta=0 M = %d, want %d", lattice.M(), n*k/2)
	}
	// beta > 0 keeps the shape: connected, ~nk/2 edges (rare rewire
	// collisions may drop a few), mean degree ~k.
	g, err := WattsStrogatz(n, k, 0.2, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n || !g.IsConnected() {
		t.Fatalf("WS(%d,%d,0.2) shape wrong: n=%d connected=%v", n, k, g.N(), g.IsConnected())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("builder invariants violated: %v", err)
	}
	if g.M() > n*k/2 || g.M() < n*k/2-n*k/50 {
		t.Fatalf("M = %d outside [%d, %d]", g.M(), n*k/2-n*k/50, n*k/2)
	}
	// Rewiring must actually happen: a pure lattice has diameter n/k,
	// while shortcuts shrink it drastically; cheap proxy — some vertex
	// gained or lost a lattice neighbour.
	rewired := false
	for v := 0; v < n && !rewired; v++ {
		if g.Degree(v) != k {
			rewired = true
		}
	}
	if !rewired {
		t.Fatal("beta=0.2 produced an exact lattice (rewiring never fired?)")
	}
}

func TestScaleFreeDeterministicInSeed(t *testing.T) {
	edgeBytes := func(g *Graph) []byte {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baA, err := BarabasiAlbert(500, 3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	baB, err := BarabasiAlbert(500, 3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(edgeBytes(baA), edgeBytes(baB)) {
		t.Fatal("BarabasiAlbert not deterministic in seed")
	}
	baC, err := BarabasiAlbert(500, 3, xrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(edgeBytes(baA), edgeBytes(baC)) {
		t.Fatal("BarabasiAlbert ignored the seed")
	}
	wsA, err := WattsStrogatz(500, 4, 0.3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	wsB, err := WattsStrogatz(500, 4, 0.3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(edgeBytes(wsA), edgeBytes(wsB)) {
		t.Fatal("WattsStrogatz not deterministic in seed")
	}
	wsC, err := WattsStrogatz(500, 4, 0.3, xrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(edgeBytes(wsA), edgeBytes(wsC)) {
		t.Fatal("WattsStrogatz ignored the seed")
	}
}

func TestScaleFreeRejectBadInputs(t *testing.T) {
	rng := xrand.New(1)
	bad := []func() error{
		func() error { _, err := BarabasiAlbert(5, 0, rng); return err },
		func() error { _, err := BarabasiAlbert(3, 3, rng); return err },
		func() error { _, err := WattsStrogatz(10, 3, 0.1, rng); return err }, // odd k
		func() error { _, err := WattsStrogatz(10, 0, 0.1, rng); return err },
		func() error { _, err := WattsStrogatz(4, 4, 0.1, rng); return err }, // n <= k
		func() error { _, err := WattsStrogatz(10, 4, -0.1, rng); return err },
		func() error { _, err := WattsStrogatz(10, 4, 1.5, rng); return err },
	}
	for i, f := range bad {
		if err := f(); !errors.Is(err, ErrGenerator) {
			t.Fatalf("case %d: bad input accepted (err = %v)", i, err)
		}
	}
}
