package graph

import (
	"bytes"
	"strings"
	"testing"

	"github.com/repro/cobra/internal/xrand"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// unit tests; `go test -fuzz=FuzzReadEdgeList ./internal/graph` explores
// further.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# name\nn 5\n0 4\n")
	f.Add("")
	f.Add("n 0\n")
	f.Add("n 2\n0 0\n")
	f.Add("0 1\n")
	f.Add("n 2\n0 1\n0 1\n")
	f.Add("n x\n")
	// Structured corpus entries from the random-family generators, so the
	// fuzzer starts from realistic well-formed inputs too (small
	// Barabási–Albert and Watts–Strogatz samples, deterministic in seed).
	if ba, err := BarabasiAlbert(12, 2, xrand.New(1)); err == nil {
		var buf bytes.Buffer
		if err := ba.WriteEdgeList(&buf); err == nil {
			f.Add(buf.String())
		}
	}
	if ws, err := WattsStrogatz(14, 4, 0.25, xrand.New(2)); err == nil {
		var buf bytes.Buffer
		if err := ws.WriteEdgeList(&buf); err == nil {
			f.Add(buf.String())
		}
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejections are fine; crashes are not
		}
		// Any accepted graph must satisfy all structural invariants and
		// round-trip to an equivalent graph.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		back, err := ReadEdgeList(&buf, "fuzz")
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.N(), back.M(), g.N(), g.M())
		}
	})
}
