// Package graph provides the undirected-graph substrate on which every
// process in this repository runs: a compact CSR (compressed sparse row)
// adjacency representation, generators for the graph families used in the
// paper's theorems and examples, and the structural properties those
// theorems are parameterised by (degree statistics, connectivity,
// bipartiteness, diameter).
//
// Graphs are simple (no self-loops, no parallel edges) and undirected:
// every edge {u, v} appears in both adjacency lists. Vertices are dense
// integers in [0, n).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Common construction errors.
var (
	ErrNoVertices   = errors.New("graph: graph must have at least one vertex")
	ErrSelfLoop     = errors.New("graph: self-loop rejected")
	ErrDuplicate    = errors.New("graph: duplicate edge rejected")
	ErrVertexRange  = errors.New("graph: vertex out of range")
	ErrDisconnected = errors.New("graph: graph is not connected")
)

// Graph is an immutable simple undirected graph in CSR form.
// adj holds the concatenated neighbour lists; off[v]..off[v+1] delimits the
// neighbours of v. Neighbour lists are sorted, which makes membership
// testing O(log d) and representation canonical.
type Graph struct {
	n    int
	m    int
	off  []int32
	adj  []int32
	name string
}

// Builder accumulates edges and produces a Graph. It validates simplicity
// as edges arrive.
type Builder struct {
	n     int
	edges map[[2]int32]struct{}
	err   error
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, edges: make(map[[2]int32]struct{})}
	if n <= 0 {
		b.err = ErrNoVertices
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Errors (range, loop,
// duplicate) are sticky and reported by Build.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		b.err = fmt.Errorf("%w: edge {%d,%d} with n=%d", ErrVertexRange, u, v, b.n)
		return
	case u == v:
		b.err = fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
		return
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int32{int32(u), int32(v)}
	if _, dup := b.edges[key]; dup {
		b.err = fmt.Errorf("%w: {%d,%d}", ErrDuplicate, u, v)
		return
	}
	b.edges[key] = struct{}{}
}

// HasEdge reports whether {u,v} has already been added. Useful for
// generators that avoid duplicates by construction.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[[2]int32{int32(u), int32(v)}]
	return ok
}

// EdgeCount returns the number of edges added so far.
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build finalises the graph. name is a human-readable label used in tables
// and error messages.
func (b *Builder) Build(name string) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	deg := make([]int32, b.n)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, off[:b.n])
	for e := range b.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{n: b.n, m: len(b.edges), off: off, adj: adj, name: name}
	for v := 0; v < b.n; v++ {
		nb := g.neighborsMut(v)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g, nil
}

// MustBuild is Build that panics on error; for generators whose inputs are
// validated upfront.
func (b *Builder) MustBuild(name string) *Graph {
	g, err := b.Build(name)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Name returns the label given at construction.
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbour list of v. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

func (g *Graph) neighborsMut(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// Neighbor returns the i-th neighbour of v (0-based). This is the hot call
// of every simulation round: selecting a uniform neighbour is
// Neighbor(v, rng.Intn(Degree(v))).
func (g *Graph) Neighbor(v, i int) int {
	return int(g.adj[g.off[v]+int32(i)])
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case nb[mid] < int32(v):
			lo = mid + 1
		case nb[mid] > int32(v):
			hi = mid
		default:
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum vertex degree (dmax in the paper).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// IsRegular reports whether every vertex has the same degree, and that
// degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	r := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if g.Degree(v) != r {
			return false, 0
		}
	}
	return true, r
}

// DegreeSum returns the sum of all degrees, i.e. 2m; for a vertex subset
// this is the quantity d(S) tracked throughout Section 3 of the paper.
func (g *Graph) DegreeSum() int { return 2 * g.m }

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d dmax=%d}", g.name, g.n, g.m, g.MaxDegree())
}
