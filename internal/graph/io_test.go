package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	for _, g := range []*Graph{Cycle(9), Petersen(), Star(7), Grid(3, 4)} {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf, "")
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("%s: round trip n=%d m=%d", g.Name(), back.N(), back.M())
		}
		if back.Name() != g.Name() {
			t.Fatalf("name lost: %q", back.Name())
		}
		for v := 0; v < g.N(); v++ {
			na, nb := g.Neighbors(v), back.Neighbors(v)
			if len(na) != len(nb) {
				t.Fatalf("%s: adjacency mismatch at %d", g.Name(), v)
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("%s: adjacency mismatch at %d", g.Name(), v)
				}
			}
		}
	}
}

func TestReadEdgeListIsolatedVertices(t *testing.T) {
	// The n header preserves isolated vertices that no edge mentions.
	in := "n 5\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), "custom")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 1 || g.Name() != "custom" {
		t.Fatalf("n=%d m=%d name=%q", g.N(), g.M(), g.Name())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"0 1\n",           // edge before header
		"n 3\nn 3\n",      // duplicate header
		"n x\n",           // bad count
		"n 3\n0\n",        // malformed edge
		"n 3\n0 z\n",      // bad vertex
		"n 3\n0 0\n",      // self loop (builder error)
		"n 3\n0 1\n1 0\n", // duplicate edge
		"n 3\n0 7\n",      // out of range
		"n 3 4\n",         // malformed header
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), ""); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# my graph\n\nn 3\n# an edge\n0 1\n 1 2 \n"
	g, err := ReadEdgeList(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Name() != "my graph" {
		t.Fatalf("m=%d name=%q", g.M(), g.Name())
	}
}

func TestWriteDOT(t *testing.T) {
	g := Cycle(4)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, func(v int) bool { return v == 2 }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"cycle-4\"", "0 -- 1", "2 [style=filled", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Each undirected edge appears once.
	if strings.Count(out, "--") != g.M() {
		t.Fatalf("DOT edge count %d != m", strings.Count(out, "--"))
	}
	// No highlight function: still valid output.
	buf.Reset()
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "filled") {
		t.Fatal("unexpected highlight")
	}
}
