package graph

import (
	"errors"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build("test")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Name() != "test" {
		t.Fatalf("name %q", g.Name())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("edge membership wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	if _, err := b.Build("x"); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // same undirected edge
	if _, err := b.Build("x"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 3)
	if _, err := b.Build("x"); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v, want ErrVertexRange", err)
	}
}

func TestBuilderRejectsEmptyGraph(t *testing.T) {
	if _, err := NewBuilder(0).Build("x"); !errors.Is(err, ErrNoVertices) {
		t.Fatalf("err = %v, want ErrNoVertices", err)
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(5, 6) // bad
	b.AddEdge(0, 1) // good, but error already latched
	if _, err := b.Build("x"); err == nil {
		t.Fatal("sticky error lost")
	}
}

func TestNeighborsSortedAndNeighborIndexing(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	g := b.MustBuild("sorted")
	nb := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v", nb)
		}
		if g.Neighbor(2, i) != int(want[i]) {
			t.Fatalf("Neighbor(2,%d) = %d", i, g.Neighbor(2, i))
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(10)
	if g.MaxDegree() != 9 || g.MinDegree() != 1 {
		t.Fatalf("star degrees: max %d min %d", g.MaxDegree(), g.MinDegree())
	}
	if reg, _ := g.IsRegular(); reg {
		t.Fatal("star reported regular")
	}
	c := Cycle(7)
	reg, r := c.IsRegular()
	if !reg || r != 2 {
		t.Fatalf("cycle regularity: %v %d", reg, r)
	}
	if c.DegreeSum() != 2*c.M() {
		t.Fatal("handshake identity failed")
	}
}

func TestStringSummary(t *testing.T) {
	s := Cycle(5).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
