package graph

import (
	"fmt"

	"github.com/repro/cobra/internal/xrand"
)

// Scalable random families for exercising the frontier engine at
// 10^5–10^6-vertex scale: preferential attachment (heavy-tailed degrees,
// stressing the dmax² term of Theorem 1.1) and small-world rewiring
// (near-regular with long-range shortcuts, an inexpensive stand-in for
// the expander regime of Theorem 1.2). Like every generator here they are
// deterministic functions of the supplied RNG.

// BarabasiAlbert samples a preferential-attachment graph: m0 = m seed
// vertices; vertex m attaches to all of them; every later vertex attaches
// to m distinct existing vertices chosen proportionally to their current
// degree (repeated-targets sampling). The result is connected by
// construction, has M = (n−m)·m edges, and a power-law degree tail.
// Requires n > m >= 1.
func BarabasiAlbert(n, m int, rng *xrand.RNG) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: BarabasiAlbert needs m >= 1", ErrGenerator)
	}
	if n <= m {
		return nil, fmt.Errorf("%w: BarabasiAlbert needs n > m (n=%d, m=%d)", ErrGenerator, n, m)
	}
	b := NewBuilder(n)
	// targets holds each vertex once per incident edge, so a uniform draw
	// from it is degree-proportional.
	targets := make([]int32, 0, 2*(n-m)*m)
	for w := 0; w < m; w++ {
		b.AddEdge(m, w)
		targets = append(targets, int32(m), int32(w))
	}
	chosen := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			// targets holds only vertices < v here (v's own entries are
			// appended after the loop), so no self-loop check is needed.
			w := targets[rng.Intn(len(targets))]
			if b.HasEdge(v, int(w)) {
				continue
			}
			b.AddEdge(v, int(w))
			chosen = append(chosen, w)
		}
		for _, w := range chosen {
			targets = append(targets, int32(v), w)
		}
	}
	return b.Build(fmt.Sprintf("ba-%d-m%d", n, m))
}

// WattsStrogatz samples a small-world graph: the ring lattice C_n(1..k/2)
// (each vertex adjacent to its k nearest ring neighbours) with every
// lattice edge's far endpoint rewired to a uniform random vertex with
// probability beta, avoiding loops and duplicates. Since rewiring can
// disconnect the graph, disconnected samples are redrawn up to a small
// attempt budget (for beta well below 1 they are rare). beta = 0 returns
// the exact lattice; beta = 1 approaches a random graph. Requires
// even k with 2 <= k < n and beta in [0, 1].
func WattsStrogatz(n, k int, beta float64, rng *xrand.RNG) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("%w: WattsStrogatz needs even k >= 2, got %d", ErrGenerator, k)
	}
	if n <= k {
		return nil, fmt.Errorf("%w: WattsStrogatz needs n > k (n=%d, k=%d)", ErrGenerator, n, k)
	}
	// Written as !(beta >= 0) so that NaN is rejected too.
	if !(beta >= 0) || beta > 1 {
		return nil, fmt.Errorf("%w: WattsStrogatz needs beta in [0,1]", ErrGenerator)
	}
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for j := 1; j <= k/2; j++ {
				w := (u + j) % n
				if beta > 0 && rng.Bernoulli(beta) {
					// Rewire {u, w} to {u, random}; keep the lattice edge
					// if no valid partner turns up quickly (vanishingly
					// rare except on tiny dense inputs).
					for tries := 0; tries < 32; tries++ {
						r := rng.Intn(n)
						if r != u && !b.HasEdge(u, r) {
							w = r
							break
						}
					}
				}
				if !b.HasEdge(u, w) {
					b.AddEdge(u, w)
				}
			}
		}
		g, err := b.Build(fmt.Sprintf("ws-%d-k%d-b%g", n, k, beta))
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: WS(%d, %d, %g) not connected after %d attempts",
		ErrGenerator, n, k, beta, maxAttempts)
}
