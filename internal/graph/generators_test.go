package graph

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/cobra/internal/xrand"
)

func mustValidate(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
}

func TestComplete(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		g := Complete(n)
		mustValidate(t, g)
		if g.M() != n*(n-1)/2 {
			t.Fatalf("K_%d has %d edges", n, g.M())
		}
		if reg, r := g.IsRegular(); !reg || r != n-1 {
			t.Fatalf("K_%d regularity", n)
		}
		if g.Diameter() != 1 {
			t.Fatalf("K_%d diameter %d", n, g.Diameter())
		}
	}
}

func TestCycle(t *testing.T) {
	for _, n := range []int{3, 4, 9, 10} {
		g := Cycle(n)
		mustValidate(t, g)
		if g.M() != n {
			t.Fatalf("C_%d edges %d", n, g.M())
		}
		if reg, r := g.IsRegular(); !reg || r != 2 {
			t.Fatalf("C_%d not 2-regular", n)
		}
		if got, want := g.Diameter(), n/2; got != want {
			t.Fatalf("C_%d diameter %d want %d", n, got, want)
		}
		if g.IsBipartite() != (n%2 == 0) {
			t.Fatalf("C_%d bipartite = %v", n, g.IsBipartite())
		}
	}
}

func TestPath(t *testing.T) {
	g := Path(10)
	mustValidate(t, g)
	if g.M() != 9 || g.Diameter() != 9 {
		t.Fatalf("path m=%d diam=%d", g.M(), g.Diameter())
	}
	if !g.IsBipartite() {
		t.Fatal("path should be bipartite")
	}
}

func TestStar(t *testing.T) {
	g := Star(8)
	mustValidate(t, g)
	if g.M() != 7 || g.Degree(0) != 7 || g.Diameter() != 2 {
		t.Fatal("star shape wrong")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	mustValidate(t, g)
	if g.M() != 12 || !g.IsBipartite() || !g.IsConnected() {
		t.Fatal("K_{3,4} shape wrong")
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 6; d++ {
		g := Hypercube(d)
		mustValidate(t, g)
		n := 1 << uint(d)
		if g.N() != n || g.M() != d*n/2 {
			t.Fatalf("Q_%d: n=%d m=%d", d, g.N(), g.M())
		}
		if reg, r := g.IsRegular(); !reg || r != d {
			t.Fatalf("Q_%d not %d-regular", d, d)
		}
		if g.Diameter() != d {
			t.Fatalf("Q_%d diameter %d", d, g.Diameter())
		}
		if !g.IsBipartite() {
			t.Fatalf("Q_%d should be bipartite", d)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	mustValidate(t, g)
	if g.N() != 20 {
		t.Fatalf("grid n=%d", g.N())
	}
	// 2D grid edges: (s1-1)*s2 + s1*(s2-1).
	if g.M() != 3*5+4*4 {
		t.Fatalf("grid m=%d", g.M())
	}
	if g.Diameter() != 3+4 {
		t.Fatalf("grid diameter %d", g.Diameter())
	}
	g3 := Grid(3, 3, 3)
	mustValidate(t, g3)
	if g3.N() != 27 || g3.Diameter() != 6 {
		t.Fatal("3d grid shape wrong")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(5, 5)
	mustValidate(t, g)
	if g.N() != 25 || g.M() != 50 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	if reg, r := g.IsRegular(); !reg || r != 4 {
		t.Fatal("5x5 torus not 4-regular")
	}
	if g.Diameter() != 4 {
		t.Fatalf("5x5 torus diameter %d", g.Diameter())
	}
	// Side-3 torus: neighbours at distance 1 and 2 coincide mod 3, the
	// generator must not duplicate them.
	g3 := Torus(3, 3)
	mustValidate(t, g3)
	if g3.M() != 18 {
		t.Fatalf("3x3 torus m=%d", g3.M())
	}
	odd := Torus(5)
	if odd.IsBipartite() {
		t.Fatal("odd 1-d torus (cycle) should not be bipartite")
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15)
	mustValidate(t, g)
	if g.M() != 14 || !g.IsConnected() || !g.IsBipartite() {
		t.Fatal("binary tree shape wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("binary tree dmax %d", g.MaxDegree())
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 7)
	mustValidate(t, g)
	if g.N() != 12 || !g.IsConnected() {
		t.Fatal("lollipop shape wrong")
	}
	if g.M() != 5*4/2+7 {
		t.Fatalf("lollipop m=%d", g.M())
	}
	if g.Degree(0) != 5 { // clique + bridge
		t.Fatalf("lollipop joint degree %d", g.Degree(0))
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	mustValidate(t, g)
	if g.N() != 11 || !g.IsConnected() {
		t.Fatal("barbell shape wrong")
	}
	g0 := Barbell(4, 0)
	mustValidate(t, g0)
	if g0.N() != 8 || !g0.IsConnected() {
		t.Fatal("barbell with 0 bridge wrong")
	}
	if g0.M() != 2*6+1 {
		t.Fatalf("barbell-0 m=%d", g0.M())
	}
}

func TestDoubleCycleAndChord(t *testing.T) {
	g := DoubleCycle(9)
	mustValidate(t, g)
	if reg, r := g.IsRegular(); !reg || r != 4 {
		t.Fatal("double cycle not 4-regular")
	}
	if g.IsBipartite() {
		t.Fatal("double cycle should not be bipartite")
	}
	c := Chord(15, 3)
	mustValidate(t, c)
	if reg, r := c.IsRegular(); !reg || r != 6 {
		t.Fatal("chord graph not 6-regular")
	}
}

// Chord builds its CSR arrays directly; the output must match the
// Builder construction byte for byte (the dense engine draws neighbours
// by index, so adjacency order is trajectory-relevant).
func TestChordMatchesBuilder(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{7, 1}, {9, 4}, {15, 3}, {64, 2}, {101, 5}} {
		fast := Chord(tc.n, tc.k)
		mustValidate(t, fast)
		b := NewBuilder(tc.n)
		for v := 0; v < tc.n; v++ {
			for j := 1; j <= tc.k; j++ {
				u := (v + j) % tc.n
				if !b.HasEdge(v, u) {
					b.AddEdge(v, u)
				}
			}
		}
		ref := b.MustBuild("ref")
		if fast.N() != ref.N() || fast.M() != ref.M() {
			t.Fatalf("chord-%d-%d: shape %d/%d vs %d/%d", tc.n, tc.k, fast.N(), fast.M(), ref.N(), ref.M())
		}
		for v := 0; v < tc.n; v++ {
			fn, rn := fast.Neighbors(v), ref.Neighbors(v)
			if len(fn) != len(rn) {
				t.Fatalf("chord-%d-%d: degree of %d differs: %d vs %d", tc.n, tc.k, v, len(fn), len(rn))
			}
			for i := range fn {
				if fn[i] != rn[i] {
					t.Fatalf("chord-%d-%d: neighbour %d of %d differs: %d vs %d", tc.n, tc.k, i, v, fn[i], rn[i])
				}
			}
		}
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	mustValidate(t, g)
	if g.N() != 10 || g.M() != 15 {
		t.Fatal("petersen shape wrong")
	}
	if reg, r := g.IsRegular(); !reg || r != 3 {
		t.Fatal("petersen not cubic")
	}
	if g.Diameter() != 2 {
		t.Fatalf("petersen diameter %d", g.Diameter())
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := xrand.New(7)
	g, err := ErdosRenyi(200, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if !g.IsConnected() {
		t.Fatal("ER sample not connected")
	}
	// Expected m = p * C(n,2) = 0.05 * 19900 = 995; allow wide slack.
	if g.M() < 700 || g.M() > 1300 {
		t.Fatalf("ER edge count %d implausible", g.M())
	}
}

func TestErdosRenyiDense(t *testing.T) {
	rng := xrand.New(8)
	g, err := ErdosRenyi(30, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 30*29/2 {
		t.Fatalf("ER p=1 gave m=%d", g.M())
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	rng := xrand.New(9)
	if _, err := ErdosRenyi(1, 0.5, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("n=1 accepted")
	}
	if _, err := ErdosRenyi(10, 0, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("p=0 accepted")
	}
	if _, err := ErdosRenyi(10, 1.5, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("p>1 accepted")
	}
	// Far below connectivity threshold: should exhaust attempts.
	if _, err := ErdosRenyi(400, 0.001, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("sub-threshold p unexpectedly produced a connected graph")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(11)
	for _, tc := range []struct{ n, r int }{{50, 3}, {64, 4}, {40, 8}} {
		g, err := RandomRegular(tc.n, tc.r, rng)
		if err != nil {
			t.Fatalf("n=%d r=%d: %v", tc.n, tc.r, err)
		}
		mustValidate(t, g)
		if reg, r := g.IsRegular(); !reg || r != tc.r {
			t.Fatalf("sample not %d-regular", tc.r)
		}
		if !g.IsConnected() {
			t.Fatal("sample disconnected")
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := xrand.New(12)
	if _, err := RandomRegular(5, 3, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("odd n*r accepted")
	}
	if _, err := RandomRegular(3, 3, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("n <= r accepted")
	}
	if _, err := RandomRegular(10, 0, rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("r=0 accepted")
	}
}

func TestRingExpander(t *testing.T) {
	rng := xrand.New(13)
	g, err := RingExpander(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, g)
	if !g.IsConnected() {
		t.Fatal("ring expander disconnected")
	}
	if g.MaxDegree() > 3+2 {
		t.Fatalf("ring expander dmax %d implausible", g.MaxDegree())
	}
	if _, err := RingExpander(7, rng); err == nil {
		t.Fatal("odd n accepted")
	}
}

func TestRandomTree(t *testing.T) {
	rng := xrand.New(14)
	for _, n := range []int{2, 3, 10, 100} {
		g, err := RandomTree(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, g)
		if g.M() != n-1 {
			t.Fatalf("tree on %d vertices has %d edges", n, g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("tree on %d vertices disconnected", n)
		}
	}
	if _, err := RandomTree(1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := RandomRegular(60, 3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(60, 3, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("same seed produced different graphs")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
}

func TestIsPowerOfTwoAndLog2(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(12) {
		t.Fatal("IsPowerOfTwo wrong")
	}
	if Log2(1024) != 10 {
		t.Fatal("Log2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Cycle(2) },
		func() { Path(1) },
		func() { Star(1) },
		func() { Hypercube(0) },
		func() { Grid() },
		func() { Grid(1) },
		func() { Torus(2) },
		func() { BinaryTree(1) },
		func() { Lollipop(1, 1) },
		func() { Barbell(1, 0) },
		func() { DoubleCycle(4) },
		func() { Chord(5, 3) },
		func() { CompleteBipartite(0, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSpider(t *testing.T) {
	g := Spider(4, 5)
	mustValidate(t, g)
	if g.N() != 21 || g.M() != 20 {
		t.Fatalf("spider n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 4 {
		t.Fatalf("spider hub degree %d", g.Degree(0))
	}
	if !g.IsConnected() {
		t.Fatal("spider disconnected")
	}
	if g.Diameter() != 10 {
		t.Fatalf("spider diameter %d", g.Diameter())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spider(0,1) did not panic")
		}
	}()
	Spider(0, 1)
}

func TestErdosRenyiRejectsNaN(t *testing.T) {
	rng := xrand.New(3)
	if _, err := ErdosRenyi(10, math.NaN(), rng); !errors.Is(err, ErrGenerator) {
		t.Fatal("NaN p accepted (would loop forever in the skip sampler)")
	}
}
