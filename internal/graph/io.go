package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization: a plain edge-list text format for interchange with other
// tools (one "u v" pair per line, '#' comments, a "n <count>" header to
// preserve isolated vertices), and Graphviz DOT export for visual
// inspection of the small experiment graphs.

// WriteEdgeList writes the graph in edge-list format:
//
//	# name
//	n <vertices>
//	u v          (one line per edge, u < v)
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\nn %d\n", g.name, g.n); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are comments; the first comment line, if present, supplies the
// graph name (overridden by a non-empty name argument).
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name == "" {
				name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[1])
			}
			b = NewBuilder(n)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before 'n' header", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[1])
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input (no 'n' header)")
	}
	if name == "" {
		name = "edgelist"
	}
	return b.Build(name)
}

// WriteDOT writes the graph in Graphviz DOT format. highlight, if
// non-nil, marks a vertex set (e.g. an infected set snapshot) with a
// fill colour.
func (g *Graph) WriteDOT(w io.Writer, highlight func(v int) bool) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n", sanitizeDOT(g.name)); err != nil {
		return err
	}
	if highlight != nil {
		for v := 0; v < g.n; v++ {
			if highlight(v) {
				if _, err := fmt.Fprintf(bw, "  %d [style=filled, fillcolor=lightcoral];\n", v); err != nil {
					return err
				}
			}
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
