package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs in 100 draws", zeros)
	}
}

func TestNewStreamSeparation(t *testing.T) {
	const draws = 500
	seen := make(map[uint64]int)
	for s := uint64(0); s < 8; s++ {
		r := NewStream(7, s)
		for i := 0; i < draws; i++ {
			seen[r.Uint64()]++
		}
	}
	for v, c := range seen {
		if c > 1 {
			t.Fatalf("value %d appeared %d times across streams (collision)", v, c)
		}
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(99, 3)
	b := NewStream(99, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewStream is not deterministic")
		}
	}
}

func TestReseedRestarts(t *testing.T) {
	r := New(5)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(5)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

// TestIntnUniform checks a chi-square-like bound on bucket counts.
func TestIntnUniform(t *testing.T) {
	r := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d: count %d too far from expected %.0f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(77)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", rate)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(15)
	const draws = 100000
	trues := 0
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/draws-0.5) > 0.01 {
		t.Fatalf("Bool imbalance: %d/%d", trues, draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(33)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 6*math.Sqrt(expect) {
			t.Fatalf("Perm first element %d count %d vs expected %.0f", i, c, expect)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(4)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlapped %d/1000 draws", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(55)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f", variance)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(61)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same (seed, stream) pair always yields the same prefix.
func TestStreamReproducibleProperty(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a := NewStream(seed, stream)
		b := NewStream(seed, stream)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
