// Package xrand provides the deterministic, splittable pseudo-random number
// generation used by every stochastic process in this repository.
//
// The requirements that rule out math/rand directly are:
//
//   - Reproducibility across parallel trials: a master seed must expand into
//     an arbitrary number of statistically independent streams, one per
//     trial or per worker, so that a whole experiment is a pure function of
//     (code, seed).
//   - Speed: one COBRA round draws b random neighbours for every informed
//     vertex; one BIPS round draws b neighbours for every vertex of the
//     graph. Bounded-uniform generation is the hottest operation in the
//     repository, so it uses Lemire's nearly-divisionless method.
//
// The generator is xoshiro256**, seeded through splitmix64 (the procedure
// recommended by the xoshiro authors). Streams are derived by seeding
// splitmix64 with master-seed XOR a stream index scrambled by a fixed odd
// constant, which gives well-separated initial states.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use; give
// each goroutine its own stream via Split or NewStream.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// golden is 2^64 / phi, the splitmix64 increment.
const golden = 0x9e3779b97f4a7c15

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += golden
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Any seed value,
// including zero, yields a valid non-degenerate state.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// NewStream returns the stream-th generator derived from a master seed.
// Distinct stream indices yield well-separated generators; the mapping is
// deterministic, so (seed, stream) fully identifies the sequence.
func NewStream(seed, stream uint64) *RNG {
	r := StreamValue(seed, stream)
	return &r
}

// StreamValue is NewStream returning the generator by value, for hot loops
// that derive one short-lived stream per item and want it stack-allocated
// (the per-(round, vertex) draws of the frontier engine). The sequence is
// bit-identical to NewStream(seed, stream).
func StreamValue(seed, stream uint64) RNG {
	// Scramble the stream index by an odd constant so that consecutive
	// stream indices land far apart in splitmix64's sequence space.
	var r RNG
	r.Reseed(seed ^ (stream*0xd1342543de82ef95 + 0x632be59bd9b4e019))
	return r
}

// Reseed resets the generator state from seed, as New does.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro's all-zero state is absorbing; splitmix64 cannot produce four
	// zero outputs in a row, but guard anyway for clarity.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = golden
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split derives a new independent generator from this one, advancing this
// generator by one draw. Useful for handing sub-streams to workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method: nearly divisionless,
// and exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. Used only by statistics tests, not by hot paths.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
