package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/cobra/internal/xrand"
)

func close(t *testing.T, what string, got, want, eps float64) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s: got %v want %v", what, got, want)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	close(t, "mean", s.Mean, 3, 1e-12)
	close(t, "min", s.Min, 1, 0)
	close(t, "max", s.Max, 5, 0)
	close(t, "median", s.Median, 3, 1e-12)
	close(t, "std", s.Std, math.Sqrt(2.5), 1e-12)
	close(t, "q25", s.Q25, 2, 1e-12)
	close(t, "q75", s.Q75, 4, 1e-12)
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatal("CI does not bracket mean")
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrInput) {
		t.Fatal("empty accepted")
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	close(t, "q0", Quantile(sorted, 0), 1, 0)
	close(t, "q1", Quantile(sorted, 1), 4, 0)
	close(t, "q.5", Quantile(sorted, 0.5), 2.5, 1e-12)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	close(t, "single", Quantile([]float64{9}, 0.3), 9, 0)
}

func TestMean(t *testing.T) {
	close(t, "mean", Mean([]float64{2, 4}), 3, 1e-12)
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean not NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	close(t, "slope", f.Slope, 2, 1e-12)
	close(t, "intercept", f.Intercept, 1, 1e-12)
	close(t, "r2", f.R2, 1, 1e-12)
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInput) {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrInput) {
		t.Fatal("degenerate x accepted")
	}
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	// y = 5 x^1.5
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, 1.5))
	}
	f, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	close(t, "exponent", f.Slope, 1.5, 1e-9)
	close(t, "logC", f.Intercept, math.Log(5), 1e-9)
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	if _, err := LogLogFit([]float64{1, -1}, []float64{1, 1}); !errors.Is(err, ErrInput) {
		t.Fatal("negative x accepted")
	}
	if _, err := LogLogFit([]float64{1, 2}, []float64{0, 1}); !errors.Is(err, ErrInput) {
		t.Fatal("zero y accepted")
	}
}

func TestSemiLogFit(t *testing.T) {
	// y = 3 ln x + 2
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Log(x)+2)
	}
	f, err := SemiLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	close(t, "slope", f.Slope, 3, 1e-9)
	close(t, "intercept", f.Intercept, 2, 1e-9)
	if _, err := SemiLogFit([]float64{0, 1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatal("x=0 accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram total %d", total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bucket %d count %d", i, c)
		}
	}
	// Constant sample: all in bucket 0.
	h2, err := NewHistogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Counts[0] != 3 {
		t.Fatal("constant sample misbinned")
	}
	if _, err := NewHistogram(nil, 3); !errors.Is(err, ErrInput) {
		t.Fatal("empty accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); !errors.Is(err, ErrInput) {
		t.Fatal("bins=0 accepted")
	}
}

func TestRatio(t *testing.T) {
	close(t, "ratio", Ratio(6, 3), 2, 0)
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero not NaN")
	}
}

// Property: summary invariants Min <= Q25 <= Median <= Q75 <= Max and
// Min <= Mean <= Max.
func TestSummaryOrderProperty(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q25+1e-12 && s.Q25 <= s.Median+1e-12 &&
			s.Median <= s.Q75+1e-12 && s.Q75 <= s.Max+1e-12 &&
			s.Min <= s.Mean+1e-12 && s.Mean <= s.Max+1e-12
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit residual orthogonality — slope of residuals vs x
// is ~0.
func TestFitResidualProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()
			ys[i] = 2*xs[i] + 1 + r.NormFloat64()
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		for i := range xs {
			res[i] = ys[i] - fit.Slope*xs[i] - fit.Intercept
		}
		rf, err := LinearFit(xs, res)
		if err != nil {
			return false
		}
		return math.Abs(rf.Slope) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
