// Package stats provides the statistics used to turn simulation trials
// into experiment rows: summary statistics with confidence intervals,
// quantiles, histograms, and least-squares fits on log–log scales for
// extracting empirical scaling exponents (the "shape" checks of the
// reproduction: fitted exponent ≈ 1/D for D-dimensional grids, slope ≈ 0
// for K_n cover vs log n, and so on).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInput flags invalid arguments (empty samples, mismatched lengths).
var ErrInput = errors.New("stats: invalid input")

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	Q25, Q75       float64
	StdErr         float64 // Std / sqrt(N)
	CI95Lo, CI95Hi float64 // mean ± 1.96·StdErr (normal approximation)
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrInput)
	}
	s := Summary{N: len(xs)}
	var sum float64
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.StdErr = s.Std / math.Sqrt(float64(s.N))
	s.CI95Lo = s.Mean - 1.96*s.StdErr
	s.CI95Hi = s.Mean + 1.96*s.StdErr

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q25 = Quantile(sorted, 0.25)
	s.Q75 = Quantile(sorted, 0.75)
	return s, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ASCENDING-sorted
// sample using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Fit is a least-squares line y = Slope·x + Intercept with goodness R².
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y = a·x + b by ordinary least squares.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("%w: length mismatch %d vs %d", ErrInput, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("%w: need at least 2 points", ErrInput)
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("%w: degenerate x values", ErrInput)
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// LogLogFit fits log(y) = e·log(x) + c, i.e. the power law y = C·x^e,
// returning the exponent e as Slope. All inputs must be positive.
func LogLogFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("%w: length mismatch", ErrInput)
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("%w: log-log fit requires positive data", ErrInput)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// SemiLogFit fits y = a·log(x) + b (logarithmic growth, the expected
// shape of COBRA cover time on K_n and expanders). xs must be positive.
func SemiLogFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("%w: length mismatch", ErrInput)
	}
	lx := make([]float64, len(xs))
	for i := range xs {
		if xs[i] <= 0 {
			return Fit{}, fmt.Errorf("%w: semi-log fit requires positive x", ErrInput)
		}
		lx[i] = math.Log(xs[i])
	}
	return LinearFit(lx, ys)
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into `bins` equal-width buckets spanning
// [min, max]. The max value lands in the last bucket.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 || bins < 1 {
		return nil, fmt.Errorf("%w: empty sample or bins < 1", ErrInput)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	if hi == lo {
		h.Counts[0] = len(xs)
		return h, nil
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h, nil
}

// Ratio returns a/b guarding against division by zero (returns NaN).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
