package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates a sample one observation at a time and produces a
// Summary in O(1) memory: mean and standard deviation via Welford's
// update, min/max exactly, and the quartiles via the P² streaming
// quantile estimator of Jain & Chlamtac (1985). It exists for the batch
// campaign aggregator (internal/batch), which must summarise millions of
// trials without materializing them.
//
// Exactness: N, Mean, Std, StdErr, the CI bounds, Min and Max match
// Summarize up to floating-point associativity. The quartiles are exact
// while N <= 5 and estimates afterwards (P² keeps five markers per
// quantile; its error vanishes as the sample grows). The accumulated
// state depends on observation order, so callers that need determinism
// must feed observations in a fixed order.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
	q25      p2Estimator
	med      p2Estimator
	q75      p2Estimator
}

// NewOnline returns an empty accumulator.
func NewOnline() *Online {
	return &Online{
		q25: p2Estimator{q: 0.25},
		med: p2Estimator{q: 0.5},
		q75: p2Estimator{q: 0.75},
	}
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	o.q25.add(x)
	o.med.add(x)
	o.q75.add(x)
}

// N returns the number of observations so far.
func (o *Online) N() int { return o.n }

// Clone returns an independent copy of the accumulator: folding the same
// further observations into the copy and into the original yields
// identical state. Online holds no reference fields (the P² estimators
// use fixed-size arrays), so a value copy is a deep copy. The batch
// resume path clones a replayed prefix fold and continues it, so a
// resumed campaign's final aggregate is bit-identical to the
// uninterrupted run's.
func (o *Online) Clone() *Online {
	c := *o
	return &c
}

// Summary renders the accumulated state. It can be called at any time;
// the accumulator remains usable afterwards.
func (o *Online) Summary() (Summary, error) {
	if o.n == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrInput)
	}
	s := Summary{
		N:      o.n,
		Mean:   o.mean,
		Min:    o.min,
		Max:    o.max,
		Median: o.med.value(),
		Q25:    o.q25.value(),
		Q75:    o.q75.value(),
	}
	if o.n > 1 {
		s.Std = math.Sqrt(o.m2 / float64(o.n-1))
	}
	s.StdErr = s.Std / math.Sqrt(float64(s.N))
	s.CI95Lo = s.Mean - 1.96*s.StdErr
	s.CI95Hi = s.Mean + 1.96*s.StdErr
	return s, nil
}

// p2Estimator tracks one quantile with the five-marker P² method.
type p2Estimator struct {
	q   float64
	cnt int
	n   [5]float64 // marker positions (1-based observation counts)
	h   [5]float64 // marker heights (quantile estimates)
	buf [5]float64 // first five observations, before marker init
}

func (p *p2Estimator) add(x float64) {
	if p.cnt < 5 {
		p.buf[p.cnt] = x
		p.cnt++
		if p.cnt == 5 {
			sorted := p.buf
			sort.Float64s(sorted[:])
			p.h = sorted
			p.n = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	p.cnt++

	// Locate the cell and absorb new extremes.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.n[i]++
	}

	// Nudge the interior markers toward their desired positions.
	want := [5]float64{1, 0, 0, 0, float64(p.cnt)}
	want[1] = 1 + float64(p.cnt-1)*p.q/2
	want[2] = 1 + float64(p.cnt-1)*p.q
	want[3] = 1 + float64(p.cnt-1)*(1+p.q)/2
	for i := 1; i <= 3; i++ {
		d := want[i] - p.n[i]
		if (d >= 1 && p.n[i+1]-p.n[i] > 1) || (d <= -1 && p.n[i-1]-p.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			if hp := p.parabolic(i, s); p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by s ∈ {−1, +1}.
func (p *p2Estimator) parabolic(i int, s float64) float64 {
	num1 := (p.n[i] - p.n[i-1] + s) * (p.h[i+1] - p.h[i]) / (p.n[i+1] - p.n[i])
	num2 := (p.n[i+1] - p.n[i] - s) * (p.h[i] - p.h[i-1]) / (p.n[i] - p.n[i-1])
	return p.h[i] + s/(p.n[i+1]-p.n[i-1])*(num1+num2)
}

// linear is the fallback when the parabolic prediction leaves the bracket.
func (p *p2Estimator) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.n[j]-p.n[i])
}

// value returns the current quantile estimate; exact for cnt <= 5 (buf
// still holds the whole sample there — add only copies it into markers).
func (p *p2Estimator) value() float64 {
	if p.cnt == 0 {
		return math.NaN()
	}
	if p.cnt <= 5 {
		sorted := append([]float64(nil), p.buf[:p.cnt]...)
		sort.Float64s(sorted)
		return Quantile(sorted, p.q)
	}
	return p.h[2]
}
