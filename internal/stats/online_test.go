package stats

import (
	"math"
	"testing"

	"github.com/repro/cobra/internal/xrand"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestOnlineEmpty(t *testing.T) {
	if _, err := NewOnline().Summary(); err == nil {
		t.Fatal("empty accumulator produced a summary")
	}
}

// For n <= 5 observations every field, quartiles included, is exact
// (including n == 5 itself, right at P² marker initialization).
func TestOnlineSmallSampleExact(t *testing.T) {
	for _, xs := range [][]float64{
		{7, 3, 11, 5},
		{10, 20, 30, 40, 50},
	} {
		o := NewOnline()
		for _, x := range xs {
			o.Add(x)
		}
		got, err := o.Summary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("N/min/max: got %+v want %+v", got, want)
		}
		for name, pair := range map[string][2]float64{
			"mean":   {got.Mean, want.Mean},
			"std":    {got.Std, want.Std},
			"median": {got.Median, want.Median},
			"q25":    {got.Q25, want.Q25},
			"q75":    {got.Q75, want.Q75},
			"ci95lo": {got.CI95Lo, want.CI95Lo},
			"ci95hi": {got.CI95Hi, want.CI95Hi},
		} {
			if !almostEq(pair[0], pair[1], 1e-12) {
				t.Fatalf("n=%d %s: got %v want %v", len(xs), name, pair[0], pair[1])
			}
		}
	}
}

// On large samples the moments match Summarize to float tolerance and the
// P² quartiles land within a small relative error of the exact ones.
func TestOnlineLargeSample(t *testing.T) {
	for _, shape := range []string{"uniform", "heavytail"} {
		rng := xrand.New(99)
		n := 20000
		xs := make([]float64, n)
		o := NewOnline()
		for i := range xs {
			u := rng.Float64()
			x := u
			if shape == "heavytail" {
				x = 1 / (1 - 0.999*u) // Pareto-ish
			}
			xs[i] = x
			o.Add(x)
		}
		got, err := o.Summary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("%s: N/min/max mismatch", shape)
		}
		if !almostEq(got.Mean, want.Mean, 1e-9) || !almostEq(got.Std, want.Std, 1e-9) {
			t.Fatalf("%s: moments: got mean=%v std=%v want mean=%v std=%v",
				shape, got.Mean, got.Std, want.Mean, want.Std)
		}
		for name, pair := range map[string][2]float64{
			"median": {got.Median, want.Median},
			"q25":    {got.Q25, want.Q25},
			"q75":    {got.Q75, want.Q75},
		} {
			if !almostEq(pair[0], pair[1], 0.05) {
				t.Fatalf("%s %s: got %v want %v (>5%% off)", shape, name, pair[0], pair[1])
			}
		}
	}
}

// Identical observation order must give bit-identical summaries — the
// property the batch aggregator's determinism contract leans on.
func TestOnlineOrderDeterminism(t *testing.T) {
	build := func() Summary {
		o := NewOnline()
		rng := xrand.New(7)
		for i := 0; i < 1000; i++ {
			o.Add(float64(rng.Intn(500)))
		}
		s, err := o.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if build() != build() {
		t.Fatal("same order gave different summaries")
	}
}
