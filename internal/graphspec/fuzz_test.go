package graphspec

import "testing"

func FuzzParse(f *testing.F) {
	seeds := []string{
		"complete:10", "cycle:5", "grid:3:3", "er:20:0.5", "rreg:10:3",
		"petersen", "", "unknown", "complete:", "complete:-5", "grid:0",
		"torus:1000000:1000000", "hypercube:40", "er:5:nan", "lollipop:2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := Parse(spec, 1)
		if err != nil {
			return
		}
		// Accepted specs must yield structurally valid graphs.
		if g.N() < 1 {
			t.Fatalf("spec %q produced empty graph", spec)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("spec %q produced invalid graph: %v", spec, err)
		}
	})
}
