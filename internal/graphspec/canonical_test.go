package graphspec

import (
	"errors"
	"testing"
)

func TestCanonicalNormalizes(t *testing.T) {
	cases := map[string]string{
		"  BA:0500:3 ":   "ba:500:3",
		"ws:500:06:0.10": "ws:500:6:0.1",
		"ER:100:2e-2":    "er:100:0.02",
		"Grid:32:32":     "grid:32:32",
		"petersen":       "petersen",
		"torus:4:5:6":    "torus:4:5:6",
		"rreg:1024:3":    "rreg:1024:3",
	}
	for in, want := range cases {
		got, err := Canonical(in)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", in, got, want)
		}
		// Idempotence.
		again, err := Canonical(got)
		if err != nil || again != got {
			t.Fatalf("Canonical not idempotent on %q: %q, %v", got, again, err)
		}
	}
}

func TestCanonicalRejects(t *testing.T) {
	for _, bad := range []string{
		"", "nope:5", "ba:500", "ba:500:3:9", "ws:500:6", "grid",
		"complete:xyz", "er:100:high", "petersen:1",
	} {
		if _, err := Canonical(bad); !errors.Is(err, ErrSpec) {
			t.Fatalf("Canonical(%q) accepted", bad)
		}
	}
}

// Every spec Canonical accepts must Parse, and the canonical form must
// describe the same graph as the original.
func TestCanonicalAgreesWithParse(t *testing.T) {
	for _, spec := range []string{
		"BA:200:3", "ws:200:6:0.25", "er:64:0.2", "grid:8:9",
		"complete:12", "rreg:64:3", "petersen",
	} {
		canon, err := Canonical(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Parse(spec, 5)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		b, err := Parse(canon, 5)
		if err != nil {
			t.Fatalf("Parse(%q): %v", canon, err)
		}
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%q vs %q: different graphs (n=%d/%d m=%d/%d)",
				spec, canon, a.N(), b.N(), a.M(), b.M())
		}
	}
}
