package graphspec

import (
	"errors"
	"testing"
)

func TestParseAllFamilies(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"complete:10", 10},
		{"cycle:12", 12},
		{"path:9", 9},
		{"star:7", 7},
		{"hypercube:4", 16},
		{"grid:3:4", 12},
		{"torus:3:5", 15},
		{"bintree:15", 15},
		{"lollipop:4:3", 7},
		{"barbell:3:2", 8},
		{"bipartite:3:4", 7},
		{"doublecycle:9", 9},
		{"chord:11:2", 11},
		{"petersen", 10},
		{"er:60:0.15", 60},
		{"rreg:20:3", 20},
		{"rtree:25", 25},
		{"ba:40:3", 40},
		{"ws:30:4:0.2", 30},
	}
	for _, tc := range cases {
		g, err := Parse(tc.spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if g.N() != tc.n {
			t.Fatalf("%s: n = %d, want %d", tc.spec, g.N(), tc.n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
	}
}

func TestParseCaseAndWhitespace(t *testing.T) {
	g, err := Parse("  Complete:5 ", 1)
	if err != nil || g.N() != 5 {
		t.Fatalf("case/space handling broken: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "unknown:5", "complete", "complete:x", "er:50", "er:50:zz",
		"grid", "lollipop:4", "cycle:2", "hypercube:0", "torus:2:2",
		"ba:5", "ba:3:3", "ws:30:4", "ws:30:3:0.1", "ws:30:4:raw",
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); !errors.Is(err, ErrSpec) && err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestParseSeedDeterminism(t *testing.T) {
	a, err := Parse("rreg:30:3", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("rreg:30:3", 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("seeded parse not deterministic")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("seeded parse not deterministic")
			}
		}
	}
}
