package graphspec

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonicalization of specs into cache keys, for the batch subsystem's
// graph cache: two spec strings describe the same graph family instance
// iff their canonical forms are equal. Canonical validates the family
// name and argument shapes without building the graph (generation can be
// expensive; parsing is not), so it is also the cheap syntax check the
// job service runs at submission time.

// argKind is one expected argument of a family.
type argKind int

const (
	argInt argKind = iota
	argFloat
)

// families maps each family name to its expected argument kinds.
// varInt families (grid, torus) accept one or more integer dimensions.
var families = map[string]struct {
	kinds  []argKind
	varInt bool
}{
	"complete":    {kinds: []argKind{argInt}},
	"cycle":       {kinds: []argKind{argInt}},
	"path":        {kinds: []argKind{argInt}},
	"star":        {kinds: []argKind{argInt}},
	"hypercube":   {kinds: []argKind{argInt}},
	"bintree":     {kinds: []argKind{argInt}},
	"doublecycle": {kinds: []argKind{argInt}},
	"rtree":       {kinds: []argKind{argInt}},
	"grid":        {varInt: true},
	"torus":       {varInt: true},
	"lollipop":    {kinds: []argKind{argInt, argInt}},
	"barbell":     {kinds: []argKind{argInt, argInt}},
	"bipartite":   {kinds: []argKind{argInt, argInt}},
	"chord":       {kinds: []argKind{argInt, argInt}},
	"rreg":        {kinds: []argKind{argInt, argInt}},
	"ba":          {kinds: []argKind{argInt, argInt}},
	"petersen":    {},
	"er":          {kinds: []argKind{argInt, argFloat}},
	"ws":          {kinds: []argKind{argInt, argInt, argFloat}},
}

// Canonical returns the canonical form of spec: lower-cased family name
// and numerically normalized arguments ("  BA:0500:3 " → "ba:500:3",
// "ws:500:06:0.10" → "ws:500:6:0.1"). It errors on unknown families and
// malformed argument lists. Canonical(Canonical(s)) == Canonical(s).
func Canonical(spec string) (string, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) == 0 || parts[0] == "" {
		return "", fmt.Errorf("%w: empty spec", ErrSpec)
	}
	name := strings.ToLower(strings.TrimSpace(parts[0]))
	args := parts[1:]
	fam, ok := families[name]
	if !ok {
		return "", fmt.Errorf("%w: unknown family %q (see package doc for the list)", ErrSpec, name)
	}

	var sb strings.Builder
	sb.WriteString(name)
	norm := func(raw string, kind argKind) error {
		raw = strings.TrimSpace(raw)
		switch kind {
		case argInt:
			v, err := strconv.Atoi(raw)
			if err != nil {
				return fmt.Errorf("%w: %s argument %q not an integer", ErrSpec, name, raw)
			}
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(v))
		case argFloat:
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("%w: %s argument %q not a number", ErrSpec, name, raw)
			}
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		return nil
	}

	if fam.varInt {
		if len(args) == 0 {
			return "", fmt.Errorf("%w: %s needs dimensions", ErrSpec, name)
		}
		for _, a := range args {
			if err := norm(a, argInt); err != nil {
				return "", err
			}
		}
		return sb.String(), nil
	}
	if len(args) != len(fam.kinds) {
		return "", fmt.Errorf("%w: %s takes %d arguments, got %d", ErrSpec, name, len(fam.kinds), len(args))
	}
	for i, a := range args {
		if err := norm(a, fam.kinds[i]); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}
