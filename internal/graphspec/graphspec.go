// Package graphspec parses compact command-line graph specifications of
// the form "family:arg1:arg2", shared by the cmd/ tools. Examples:
//
//	complete:256        K_256
//	cycle:1000          the 1000-cycle
//	path:500            the 500-path
//	star:100            K_{1,99}
//	hypercube:10        Q_10 (1024 vertices)
//	grid:32:32          32x32 grid
//	torus:15:15         15x15 torus
//	bintree:255         complete binary tree
//	lollipop:60:40      60-clique + 40-path
//	barbell:40:20       two 40-cliques, 20-path bridge
//	bipartite:50:50     K_{50,50}
//	doublecycle:200     circulant C_200(1,2)
//	chord:200:4         circulant C_200(1..4)
//	petersen            the Petersen graph
//	er:500:0.02         connected G(500, 0.02)        (seeded)
//	rreg:500:3          random 3-regular on 500       (seeded)
//	rtree:500           uniform random tree           (seeded)
//	ba:500:3            Barabási–Albert, 3 per vertex (seeded)
//	ws:500:6:0.1        Watts–Strogatz k=6 beta=0.1   (seeded)
package graphspec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/xrand"
)

// ErrSpec flags an unparseable specification.
var ErrSpec = errors.New("graphspec: invalid specification")

// Parse builds the graph described by spec. Random families draw from the
// given seed deterministically.
func Parse(spec string, seed uint64) (*graph.Graph, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) == 0 || parts[0] == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrSpec)
	}
	name := strings.ToLower(parts[0])
	args := parts[1:]

	intArg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%w: %s needs argument %d", ErrSpec, name, i+1)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("%w: %s argument %q not an integer", ErrSpec, name, args[i])
		}
		return v, nil
	}
	floatArg := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%w: %s needs argument %d", ErrSpec, name, i+1)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %s argument %q not a number", ErrSpec, name, args[i])
		}
		return v, nil
	}

	// Panicking generators are converted to errors for CLI friendliness.
	build := func(fn func() *graph.Graph) (g *graph.Graph, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v", ErrSpec, r)
			}
		}()
		return fn(), nil
	}

	switch name {
	case "complete":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Complete(n) })
	case "cycle":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Cycle(n) })
	case "path":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Path(n) })
	case "star":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Star(n) })
	case "hypercube":
		d, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Hypercube(d) })
	case "grid":
		dims, err := allInts(args, name)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Grid(dims...) })
	case "torus":
		dims, err := allInts(args, name)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Torus(dims...) })
	case "bintree":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.BinaryTree(n) })
	case "lollipop":
		k, err := intArg(0)
		if err != nil {
			return nil, err
		}
		l, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Lollipop(k, l) })
	case "barbell":
		k, err := intArg(0)
		if err != nil {
			return nil, err
		}
		l, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Barbell(k, l) })
	case "bipartite":
		a, err := intArg(0)
		if err != nil {
			return nil, err
		}
		b, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.CompleteBipartite(a, b) })
	case "doublecycle":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.DoubleCycle(n) })
	case "chord":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		k, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return build(func() *graph.Graph { return graph.Chord(n, k) })
	case "petersen":
		return graph.Petersen(), nil
	case "er":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		p, err := floatArg(1)
		if err != nil {
			return nil, err
		}
		return graph.ErdosRenyi(n, p, xrand.New(seed))
	case "rreg":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		r, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegular(n, r, xrand.New(seed))
	case "rtree":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(n, xrand.New(seed))
	case "ba":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		m, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return graph.BarabasiAlbert(n, m, xrand.New(seed))
	case "ws":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		k, err := intArg(1)
		if err != nil {
			return nil, err
		}
		beta, err := floatArg(2)
		if err != nil {
			return nil, err
		}
		return graph.WattsStrogatz(n, k, beta, xrand.New(seed))
	default:
		return nil, fmt.Errorf("%w: unknown family %q (see package doc for the list)", ErrSpec, name)
	}
}

func allInts(args []string, name string) ([]int, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%w: %s needs dimensions", ErrSpec, name)
	}
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %s argument %q not an integer", ErrSpec, name, a)
		}
		out[i] = v
	}
	return out, nil
}
