package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/repro/cobra/internal/batch"
)

func TestWatchBaseURL(t *testing.T) {
	cases := map[string]string{
		":8080":                  "http://localhost:8080",
		"example.com:9999":       "http://example.com:9999",
		"http://example.com/":    "http://example.com",
		"https://example.com:80": "https://example.com:80",
	}
	for in, want := range cases {
		if got := watchBaseURL(in); got != want {
			t.Errorf("watchBaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWatchRendersFrame(t *testing.T) {
	svc := batch.NewServer(batch.ServerConfig{})
	ts := httptest.NewServer(svc)
	defer func() { ts.Close(); svc.Close() }()

	spec := map[string]any{
		"graph": "ba:400:3", "process": "cobra", "branch": 2, "trials": 20, "seed": 7,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := sub["id"]
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(st.Body).Decode(&got)
		st.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("campaign state %q", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var out bytes.Buffer
	if err := runWatch(context.Background(), &out, ts.URL, time.Second, 1); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{"trials=20", id, "campaign", "done", "20/20", "ID"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
}

func TestWatchUnreachableServer(t *testing.T) {
	var out bytes.Buffer
	err := runWatch(context.Background(), &out, "http://127.0.0.1:1", time.Second, 1)
	if err == nil {
		t.Fatal("watch of an unreachable server returned nil")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Fatalf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Fatal("newLogger accepted an unknown format")
	}
}
