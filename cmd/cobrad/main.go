// Command cobrad is the long-running COBRA/BIPS campaign service: an
// HTTP/JSON front end over the internal/batch subsystem. Submit a
// campaign, poll its status, stream its per-trial results:
//
//	cobrad -addr :8080 -data /var/lib/cobrad &
//	curl -X POST localhost:8080/v1/campaigns -d \
//	  '{"graph":"ba:200000:3","process":"cobra","branch":2,"trials":1000,"seed":1}'
//	curl localhost:8080/v1/campaigns/c000001
//	curl localhost:8080/v1/campaigns/c000001/results   # NDJSON, follows live
//
// Parameter sweeps fan one submission across a grid of cells (graphs x
// processes x branches x rhos), compiling each distinct graph once into
// the shared cache. Cells execute in parallel — the sweep's cell_workers
// field, defaulting to -cell-workers — behind a reorder buffer, so the
// result stream and aggregates stay in (cell, trial) order no matter
// which cells finish first; the status endpoint reports each cell's
// scheduler phase (queued/running/done, failed on abort) while the
// sweep is in flight:
//
//	curl -X POST localhost:8080/v1/sweeps -d \
//	  '{"graphs":["ws:2048:8:0","ws:2048:8:0.1"],"processes":["cobra"],"branches":[2,3],"trials":100,"seed":1}'
//	curl localhost:8080/v1/sweeps/s000001           # per-cell aggregates + phases
//	curl localhost:8080/v1/sweeps/s000001/results   # NDJSON in (cell, trial) order
//	curl localhost:8080/v1/sweeps/s000001/table     # cross-cell summary grid
//
// With -data, jobs are durable: every accepted submission is journaled
// (spec header fsynced before the 202, results appended as trials
// commit, a terminal record sealing finished jobs), and on startup the
// journals are replayed — finished jobs come back with their results
// served from disk, while interrupted or queued jobs *resume*: the
// committed journal prefix is replayed into RAM and served to results
// clients as-is, and only the trials past it are recomputed. Because
// campaigns are deterministic in (graph, process config, seed, trial),
// the resumed stream is identical to what an uninterrupted run would
// have produced byte for byte: kill -TERM a cobrad mid-campaign, restart
// it on the same -data directory, and the recovered NDJSON matches the
// golden while /v1/stats trials_executed shows only the tail ran (CI's
// restart-recovery smoke asserts both). Journals recovery cannot parse
// are quarantined to <id>.ndjson.corrupt with a logged reason. -retain
// and -retain-ttl bound how many finished jobs keep per-trial results in
// RAM; evicted jobs serve their results from the journal byte-for-byte
// (TTL expiry runs on a background ticker, so idle servers release
// memory too).
//
// The queue is priority-ordered: specs (or ?priority=/?deadline= query
// parameters on submission) may carry a priority — higher runs first,
// ties in submission order — and an RFC3339 deadline by which the job
// must have started; jobs still queued past their deadline fail with
// the distinct terminal state "expired". Sweep cells inherit their
// sweep's priority. With -preempt, a submission that outranks every
// running job checkpoints the lowest-priority one at its next trial
// boundary: the victim's journal (when -data is set) is fsynced, the job
// requeues at its own priority (status reports the preemption count),
// and when it runs again it resumes from the checkpointed prefix —
// elastic scheduling with byte-identical results.
//
// On shutdown no job is left non-terminal: running jobs abort, queued
// jobs are drained and marked failed (requeued on the next start when
// -data is set), and truncated results streams carry the
// X-Cobrad-Stream: aborted trailer (complete streams say "complete").
//
// Observability (all observe-only — nothing feeds back into scheduling
// or results):
//
//	GET /metrics                    Prometheus text exposition: trials,
//	                                rounds by representation, queue depth
//	                                by priority band, admission-wait and
//	                                per-cell wall-time histograms, graph
//	                                cache hits/misses/evictions, journal
//	                                appends/fsync latency/quarantines,
//	                                resume-tail sizes, live event streams
//	GET /v1/stats                   the same counters as one JSON object
//	GET /v1/campaigns/{id}/events   per-job lifecycle as server-sent
//	GET /v1/sweeps/{id}/events      events (state, cell phases, end)
//
// Logs are structured (log/slog) with job ids and states as fields;
// -log-format selects text (default) or json lines on stderr. -watch
// turns cobrad into a client: it polls a running server's /v1/stats and
// job listings every -interval and renders a status table to stdout.
//
// Fleet mode (-role, see internal/fleet and docs/api.md) shards sweeps
// across processes with zero change to results:
//
//	cobrad -role coordinator -addr :8080 -data /var/lib/cobrad -lease-ttl 10s &
//	cobrad -role worker -coordinator http://coord:8080 -worker-id w1 &
//	cobrad -role worker -coordinator http://coord:8080 -worker-id w2 &
//
// The coordinator serves the full cobrad API plus the lease protocol
// (POST /v1/leases/{acquire,renew,complete}, /v1/fleet status); sweep
// cells are leased to workers instead of computed locally, their result
// batches merge through the same reorder buffer, and the streams,
// aggregates, journal, and events are byte-identical to -role
// standalone (the default). A worker that dies mid-cell simply misses
// its heartbeat TTL: the lease expires and the cell's remaining trials
// are re-leased elsewhere, with the already-accepted prefix never
// recomputed. With -data, leases are journaled (leases.log) and survive
// coordinator restarts. A worker's first SIGTERM drains it — it
// finishes and completes its current cell, then exits; a second kills
// it, which costs only the lease TTL.
//
// Campaigns are deterministic in (graph, process config, seed, trial),
// and every sweep cell is byte-identical to the same spec submitted as a
// standalone campaign: resubmitting either — here or through the library
// — reproduces its results bit for bit. See internal/batch for the
// contract (ARCHITECTURE.md maps the layers; docs/api.md and
// docs/metrics.md are the wire and metrics references). The -max-trials
// cap applies to a sweep's total (cells x trials per cell).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/fleet"
	"github.com/repro/cobra/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (with -watch: the server to poll)")
		campaigns   = flag.Int("campaigns", 2, "campaigns running concurrently")
		cellWorkers = flag.Int("cell-workers", 2, "concurrent cells per sweep when a sweep spec leaves cell_workers unset (never affects results)")
		queue       = flag.Int("queue", 64, "queued-campaign backlog before 503s")
		cacheSize   = flag.Int("cache", 32, "compiled-graph LRU cache capacity")
		maxTrials   = flag.Int("max-trials", 1_000_000, "per-campaign trial cap (results are retained in memory)")
		dataDir     = flag.String("data", "", "durable job store directory; journals are replayed on startup and interrupted jobs re-run (empty: in-memory only, a restart drops all jobs)")
		retain      = flag.Int("retain", 256, "with -data: finished jobs keeping per-trial results in RAM; older jobs serve results from their journals (negative: unlimited)")
		retainTTL   = flag.Duration("retain-ttl", 0, "with -data: additionally evict a finished job's in-RAM results after this long (0: no TTL)")
		preempt     = flag.Bool("preempt", false, "let higher-priority submissions checkpoint the lowest-priority running job at a trial boundary and requeue it; it later resumes from the checkpoint with byte-identical results")
		logFormat   = flag.String("log-format", "text", "structured log encoding on stderr: text or json")
		watch       = flag.Bool("watch", false, "client mode: poll the server at -addr and render a live status table instead of serving")
		interval    = flag.Duration("interval", 2*time.Second, "with -watch: polling interval")
		role        = flag.String("role", "standalone", "standalone (compute locally), coordinator (lease sweep cells to a worker fleet), or worker (pull cells from -coordinator)")
		coordURL    = flag.String("coordinator", "", "with -role worker: the coordinator's base URL")
		workerID    = flag.String("worker-id", "", "with -role worker: fleet worker id (default host-pid)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "with -role coordinator: lease heartbeat TTL; a worker silent this long loses its cell to re-lease")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrad:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	if *watch {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runWatch(ctx, os.Stdout, watchBaseURL(*addr), *interval, 0); err != nil {
			fmt.Fprintln(os.Stderr, "cobrad:", err)
			os.Exit(1)
		}
		return
	}

	if *role == "worker" {
		runWorker(logger, *coordURL, *workerID, *cacheSize)
		return
	}
	if *role != "standalone" && *role != "coordinator" {
		fmt.Fprintf(os.Stderr, "cobrad: bad -role %q: want standalone, coordinator, or worker\n", *role)
		os.Exit(1)
	}

	var st batch.Store
	var ds *store.Store
	if *dataDir != "" {
		var err error
		ds, err = store.Open(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobrad:", err)
			os.Exit(1)
		}
		st = ds
	}
	cfg := batch.ServerConfig{
		CampaignWorkers: *campaigns,
		CellWorkers:     *cellWorkers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		MaxTrials:       *maxTrials,
		RetainResults:   *retain,
		RetainTTL:       *retainTTL,
		Preempt:         *preempt,
		Logger:          logger,
	}

	// Coordinator role: build the lease authority first so recovered
	// sweeps re-offer their cells straight into the restored lease table,
	// then hand it to the server as the remote cell source. The fleet's
	// metric families join the server's registry — but the server is
	// constructed after the coordinator, so register against a fresh
	// registry-carrying server below via a two-step wiring.
	var co *fleet.Coordinator
	if *role == "coordinator" {
		var err error
		co, err = fleet.NewCoordinator(fleet.CoordinatorConfig{
			TTL:    *leaseTTL,
			Store:  ds,
			Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobrad: lease table:", err)
			os.Exit(1)
		}
		cfg.Remote = co
	}
	svc, err := batch.NewServerWith(cfg, st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrad: recover job store:", err)
		os.Exit(1)
	}
	handler := http.Handler(svc)
	if co != nil {
		co.RegisterMetrics(svc.Registry())
		root := http.NewServeMux()
		root.Handle("/v1/leases/", co)
		root.Handle("/v1/fleet", co)
		root.Handle("/v1/fleet/", co)
		root.Handle("/", svc)
		handler = root
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	if *dataDir != "" {
		logger.Info("job store open", "dir", *dataDir, "retain", *retain, "ttl", *retainTTL)
	}
	logger.Info("listening",
		"addr", *addr, "campaign_workers", *campaigns, "cell_workers", *cellWorkers,
		"queue", *queue, "graph_cache", *cacheSize)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		// Close the service before draining HTTP: Shutdown waits for
		// in-flight handlers, and a client following a running job's
		// results only unblocks when the service aborts its jobs and
		// streams — the other order would burn the whole Shutdown timeout
		// whenever a follower is attached. Submissions racing this get a
		// 503.
		// BeginShutdown first: cells withdrawn by svc.Close keep their
		// journaled leases, so healthy workers reattach after a restart.
		if co != nil {
			co.BeginShutdown()
		}
		svc.Close()
		if co != nil {
			co.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			if co != nil {
				co.BeginShutdown()
			}
			svc.Close()
			if co != nil {
				co.Close()
			}
			fmt.Fprintln(os.Stderr, "cobrad:", err)
			os.Exit(1)
		}
	}
}

// runWorker runs the fleet worker role: no listener, just the pull
// loop. The first SIGTERM/SIGINT drains (finish and complete the
// current cell, stop acquiring, exit 0); a second hard-stops — the
// abandoned lease expires on the coordinator and the cell's remaining
// trials are re-leased, byte-identically, elsewhere.
func runWorker(logger *slog.Logger, coordinator, id string, cacheSize int) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator,
		ID:          id,
		CacheSize:   cacheSize,
		Logger:      logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrad:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		logger.Info("draining: finishing current cell", "worker", id)
		w.Drain()
		<-sigCh
		logger.Warn("hard stop: abandoning current cell", "worker", id)
		cancel()
	}()
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cobrad:", err)
		os.Exit(1)
	}
	logger.Info("worker exited", "worker", id, "cells_completed", w.CellsCompleted())
}

// newLogger builds the process logger for -log-format: line-oriented
// text (the default) or JSON, both to stderr.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
