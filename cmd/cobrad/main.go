// Command cobrad is the long-running COBRA/BIPS campaign service: an
// HTTP/JSON front end over the internal/batch subsystem. Submit a
// campaign, poll its status, stream its per-trial results:
//
//	cobrad -addr :8080 &
//	curl -X POST localhost:8080/v1/campaigns -d \
//	  '{"graph":"ba:200000:3","process":"cobra","branch":2,"trials":1000,"seed":1}'
//	curl localhost:8080/v1/campaigns/c000001
//	curl localhost:8080/v1/campaigns/c000001/results   # NDJSON, follows live
//
// Parameter sweeps fan one submission across a grid of cells (graphs x
// processes x branches x rhos), compiling each distinct graph once into
// the shared cache. Cells execute in parallel — the sweep's cell_workers
// field, defaulting to -cell-workers — behind a reorder buffer, so the
// result stream and aggregates stay in (cell, trial) order no matter
// which cells finish first; the status endpoint reports each cell's
// scheduler phase (queued/running/done, failed on abort) while the
// sweep is in flight:
//
//	curl -X POST localhost:8080/v1/sweeps -d \
//	  '{"graphs":["ws:2048:8:0","ws:2048:8:0.1"],"processes":["cobra"],"branches":[2,3],"trials":100,"seed":1}'
//	curl localhost:8080/v1/sweeps/s000001           # per-cell aggregates + phases
//	curl localhost:8080/v1/sweeps/s000001/results   # NDJSON in (cell, trial) order
//	curl localhost:8080/v1/sweeps/s000001/table     # cross-cell summary grid
//
// Campaigns are deterministic in (graph, process config, seed, trial),
// and every sweep cell is byte-identical to the same spec submitted as a
// standalone campaign: resubmitting either — here or through the library
// — reproduces its results bit for bit. See internal/batch for the
// contract. The -max-trials cap applies to a sweep's total (cells x
// trials per cell).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/repro/cobra/internal/batch"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		campaigns   = flag.Int("campaigns", 2, "campaigns running concurrently")
		cellWorkers = flag.Int("cell-workers", 2, "concurrent cells per sweep when a sweep spec leaves cell_workers unset (never affects results)")
		queue       = flag.Int("queue", 64, "queued-campaign backlog before 503s")
		cacheSize   = flag.Int("cache", 32, "compiled-graph LRU cache capacity")
		maxTrials   = flag.Int("max-trials", 1_000_000, "per-campaign trial cap (results are retained in memory)")
	)
	flag.Parse()

	svc := batch.NewServer(batch.ServerConfig{
		CampaignWorkers: *campaigns,
		CellWorkers:     *cellWorkers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		MaxTrials:       *maxTrials,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("cobrad: listening on %s (campaign workers %d, cell workers %d, queue %d, graph cache %d)",
		*addr, *campaigns, *cellWorkers, *queue, *cacheSize)

	select {
	case <-ctx.Done():
		log.Printf("cobrad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("cobrad: shutdown: %v", err)
		}
		svc.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			svc.Close()
			fmt.Fprintln(os.Stderr, "cobrad:", err)
			os.Exit(1)
		}
	}
}
