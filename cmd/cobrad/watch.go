package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Watch mode: `cobrad -watch -addr host:8080` polls a running cobrad and
// renders a status frame per interval — one line of process counters
// from /v1/stats, then a table with one row per job from the campaign
// and sweep listings. It is a plain read-side client of the public API:
// attaching a watcher cannot perturb the server (the observe-only
// contract) any more than any other poller.

// watchBaseURL normalizes -addr into a base URL: ":8080" →
// "http://localhost:8080", bare host:port gets an http:// scheme, and
// full URLs pass through.
func watchBaseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

// watchJob is the subset of a job listing row the table renders; it
// decodes both campaign and sweep summaries.
type watchJob struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Trials      int    `json:"trials"`
	Completed   int    `json:"completed"`
	Preemptions int    `json:"preemptions"`
	Error       string `json:"error"`
}

// runWatch polls base every interval and writes one frame per poll to
// out. iterations bounds the frame count for tests; 0 means poll until
// ctx is done. The first frame renders immediately.
func runWatch(ctx context.Context, out io.Writer, base string, interval time.Duration, iterations int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := &http.Client{Timeout: 10 * time.Second}
	frames := 0
	for {
		if err := watchFrame(ctx, client, out, base); err != nil {
			return err
		}
		frames++
		if iterations > 0 && frames >= iterations {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

func watchFrame(ctx context.Context, client *http.Client, out io.Writer, base string) error {
	// RawMessage keys: /v1/stats mixes scalar counters with the nested
	// queue_depth_by_band object, so numbers are picked out per key.
	var stats map[string]json.RawMessage
	if err := getJSON(ctx, client, base+"/v1/stats", &stats); err != nil {
		return fmt.Errorf("poll %s/v1/stats: %w", base, err)
	}
	var campaigns struct {
		Campaigns []watchJob `json:"campaigns"`
	}
	if err := getJSON(ctx, client, base+"/v1/campaigns", &campaigns); err != nil {
		return fmt.Errorf("poll %s/v1/campaigns: %w", base, err)
	}
	var sweeps struct {
		Sweeps []watchJob `json:"sweeps"`
	}
	if err := getJSON(ctx, client, base+"/v1/sweeps", &sweeps); err != nil {
		return fmt.Errorf("poll %s/v1/sweeps: %w", base, err)
	}

	n := func(key string) string {
		if v, ok := stats[key]; ok {
			return strings.TrimSpace(string(v))
		}
		return "0"
	}
	fmt.Fprintf(out, "%s  trials=%s queued=%s running=%s preemptions=%s cache=%s/%s stalls=%s streams=%s\n",
		base, n("trials_executed"), n("queue_depth"), n("jobs_running"), n("preemptions"),
		n("cache_hits"), n("cache_misses"), n("backpressure_stalls"), n("event_streams"))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tKIND\tSTATE\tPROGRESS\tPREEMPTS\tERROR")
	rows := make([]watchRow, 0, len(campaigns.Campaigns)+len(sweeps.Sweeps))
	for _, j := range campaigns.Campaigns {
		rows = append(rows, watchRow{kind: "campaign", job: j})
	}
	for _, j := range sweeps.Sweeps {
		rows = append(rows, watchRow{kind: "sweep", job: j})
	}
	// Listings are already submission-ordered per kind; interleave by id
	// number so the combined table follows the shared id counter.
	sort.SliceStable(rows, func(i, k int) bool {
		return rows[i].job.ID[1:] < rows[k].job.ID[1:]
	})
	for _, row := range rows {
		j := row.job
		errMsg := j.Error
		if len(errMsg) > 40 {
			errMsg = errMsg[:37] + "..."
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d/%d\t%d\t%s\n",
			j.ID, row.kind, j.State, j.Completed, j.Trials, j.Preemptions, errMsg)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(out)
	return err
}

type watchRow struct {
	kind string
	job  watchJob
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
