// Command graphinfo prints the structural and spectral properties that
// parameterise the paper's bounds for a graph family: n, m, dmax,
// diameter, bipartiteness, the second eigenvalue λ and gap 1−λ (plain and
// lazy), a conductance estimate, and the evaluated bound shapes of
// Theorems 1.1 and 1.2.
//
// Usage:
//
//	graphinfo -graph hypercube:10
//	graphinfo -graph rreg:1024:3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/cobra/internal/bounds"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/spectral"
)

func main() {
	var (
		graphFlag = flag.String("graph", "petersen", "graph spec (family:args)")
		seed      = flag.Uint64("seed", 1, "seed for random families")
		exact     = flag.Bool("exact-conductance", false, "brute-force conductance (n <= 24 only)")
	)
	flag.Parse()

	g, err := graphspec.Parse(*graphFlag, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph       %s\n", g.Name())
	fmt.Printf("n, m        %d, %d\n", g.N(), g.M())
	fmt.Printf("degree      min %d  max %d", g.MinDegree(), g.MaxDegree())
	if reg, r := g.IsRegular(); reg {
		fmt.Printf("  (regular, r=%d)", r)
	}
	fmt.Println()
	fmt.Printf("connected   %v\n", g.IsConnected())
	fmt.Printf("bipartite   %v\n", g.IsBipartite())
	if g.N() <= 4096 {
		fmt.Printf("diameter    %d (exact)\n", g.Diameter())
	} else {
		fmt.Printf("diameter    >= %d (double-sweep lower bound)\n", g.DiameterApprox())
	}

	opt := spectral.Options{}
	lam, err := spectral.SecondEigenvalue(g, opt)
	if err != nil {
		fatal(err)
	}
	lamLazy, err := spectral.SecondEigenvalueLazy(g, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lambda      %.6f   gap 1-lambda      %.6f\n", lam, 1-lam)
	fmt.Printf("lazy lambda %.6f   lazy gap          %.6f\n", lamLazy, 1-lamLazy)

	if *exact {
		if g.N() > 24 {
			fatal(fmt.Errorf("exact conductance needs n <= 24 (n = %d)", g.N()))
		}
		fmt.Printf("conductance %.6f (exact)\n", spectral.ConductanceExact(g))
	} else {
		phi, err := spectral.ConductanceSweep(g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("conductance <= %.6f (sweep-cut estimate)\n", phi)
	}

	fmt.Printf("Thm 1.1 shape  m + dmax^2 ln n        = %.0f\n", bounds.General(g))
	if reg, r := g.IsRegular(); reg {
		gap := 1 - lam
		note := ""
		if g.IsBipartite() {
			gap = 1 - lamLazy
			note = " (lazy gap; graph is bipartite)"
		}
		if v, err := bounds.Regular(g.N(), r, gap); err == nil {
			fmt.Printf("Thm 1.2 shape  (r/gap + r^2) ln n      = %.0f%s\n", v, note)
		}
		if v, err := bounds.PODC16(g.N(), gap); err == nil {
			fmt.Printf("PODC'16 shape  (1/gap)^3 ln n          = %.0f%s\n", v, note)
		}
	}
	fmt.Printf("lower bound    max{log2 n, Diam}      = %d\n", bounds.Lower(g))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphinfo:", err)
	os.Exit(1)
}
