// Command benchjson converts `go test -bench` output into a compact
// machine-readable JSON document mapping benchmark name to its measured
// metrics (ns/op, B/op, allocs/op, iterations), for the CI perf-trajectory
// artifact (BENCH_<sha>.json uploaded per commit).
//
// It accepts either the raw benchmark text or the `go test -json` event
// stream (in which case benchmark lines are extracted from the "output"
// events), so both forms work:
//
//	go test -run xxx -bench . -benchtime 1x ./... | benchjson > BENCH_abc.json
//	go test -run xxx -bench . -benchtime 1x -json ./... | benchjson > BENCH_abc.json
//
// Benchmarks that appear more than once (e.g. -count > 1) keep their last
// measurement; with -best they keep the lowest-ns/op one instead, which
// is the right statistic for regression gating on noisy CI runners
// (min-of-N discards GC pauses and noisy neighbors, never real speed).
//
// Diff mode compares two artifacts and gates CI on ns/op regressions:
//
//	benchjson -diff -max-ratio 2 -require BenchmarkBatchCampaign,BenchmarkNaiveCoverLoop \
//	    BENCH_prev.json BENCH_head.json
//
// Every benchmark present in both files is reported with its new/old
// ns/op ratio; only the -require names (matched ignoring the -procs
// suffix and sub-benchmark paths) are enforced against -max-ratio. A
// required name missing from the new artifact fails the diff; one
// missing from the old artifact is reported as a new baseline and
// passes, so adding a benchmark never breaks the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed measurement. Fields beyond
// iterations and ns/op appear only when the benchmark reported them
// (-benchmem or b.ReportAllocs).
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// testEvent is the subset of the `go test -json` event schema we need.
// Package scopes the partial-line reassembly: `go test` writes a
// benchmark's result line incrementally (the name is flushed before the
// benchmark runs, the metrics after), so one result line spans several
// output events.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	var (
		diff     = flag.Bool("diff", false, "diff mode: compare two BENCH_*.json files (old new) instead of converting stdin")
		maxRatio = flag.Float64("max-ratio", 2, "with -diff: fail when a required benchmark's new/old ns/op ratio exceeds this")
		require  = flag.String("require", "", "with -diff: comma-separated benchmark names enforced against -max-ratio")
		best     = flag.Bool("best", false, "convert mode: keep the lowest ns/op among repeated measurements instead of the last")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		report, err := runDiff(flag.Arg(0), flag.Arg(1), *maxRatio, splitNames(*require))
		os.Stdout.WriteString(report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	out, err := run(os.Stdin, *best)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
}

// splitNames parses the -require list, dropping empty entries.
func splitNames(list string) []string {
	var out []string
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// loadMetrics reads one BENCH_*.json artifact (the output of this
// command's convert mode).
func loadMetrics(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := make(map[string]Metrics)
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// matchesBench reports whether artifact key (e.g.
// "BenchmarkBatchCampaign-8" or "BenchmarkSweepParallelCells/cellworkers=4-8")
// belongs to the required benchmark name: exact, or followed by the
// GOMAXPROCS suffix, or a sub-benchmark path.
func matchesBench(key, name string) bool {
	return key == name || strings.HasPrefix(key, name+"-") || strings.HasPrefix(key, name+"/")
}

// bestNs returns the lowest positive ns/op among an artifact's keys
// matching the benchmark name, independent of the -procs suffix.
func bestNs(m map[string]Metrics, name string) (float64, bool) {
	best, ok := 0.0, false
	for key, metrics := range m {
		if !matchesBench(key, name) || metrics.NsPerOp <= 0 {
			continue
		}
		if !ok || metrics.NsPerOp < best {
			best, ok = metrics.NsPerOp, true
		}
	}
	return best, ok
}

// runDiff compares the two artifacts. The report lists every benchmark
// present in both with its new/old ns/op ratio; the returned error is
// non-nil when a required benchmark is missing from the new artifact or
// regressed past maxRatio.
func runDiff(oldPath, newPath string, maxRatio float64, required []string) (string, error) {
	oldM, err := loadMetrics(oldPath)
	if err != nil {
		return "", err
	}
	newM, err := loadMetrics(newPath)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	names := make([]string, 0, len(newM))
	for name := range newM {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if prev, ok := oldM[name]; ok && prev.NsPerOp > 0 {
			fmt.Fprintf(&sb, "%s: %.0f -> %.0f ns/op (x%.2f)\n",
				name, prev.NsPerOp, newM[name].NsPerOp, newM[name].NsPerOp/prev.NsPerOp)
		} else {
			fmt.Fprintf(&sb, "%s: %.0f ns/op (new baseline)\n", name, newM[name].NsPerOp)
		}
	}

	// The gate compares at required-name level, taking the best matching
	// measurement on each side: artifact keys carry the -procs suffix, so
	// an exact-key join would silently treat every benchmark as a new
	// baseline — and pass vacuously — whenever the CI runner's core count
	// changes between commits.
	var failures []string
	for _, req := range required {
		newBest, newOK := bestNs(newM, req)
		if !newOK {
			failures = append(failures, fmt.Sprintf("required benchmark %s missing from %s", req, newPath))
			continue
		}
		oldBest, oldOK := bestNs(oldM, req)
		if !oldOK {
			fmt.Fprintf(&sb, "%s: no baseline in %s (new benchmark); gate skipped\n", req, oldPath)
			continue
		}
		if ratio := newBest / oldBest; ratio > maxRatio {
			failures = append(failures,
				fmt.Sprintf("%s regressed x%.2f (%.0f -> %.0f ns/op, limit x%g)",
					req, ratio, oldBest, newBest, maxRatio))
		}
	}
	if len(failures) > 0 {
		return sb.String(), fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return sb.String(), nil
}

func run(r io.Reader, best bool) ([]byte, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := make(map[string]Metrics)
	record := func(line string) {
		name, m, ok := parseBenchLine(line)
		if !ok {
			return
		}
		if best {
			if prev, seen := results[name]; seen && prev.NsPerOp <= m.NsPerOp {
				return
			}
		}
		results[name] = m
	}
	pending := make(map[string]string) // per-package partial output line
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				buf := pending[ev.Package] + ev.Output
				for {
					full, rest, found := strings.Cut(buf, "\n")
					if !found {
						break
					}
					record(full)
					buf = rest
				}
				pending[ev.Package] = buf
				continue
			}
		}
		record(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, rest := range pending {
		record(rest)
	}
	// Deterministic artifact: sorted names via an ordered map rendering.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "  %q: %s", name, entry)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return []byte(sb.String()), nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkBatchCampaign-8   120  9831245 ns/op  312 B/op  5 allocs/op
//
// It returns ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m := Metrics{Iterations: iters}
	seenNs := false
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			val := v
			m.BytesPerOp = &val
		case "allocs/op":
			val := v
			m.AllocsPerOp = &val
		case "MB/s":
			val := v
			m.MBPerSec = &val
		}
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return fields[0], m, true
}
