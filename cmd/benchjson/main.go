// Command benchjson converts `go test -bench` output into a compact
// machine-readable JSON document mapping benchmark name to its measured
// metrics (ns/op, B/op, allocs/op, iterations), for the CI perf-trajectory
// artifact (BENCH_<sha>.json uploaded per commit).
//
// It accepts either the raw benchmark text or the `go test -json` event
// stream (in which case benchmark lines are extracted from the "output"
// events), so both forms work:
//
//	go test -run xxx -bench . -benchtime 1x ./... | benchjson > BENCH_abc.json
//	go test -run xxx -bench . -benchtime 1x -json ./... | benchjson > BENCH_abc.json
//
// Benchmarks that appear more than once (e.g. -count > 1) keep their last
// measurement.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed measurement. Fields beyond
// iterations and ns/op appear only when the benchmark reported them
// (-benchmem or b.ReportAllocs).
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// testEvent is the subset of the `go test -json` event schema we need.
// Package scopes the partial-line reassembly: `go test` writes a
// benchmark's result line incrementally (the name is flushed before the
// benchmark runs, the metrics after), so one result line spans several
// output events.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	out, err := run(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
}

func run(r io.Reader) ([]byte, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := make(map[string]Metrics)
	record := func(line string) {
		if name, m, ok := parseBenchLine(line); ok {
			results[name] = m
		}
	}
	pending := make(map[string]string) // per-package partial output line
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				buf := pending[ev.Package] + ev.Output
				for {
					full, rest, found := strings.Cut(buf, "\n")
					if !found {
						break
					}
					record(full)
					buf = rest
				}
				pending[ev.Package] = buf
				continue
			}
		}
		record(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, rest := range pending {
		record(rest)
	}
	// Deterministic artifact: sorted names via an ordered map rendering.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "  %q: %s", name, entry)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return []byte(sb.String()), nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkBatchCampaign-8   120  9831245 ns/op  312 B/op  5 allocs/op
//
// It returns ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m := Metrics{Iterations: iters}
	seenNs := false
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			val := v
			m.BytesPerOp = &val
		case "allocs/op":
			val := v
			m.AllocsPerOp = &val
		case "MB/s":
			val := v
			m.MBPerSec = &val
		}
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return fields[0], m, true
}
