package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkBatchCampaign-8   120  9831245 ns/op  312 B/op  5 allocs/op")
	if !ok || name != "BenchmarkBatchCampaign-8" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if m.Iterations != 120 || m.NsPerOp != 9831245 {
		t.Fatalf("metrics %+v", m)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 312 || m.AllocsPerOp == nil || *m.AllocsPerOp != 5 {
		t.Fatalf("mem metrics %+v", m)
	}

	// Without -benchmem only ns/op is present.
	_, m, ok = parseBenchLine("BenchmarkEngineCobraWide/n=200000-4 	      39	  29831245.5 ns/op")
	if !ok || m.NsPerOp != 29831245.5 || m.BytesPerOp != nil {
		t.Fatalf("plain line: ok=%v %+v", ok, m)
	}

	for _, bad := range []string{
		"", "ok  	github.com/repro/cobra	0.1s", "PASS",
		"BenchmarkBroken-8", "BenchmarkBroken-8 notanint 12 ns/op",
		"goos: linux", "Benchmark results below 100 things", // word salad starting with Benchmark
	} {
		if name, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("accepted %q as %q", bad, name)
		}
	}
}

func TestRunParsesRawAndJSONStreams(t *testing.T) {
	raw := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-4  100  50 ns/op  8 B/op  1 allocs/op",
		"PASS",
	}, "\n")
	// go test -json flushes a benchmark's name before running it and its
	// metrics after, so one result line spans several output events; an
	// interleaved second package must not corrupt the reassembly.
	jsonStream := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkA-4 \t"}`,
		`{"Action":"output","Package":"q","Output":"BenchmarkB-4 \t"}`,
		`{"Action":"output","Package":"p","Output":"  100\t  50 ns/op\t  8 B/op\t  1 allocs/op\n"}`,
		`{"Action":"output","Package":"q","Output":"  7\t  90 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"PASS\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	for label, in := range map[string]string{"raw": raw, "json": jsonStream} {
		out, err := run(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var parsed map[string]Metrics
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatalf("%s: artifact not valid JSON: %v\n%s", label, err, out)
		}
		m, ok := parsed["BenchmarkA-4"]
		if !ok || m.NsPerOp != 50 || m.AllocsPerOp == nil || *m.AllocsPerOp != 1 {
			t.Fatalf("%s: parsed %+v", label, parsed)
		}
		if label == "json" {
			if m, ok := parsed["BenchmarkB-4"]; !ok || m.NsPerOp != 90 {
				t.Fatalf("json: interleaved package lost: %+v", parsed)
			}
		}
	}
}
