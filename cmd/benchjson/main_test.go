package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkBatchCampaign-8   120  9831245 ns/op  312 B/op  5 allocs/op")
	if !ok || name != "BenchmarkBatchCampaign-8" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if m.Iterations != 120 || m.NsPerOp != 9831245 {
		t.Fatalf("metrics %+v", m)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 312 || m.AllocsPerOp == nil || *m.AllocsPerOp != 5 {
		t.Fatalf("mem metrics %+v", m)
	}

	// Without -benchmem only ns/op is present.
	_, m, ok = parseBenchLine("BenchmarkEngineCobraWide/n=200000-4 	      39	  29831245.5 ns/op")
	if !ok || m.NsPerOp != 29831245.5 || m.BytesPerOp != nil {
		t.Fatalf("plain line: ok=%v %+v", ok, m)
	}

	for _, bad := range []string{
		"", "ok  	github.com/repro/cobra	0.1s", "PASS",
		"BenchmarkBroken-8", "BenchmarkBroken-8 notanint 12 ns/op",
		"goos: linux", "Benchmark results below 100 things", // word salad starting with Benchmark
	} {
		if name, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("accepted %q as %q", bad, name)
		}
	}
}

func TestRunParsesRawAndJSONStreams(t *testing.T) {
	raw := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-4  100  50 ns/op  8 B/op  1 allocs/op",
		"PASS",
	}, "\n")
	// go test -json flushes a benchmark's name before running it and its
	// metrics after, so one result line spans several output events; an
	// interleaved second package must not corrupt the reassembly.
	jsonStream := strings.Join([]string{
		`{"Action":"start","Package":"p"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkA-4 \t"}`,
		`{"Action":"output","Package":"q","Output":"BenchmarkB-4 \t"}`,
		`{"Action":"output","Package":"p","Output":"  100\t  50 ns/op\t  8 B/op\t  1 allocs/op\n"}`,
		`{"Action":"output","Package":"q","Output":"  7\t  90 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"PASS\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	for label, in := range map[string]string{"raw": raw, "json": jsonStream} {
		out, err := run(strings.NewReader(in), false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var parsed map[string]Metrics
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatalf("%s: artifact not valid JSON: %v\n%s", label, err, out)
		}
		m, ok := parsed["BenchmarkA-4"]
		if !ok || m.NsPerOp != 50 || m.AllocsPerOp == nil || *m.AllocsPerOp != 1 {
			t.Fatalf("%s: parsed %+v", label, parsed)
		}
		if label == "json" {
			if m, ok := parsed["BenchmarkB-4"]; !ok || m.NsPerOp != 90 {
				t.Fatalf("json: interleaved package lost: %+v", parsed)
			}
		}
	}
}

// writeArtifact round-trips benchmark lines through the converter so the
// diff tests exercise the same artifact format CI produces.
func writeArtifact(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	out, err := run(strings.NewReader(strings.Join(lines, "\n")), false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffPassesWithinRatio(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json",
		"BenchmarkBatchCampaign-8  100  1000 ns/op",
		"BenchmarkNaiveCoverLoop-8  100  5000 ns/op",
		"BenchmarkOther-8  10  70 ns/op")
	cur := writeArtifact(t, dir, "new.json",
		"BenchmarkBatchCampaign-8  100  1900 ns/op", // x1.9 < 2
		"BenchmarkNaiveCoverLoop-8  100  4000 ns/op",
		"BenchmarkOther-8  10  900 ns/op") // x12.9, but not required
	report, err := runDiff(old, cur, 2, []string{"BenchmarkBatchCampaign", "BenchmarkNaiveCoverLoop"})
	if err != nil {
		t.Fatalf("diff failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "BenchmarkBatchCampaign-8: 1000 -> 1900 ns/op (x1.90)") {
		t.Fatalf("report missing ratio line:\n%s", report)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", "BenchmarkBatchCampaign-8  100  1000 ns/op")
	cur := writeArtifact(t, dir, "new.json", "BenchmarkBatchCampaign-8  100  2100 ns/op") // x2.1 > 2
	_, err := runDiff(old, cur, 2, []string{"BenchmarkBatchCampaign"})
	if err == nil || !strings.Contains(err.Error(), "regressed x2.10") {
		t.Fatalf("regression not caught: %v", err)
	}
}

func TestDiffFailsOnMissingRequired(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", "BenchmarkBatchCampaign-8  100  1000 ns/op")
	cur := writeArtifact(t, dir, "new.json", "BenchmarkSomethingElse-8  100  10 ns/op")
	_, err := runDiff(old, cur, 2, []string{"BenchmarkBatchCampaign"})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing required benchmark not caught: %v", err)
	}
}

func TestDiffToleratesNewBaseline(t *testing.T) {
	// A benchmark absent from the previous artifact is a new baseline: it
	// must be reported, not failed — adding a benchmark can't break CI.
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", "BenchmarkBatchCampaign-8  100  1000 ns/op")
	cur := writeArtifact(t, dir, "new.json",
		"BenchmarkBatchCampaign-8  100  1000 ns/op",
		"BenchmarkSweepParallelCells/cellworkers=4-8  3  5000 ns/op")
	report, err := runDiff(old, cur, 2,
		[]string{"BenchmarkBatchCampaign", "BenchmarkSweepParallelCells"})
	if err != nil {
		t.Fatalf("new baseline failed the gate: %v", err)
	}
	if !strings.Contains(report, "BenchmarkSweepParallelCells/cellworkers=4-8: 5000 ns/op (new baseline)") {
		t.Fatalf("report missing new-baseline line:\n%s", report)
	}
}

// -best keeps the minimum ns/op across repeated measurements (-count >
// 1), the statistic the CI regression gate needs on noisy runners;
// without it the last measurement wins (the documented default).
func TestRunBestKeepsMinimum(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkA-4  100  80 ns/op",
		"BenchmarkA-4  100  50 ns/op",
		"BenchmarkA-4  100  70 ns/op",
	}, "\n")
	for _, c := range []struct {
		best bool
		want float64
	}{{false, 70}, {true, 50}} {
		out, err := run(strings.NewReader(in), c.best)
		if err != nil {
			t.Fatal(err)
		}
		var parsed map[string]Metrics
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatal(err)
		}
		if got := parsed["BenchmarkA-4"].NsPerOp; got != c.want {
			t.Fatalf("best=%v: ns/op %v, want %v", c.best, got, c.want)
		}
	}
}

// The gate must survive a runner core-count change: old artifact keys
// ending -4, new ones ending -8, still compared (not treated as a new
// baseline that passes vacuously).
func TestDiffGateSurvivesProcsSuffixChange(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", "BenchmarkBatchCampaign-4  100  1000 ns/op")
	cur := writeArtifact(t, dir, "new.json", "BenchmarkBatchCampaign-8  100  2100 ns/op")
	_, err := runDiff(old, cur, 2, []string{"BenchmarkBatchCampaign"})
	if err == nil || !strings.Contains(err.Error(), "regressed x2.10") {
		t.Fatalf("regression across procs-suffix change not caught: %v", err)
	}
}

func TestMatchesBench(t *testing.T) {
	cases := []struct {
		key, name string
		want      bool
	}{
		{"BenchmarkBatchCampaign-8", "BenchmarkBatchCampaign", true},
		{"BenchmarkBatchCampaign", "BenchmarkBatchCampaign", true},
		{"BenchmarkSweepParallelCells/cellworkers=4-8", "BenchmarkSweepParallelCells", true},
		{"BenchmarkBatchCampaignX-8", "BenchmarkBatchCampaign", false},
		{"BenchmarkNaiveCoverLoop-8", "BenchmarkBatchCampaign", false},
	}
	for _, c := range cases {
		if got := matchesBench(c.key, c.name); got != c.want {
			t.Fatalf("matchesBench(%q, %q) = %v, want %v", c.key, c.name, got, c.want)
		}
	}
}
