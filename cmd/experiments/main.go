// Command experiments regenerates every experiment table in
// EXPERIMENTS.md (the reproduction of the paper's theorems, lemmas and
// worked examples — see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments                     # run everything at full scale
//	experiments -scale quick        # reduced sizes (seconds)
//	experiments -only E3,E4         # a subset
//	experiments -seed 7 -out out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/repro/cobra/internal/experiments"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "full", "quick | full")
		only      = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4,A2)")
		seed      = flag.Uint64("seed", 1, "master seed")
		workers   = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
		outFile   = flag.String("out", "", "also write output to this file")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	params := experiments.Params{Seed: *seed, Scale: scale, Workers: *workers}
	fmt.Fprintf(out, "COBRA reproduction experiments (seed=%d scale=%s)\n\n", *seed, *scaleFlag)
	for _, exp := range experiments.All() {
		if len(wanted) > 0 && !wanted[exp.ID] {
			continue
		}
		fmt.Fprintf(out, "[%s] %s\n", exp.ID, exp.Name)
		start := time.Now()
		tb, err := exp.Run(params)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.ID, err))
		}
		tb.Render(out)
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
