// Command promlint validates Prometheus text exposition format 0.0.4 on
// stdin — the checker behind CI's metrics smoke:
//
//	curl -s localhost:8080/metrics | promlint
//
// It exits 0 when the input parses as a well-formed exposition (HELP
// before TYPE, valid metric and label names, histogram bucket series
// cumulative and closed by le="+Inf" matching _count, no duplicate
// samples) and 1 with the first violation on stderr otherwise. The
// checks live in internal/obs (Lint), which the obs package's own tests
// run against every registry's output.
package main

import (
	"fmt"
	"os"

	"github.com/repro/cobra/internal/obs"
)

func main() {
	if err := obs.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
