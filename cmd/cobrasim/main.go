// Command cobrasim runs one of the repository's processes (COBRA, BIPS,
// random walk, multiple walks, push gossip) on a graph family and prints
// summary statistics of the cover/infection time over repeated trials.
//
// Usage examples:
//
//	cobrasim -graph rreg:1024:3 -process cobra -trials 50
//	cobrasim -graph hypercube:10 -process cobra -lazy -trials 100
//	cobrasim -graph complete:4096 -process bips -b 1 -rho 0.5
//	cobrasim -graph lollipop:600:400 -process rw -trials 10
//
// Sweep mode expands a parameter grid (graphs x processes x branches x
// rhos) into cells, compiles each distinct graph once, and prints the
// cross-cell summary grid as a table or CSV. -cell-workers runs that
// many cells concurrently (results are identical to sequential — the
// reorder buffer keeps delivery in (cell, trial) order):
//
//	cobrasim -sweep -graphs ws:2048:8:0,ws:2048:8:0.1 -branches 2,3 -trials 50
//	cobrasim -sweep -graphs rreg:1024:3 -processes cobra,bips -format csv
//	cobrasim -sweep -graphs ba:4096:3,ba:8192:3 -cell-workers 4 -trials 100
//
// -format ndjson (cobra/bips and sweeps) writes per-trial records in the
// cobrad wire format — byte-identical to the server's results stream and
// its on-disk journals for the same spec, so a local run can be diffed
// against a cobrad recovery:
//
//	cobrasim -graph rreg:1024:3 -trials 64 -seed 1 -format ndjson \
//	  | diff - <(curl -s cobrad:8080/v1/campaigns/c000001/results)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/repro/cobra/internal/batch"
	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/gossip"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/plot"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/walk"
	"github.com/repro/cobra/internal/xrand"
)

func main() {
	var (
		graphFlag = flag.String("graph", "rreg:256:3", "graph spec (family:args, see internal/graphspec)")
		process   = flag.String("process", "cobra", "process: cobra | bips | rw | multirw | push")
		branch    = flag.Int("b", 2, "integer branching factor b")
		rho       = flag.Float64("rho", 0, "fractional extra branch probability (b = branch+rho)")
		lazy      = flag.Bool("lazy", false, "lazy selections (needed on bipartite graphs)")
		start     = flag.Int("start", 0, "start vertex (COBRA/walks) or source (BIPS)")
		walkers   = flag.Int("k", 16, "walker count for -process multirw")
		trials    = flag.Int("trials", 25, "number of independent trials")
		seed      = flag.Uint64("seed", 1, "master seed (full run is deterministic in it)")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		trace     = flag.Bool("trace", false, "plot one run's per-round set sizes (cobra/bips only)")
		csvPath   = flag.String("csv", "", "with -trace: also write the per-round series to this CSV file")
		format    = flag.String("format", "table", "output format: table (human summary) | csv (per-trial rows + summary to stderr) | ndjson (cobra/bips only: per-trial records byte-identical to cobrad's results stream and journals, summary to stderr)")
		sweep     = flag.Bool("sweep", false, "sweep mode: run the graphs x processes x branches x rhos grid")
		graphs    = flag.String("graphs", "", "with -sweep: comma-separated graph specs (default: the -graph value)")
		processes = flag.String("processes", "", "with -sweep: comma-separated processes from cobra,bips (default: the -process value)")
		branches  = flag.String("branches", "", "with -sweep: comma-separated integer branch factors (default: the -b value)")
		rhos      = flag.String("rhos", "", "with -sweep: comma-separated rho values (default: the -rho value)")
		cellWs    = flag.Int("cell-workers", 1, "with -sweep: concurrent cells (1 = sequential; never affects results)")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" && *format != "ndjson" {
		fatal(fmt.Errorf("unknown -format %q (table | csv | ndjson)", *format))
	}
	if *trace && *format != "table" {
		fatal(fmt.Errorf("-trace renders a chart, not trial rows; use its -csv flag for the per-round series"))
	}
	if *sweep {
		if *trace {
			fatal(fmt.Errorf("-trace and -sweep are mutually exclusive"))
		}
		spec, err := sweepSpec(*graphs, *processes, *branches, *rhos, sweepDefaults{
			graph: *graphFlag, process: *process, branch: *branch, rho: *rho,
			lazy: *lazy, start: *start, trials: *trials, seed: *seed,
			workers: *workers, cellWorkers: *cellWs,
		})
		if err != nil {
			fatal(err)
		}
		if err := runSweep(spec, *format); err != nil {
			fatal(err)
		}
		return
	}

	// ndjson mode emits exactly the per-trial records cobrad streams and
	// journals for the same spec — same derivation, same encoder — so a
	// local run can be diffed byte-for-byte against a server's results or
	// a recovered journal. Only the batch processes have that wire form.
	if *format == "ndjson" {
		if *process != "cobra" && *process != "bips" {
			fatal(fmt.Errorf("-format ndjson supports cobra and bips, not %q", *process))
		}
		if err := runNDJSON(batch.Spec{
			Graph: *graphFlag, Process: *process, Branch: *branch, Rho: *rho,
			Lazy: *lazy, Start: *start, Trials: *trials, Seed: *seed, Workers: *workers,
		}, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	g, err := graphspec.Parse(*graphFlag, *seed)
	if err != nil {
		fatal(err)
	}
	// In csv mode stdout carries only the CSV; commentary goes to stderr.
	info := os.Stdout
	if *format == "csv" {
		info = os.Stderr
	}
	fmt.Fprintf(info, "graph: %s (n=%d m=%d dmax=%d bipartite=%v)\n",
		g.Name(), g.N(), g.M(), g.MaxDegree(), g.IsBipartite())

	if *trace {
		if err := runTrace(g, *process, *branch, *rho, *lazy, *start, *seed, *csvPath); err != nil {
			fatal(err)
		}
		return
	}

	runner := sim.Runner{Seed: *seed, Workers: *workers}
	var fn sim.TrialFunc
	switch *process {
	case "cobra":
		cfg := core.Config{Branch: *branch, Rho: *rho, Lazy: *lazy}
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := core.CoverTime(g, cfg, *start, rng)
			return float64(t), err
		}
	case "bips":
		cfg := bips.Config{Branch: *branch, Rho: *rho, Lazy: *lazy}
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := bips.InfectionTime(g, cfg, *start, rng)
			return float64(t), err
		}
	case "rw":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := walk.CoverTime(g, *start, *lazy, rng)
			return float64(t), err
		}
	case "multirw":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := walk.MultiCoverTime(g, *walkers, *start, rng)
			return float64(t), err
		}
	case "push":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			res, err := gossip.Push(g, *start, rng)
			return float64(res.Rounds), err
		}
	default:
		fatal(fmt.Errorf("unknown process %q", *process))
	}

	xs, err := runner.Run(*trials, fn)
	if err != nil {
		fatal(err)
	}
	s, err := stats.Summarize(xs)
	if err != nil {
		fatal(err)
	}
	unit := "rounds"
	if *process == "rw" {
		unit = "steps"
	}
	if *format == "csv" {
		// Machine-readable per-trial measurements on stdout (one row per
		// trial, reusing the sim CSV writer), human summary on stderr.
		tb := sim.NewTable("", "trial", *process+"_"+unit)
		for i, x := range xs {
			tb.AddRow(i, fmt.Sprintf("%g", x))
		}
		if err := tb.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(info, "%s %s over %d trials:\n", *process, unit, s.N)
	fmt.Fprintf(info, "  mean   %.2f  (95%% CI %.2f..%.2f)\n", s.Mean, s.CI95Lo, s.CI95Hi)
	fmt.Fprintf(info, "  median %.1f  q25 %.1f  q75 %.1f\n", s.Median, s.Q25, s.Q75)
	fmt.Fprintf(info, "  min    %.0f  max %.0f  std %.2f\n", s.Min, s.Max, s.Std)
	fmt.Fprintf(info, "  lower bound max{log2 n, Diam} = %d\n", g.CoverTimeLowerBound())
}

// runNDJSON runs one campaign through the batch subsystem, writing each
// TrialResult as one NDJSON line on w (the cobrad wire and journal
// format) and the summary to stderr.
func runNDJSON(spec batch.Spec, w io.Writer) error {
	c, err := batch.Compile(spec, nil)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	var encErr error
	agg, err := c.Run(context.Background(), func(r batch.TrialResult) {
		if encErr == nil {
			encErr = enc.Encode(r)
		}
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	s := agg.Rounds
	fmt.Fprintf(os.Stderr, "%s rounds over %d trials: mean %.2f (95%% CI %.2f..%.2f) median %.1f\n",
		spec.Process, agg.Completed, s.Mean, s.CI95Lo, s.CI95Hi, s.Median)
	return nil
}

// runTrace runs a single traced COBRA or BIPS run and renders the
// per-round set-size curve as an ASCII chart (plus optional CSV).
func runTrace(g *graph.Graph, process string, branch int, rho float64, lazy bool, start int, seed uint64, csvPath string) error {
	var series []float64
	var label string
	switch process {
	case "cobra":
		tr, err := core.Trace(g, core.Config{Branch: branch, Rho: rho, Lazy: lazy}, start, xrand.New(seed))
		if err != nil {
			return err
		}
		series = sim.IntSeries(tr.CoveredSize)
		label = fmt.Sprintf("COBRA covered vertices per round (cover at %d)", tr.CoverRound)
	case "bips":
		tr, err := bips.Trace(g, bips.Config{Branch: branch, Rho: rho, Lazy: lazy}, start, xrand.New(seed))
		if err != nil {
			return err
		}
		series = sim.IntSeries(tr.InfectedSize)
		label = fmt.Sprintf("BIPS infected vertices per round (complete at %d)", tr.CompleteRound)
	default:
		return fmt.Errorf("-trace supports cobra and bips, not %q", process)
	}
	if err := plot.Line(os.Stdout, label, series, 72, 14); err != nil {
		return err
	}
	fmt.Printf("sparkline: %s\n", plot.Sparkline(series))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rounds := make([]float64, len(series))
		for i := range rounds {
			rounds[i] = float64(i)
		}
		if err := sim.WriteSeriesCSV(f, []string{"round", "size"}, rounds, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

// sweepDefaults carries the single-campaign flag values that seed any
// sweep axis the user left empty.
type sweepDefaults struct {
	graph, process string
	branch         int
	rho            float64
	lazy           bool
	start, trials  int
	seed           uint64
	workers        int
	cellWorkers    int
}

// sweepSpec assembles the batch.SweepSpec from the comma-separated axis
// flags, falling back to the scalar flags for omitted axes. Malformed
// axes — empty entries, non-numeric values — are rejected here with the
// offending flag named; duplicate, non-positive, or out-of-range entries
// are rejected by SweepSpec.Validate, so a degenerate grid never runs.
func sweepSpec(graphs, processes, branches, rhos string, d sweepDefaults) (batch.SweepSpec, error) {
	spec := batch.SweepSpec{
		Lazy:        d.lazy,
		Start:       d.start,
		Trials:      d.trials,
		Seed:        d.seed,
		Workers:     d.workers,
		CellWorkers: d.cellWorkers,
	}
	var err error
	if spec.Graphs, err = splitAxis("-graphs", graphs, d.graph); err != nil {
		return spec, err
	}
	if spec.Processes, err = splitAxis("-processes", processes, d.process); err != nil {
		return spec, err
	}
	branchEntries, err := splitAxis("-branches", branches, strconv.Itoa(d.branch))
	if err != nil {
		return spec, err
	}
	for _, raw := range branchEntries {
		b, err := strconv.Atoi(raw)
		if err != nil {
			return spec, fmt.Errorf("-branches entry %q not an integer", raw)
		}
		spec.Branches = append(spec.Branches, b)
	}
	rhoEntries, err := splitAxis("-rhos", rhos, strconv.FormatFloat(d.rho, 'g', -1, 64))
	if err != nil {
		return spec, err
	}
	for _, raw := range rhoEntries {
		r, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return spec, fmt.Errorf("-rhos entry %q not a number", raw)
		}
		spec.Rhos = append(spec.Rhos, r)
	}
	return spec, spec.Validate()
}

// splitAxis splits a comma-separated axis flag, substituting the scalar
// default when the flag is empty. Empty entries (",," or a stray
// trailing comma) are an error, not silently dropped: a typo must not
// quietly shrink the grid.
func splitAxis(name, list, fallback string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		list = fallback
	}
	parts := strings.Split(list, ",")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%s has an empty entry in %q", name, list)
		}
		out = append(out, part)
	}
	return out, nil
}

// runSweep compiles and runs the sweep, then prints the cross-cell
// summary grid: an aligned table (human) or CSV rows on stdout with the
// run commentary on stderr.
func runSweep(spec batch.SweepSpec, format string) error {
	// Machine-readable modes keep stdout for the data; commentary and, in
	// ndjson mode, the summary grid go to stderr.
	info := os.Stdout
	if format != "table" {
		info = os.Stderr
	}
	sw, err := batch.CompileSweep(spec, nil)
	if err != nil {
		return err
	}
	cellWorkers := spec.CellWorkers
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	fmt.Fprintf(info, "sweep: %d cells (%d graphs x %d processes x %d branches x %d rhos), %d trials each, %d cell workers\n",
		spec.CellCount(), len(spec.Graphs), len(spec.Processes), len(spec.Branches),
		spec.CellCount()/(len(spec.Graphs)*len(spec.Processes)*len(spec.Branches)), spec.Trials, cellWorkers)
	// ndjson mode streams each CellResult in (cell, trial) order — the
	// bytes cobrad's sweep results endpoint and journals carry.
	var onResult func(batch.CellResult)
	var encErr error
	if format == "ndjson" {
		enc := json.NewEncoder(os.Stdout)
		onResult = func(r batch.CellResult) {
			if encErr == nil {
				encErr = enc.Encode(r)
			}
		}
	}
	cells, err := sw.Run(context.Background(), onResult)
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	// Graphs compile lazily at cell admission, so the counters are only
	// meaningful after the run: builds must equal the distinct graph count.
	hits, misses, _ := sw.CacheStats()
	fmt.Fprintf(info, "sweep: %d graph builds, %d cache hits\n", misses, hits)
	header, rows := batch.SummaryTable(cells)
	tb := sim.NewTable(fmt.Sprintf("sweep seed=%d", spec.Seed), header...)
	for _, row := range rows {
		rowCells := make([]any, len(row))
		for i, c := range row {
			rowCells[i] = c
		}
		tb.AddRow(rowCells...)
	}
	if format == "csv" {
		return tb.WriteCSV(os.Stdout)
	}
	tb.Render(info)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobrasim:", err)
	os.Exit(1)
}
