// Command cobrasim runs one of the repository's processes (COBRA, BIPS,
// random walk, multiple walks, push gossip) on a graph family and prints
// summary statistics of the cover/infection time over repeated trials.
//
// Usage examples:
//
//	cobrasim -graph rreg:1024:3 -process cobra -trials 50
//	cobrasim -graph hypercube:10 -process cobra -lazy -trials 100
//	cobrasim -graph complete:4096 -process bips -b 1 -rho 0.5
//	cobrasim -graph lollipop:600:400 -process rw -trials 10
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/cobra/internal/bips"
	"github.com/repro/cobra/internal/core"
	"github.com/repro/cobra/internal/gossip"
	"github.com/repro/cobra/internal/graph"
	"github.com/repro/cobra/internal/graphspec"
	"github.com/repro/cobra/internal/plot"
	"github.com/repro/cobra/internal/sim"
	"github.com/repro/cobra/internal/stats"
	"github.com/repro/cobra/internal/walk"
	"github.com/repro/cobra/internal/xrand"
)

func main() {
	var (
		graphFlag = flag.String("graph", "rreg:256:3", "graph spec (family:args, see internal/graphspec)")
		process   = flag.String("process", "cobra", "process: cobra | bips | rw | multirw | push")
		branch    = flag.Int("b", 2, "integer branching factor b")
		rho       = flag.Float64("rho", 0, "fractional extra branch probability (b = branch+rho)")
		lazy      = flag.Bool("lazy", false, "lazy selections (needed on bipartite graphs)")
		start     = flag.Int("start", 0, "start vertex (COBRA/walks) or source (BIPS)")
		walkers   = flag.Int("k", 16, "walker count for -process multirw")
		trials    = flag.Int("trials", 25, "number of independent trials")
		seed      = flag.Uint64("seed", 1, "master seed (full run is deterministic in it)")
		workers   = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		trace     = flag.Bool("trace", false, "plot one run's per-round set sizes (cobra/bips only)")
		csvPath   = flag.String("csv", "", "with -trace: also write the per-round series to this CSV file")
		format    = flag.String("format", "table", "output format: table (human summary) | csv (per-trial rows + summary to stderr)")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fatal(fmt.Errorf("unknown -format %q (table | csv)", *format))
	}
	if *trace && *format == "csv" {
		fatal(fmt.Errorf("-trace renders a chart, not trial rows; use its -csv flag for the per-round series"))
	}

	g, err := graphspec.Parse(*graphFlag, *seed)
	if err != nil {
		fatal(err)
	}
	// In csv mode stdout carries only the CSV; commentary goes to stderr.
	info := os.Stdout
	if *format == "csv" {
		info = os.Stderr
	}
	fmt.Fprintf(info, "graph: %s (n=%d m=%d dmax=%d bipartite=%v)\n",
		g.Name(), g.N(), g.M(), g.MaxDegree(), g.IsBipartite())

	if *trace {
		if err := runTrace(g, *process, *branch, *rho, *lazy, *start, *seed, *csvPath); err != nil {
			fatal(err)
		}
		return
	}

	runner := sim.Runner{Seed: *seed, Workers: *workers}
	var fn sim.TrialFunc
	switch *process {
	case "cobra":
		cfg := core.Config{Branch: *branch, Rho: *rho, Lazy: *lazy}
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := core.CoverTime(g, cfg, *start, rng)
			return float64(t), err
		}
	case "bips":
		cfg := bips.Config{Branch: *branch, Rho: *rho, Lazy: *lazy}
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := bips.InfectionTime(g, cfg, *start, rng)
			return float64(t), err
		}
	case "rw":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := walk.CoverTime(g, *start, *lazy, rng)
			return float64(t), err
		}
	case "multirw":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			t, err := walk.MultiCoverTime(g, *walkers, *start, rng)
			return float64(t), err
		}
	case "push":
		fn = func(trial int, rng *xrand.RNG) (float64, error) {
			res, err := gossip.Push(g, *start, rng)
			return float64(res.Rounds), err
		}
	default:
		fatal(fmt.Errorf("unknown process %q", *process))
	}

	xs, err := runner.Run(*trials, fn)
	if err != nil {
		fatal(err)
	}
	s, err := stats.Summarize(xs)
	if err != nil {
		fatal(err)
	}
	unit := "rounds"
	if *process == "rw" {
		unit = "steps"
	}
	if *format == "csv" {
		// Machine-readable per-trial measurements on stdout (one row per
		// trial, reusing the sim CSV writer), human summary on stderr.
		tb := sim.NewTable("", "trial", *process+"_"+unit)
		for i, x := range xs {
			tb.AddRow(i, fmt.Sprintf("%g", x))
		}
		if err := tb.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(info, "%s %s over %d trials:\n", *process, unit, s.N)
	fmt.Fprintf(info, "  mean   %.2f  (95%% CI %.2f..%.2f)\n", s.Mean, s.CI95Lo, s.CI95Hi)
	fmt.Fprintf(info, "  median %.1f  q25 %.1f  q75 %.1f\n", s.Median, s.Q25, s.Q75)
	fmt.Fprintf(info, "  min    %.0f  max %.0f  std %.2f\n", s.Min, s.Max, s.Std)
	fmt.Fprintf(info, "  lower bound max{log2 n, Diam} = %d\n", g.CoverTimeLowerBound())
}

// runTrace runs a single traced COBRA or BIPS run and renders the
// per-round set-size curve as an ASCII chart (plus optional CSV).
func runTrace(g *graph.Graph, process string, branch int, rho float64, lazy bool, start int, seed uint64, csvPath string) error {
	var series []float64
	var label string
	switch process {
	case "cobra":
		tr, err := core.Trace(g, core.Config{Branch: branch, Rho: rho, Lazy: lazy}, start, xrand.New(seed))
		if err != nil {
			return err
		}
		series = sim.IntSeries(tr.CoveredSize)
		label = fmt.Sprintf("COBRA covered vertices per round (cover at %d)", tr.CoverRound)
	case "bips":
		tr, err := bips.Trace(g, bips.Config{Branch: branch, Rho: rho, Lazy: lazy}, start, xrand.New(seed))
		if err != nil {
			return err
		}
		series = sim.IntSeries(tr.InfectedSize)
		label = fmt.Sprintf("BIPS infected vertices per round (complete at %d)", tr.CompleteRound)
	default:
		return fmt.Errorf("-trace supports cobra and bips, not %q", process)
	}
	if err := plot.Line(os.Stdout, label, series, 72, 14); err != nil {
		return err
	}
	fmt.Printf("sparkline: %s\n", plot.Sparkline(series))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rounds := make([]float64, len(series))
		for i := range rounds {
			rounds[i] = float64(i)
		}
		if err := sim.WriteSeriesCSV(f, []string{"round", "size"}, rounds, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobrasim:", err)
	os.Exit(1)
}
